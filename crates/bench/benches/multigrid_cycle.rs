//! Per-cycle cost of the three solution strategies (the sequential-cost
//! side of §2.3: "a W-multigrid cycle requires approximately 90% more
//! CPU time than a single grid cycle, while the multigrid V-cycle
//! requires 75% more").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eul3d_core::{MultigridSolver, SolverConfig, Strategy};
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::MeshSequence;

fn bench_cycles(c: &mut Criterion) {
    let spec = BumpSpec {
        nx: 20,
        ny: 8,
        nz: 6,
        jitter: 0.12,
        ..Default::default()
    };
    let cfg = SolverConfig::default();

    let mut group = c.benchmark_group("cycle_cost");
    group.sample_size(10);
    for strategy in [Strategy::SingleGrid, Strategy::VCycle, Strategy::WCycle] {
        let seq = MeshSequence::bump_sequence(&spec, 3);
        let mut mg = MultigridSolver::new(seq, cfg, strategy);
        // Warm the state into a realistic (non-uniform) flow.
        mg.solve(5);
        group.bench_function(strategy.label().replace(' ', "_"), |b| {
            b.iter(|| black_box(mg.cycle()));
        });
    }
    group.finish();

    // Report the per-cycle flop ratios alongside the timing.
    let mut flops = Vec::new();
    for strategy in [Strategy::SingleGrid, Strategy::VCycle, Strategy::WCycle] {
        let seq = MeshSequence::bump_sequence(&spec, 3);
        let mut mg = MultigridSolver::new(seq, cfg, strategy);
        mg.solve(3);
        flops.push(mg.counter.flops() / 3.0);
    }
    eprintln!(
        "flops/cycle: SG {:.2e}; V {:.2e} (+{:.0}%); W {:.2e} (+{:.0}%)  [paper: +75% / +90%]",
        flops[0],
        flops[1],
        100.0 * (flops[1] / flops[0] - 1.0),
        flops[2],
        100.0 * (flops[2] / flops[0] - 1.0)
    );
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
