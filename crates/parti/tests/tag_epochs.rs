//! Rank-level tag-reservation discipline across recovery epochs: the
//! scenarios a fault rebuild actually exercises, run on the simulated
//! machine so `Rank::reserve_tags` (not just allocator arithmetic) is
//! what accepts or rejects each range.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use eul3d_delta::{run_spmd, CommClass, COLLECTIVE_TAG_BASE};
use eul3d_parti::TagAllocator;

/// A recovery rebuild re-runs the same `range` sequence from an
/// epoch-shifted allocator. The rank must accept the new ranges
/// alongside the still-reserved epoch-0 ranges, and traffic on the
/// new tags must flow.
#[test]
fn epoch_shifted_rebuild_reuses_the_rank() {
    let run = run_spmd(2, |r| {
        let mut t0 = TagAllocator::new(100);
        let a = t0.range(2);
        let b = t0.range(3);
        r.reserve_tags(a, a + 2);
        r.reserve_tags(b, b + 3);

        // "Recovery": same base, epoch 1 — same call sequence, fresh
        // tag space. Reservations from before the failure stay put.
        let mut t1 = TagAllocator::for_epoch(100, 1);
        let a1 = t1.range(2);
        let b1 = t1.range(3);
        r.reserve_tags(a1, a1 + 2);
        r.reserve_tags(b1, b1 + 3);
        assert!(a1 > b + 3, "epoch 1 must sit above every epoch-0 range");

        // The rebuilt schedule's tags carry traffic.
        let peer = 1 - r.id;
        let mut buf = r.take_f64(1);
        buf.push(r.id as f64);
        r.send_f64(peer, a1, buf, CommClass::Halo);
        let got = r.recv_f64(peer, a1);
        let v = got[0];
        r.recycle_f64(got);
        v
    });
    assert_eq!(run.results, vec![1.0, 0.0]);
}

/// Rebuilding *without* an epoch shift replays the same ranges and must
/// be rejected loudly — this is the bug the epoch stride exists to
/// prevent.
#[test]
#[should_panic(expected = "collides with reserved")]
fn same_epoch_rebuild_is_rejected() {
    run_spmd(1, |r| {
        let mut t0 = TagAllocator::new(100);
        let a = t0.range(2);
        r.reserve_tags(a, a + 2);
        let mut again = TagAllocator::for_epoch(100, 0);
        let a2 = again.range(2);
        r.reserve_tags(a2, a2 + 2);
    });
}

/// A reservation reaching into the collective tag space is rejected by
/// the rank itself, even if it was computed without the allocator.
#[test]
#[should_panic(expected = "collides with collective space")]
fn rank_rejects_reservations_in_collective_space() {
    run_spmd(1, |r| {
        r.reserve_tags(COLLECTIVE_TAG_BASE - 1, COLLECTIVE_TAG_BASE + 1);
    });
}

/// The allocator refuses to hand out a range crossing into collective
/// space even when the starting epoch is valid: exhaustion inside an
/// epoch fails loudly instead of wrapping into another epoch's stride.
#[test]
#[should_panic(expected = "ran into the collective space")]
fn exhaustion_inside_an_epoch_fails_loudly() {
    let mut t = TagAllocator::for_epoch(0, 900);
    loop {
        t.range(1 << 20);
    }
}
