//! Codegen guard: the release build of this crate must contain no
//! implicit bounds-check panics.
//!
//! The edge kernels promise bounds-check-free inner loops (see the
//! crate docs): every hot index goes through `get_unchecked` or raw
//! pointer arithmetic validated once per call by `debug_assert!`s. A
//! stray `w[c * n + i]` in a hot path would silently reintroduce a
//! `core::panicking::panic_bounds_check` call and a branch per access.
//! This test disassembles the release rlib and fails if that symbol is
//! referenced anywhere in the crate's generated code.
//!
//! CI builds `--release --workspace --all-targets` before testing, so
//! the rlib is always present there; locally the test builds it on
//! demand. Hosts without `objdump` skip with a notice rather than fail.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

/// Newest `libeul3d_kernels-*.rlib` under `target/release/deps`, if any.
fn find_release_rlib() -> Option<PathBuf> {
    let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/release/deps");
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(target).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("libeul3d_kernels-") && name.ends_with(".rlib") {
            let mtime = entry.metadata().ok()?.modified().ok()?;
            if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
                best = Some((mtime, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
}

#[test]
fn release_kernels_have_no_bounds_check_panics() {
    let rlib = match find_release_rlib() {
        Some(p) => p,
        None => {
            // Developer machine running a plain debug `cargo test`:
            // produce the release artifact first.
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let status = Command::new(cargo)
                .args(["build", "--release", "-p", "eul3d-kernels"])
                .status()
                .expect("spawn cargo build --release -p eul3d-kernels");
            assert!(status.success(), "release build of eul3d-kernels failed");
            find_release_rlib().expect("release rlib missing after successful build")
        }
    };

    let out = match Command::new("objdump")
        .args(["-d", "--demangle"])
        .arg(&rlib)
        .output()
    {
        Ok(out) if out.status.success() => out,
        Ok(out) => panic!(
            "objdump failed on {}: {}",
            rlib.display(),
            String::from_utf8_lossy(&out.stderr)
        ),
        Err(_) => {
            eprintln!("skipping: objdump not available on this host");
            return;
        }
    };
    let asm = String::from_utf8_lossy(&out.stdout);

    // Sanity: the kernels we are guarding must actually be in the
    // disassembly, or the check would pass vacuously.
    #[cfg(target_arch = "x86_64")]
    let required_mods = ["eul3d_kernels::edges::", "eul3d_kernels::simd::"];
    #[cfg(not(target_arch = "x86_64"))]
    let required_mods = ["eul3d_kernels::edges::"];
    for required in required_mods {
        assert!(
            asm.contains(required),
            "disassembly of {} lacks {required} symbols — stale or wrong rlib?",
            rlib.display()
        );
    }

    let hits: Vec<&str> = asm
        .lines()
        .filter(|l| l.contains("panic_bounds_check"))
        .collect();
    assert!(
        hits.is_empty(),
        "release codegen of eul3d-kernels references panic_bounds_check:\n{}",
        hits.join("\n")
    );
}
