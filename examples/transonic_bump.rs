//! The paper's headline workflow: transonic flow solved with FAS
//! multigrid on a sequence of *unrelated* meshes, W-cycle strategy —
//! "solution times are currently fast enough to effectively use this
//! code in a design loop".
//!
//! ```sh
//! cargo run --release --example transonic_bump
//! ```

use eul3d::mesh::gen::BumpSpec;
use eul3d::mesh::MeshSequence;
use eul3d::solver::postproc::{crosses, mach_field, wall_pressure_force};
use eul3d::solver::{MultigridSolver, SolverConfig, Strategy};

fn main() {
    // Preprocessing (§2.4): generate the fine mesh and three
    // independently generated coarser meshes, and build the
    // 4-address/4-weight inter-grid operators by graph-traversal search.
    let spec = BumpSpec {
        nx: 32,
        ny: 12,
        nz: 9,
        jitter: 0.12,
        ..BumpSpec::default()
    };
    let t0 = std::time::Instant::now();
    let seq = MeshSequence::bump_sequence(&spec, 4);
    println!(
        "multigrid sequence: {:?} vertices (preprocessing {:.2}s)",
        seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "coarse-grid storage overhead: {:.0}% of the fine grid",
        100.0 * seq.coarse_overhead_fraction()
    );

    // Transonic conditions (the paper runs M∞ = 0.768 over an aircraft;
    // the channel bump develops its supersonic pocket around 0.675).
    let cfg = SolverConfig {
        mach: 0.675,
        ..SolverConfig::default()
    };
    let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);

    let t1 = std::time::Instant::now();
    let history = mg.solve(100);
    println!(
        "100 W-cycles in {:.2}s: residual {:.3e} -> {:.3e} ({:.2} orders)",
        t1.elapsed().as_secs_f64(),
        history[0],
        history.last().unwrap(),
        (history[0] / history.last().unwrap()).log10()
    );

    let mesh = &mg.seq.meshes[0];
    let mach = mach_field(cfg.gamma, mg.state(), mesh.nverts());
    let peak = mach.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "peak Mach {peak:.3}; supersonic pocket: {}",
        crosses(&mach, 1.0)
    );

    // Integrated pressure force on the walls (x-component = wave drag
    // contribution of the bump).
    let force = wall_pressure_force(mesh, cfg.gamma, mg.state());
    println!(
        "wall pressure force: ({:+.4}, {:+.4}, {:+.4})",
        force.x, force.y, force.z
    );
}
