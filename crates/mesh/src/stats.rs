//! Mesh statistics and validation.

use crate::dual::closure_residual;
use crate::mesh::TetMesh;
use crate::types::BcKind;
use crate::vec3::tet_volume;

/// Summary statistics of a mesh (Figure-3-style reporting).
#[derive(Debug, Clone)]
pub struct MeshStats {
    pub nverts: usize,
    pub nedges: usize,
    pub ntets: usize,
    pub nbfaces: usize,
    pub walls: usize,
    pub farfield: usize,
    pub symmetry: usize,
    pub total_volume: f64,
    pub min_tet_volume: f64,
    pub max_vertex_degree: usize,
    pub avg_vertex_degree: f64,
    /// Max-norm of the per-vertex dual-surface closure residual (should
    /// be round-off small).
    pub closure_max: f64,
}

impl MeshStats {
    pub fn compute(mesh: &TetMesh) -> MeshStats {
        let min_tet_volume = mesh
            .tets
            .iter()
            .map(|t| {
                tet_volume(
                    mesh.coords[t[0] as usize],
                    mesh.coords[t[1] as usize],
                    mesh.coords[t[2] as usize],
                    mesh.coords[t[3] as usize],
                )
            })
            .fold(f64::INFINITY, f64::min);
        let bf: Vec<_> = mesh.bfaces.iter().map(|f| (f.normal, f.v)).collect();
        let closure_max = closure_residual(mesh.nverts(), &mesh.edges, &mesh.edge_coef, &bf)
            .iter()
            .map(|r| r.norm())
            .fold(0.0, f64::max);
        let count = |k: BcKind| mesh.bfaces.iter().filter(|f| f.kind == k).count();
        MeshStats {
            nverts: mesh.nverts(),
            nedges: mesh.nedges(),
            ntets: mesh.ntets(),
            nbfaces: mesh.bfaces.len(),
            walls: count(BcKind::Wall),
            farfield: count(BcKind::FarField),
            symmetry: count(BcKind::Symmetry),
            total_volume: mesh.total_volume(),
            min_tet_volume,
            max_vertex_degree: mesh.max_degree(),
            avg_vertex_degree: 2.0 * mesh.nedges() as f64 / mesh.nverts() as f64,
            closure_max,
        }
    }

    /// Hard validity check: positive volumes and closed dual surfaces.
    pub fn is_valid(&self) -> bool {
        self.min_tet_volume > 0.0 && self.closure_max < 1e-9 * self.total_volume.max(1.0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} nodes, {} edges, {} tets, {} bfaces (wall {}, far {}, sym {}), vol {:.4}, closure {:.2e}",
            self.nverts,
            self.nedges,
            self.ntets,
            self.nbfaces,
            self.walls,
            self.farfield,
            self.symmetry,
            self.total_volume,
            self.closure_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{bump_channel, unit_box, BumpSpec};

    #[test]
    fn stats_of_unit_box() {
        let m = unit_box(4, 0.2, 17);
        let s = MeshStats::compute(&m);
        assert!(s.is_valid(), "{}", s.summary());
        assert_eq!(s.nverts, 125);
        assert_eq!(s.farfield, s.nbfaces);
        assert_eq!(s.walls, 0);
        assert!((s.total_volume - 1.0).abs() < 1e-12);
        // Split-hex lattices average ~7 edges per vertex in the interior.
        assert!(s.avg_vertex_degree > 4.0 && s.avg_vertex_degree < 14.0);
    }

    #[test]
    fn stats_of_bump_channel() {
        let m = bump_channel(&BumpSpec::default());
        let s = MeshStats::compute(&m);
        assert!(s.is_valid(), "{}", s.summary());
        assert!(s.walls > 0 && s.farfield > 0 && s.symmetry > 0);
    }

    #[test]
    fn summary_is_readable() {
        let m = unit_box(2, 0.0, 0);
        let s = MeshStats::compute(&m).summary();
        assert!(s.contains("nodes"));
        assert!(s.contains("tets"));
    }
}
