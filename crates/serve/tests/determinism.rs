//! The determinism contract of the service, end to end: a cached
//! result and a fresh recompute must be **byte-identical** — result
//! table, exported Chrome trace, VTK field, and the 128-bit result
//! hash — including under the adversarial configurations (divergence
//! guard × injected faults) where rollback/replay machinery runs; and a
//! job that is cancelled mid-run and resubmitted must reproduce the
//! uncancelled run bit for bit.
//!
//! Every assertion is identity-based, so the suite is seed-matrix
//! friendly: `EUL3D_SEED` changes *which* bytes both sides produce,
//! never whether they agree. All receives are time-bounded.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use eul3d_core::{env_seed, JobMode, RunConfig};
use eul3d_serve::cache::JobBlob;
use eul3d_serve::engine::{EngineConfig, JobEngine, JobEvent, JobSpec, SubmitTicket};
use eul3d_serve::json::JObj;
use eul3d_serve::{client, server};

const RECV_TIMEOUT: Duration = Duration::from_secs(180);

fn engine(workers: usize) -> JobEngine {
    JobEngine::start(EngineConfig {
        workers,
        queue_cap: 32,
        cache_cap: 32,
        seed: env_seed(7),
        retry_after_ms_per_queued: 10,
        ..EngineConfig::default()
    })
}

/// The adversarial configuration: distributed guarded run with an
/// injected rank kill, checkpointing, and tracing — the full
/// rollback/recovery/replay machinery is live.
fn guarded_fault_config() -> RunConfig {
    RunConfig::from_toml(
        "[solver]\ncfl = 30.0\nmach = 0.5\n\
         [run]\nlevels = 2\ncycles = 8\nnranks = 4\n\
         checkpoint_every = 2\nfaults = \"kill:1@5\"\n\
         [mesh]\nnx = 10\nny = 4\nnz = 3\ntaper = 0.6\njitter = 0.1\n\
         [guard]\nmax_retries = 4\ncfl_backoff = 0.25\n\
         [trace]\nenabled = true\ncapacity = 4096\n",
    )
    .expect("fixture config parses")
}

fn small_config(cycles: usize) -> RunConfig {
    RunConfig::from_toml(&format!(
        "[run]\nlevels = 2\ncycles = {cycles}\n[mesh]\nnx = 8\nny = 4\nnz = 3\n"
    ))
    .expect("fixture config parses")
}

/// Drain a ticket to its terminal event, returning (events, blob if
/// Done).
fn drain(t: &SubmitTicket) -> (Vec<JobEvent>, Option<Arc<JobBlob>>) {
    let mut evs = Vec::new();
    let mut blob = None;
    let deadline = Instant::now() + RECV_TIMEOUT;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        let ev = t.events.recv_timeout(left).expect("stream ended in time");
        let terminal = match &ev {
            JobEvent::Done { blob: b, .. } => {
                blob = Some(Arc::clone(b));
                true
            }
            JobEvent::Cancelled { .. } | JobEvent::Failed { .. } => true,
            _ => false,
        };
        evs.push(ev);
        if terminal {
            return (evs, blob);
        }
    }
}

fn assert_blobs_byte_identical(a: &JobBlob, b: &JobBlob, what: &str) {
    assert_eq!(a.artifacts.table, b.artifacts.table, "{what}: table bytes");
    assert_eq!(
        a.artifacts.trace_json, b.artifacts.trace_json,
        "{what}: exported trace bytes"
    );
    assert_eq!(a.artifacts.vtk, b.artifacts.vtk, "{what}: VTK bytes");
    assert_eq!(
        a.artifacts.events.len(),
        b.artifacts.events.len(),
        "{what}: event counts"
    );
    assert!(
        a.artifacts
            .events
            .iter()
            .zip(&b.artifacts.events)
            .all(|(x, y)| x == y),
        "{what}: traced event streams"
    );
    assert_eq!(
        a.artifacts.result_hash, b.artifacts.result_hash,
        "{what}: result hash"
    );
    assert_eq!(
        a.artifacts
            .history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        b.artifacts
            .history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        "{what}: residual history bits"
    );
}

#[test]
fn guarded_fault_injected_job_caches_byte_identically() {
    let eng = engine(2);
    let rc = guarded_fault_config();
    let submit = |force: bool| {
        eng.submit(JobSpec {
            rc: rc.clone(),
            mode: JobMode::Distributed,
            force,
        })
        .expect("accepted")
    };
    let (_, miss) = drain(&submit(false));
    let miss = miss.expect("fault-injected guarded run completes");
    assert!(
        miss.artifacts.guard.is_some(),
        "guard outcome rides in the artifacts"
    );
    assert!(
        miss.artifacts.trace_json.is_some() && !miss.artifacts.events.is_empty(),
        "tracing was live"
    );

    let (hit_evs, hit) = drain(&submit(false));
    let hit = hit.expect("cache hit completes");
    assert!(
        matches!(
            hit_evs.last(),
            Some(JobEvent::Done {
                cache_hit: true,
                ..
            })
        ),
        "second submission is served from the cache"
    );
    assert_blobs_byte_identical(&miss, &hit, "cache hit vs original compute");

    let (forced_evs, forced) = drain(&submit(true));
    let forced = forced.expect("forced recompute completes");
    assert!(
        matches!(
            forced_evs.last(),
            Some(JobEvent::Done {
                cache_hit: false,
                ..
            })
        ),
        "force bypasses the cache"
    );
    assert_blobs_byte_identical(&miss, &forced, "forced recompute vs original");

    // The progress stream replayed from the cache carries the same
    // residual bits the live run streamed.
    let live: Vec<(u64, u64)> = forced_evs
        .iter()
        .filter_map(|e| match e {
            JobEvent::Progress {
                cycle, residual, ..
            } => Some((*cycle, residual.to_bits())),
            _ => None,
        })
        .collect();
    let replayed: Vec<(u64, u64)> = hit_evs
        .iter()
        .filter_map(|e| match e {
            JobEvent::Progress {
                cycle, residual, ..
            } => Some((*cycle, residual.to_bits())),
            _ => None,
        })
        .collect();
    assert_eq!(live, replayed, "replayed progress is bit-exact");
    eng.shutdown();
}

#[test]
fn cancelled_then_resubmitted_reproduces_pristine_run_bit_for_bit() {
    // Pristine: a fresh engine runs the job start to finish.
    let pristine_eng = engine(1);
    let rc = small_config(30);
    let (_, pristine) = drain(
        &pristine_eng
            .submit(JobSpec {
                rc: rc.clone(),
                mode: JobMode::Solve,
                force: false,
            })
            .expect("accepted"),
    );
    let pristine = pristine.expect("pristine run completes");
    pristine_eng.shutdown();

    // Victim: same config on a second engine (same seed), cancelled at
    // the first committed cycle.
    let eng = engine(1);
    let victim = eng
        .submit(JobSpec {
            rc: rc.clone(),
            mode: JobMode::Solve,
            force: false,
        })
        .expect("accepted");
    let deadline = Instant::now() + RECV_TIMEOUT;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match victim.events.recv_timeout(left).expect("events flow") {
            JobEvent::Progress { .. } => {
                eng.cancel(victim.job);
                break;
            }
            JobEvent::Done { .. } => panic!("cancelled too late: job already finished"),
            _ => {}
        }
    }
    let (evs, blob) = drain(&victim);
    assert!(blob.is_none(), "cancelled job yields no artifacts");
    assert!(
        matches!(evs.last(), Some(JobEvent::Cancelled { .. })),
        "victim terminates as cancelled: {evs:?}"
    );
    let stats = eng.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(
        stats.cache_len, 0,
        "a cancelled job must not populate the cache"
    );

    // Resubmission recomputes from scratch and must match the pristine
    // bytes exactly — no state bleeds across the unwound attempt.
    let (evs, resubmitted) = drain(
        &eng.submit(JobSpec {
            rc,
            mode: JobMode::Solve,
            force: false,
        })
        .expect("accepted"),
    );
    assert!(
        matches!(
            evs.last(),
            Some(JobEvent::Done {
                cache_hit: false,
                ..
            })
        ),
        "resubmission is a genuine recompute"
    );
    assert_blobs_byte_identical(
        &pristine,
        &resubmitted.expect("resubmission completes"),
        "resubmitted-after-cancel vs pristine",
    );
    eng.shutdown();
}

#[test]
fn socket_stream_serves_identical_artifact_bytes_from_cache() {
    let mut path = std::env::temp_dir();
    path.push(format!("eul3d-serve-det-{}.sock", std::process::id()));
    let mut srv = server::spawn(
        &path,
        EngineConfig {
            workers: 1,
            seed: env_seed(7),
            ..EngineConfig::default()
        },
    )
    .expect("bind");
    let toml = "[run]\nlevels = 2\ncycles = 4\n[mesh]\nnx = 8\nny = 4\nnz = 3\n\
                [trace]\nenabled = true\ncapacity = 2048\n";
    let grab = |lines: &[String], field: &str| -> Option<String> {
        lines.iter().rev().find_map(|l| {
            let o = JObj::parse(l).ok()?;
            (o.str_of("event") == Some("done")).then(|| o.str_of(field).map(String::from))?
        })
    };
    let miss = client::submit_and_collect(&path, toml, "solve", false, true).expect("miss run");
    let hit = client::submit_and_collect(&path, toml, "solve", false, true).expect("hit run");
    assert_eq!(grab(&miss, "cache").as_deref(), Some("miss"));
    assert_eq!(grab(&hit, "cache").as_deref(), Some("hit"));
    for field in ["table", "trace", "vtk", "result_hash"] {
        let m = grab(&miss, field);
        assert!(m.is_some(), "done carries {field}");
        assert_eq!(
            m,
            grab(&hit, field),
            "inlined {field} bytes differ across cache paths"
        );
    }
    // The interleaved tracer lines (the `"ev"` family) must match too.
    let trace_lines = |lines: &[String]| {
        lines
            .iter()
            .filter(|l| JObj::parse(l).is_ok_and(|o| o.str_of("ev").is_some()))
            .cloned()
            .collect::<Vec<_>>()
    };
    let tm = trace_lines(&miss);
    assert!(!tm.is_empty(), "trace events rode the wire");
    assert_eq!(tm, trace_lines(&hit), "wire trace replay is byte-exact");
    srv.shutdown();
}
