//! **Section 5** — Shared vs Distributed Memory: a comparison.
//!
//! Runs the same case through both machine models and reports the §5
//! claims: the C90 outperforms the Delta by roughly 2x, the Delta-512 is
//! worth roughly 5 C90 CPUs, both miss peak badly (C90 ~21%, Delta ~5%),
//! and the Delta comm/comp ratio is ~50% while the C90 rates are
//! insensitive to strategy. Also reports the §4.2 reordering ablation
//! via the cost model's unordered node rate.

use eul3d_bench::CaseSpec;
use eul3d_core::dist::{run_distributed, DistOptions, DistSetup};
use eul3d_core::{MultigridSolver, Strategy};
use eul3d_delta::CostModel;
use eul3d_perf::{Comparison, CrayC90Model, TextTable};

fn main() {
    let case = CaseSpec::from_env(20);
    let cfg = case.config();
    let cray = CrayC90Model::default();
    let delta = CostModel::delta_i860();
    let nranks = *case.ranks.last().unwrap_or(&512);
    println!(
        "compare: bump channel nx={}, {} levels, {} cycles, C90-16 vs Delta-{}\n",
        case.nx, case.levels, case.cycles, nranks
    );

    let mut table = TextTable::new(&[
        "strategy",
        "C90-16 wall",
        "C90-16 MF",
        "Delta wall",
        "Delta MF",
        "C90 adv.",
        "Delta≈CPUs",
    ]);
    let mut w_comparison = None;
    let mut w_phases = None;
    for strategy in [Strategy::SingleGrid, Strategy::VCycle, Strategy::WCycle] {
        // Shared-memory side: the real coloured executor's work through
        // the C90 model (launches = colour-group loop starts).
        let mut mg = MultigridSolver::new_shared(case.sequence(), cfg, strategy, 2)
            .expect("edge colourings must validate");
        mg.solve(case.cycles);
        let c90 = cray.evaluate(mg.counter.flops(), mg.counter.launches(), 16);

        // Distributed side: simulated Delta.
        let setup = DistSetup::new(case.sequence(), nranks, 40, 7);
        let result = run_distributed(&setup, cfg, strategy, case.cycles, DistOptions::default());
        let b = delta.evaluate(&result.cycle_counters());

        let cmp = Comparison {
            c90_wall_s: c90.wall_clock_s,
            delta_wall_s: b.total_seconds,
            c90_mflops: c90.mflops,
            delta_mflops: b.mflops,
        };
        table.row(&[
            strategy.label().into(),
            format!("{:.1}", cmp.c90_wall_s),
            format!("{:.0}", cmp.c90_mflops),
            format!("{:.1}", cmp.delta_wall_s),
            format!("{:.0}", cmp.delta_mflops),
            format!("{:.1}x", cmp.c90_advantage()),
            format!("{:.1}", cmp.delta_in_c90_cpus()),
        ]);
        if strategy == Strategy::WCycle {
            w_comparison = Some((cmp, b));
            // Sum the executor-layer phase counters over the ranks for
            // the per-phase comp/comm breakdown below.
            let mut total = eul3d_core::PhaseCounters::default();
            for p in result.phase_counters() {
                total.merge(&p);
            }
            w_phases = Some(total);
        }
    }
    println!("{}", table.render());

    println!("\nW-cycle per-phase breakdown (distributed, summed over ranks):");
    let mut pt = TextTable::new(&["phase", "flops", "launches", "messages", "bytes", "allocs"]);
    for r in w_phases.unwrap().rows() {
        pt.row(&[
            r.label.to_string(),
            format!("{:.3e}", r.flops),
            r.launches.to_string(),
            r.msgs.to_string(),
            r.bytes.to_string(),
            r.allocs.to_string(),
        ]);
    }
    println!("{}", pt.render());

    let (cmp, b) = w_comparison.unwrap();
    println!(
        "W-cycle peak fractions: C90 {:.0}% (paper ~21%), Delta {:.0}% (paper ~5%)",
        100.0 * cmp.c90_peak_fraction(),
        100.0 * cmp.delta_peak_fraction()
    );
    println!(
        "Delta comm/comp ratio (W-cycle): {:.0}% (paper: ~50% for its problem/machine size)",
        100.0 * b.comm_to_comp()
    );

    // §4.2 — node/edge reordering doubled the single-node rate; the cost
    // model exposes it as the ordered vs unordered node rate.
    let unordered = CostModel::delta_i860_unordered();
    println!(
        "\n§4.2 reordering: modeled node rate {:.1} -> {:.1} MFlops (2x, as measured in the paper);",
        unordered.mflops_per_rank,
        delta.mflops_per_rank
    );
    println!(
        "run `cargo bench -p eul3d-bench --bench reorder` for the measured host-cache analogue."
    );
}
