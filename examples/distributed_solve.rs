//! The distributed-memory workflow of §4: partition the mesh sequence
//! with recursive spectral bisection, build PARTI communication schedules
//! with the inspector, run the SPMD solver on the simulated Touchstone
//! Delta, and price the run with the machine cost model.
//!
//! ```sh
//! cargo run --release --example distributed_solve
//! ```

use eul3d::delta::{CommClass, CostModel};
use eul3d::mesh::gen::BumpSpec;
use eul3d::mesh::MeshSequence;
use eul3d::partition::PartitionQuality;
use eul3d::solver::dist::{run_distributed, DistOptions, DistSetup};
use eul3d::solver::{SolverConfig, Strategy};

fn main() {
    let nranks = 32;
    let cycles = 20;

    // Sequential preprocessing: meshes + RSB partitions of every level.
    let spec = BumpSpec {
        nx: 24,
        ny: 9,
        nz: 7,
        jitter: 0.12,
        ..BumpSpec::default()
    };
    let seq = MeshSequence::bump_sequence(&spec, 3);
    println!(
        "levels: {:?} vertices over {nranks} ranks",
        seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>()
    );
    let t0 = std::time::Instant::now();
    let setup = DistSetup::new(seq, nranks, 40, 7);
    println!(
        "RSB partitioning: {:.2}s (the §2.4 bottleneck)",
        t0.elapsed().as_secs_f64()
    );
    for (l, pm) in setup.pms.iter().enumerate() {
        let q = PartitionQuality::compute(&pm.owner, nranks, &setup.seq.meshes[l].edges);
        println!(
            "  level {l}: cut {:.1}% of edges, imbalance {:.2}, {} total ghosts",
            100.0 * q.cut_fraction,
            q.max_imbalance,
            pm.total_ghosts()
        );
    }

    // SPMD solve on the simulated machine.
    let cfg = SolverConfig {
        mach: 0.675,
        ..SolverConfig::default()
    };
    let t1 = std::time::Instant::now();
    let result = run_distributed(
        &setup,
        cfg,
        Strategy::VCycle,
        cycles,
        DistOptions::default(),
    );
    println!(
        "\n{cycles} V-cycles on {nranks} simulated ranks in {:.2}s host time",
        t1.elapsed().as_secs_f64()
    );
    println!(
        "residual {:.3e} -> {:.3e}",
        result.history()[0],
        result.history().last().unwrap()
    );

    // Price the run like Table 2.
    let model = CostModel::delta_i860();
    let b = model.evaluate(&result.cycle_counters());
    println!("\nmodeled Delta cost (per {} cycles):", cycles);
    println!(
        "  communication {:.2}s  computation {:.2}s  total {:.2}s",
        b.comm_seconds, b.comp_seconds, b.total_seconds
    );
    println!(
        "  machine rate {:.1} MFlops, comm/comp {:.2}",
        b.mflops,
        b.comm_to_comp()
    );
    println!(
        "  inter-grid transfer share of communication: {:.1}%",
        100.0 * b.class(CommClass::Transfer) / b.comm_seconds
    );
}
