//! PARTI runtime costs: the inspector (`localize`), the gather/scatter
//! executors, and the §4.3 optimizations (incremental schedules and
//! message aggregation) measured as moved-bytes/messages trade-offs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eul3d_delta::{run_spmd, CommClass};
use eul3d_parti::{localize, GhostRegistry, Schedule, Translation};

const NRANKS: usize = 8;
const OWNED: usize = 512;

fn block_translation() -> Translation {
    let parts: Vec<u32> = (0..NRANKS * OWNED).map(|g| (g / OWNED) as u32).collect();
    Translation::from_parts(&parts, NRANKS)
}

/// Each rank needs the last 64 entries of its left neighbour.
fn required(id: usize) -> (Vec<u32>, Vec<u32>) {
    let prev = (id + NRANKS - 1) % NRANKS;
    let globals: Vec<u32> = (0..64)
        .map(|k| (prev * OWNED + OWNED - 64 + k) as u32)
        .collect();
    let slots: Vec<u32> = (0..64).map(|k| (OWNED + k) as u32).collect();
    (globals, slots)
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("parti");
    group.sample_size(10);

    group.bench_function("localize_8_ranks", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let trans = block_translation();
                let (g, s) = required(r.id);
                black_box(localize(r, &trans, &g, &s, 100, CommClass::Halo).nghosts())
            })
        });
    });

    group.bench_function("gather_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let trans = block_translation();
                let (g, s) = required(r.id);
                let sched = localize(r, &trans, &g, &s, 100, CommClass::Halo);
                let mut data = vec![r.id as f64; (OWNED + 64) * 5];
                for _ in 0..100 {
                    sched.gather(r, &mut data, 5);
                }
                black_box(data[OWNED * 5])
            })
        });
    });

    group.bench_function("scatter_add_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let trans = block_translation();
                let (g, s) = required(r.id);
                let sched = localize(r, &trans, &g, &s, 100, CommClass::Halo);
                let mut data = vec![1.0; (OWNED + 64) * 5];
                for _ in 0..100 {
                    sched.scatter_add(r, &mut data, 5);
                }
                black_box(data[0])
            })
        });
    });

    group.finish();

    // The §4.3 numbers (not timing): incremental schedules remove
    // duplicate fetches; merged schedules halve message counts.
    let run = run_spmd(NRANKS, |r| {
        let trans = block_translation();
        let (g, s) = required(r.id);
        let mut reg = GhostRegistry::new();
        let (g1, s1) = reg.filter_new(&g, &s);
        let full1 = localize(r, &trans, &g1, &s1, 200, CommClass::Halo);
        // A second loop needing the same data plus 16 new entries.
        let prev = (r.id + NRANKS - 1) % NRANKS;
        let mut g2 = g.clone();
        let mut s2 = s.clone();
        for k in 0..16 {
            g2.push((prev * OWNED + k) as u32);
            s2.push((OWNED + 64 + k) as u32);
        }
        let (gi, si) = reg.filter_new(&g2, &s2);
        let incr = localize(r, &trans, &gi, &si, 300, CommClass::Halo);
        let merged = Schedule::merge(&[&full1, &incr], 400, CommClass::Halo);
        (
            full1.nghosts(),
            incr.nghosts(),
            merged.nghosts(),
            merged.recvs.len(),
        )
    });
    let (full, incr, merged, msgs) = run.results[0];
    eprintln!(
        "incremental schedules: first fetch {full} ghosts, second loop adds only {incr} \
         (vs {} duplicated); merged executor: {merged} ghosts in {msgs} message(s)/peer",
        full + 16
    );
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
