//! The per-rank SPMD context: typed sends/receives, barriers, and
//! deterministic collectives.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::panic_any;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use eul3d_obs as obs;

use crate::cost::CostModel;
use crate::fault::{FaultAction, FaultCause, FaultPlan, FaultSignal, FaultState};
use crate::msg::{checksum, CommClass, Message, Payload, RankCounters};
use crate::pool::CommBuffers;
use crate::shm::{Window, WindowRegistry};

/// Largest-factor-pair 2-D mesh factorization: returns `(rows, cols)`
/// with `rows * cols == n`, `rows <= cols`, and `rows` the largest
/// divisor of `n` not exceeding `sqrt(n)` — the most nearly square
/// exact grid (the Delta itself was a 16×32 mesh of i860s). Every rank
/// id in `0..n` maps to a valid coordinate `(id / cols, id % cols)`:
/// unlike a `ceil(sqrt(n))` grid there are no holes, so hop distances
/// are well defined and symmetric for every pair.
pub fn mesh_dims(n: usize) -> (usize, usize) {
    let n = n.max(1);
    let mut rows = 1;
    let mut f = 1;
    while f * f <= n {
        if n.is_multiple_of(f) {
            rows = f;
        }
        f += 1;
    }
    (rows, n / rows)
}

/// Manhattan hop distance between two rank ids on the simulated Delta's
/// 2-D mesh of `nranks` nodes — the same layout [`Rank::hops_to`]
/// charges message costs on. Exposed as a free function so preprocessing
/// (the topology-aware partition mapper) can query the machine model
/// without constructing ranks.
pub fn mesh_hops(a: usize, b: usize, nranks: usize) -> u64 {
    let (_rows, cols) = mesh_dims(nranks);
    let (r1, c1) = (a / cols, a % cols);
    let (r2, c2) = (b / cols, b % cols);
    (r1.abs_diff(r2) + c1.abs_diff(c2)) as u64
}

/// Checked rank-id narrowing for wire/trace fields. Infallible once
/// [`crate::machine::check_nranks`] has admitted the run (the cap is far
/// below `u32::MAX`); kept checked so a future cap change cannot
/// silently truncate.
pub(crate) fn rid(r: usize) -> u32 {
    u32::try_from(r).unwrap_or_else(|_| unreachable!("rank id {r} exceeds u32"))
}

/// Reserved tag space for collectives; user tags must stay below this.
pub const COLLECTIVE_TAG_BASE: u32 = 0xF000_0000;

/// Tag of the poison message a panicking rank broadcasts so peers blocked
/// in a receive abort instead of deadlocking. Collective tags are masked
/// to never reach it.
pub(crate) const POISON_TAG: u32 = u32::MAX;

/// One rank's handle onto the simulated machine. Passed by the SPMD
/// driver to the rank body; all communication goes through it.
pub struct Rank {
    pub id: usize,
    pub nranks: usize,
    rx: Receiver<Message>,
    txs: Vec<Sender<Message>>,
    /// Out-of-order receive buffer: messages that arrived before anyone
    /// asked for them, keyed by `(src, tag)`.
    stash: HashMap<(usize, u32), VecDeque<Payload>>,
    /// Messages from a *future* epoch, held intact until this rank takes
    /// its own (planned) epoch bump. Only planned migrations produce
    /// them: a peer that reached the agreed boundary first may start its
    /// next-epoch rebuild before this rank has finished the old epoch's
    /// last receives. Fault epochs never land here — their `Abort`
    /// precedes any new-epoch data on the FIFO channel and sweeps this
    /// rank forward first.
    future: VecDeque<Message>,
    /// Held messages re-queued by [`Rank::advance_epoch`]; drained ahead
    /// of the wire by the receive loop.
    replay: VecDeque<Message>,
    barrier: Arc<Barrier>,
    /// Accounting; read back by the driver after the run.
    pub counters: RankCounters,
    /// Monotonic counter for internal collective tags.
    collective_seq: u32,
    /// Columns of the (nearly square) 2-D mesh the ranks are mapped
    /// onto, row-major — used only for hop accounting.
    mesh_cols: usize,
    /// Reusable communication pack buffers (see [`crate::pool`]).
    pool: CommBuffers,
    /// Tag ranges claimed by schedules on this rank, for collision
    /// detection at build time.
    reserved_tags: Vec<(u32, u32)>,
    /// Streams `(dst, tag)` with a lent pack buffer awaiting return
    /// (see [`Rank::take_pack_f64`]).
    outstanding: HashSet<(usize, u32)>,
    /// Every rank's receive endpoint (crossbeam receivers are cloneable),
    /// so a surviving node can adopt a dead rank's mailbox during
    /// recovery. Also keeps channels connected after a rank thread exits.
    rxs_all: Arc<Vec<Receiver<Message>>>,
    /// Current recovery epoch; 0 until the first failure. Stamped on
    /// every outgoing data message; older epochs are discarded on
    /// receive.
    epoch: u32,
    /// Next sequence number per outgoing directed stream `(dst, tag)`,
    /// reset each epoch. Collective tags share one stream per peer.
    send_seq: HashMap<(usize, u32), u64>,
    /// Next expected sequence number per incoming stream `(src, tag)`.
    recv_seq: HashMap<(usize, u32), u64>,
    /// Ranks known to have died (physically — their partitions live on
    /// as adopted virtual ranks after recovery).
    dead: Vec<bool>,
    /// Fault-plan evaluation state; `None` on fault-free runs.
    faults: Option<FaultState>,
    /// Bounded-receive window; armed only when a fault plan is
    /// installed, so fault-free runs keep the zero-overhead blocking
    /// receive.
    recv_timeout: Option<Duration>,
    /// Machine constants used to price this rank's traffic on the
    /// modeled clock (the pluggable `CommCost` seam — the hybrid backend
    /// keeps charging this model while running on real threads).
    cost: CostModel,
    /// Shared-memory window registry for the hybrid backend; `None` on
    /// channel-only runs.
    windows: Option<Arc<WindowRegistry>>,
    /// Per-rank cache of window streams so the steady state never takes
    /// the registry lock.
    window_cache: HashMap<(usize, usize, u32), Arc<Window>>,
}

impl Rank {
    pub(crate) fn new(
        id: usize,
        nranks: usize,
        rx: Receiver<Message>,
        txs: Vec<Sender<Message>>,
        barrier: Arc<Barrier>,
        rxs_all: Arc<Vec<Receiver<Message>>>,
    ) -> Rank {
        let (_, cols) = mesh_dims(nranks);
        Rank {
            id,
            nranks,
            rx,
            txs,
            stash: HashMap::new(),
            future: VecDeque::new(),
            replay: VecDeque::new(),
            barrier,
            counters: RankCounters::default(),
            collective_seq: 0,
            mesh_cols: cols,
            pool: CommBuffers::new(),
            reserved_tags: Vec::new(),
            outstanding: HashSet::new(),
            rxs_all,
            epoch: 0,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            dead: vec![false; nranks],
            faults: None,
            recv_timeout: None,
            cost: CostModel::delta_i860(),
            windows: None,
            window_cache: HashMap::new(),
        }
    }

    /// Replace the cost model pricing this rank's modeled wire time.
    pub fn set_cost_model(&mut self, m: CostModel) {
        self.cost = m;
    }

    /// The cost model pricing this rank's modeled wire time.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Attach the shared-memory window registry (hybrid backend). Halo
    /// schedules on a windowed rank move their per-cycle streams onto
    /// in-place shared-memory publishes; everything else stays on the
    /// channels.
    pub fn install_windows(&mut self, reg: Arc<WindowRegistry>) {
        assert_eq!(
            reg.nranks(),
            self.nranks,
            "window registry sized for a different machine"
        );
        self.windows = Some(reg);
    }

    /// Does this rank exchange halos through shared-memory windows?
    pub fn has_windows(&self) -> bool {
        self.windows.is_some()
    }

    /// The cached window for directed stream `(src, dst, tag)`.
    fn window(&mut self, src: usize, dst: usize, tag: u32) -> Arc<Window> {
        let reg = match self.windows.as_ref() {
            Some(r) => r,
            None => panic!("rank {}: window traffic without a registry", self.id),
        };
        self.window_cache
            .entry((src, dst, tag))
            .or_insert_with(|| reg.stream(src, dst, tag))
            .clone()
    }

    /// Publish a packed buffer to `dst` on this stream's shared-memory
    /// window; `fill` packs into the window buffer in place (no message
    /// copy). Charged exactly like the channel send path — same
    /// counters, same trace events, same modeled wire time — so a hybrid
    /// run reports the identical simulated-Delta cost.
    pub fn window_publish_f64<F>(&mut self, dst: usize, tag: u32, class: CommClass, fill: F)
    where
        F: FnOnce(&mut Vec<f64>),
    {
        assert!(dst < self.nranks, "publish to rank {dst} out of range");
        assert_ne!(dst, self.id, "self-publish is a schedule bug");
        let win = self.window(self.id, dst, tag);
        let len = match win.publish_with(fill) {
            Ok(len) => len,
            // A wedge is not recoverable inside the SPMD region: unwind
            // with the typed error so the driver boundary surfaces it as
            // a DeltaError instead of a panic message.
            Err(w) => std::panic::panic_any(crate::DeltaError::WindowWedged {
                src: self.id,
                dst,
                tag,
                side: w.side,
                epoch: w.epoch,
                timeout_ms: w.timeout_ms,
            }),
        };
        let bytes = 8 * len as u64; // Payload::F64 wire accounting
        let hops = self.hops_to(dst);
        self.counters.record_send(class, bytes);
        self.counters.record_hops(hops);
        obs::emit(obs::Event::MsgSend {
            peer: rid(dst),
            tag,
            bytes,
        });
        obs::advance_ns(self.cost.send_ns(bytes, hops));
    }

    /// Consume the next epoch published by `src` on this stream's
    /// window, reading it in place. Receives are sender-priced (as on
    /// the channel path), so only the event is recorded.
    pub fn window_consume_f64<R, F>(&mut self, src: usize, tag: u32, read: F) -> R
    where
        F: FnOnce(&[f64]) -> R,
    {
        assert!(src < self.nranks, "consume from rank {src} out of range");
        let win = self.window(src, self.id, tag);
        let (bytes, r) = match win.consume_with(|buf| (8 * buf.len() as u64, read(buf))) {
            Ok(pair) => pair,
            Err(w) => std::panic::panic_any(crate::DeltaError::WindowWedged {
                src,
                dst: self.id,
                tag,
                side: w.side,
                epoch: w.epoch,
                timeout_ms: w.timeout_ms,
            }),
        };
        obs::emit(obs::Event::MsgRecv {
            peer: rid(src),
            tag,
            bytes,
        });
        r
    }

    /// Install a fault plan on this rank (SPMD: every rank installs the
    /// same shared plan and evaluates only the entries it originates).
    /// `timeout` arms the bounded receive used to detect silent message
    /// loss; it is ignored for an empty plan so fault-free runs stay on
    /// the blocking fast path, and ignored unless the plan can actually
    /// drop a message ([`FaultPlan::may_drop`]) — a wall-clock timeout
    /// is only sound when armed against a modeled drop, never against a
    /// merely-descheduled peer on real preemptible threads.
    pub fn install_faults(&mut self, plan: Arc<FaultPlan>, timeout: Option<Duration>) {
        if plan.is_empty() {
            return;
        }
        silence_fault_signal_panics();
        self.recv_timeout = if plan.may_drop() { timeout } else { None };
        self.faults = Some(FaultState::new(plan));
    }

    /// Announce the solver cycle to the fault layer (kills and
    /// cycle-gated message faults key off it).
    pub fn set_fault_cycle(&mut self, cycle: u64) {
        if let Some(f) = self.faults.as_mut() {
            f.set_cycle(cycle);
        }
    }

    /// Current recovery epoch (0 = no failure yet).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Ranks known dead, ascending.
    pub fn dead_ranks(&self) -> Vec<u32> {
        (0..self.nranks)
            .filter(|&r| self.dead[r])
            .map(rid)
            .collect()
    }

    /// Is rank `r` still alive (as a physical node)?
    pub fn live(&self, r: usize) -> bool {
        !self.dead[r]
    }

    /// Take a pack buffer for a *repeating* point-to-point stream
    /// `(dst, tag)` — the schedule-executor protocol. If a buffer lent on
    /// this stream is still outstanding, block until the receiver returns
    /// it (it does so right after unpacking, so per-pair FIFO order makes
    /// data and returned buffers alternate strictly on the stream) and
    /// recycle it; then take from the pool. After the first execution the
    /// same buffer ping-pongs forever: zero steady-state allocation even
    /// for one-directional streams. Models PARTI's persistent send
    /// buffers; pair with [`Rank::send_packed_f64`] /
    /// [`Rank::return_packed_f64`].
    pub fn take_pack_f64(&mut self, dst: usize, tag: u32, cap: usize) -> Vec<f64> {
        if self.outstanding.remove(&(dst, tag)) {
            let returned = self.recv_payload(dst, tag).into_f64();
            self.pool.recycle_f64(returned);
        }
        self.take_f64(cap)
    }

    /// Send a buffer obtained from [`Rank::take_pack_f64`] on its stream,
    /// marking it lent until the receiver returns it.
    pub fn send_packed_f64(&mut self, dst: usize, tag: u32, data: Vec<f64>, class: CommClass) {
        self.outstanding.insert((dst, tag));
        self.send_f64(dst, tag, data, class);
    }

    /// Return a consumed packed buffer to the rank that sent it, on the
    /// same stream. Pure pool bookkeeping (the real machine reuses a
    /// persistent send buffer): not charged as traffic, but still
    /// sequence-stamped — it travels the same wire, so the fault layer
    /// can target it and the receiver's gap detection must account
    /// for it.
    pub fn return_packed_f64(&mut self, src: usize, tag: u32, mut buf: Vec<f64>) {
        buf.clear();
        self.post(src, tag, Payload::F64(buf));
    }

    /// Take an empty pooled `f64` pack buffer with capacity ≥ `cap`. A
    /// pool miss allocates fresh storage and is charged to the rank's
    /// allocation counters; a warmed-up exchange pattern never misses.
    pub fn take_f64(&mut self, cap: usize) -> Vec<f64> {
        let (buf, fresh) = self.pool.take_f64(cap);
        self.note_alloc(fresh);
        buf
    }

    /// Recycle a consumed `f64` buffer (typically a received payload)
    /// back into this rank's pool.
    pub fn recycle_f64(&mut self, v: Vec<f64>) {
        self.pool.recycle_f64(v);
    }

    /// Take an empty pooled `u32` pack buffer with capacity ≥ `cap`.
    pub fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        let (buf, fresh) = self.pool.take_u32(cap);
        self.note_alloc(fresh);
        buf
    }

    /// Recycle a consumed `u32` buffer back into this rank's pool.
    pub fn recycle_u32(&mut self, v: Vec<u32>) {
        self.pool.recycle_u32(v);
    }

    fn note_alloc(&mut self, fresh_bytes: u64) {
        if fresh_bytes > 0 {
            self.counters.comm_allocs += 1;
            self.counters.comm_alloc_bytes += fresh_bytes;
            // Traced only before the first recovery epoch: after a
            // rollback, which buffers the pool recycles depends on the
            // set of messages in flight at the (thread-timing-dependent)
            // abort point, so post-recovery pool misses would break the
            // bit-identical-trace guarantee. The counters above always
            // accumulate regardless.
            if self.epoch() == 0 {
                obs::emit(obs::Event::PoolAlloc { bytes: fresh_bytes });
            }
        }
    }

    /// Claim the half-open tag range `[lo, hi)` for a schedule. Panics if
    /// it overlaps a range already reserved on this rank — gather and
    /// scatter streams of one schedule use `tag` and `tag + 1`, so two
    /// schedules whose tags are less than 2 apart would silently corrupt
    /// each other's traffic.
    pub fn reserve_tags(&mut self, lo: u32, hi: u32) {
        assert!(lo < hi, "empty tag range [{lo}, {hi})");
        assert!(
            hi <= COLLECTIVE_TAG_BASE,
            "tag range [{lo}, {hi}) collides with collective space"
        );
        for &(l, h) in &self.reserved_tags {
            assert!(
                hi <= l || h <= lo,
                "tag range [{lo}, {hi}) collides with reserved [{l}, {h}): \
                 schedules sharing a rank need tags at least 2 apart"
            );
        }
        self.reserved_tags.push((lo, hi));
    }

    /// Manhattan hop distance to `dst` on the 2-D rank mesh.
    pub fn hops_to(&self, dst: usize) -> u64 {
        let (r1, c1) = (self.id / self.mesh_cols, self.id % self.mesh_cols);
        let (r2, c2) = (dst / self.mesh_cols, dst % self.mesh_cols);
        (r1.abs_diff(r2) + c1.abs_diff(c2)) as u64
    }

    /// Report flops performed by a local numerical kernel.
    #[inline]
    pub fn add_flops(&mut self, n: f64) {
        self.counters.add_flops(n);
    }

    /// Directed streams share one sequence counter per `(peer, tag)`;
    /// collective tags are rotated per operation but consumed in program
    /// order per peer pair, so they fold onto a single per-peer stream —
    /// keeping the sequence maps bounded by the communication pattern,
    /// not the cycle count.
    fn stream_key(peer: usize, tag: u32) -> (usize, u32) {
        if tag >= COLLECTIVE_TAG_BASE {
            (peer, COLLECTIVE_TAG_BASE)
        } else {
            (peer, tag)
        }
    }

    /// The single exit point for every message this rank originates
    /// (charged sends, uncharged buffer returns, collectives): stamps the
    /// recovery epoch, the stream sequence number, and the payload
    /// checksum, then consults the fault plan — which may drop,
    /// duplicate, corrupt, or delay the message on the wire.
    fn post(&mut self, dst: usize, tag: u32, payload: Payload) {
        let seq = {
            let s = self.send_seq.entry(Self::stream_key(dst, tag)).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        let crc = checksum(&payload);
        let action = match self.faults.as_mut() {
            Some(f) => f.action_for(self.id, dst, tag),
            None => None,
        };
        let mut payload = payload;
        match action {
            Some(FaultAction::Drop) => return, // seq consumed: receiver sees the gap
            Some(FaultAction::Duplicate) => {
                let dup = Message {
                    src: self.id,
                    tag,
                    epoch: self.epoch,
                    seq,
                    crc,
                    payload: payload.clone(),
                };
                if self.txs[dst].send(dup).is_err() {
                    unreachable!("receiver hung up");
                }
            }
            Some(FaultAction::Corrupt) => {
                // Flip one payload bit *after* the checksum was taken.
                match &mut payload {
                    Payload::F64(v) if !v.is_empty() => {
                        v[0] = f64::from_bits(v[0].to_bits() ^ 1);
                    }
                    Payload::U32(v) if !v.is_empty() => v[0] ^= 1,
                    _ => {} // nothing to corrupt: the fault misses
                }
            }
            Some(FaultAction::Delay { ticks }) => self.counters.fault_ticks += ticks,
            None => {}
        }
        let sent = self.txs[dst].send(Message {
            src: self.id,
            tag,
            epoch: self.epoch,
            seq,
            crc,
            payload,
        });
        if sent.is_err() {
            unreachable!("receiver hung up");
        }
    }

    /// Count one communication operation against the fault plan; dies on
    /// the spot (unwinding with [`FaultSignal::Killed`]) if a kill fires.
    fn tick_fault_op(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            if f.tick_op(self.id) {
                panic_any(FaultSignal::Killed);
            }
        }
    }

    fn send_payload(&mut self, dst: usize, tag: u32, payload: Payload, class: CommClass) {
        assert!(dst < self.nranks, "send to rank {dst} out of range");
        assert_ne!(
            dst, self.id,
            "self-sends are a bug in schedule construction"
        );
        self.tick_fault_op();
        let bytes = payload.nbytes();
        let hops = self.hops_to(dst);
        self.counters.record_send(class, bytes);
        self.counters.record_hops(hops);
        // The sender pays the modeled wire time (latency + bytes/bw +
        // hops), mirroring the cost model, and the event is stamped
        // before the clock advances so the instant sits at the send's
        // start.
        obs::emit(obs::Event::MsgSend {
            peer: rid(dst),
            tag,
            bytes,
        });
        obs::advance_ns(self.cost.send_ns(bytes, hops));
        self.post(dst, tag, payload);
    }

    /// Send a float buffer to `dst` under `tag`.
    pub fn send_f64(&mut self, dst: usize, tag: u32, data: Vec<f64>, class: CommClass) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag collides with collective space"
        );
        self.send_payload(dst, tag, Payload::F64(data), class);
    }

    /// Send an index buffer to `dst` under `tag`.
    pub fn send_u32(&mut self, dst: usize, tag: u32, data: Vec<u32>, class: CommClass) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag collides with collective space"
        );
        self.send_payload(dst, tag, Payload::U32(data), class);
    }

    /// Unwind into recovery: epoch `target`, current dead-rank view.
    fn raise_recovery(&mut self, target: u32, cause: FaultCause) -> ! {
        panic_any(FaultSignal::Recover {
            epoch: target,
            dead: self.dead_ranks(),
            cause,
        })
    }

    /// Recycle a received payload's storage into this rank's pool
    /// (control payloads carry no buffers).
    fn recycle_payload(&mut self, p: Payload) {
        match p {
            Payload::F64(v) => self.pool.recycle_f64(v),
            Payload::U32(v) => self.pool.recycle_u32(v),
            _ => {}
        }
    }

    /// Inspect one message off the wire. Returns the accepted
    /// `(src, tag, payload)` or `None` if the message was absorbed
    /// (stale epoch, duplicate, redundant control). Unwinds with a
    /// [`FaultSignal`] when the message reveals a failure: a peer's death
    /// or abort announcement, a sequence gap (lost message), or a
    /// checksum mismatch (corrupted message).
    fn sieve(&mut self, m: Message) -> Option<(usize, u32, Payload)> {
        if m.tag == POISON_TAG {
            panic!(
                "rank {} panicked; rank {} aborting blocked receive",
                m.src, self.id
            );
        }
        match m.payload {
            Payload::Dead { epoch: e } => {
                if !self.dead[m.src] {
                    self.dead[m.src] = true;
                    self.raise_recovery(e.max(self.epoch + 1), FaultCause::PeerDeath);
                }
                None
            }
            Payload::Abort { epoch: e, dead } => {
                // Merge the peer's dead-rank view; if it taught us
                // anything the agreed epoch must move past ours so every
                // rank rebuilds against the same survivor set.
                let mut news = false;
                for d in dead {
                    if !self.dead[d as usize] {
                        self.dead[d as usize] = true;
                        news = true;
                    }
                }
                let target = if news { (self.epoch + 1).max(e) } else { e };
                if target > self.epoch {
                    self.raise_recovery(target, FaultCause::PeerAbort);
                }
                None
            }
            payload => {
                if m.epoch < self.epoch {
                    // Pre-recovery traffic still in flight: drop it,
                    // keeping its buffer.
                    self.counters.stale_discards += 1;
                    self.recycle_payload(payload);
                    return None;
                }
                if m.epoch > self.epoch {
                    // A peer took the planned epoch bump first and its
                    // rebuild traffic overtook our old epoch's tail.
                    // Hold the message whole (sequence numbers belong to
                    // the new epoch's reset streams) until our own
                    // `advance_epoch` replays it. A *fault* epoch can't
                    // land here: its abort precedes any data per-channel
                    // and sweeps us forward on sight.
                    self.future.push_back(Message {
                        src: m.src,
                        tag: m.tag,
                        epoch: m.epoch,
                        seq: m.seq,
                        crc: m.crc,
                        payload,
                    });
                    return None;
                }
                let key = Self::stream_key(m.src, m.tag);
                let want = *self.recv_seq.entry(key).or_insert(0);
                if m.seq < want {
                    // A duplicated message we already consumed.
                    self.counters.dup_discards += 1;
                    self.recycle_payload(payload);
                    return None;
                }
                if m.seq > want {
                    // A message on this stream was lost in flight.
                    self.raise_recovery(self.epoch + 1, FaultCause::Lost);
                }
                self.recv_seq.insert(key, want + 1);
                if checksum(&payload) != m.crc {
                    self.raise_recovery(self.epoch + 1, FaultCause::Corrupt);
                }
                Some((m.src, m.tag, payload))
            }
        }
    }

    fn recv_payload(&mut self, src: usize, tag: u32) -> Payload {
        self.tick_fault_op();
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(p) = q.pop_front() {
                obs::emit(obs::Event::MsgRecv {
                    peer: rid(src),
                    tag,
                    bytes: p.nbytes(),
                });
                return p;
            }
        }
        loop {
            let m = if let Some(m) = self.replay.pop_front() {
                m
            } else {
                match self.recv_timeout {
                    None => match self.rx.recv() {
                        Ok(m) => m,
                        Err(_) => unreachable!("all senders hung up while receiving"),
                    },
                    Some(window) => match self.rx.recv_timeout(window) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => {
                            // Silent loss (or a quiesced network): nothing
                            // arrived within the detection window. Value-safe
                            // even if spurious — recovery rolls back to a
                            // checkpoint either way.
                            self.raise_recovery(self.epoch + 1, FaultCause::Timeout)
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("all senders hung up while receiving")
                        }
                    },
                }
            };
            if let Some((s, t, p)) = self.sieve(m) {
                if s == src && t == tag {
                    // Receives are sender-priced in the cost model, so
                    // the event is recorded without advancing the clock.
                    obs::emit(obs::Event::MsgRecv {
                        peer: rid(src),
                        tag,
                        bytes: p.nbytes(),
                    });
                    return p;
                }
                self.stash.entry((s, t)).or_default().push_back(p);
            }
        }
    }

    /// Notify every peer that this rank is going down (called by the SPMD
    /// driver while unwinding a panic). Best-effort: peers that already
    /// exited are skipped.
    pub(crate) fn poison_peers(&mut self) {
        for dst in 0..self.nranks {
            if dst != self.id {
                let _ = self.txs[dst].send(Message {
                    src: self.id,
                    tag: POISON_TAG,
                    epoch: self.epoch,
                    seq: 0,
                    crc: 0,
                    payload: Payload::Poison,
                });
            }
        }
    }

    /// Announce this rank's (fault-injected) death to every peer. Called
    /// by a recovery-aware driver when the body unwinds with
    /// [`FaultSignal::Killed`]; survivors recover into `epoch() + 1`.
    /// Un-sequenced control traffic: the wire-level death notice of the
    /// machine, not a message the dead program "sends".
    pub fn announce_death(&mut self) {
        self.dead[self.id] = true;
        let e = self.epoch + 1;
        for dst in 0..self.nranks {
            if dst != self.id {
                let _ = self.txs[dst].send(Message {
                    src: self.id,
                    tag: 0,
                    epoch: e,
                    seq: 0,
                    crc: 0,
                    payload: Payload::Dead { epoch: e },
                });
            }
        }
    }

    /// Enter recovery epoch `epoch`: discard all buffered pre-recovery
    /// traffic (recycling its storage), reset every stream's sequence
    /// numbers and the collective counter, forget lent pack buffers, and
    /// broadcast an `Abort` so peers still computing join the epoch
    /// instead of timing out one by one. The caller then rebuilds
    /// schedules and restores state collectively.
    pub fn begin_recovery(&mut self, epoch: u32) {
        assert!(
            epoch > self.epoch,
            "recovery epoch must advance: {} -> {epoch}",
            self.epoch
        );
        // Held planned-migration traffic is at most one epoch ahead of
        // the old epoch; a fault at or past that boundary dooms it (its
        // sender gets swept into the fault epoch and resends), so it is
        // discarded like the stash.
        let future = std::mem::take(&mut self.future);
        for m in future {
            self.recycle_payload(m.payload);
        }
        let replay = std::mem::take(&mut self.replay);
        for m in replay {
            self.recycle_payload(m.payload);
        }
        self.epoch = epoch;
        self.counters.recoveries += 1;
        self.reset_streams();
        let dead = self.dead_ranks();
        for dst in 0..self.nranks {
            if dst != self.id {
                let abort = Payload::Abort {
                    epoch,
                    dead: dead.clone(),
                };
                self.counters
                    .record_send(CommClass::Recovery, abort.nbytes());
                self.counters.record_hops(self.hops_to(dst));
                obs::emit(obs::Event::MsgSend {
                    peer: rid(dst),
                    tag: 0,
                    bytes: abort.nbytes(),
                });
                obs::advance_ns(self.cost.send_ns(abort.nbytes(), self.hops_to(dst)));
                let _ = self.txs[dst].send(Message {
                    src: self.id,
                    tag: 0,
                    epoch,
                    seq: 0,
                    crc: 0,
                    payload: abort,
                });
            }
        }
    }

    /// Silently advance to `epoch` — the planned-migration variant of
    /// [`Rank::begin_recovery`]. Every rank reaches the same committed
    /// boundary by construction and bumps independently, so there is no
    /// `Abort` broadcast (nobody needs sweeping), no recovery count, and
    /// no rollback. Messages a faster peer already sent from the new
    /// epoch were held by the sieve; they are re-queued here for the new
    /// epoch's receives.
    pub fn advance_epoch(&mut self, epoch: u32) {
        assert!(
            epoch > self.epoch,
            "epoch must advance: {} -> {epoch}",
            self.epoch
        );
        self.epoch = epoch;
        self.reset_streams();
        let future = std::mem::take(&mut self.future);
        for m in future {
            assert!(
                m.epoch == epoch,
                "held message from epoch {} replayed into epoch {epoch}",
                m.epoch
            );
            self.replay.push_back(m);
        }
    }

    /// Shared epoch-entry reset: discard all buffered old-epoch traffic
    /// (recycling its storage), reset every stream's sequence numbers and
    /// the collective counter, and forget lent pack buffers.
    fn reset_streams(&mut self) {
        let stash = std::mem::take(&mut self.stash);
        for (_, q) in stash {
            for p in q {
                self.recycle_payload(p);
            }
        }
        self.send_seq.clear();
        self.recv_seq.clear();
        self.outstanding.clear();
        self.collective_seq = 0;
    }

    /// Build a fresh [`Rank`] handle that takes over dead rank `vid`'s
    /// mailbox (receivers are cloneable, so the channel survives its
    /// thread). The instance starts in the current epoch with the current
    /// dead-rank view and a fault state that treats everything targeting
    /// `vid` as already consumed — those events happened to the node that
    /// died, not to its replacement. Pool, tag reservations, and stream
    /// counters start empty; the hosting node re-runs schedule
    /// construction for it. Hop accounting keeps `vid`'s mesh position
    /// (the adopted partition's traffic pattern, not the host's).
    pub fn adopt(&self, vid: usize) -> Rank {
        assert!(self.dead[vid], "adopting a live rank");
        assert_ne!(vid, self.id, "a rank cannot adopt itself");
        let mut r = Rank::new(
            vid,
            self.nranks,
            self.rxs_all[vid].clone(),
            self.txs.clone(),
            self.barrier.clone(),
            self.rxs_all.clone(),
        );
        r.epoch = self.epoch;
        r.dead = self.dead.clone();
        r.recv_timeout = self.recv_timeout;
        r.cost = self.cost;
        // Windows are deliberately not inherited: adoption only happens
        // under a fault plan, and fault-injected runs stay entirely on
        // the modeled channels.
        r.faults = self
            .faults
            .as_ref()
            .map(|f| FaultState::adopted(f.plan(), vid));
        r
    }

    /// Blocking receive of a float buffer from `src` under `tag`.
    pub fn recv_f64(&mut self, src: usize, tag: u32) -> Vec<f64> {
        self.recv_payload(src, tag).into_f64()
    }

    /// Blocking receive of an index buffer from `src` under `tag`.
    pub fn recv_u32(&mut self, src: usize, tag: u32) -> Vec<u32> {
        self.recv_payload(src, tag).into_u32()
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        self.counters.syncs += 1;
        self.barrier.wait();
    }

    fn next_collective_tag(&mut self) -> u32 {
        // Wraps within the reserved space (modulo keeps the tag strictly
        // below POISON_TAG); fine because tags are consumed in program
        // order on every rank (deterministic network).
        let t = COLLECTIVE_TAG_BASE + (self.collective_seq % 0x0FFF_FFFF);
        self.collective_seq = self.collective_seq.wrapping_add(1);
        t
    }

    /// Pack `vals` into a pooled buffer and send it as collective traffic.
    fn send_collective(&mut self, dst: usize, tag: u32, vals: &[f64]) {
        let mut buf = self.take_f64(vals.len());
        buf.extend_from_slice(vals);
        self.send_payload(dst, tag, Payload::F64(buf), CommClass::Collective);
    }

    /// Deterministic element-wise sum across ranks, in place: gather to
    /// rank 0 in rank order, reduce there, broadcast back. Mirrors the
    /// paper's residual-monitoring global sums. Allocation-free once the
    /// rank's buffer pool is warm.
    pub fn all_reduce_sum_in_place(&mut self, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == 0 {
            for src in 1..self.nranks {
                let part = self.recv_payload(src, tag).into_f64();
                assert_eq!(part.len(), vals.len(), "all_reduce length mismatch");
                for (a, p) in vals.iter_mut().zip(&part) {
                    *a += p;
                }
                self.recycle_f64(part);
            }
            for dst in 1..self.nranks {
                self.send_collective(dst, tag, vals);
            }
        } else {
            self.send_collective(0, tag, vals);
            let acc = self.recv_payload(0, tag).into_f64();
            vals.copy_from_slice(&acc);
            self.recycle_f64(acc);
        }
    }

    /// Allocating convenience wrapper over [`Rank::all_reduce_sum_in_place`].
    pub fn all_reduce_sum(&mut self, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.all_reduce_sum_in_place(&mut out);
        out
    }

    /// Broadcast from `root` into `vals` on every rank, in place.
    /// Allocation-free once the rank's buffer pool is warm.
    pub fn broadcast_in_place(&mut self, root: usize, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == root {
            for dst in 0..self.nranks {
                if dst != root {
                    self.send_collective(dst, tag, vals);
                }
            }
        } else {
            let got = self.recv_payload(root, tag).into_f64();
            assert_eq!(got.len(), vals.len(), "broadcast length mismatch");
            vals.copy_from_slice(&got);
            self.recycle_f64(got);
        }
    }

    /// Allocating convenience wrapper over [`Rank::broadcast_in_place`].
    pub fn broadcast(&mut self, root: usize, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.broadcast_in_place(root, &mut out);
        out
    }

    /// Gather every rank's buffer to `root`, concatenated in rank order
    /// into `out` (cleared first; non-root ranks get it back empty).
    /// Allocation-free once pools and `out`'s capacity are warm.
    pub fn gather_to_root_into(&mut self, root: usize, vals: &[f64], out: &mut Vec<f64>) {
        let tag = self.next_collective_tag();
        out.clear();
        if self.id == root {
            for src in 0..self.nranks {
                if src == root {
                    out.extend_from_slice(vals);
                } else {
                    let part = self.recv_payload(src, tag).into_f64();
                    out.extend_from_slice(&part);
                    self.recycle_f64(part);
                }
            }
        } else {
            self.send_collective(root, tag, vals);
        }
    }

    /// Allocating convenience wrapper over [`Rank::gather_to_root_into`].
    pub fn gather_to_root(&mut self, root: usize, vals: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.gather_to_root_into(root, vals, &mut out);
        out
    }

    /// Deterministic element-wise max across ranks, in place (same
    /// pattern as [`Rank::all_reduce_sum_in_place`]).
    pub fn all_reduce_max_in_place(&mut self, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == 0 {
            for src in 1..self.nranks {
                let part = self.recv_payload(src, tag).into_f64();
                assert_eq!(part.len(), vals.len(), "all_reduce_max length mismatch");
                for (a, p) in vals.iter_mut().zip(&part) {
                    *a = a.max(*p);
                }
                self.recycle_f64(part);
            }
            for dst in 1..self.nranks {
                self.send_collective(dst, tag, vals);
            }
        } else {
            self.send_collective(0, tag, vals);
            let acc = self.recv_payload(0, tag).into_f64();
            vals.copy_from_slice(&acc);
            self.recycle_f64(acc);
        }
    }

    /// Allocating convenience wrapper over [`Rank::all_reduce_max_in_place`].
    pub fn all_reduce_max(&mut self, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.all_reduce_max_in_place(&mut out);
        out
    }
}

/// [`FaultSignal`] unwinds are expected control flow (the recovery driver
/// catches them), not crashes: install a process-wide panic hook — once —
/// that stays silent for them and defers every real panic to the
/// previous hook. [`Rank::new`] installs it automatically; callers that
/// unwind via [`FaultSignal`] *without* building ranks (job-scoped
/// cancellation in the service layer) call it directly.
pub fn silence_fault_signal_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultSignal>().is_none() {
                prev(info);
            }
        }));
    });
}
