//! The FAS multigrid solver on *unrelated* meshes (§2.3): time stepping
//! on each level, residual collection to the coarse grids through the
//! transpose of the interpolation operator, the forcing function
//! `P = R' − R(w')`, and correction prolongation — in V or W cycles.

use eul3d_mesh::MeshSequence;
use eul3d_obs as obs;

use crate::config::SolverConfig;
use crate::counters::{PhaseCounters, FLOPS_GUARD_VERT, FLOPS_TRANSFER_VERT};
use crate::error::SolverError;
use crate::executor::{count_vertex_loop, Phase, SerialExecutor};
use crate::gas::NVAR;
use crate::health::{
    check_state, GuardConfig, GuardOutcome, GuardState, HealthMonitor, RetryEvent,
};
use crate::level::{eval_total_residual, time_step, LevelState};
use crate::shared::SharedExecutor;

/// Solution strategy, as compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fine grid only.
    SingleGrid,
    /// One time step per level per cycle.
    VCycle,
    /// Recursive cycle weighting the coarse grids more heavily.
    WCycle,
}

impl Strategy {
    /// Recursion multiplicity γ (coarse-level visits per fine visit).
    pub fn gamma(self) -> usize {
        match self {
            Strategy::WCycle => 2,
            _ => 1,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Strategy::SingleGrid => "single grid",
            Strategy::VCycle => "V-cycle",
            Strategy::WCycle => "W-cycle",
        }
    }
}

/// Events of one multigrid cycle, in execution order — the Figure-1
/// schedule ("Euler time steps are depicted by E, interpolations by I").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleEvent {
    /// An Euler time step on a level (E).
    Step(usize),
    /// Restriction of state + residuals from `from` to `from + 1`.
    Restrict(usize),
    /// Interpolation of corrections from `to + 1` back to `to` (I).
    Prolong(usize),
}

/// The multigrid EUL3D solver.
pub struct MultigridSolver {
    pub seq: MeshSequence,
    pub cfg: SolverConfig,
    pub strategy: Strategy,
    pub levels: Vec<LevelState>,
    pub counter: PhaseCounters,
    /// When set, every cycle appends its event schedule here.
    pub record_events: bool,
    pub events: Vec<CycleEvent>,
    /// When present, time steps run through the coloured shared-memory
    /// executors (one per level) — the paper's actual C90 configuration,
    /// which ran the full multigrid cycle under autotasking (§3.2).
    /// Inter-grid transfers stay serial (they are a small fraction of
    /// the work, and the paper's tables fold them into the cycle).
    shared: Option<Vec<SharedExecutor>>,
}

impl MultigridSolver {
    pub fn new(seq: MeshSequence, cfg: SolverConfig, strategy: Strategy) -> MultigridSolver {
        let levels = seq
            .meshes
            .iter()
            .map(|m| LevelState::new(m, &cfg))
            .collect();
        MultigridSolver {
            seq,
            cfg,
            strategy,
            levels,
            counter: PhaseCounters::default(),
            record_events: false,
            events: Vec::new(),
            shared: None,
        }
    }

    /// Multigrid with every level's edge loops executed through the
    /// coloured shared-memory path on `ncpus` workers. Fails if any
    /// level's edge colouring does not validate.
    pub fn new_shared(
        seq: MeshSequence,
        cfg: SolverConfig,
        strategy: Strategy,
        ncpus: usize,
    ) -> Result<MultigridSolver, String> {
        let execs = seq
            .meshes
            .iter()
            .map(|m| SharedExecutor::new(m, ncpus))
            .collect::<Result<Vec<_>, _>>()?;
        let mut mg = MultigridSolver::new(seq, cfg, strategy);
        mg.shared = Some(execs);
        Ok(mg)
    }

    /// Number of mesh levels.
    pub fn nlevels(&self) -> usize {
        self.seq.levels()
    }

    /// One full cycle of the configured strategy; returns the fine-grid
    /// density-residual norm.
    pub fn cycle(&mut self) -> f64 {
        self.events.clear();
        match self.strategy {
            Strategy::SingleGrid => {
                self.step(0);
            }
            _ => self.recurse(0, self.strategy.gamma()),
        }
        self.levels[0].density_residual_norm(&self.seq.meshes[0].vol)
    }

    /// Run `n` cycles, returning the residual history.
    pub fn solve(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.cycle()).collect()
    }

    /// Run `n` cycles under the solver-health guard: after every cycle
    /// the fine-grid state is scanned for non-finite / non-physical
    /// entries and the monitored residual is checked for divergence. On
    /// a bad verdict the fine state rolls back to the last snapshot, the
    /// CFL backs off by `guard.cfl_backoff`, and the run retries — up to
    /// `guard.max_retries` times, after which the typed error carries
    /// the full retry transcript. After `guard.reramp_after` consecutive
    /// clean cycles the CFL steps back toward the configured target.
    ///
    /// The fine-level `w` is the only state that persists between
    /// cycles (every coarse level is rebuilt from it by restriction), so
    /// one snapshot of it makes rollback exact.
    pub fn solve_guarded(
        &mut self,
        n: usize,
        guard: &GuardConfig,
    ) -> Result<(Vec<f64>, GuardOutcome), SolverError> {
        self.solve_guarded_hooked(n, guard, &mut |_, _| {})
    }

    /// [`MultigridSolver::solve_guarded`] with a per-cycle observer:
    /// `on_cycle(cycle, residual)` fires after each cycle the guard
    /// passes, never for the bad cycle itself; when a later verdict
    /// rolls the run back, the re-run of the replayed cycles reports
    /// again (the hook mirrors what actually executed). The service
    /// layer streams live progress from it and checks job cancellation
    /// inside it — the hook may unwind (e.g. via `FaultSignal`) and the
    /// solver state stays coherent: the cycle it interrupts is already
    /// committed.
    pub fn solve_guarded_hooked(
        &mut self,
        n: usize,
        guard: &GuardConfig,
        on_cycle: &mut dyn FnMut(usize, f64),
    ) -> Result<(Vec<f64>, GuardOutcome), SolverError> {
        guard.validate()?;
        let target_cfl = self.cfg.cfl;
        let mut gs = GuardState::new(target_cfl, guard);
        let mut monitor = HealthMonitor::new(guard);
        let mut history: Vec<f64> = Vec::with_capacity(n);
        let mut snap_w = self.levels[0].w.clone();
        let mut snap_cycle = 0usize;
        while history.len() < n {
            let c = history.len();
            if c.is_multiple_of(guard.snapshot_every) {
                snap_w.copy_from(&self.levels[0].w);
                snap_cycle = c;
            }
            self.cfg.cfl = gs.ctl.current;
            let r = self.cycle();
            let verdict = check_state(self.cfg.gamma, &self.levels[0].w, self.levels[0].n)
                .worse(monitor.check(r));
            count_vertex_loop(
                &mut self.counter,
                Phase::Guard,
                self.levels[0].n,
                FLOPS_GUARD_VERT,
            );
            if verdict.is_bad() {
                obs::emit(obs::Event::GuardVerdict {
                    cycle: c as u64,
                    severity: verdict.severity(),
                });
                if gs.retries_used() >= guard.max_retries {
                    self.cfg.cfl = target_cfl;
                    return Err(SolverError::RetriesExhausted {
                        cycle: c,
                        verdict,
                        transcript: gs.transcript,
                        max_retries: guard.max_retries,
                    });
                }
                let cfl_before = gs.ctl.current;
                gs.ctl.back_off();
                gs.transcript.push(RetryEvent {
                    cycle: c,
                    rollback_to: Some(snap_cycle),
                    verdict,
                    cfl_before,
                    cfl_after: gs.ctl.current,
                });
                self.levels[0].w.copy_from(&snap_w);
                history.truncate(snap_cycle);
                monitor.rebuild(&history);
                continue;
            }
            history.push(r);
            monitor.push(r);
            gs.ctl.on_clean();
            on_cycle(history.len() - 1, r);
        }
        let final_cfl = gs.ctl.current;
        self.cfg.cfl = target_cfl;
        Ok((
            history,
            GuardOutcome {
                transcript: gs.transcript,
                final_cfl,
                target_cfl,
                exhausted: None,
            },
        ))
    }

    /// Fine-grid conserved state (plane-major).
    pub fn state(&self) -> &crate::soa::SoaState {
        &self.levels[0].w
    }

    /// Full-multigrid (FMG) start-up: converge the coarsest grid first,
    /// then repeatedly interpolate the *solution* one level finer and run
    /// `cycles_per_level` cycles of the configured strategy on the
    /// sub-hierarchy — "mesh sequencing", the standard complement to the
    /// paper's scheme (its §2.3 notes new finer meshes can be introduced
    /// on top of a converged sequence, e.g. by adaptive refinement).
    ///
    /// Afterwards the fine grid starts from a coarse-grid solution
    /// instead of an impulsive freestream, which removes most of the
    /// startup transient.
    pub fn fmg_init(&mut self, cycles_per_level: usize) {
        let last = self.nlevels() - 1;
        // The coarsest level relaxes alone (its forcing is zero).
        for _ in 0..cycles_per_level {
            self.step(last);
        }
        for l in (0..last).rev() {
            // Prolong the full state (not a correction) onto level l.
            let (fine, coarse) = self.levels.split_at_mut(l + 1);
            for c in 0..NVAR {
                self.seq.to_fine[l].interpolate(coarse[0].w.plane(c), fine[l].w.plane_mut(c), 1);
            }
            count_vertex_loop(
                &mut self.counter,
                Phase::Transfer,
                fine[l].n,
                FLOPS_TRANSFER_VERT,
            );
            // Level l now drives its own sub-hierarchy.
            self.levels[l].forcing.fill(0.0);
            let gamma = self.strategy.gamma();
            for _ in 0..cycles_per_level {
                match self.strategy {
                    Strategy::SingleGrid => self.step(l),
                    _ => self.recurse(l, gamma),
                }
            }
        }
    }

    fn step(&mut self, l: usize) {
        if self.record_events {
            self.events.push(CycleEvent::Step(l));
        }
        match &mut self.shared {
            Some(execs) => time_step(
                &self.seq.meshes[l],
                &mut self.levels[l],
                &self.cfg,
                l > 0,
                &mut execs[l],
                &mut self.counter,
            ),
            None => time_step(
                &self.seq.meshes[l],
                &mut self.levels[l],
                &self.cfg,
                l > 0,
                &mut SerialExecutor,
                &mut self.counter,
            ),
        }
    }

    /// Fresh residual evaluation on level `l` through that level's
    /// executor.
    fn eval_resid(&mut self, l: usize) {
        match &mut self.shared {
            Some(execs) => eval_total_residual(
                &self.seq.meshes[l],
                &mut self.levels[l],
                &self.cfg,
                l > 0,
                &mut execs[l],
                &mut self.counter,
            ),
            None => eval_total_residual(
                &self.seq.meshes[l],
                &mut self.levels[l],
                &self.cfg,
                l > 0,
                &mut SerialExecutor,
                &mut self.counter,
            ),
        }
    }

    fn recurse(&mut self, l: usize, gamma: usize) {
        self.step(l);
        if l + 1 == self.nlevels() {
            return;
        }
        self.transfer_down(l);
        // The coarsest level needs no repeat visits: without a further
        // restriction below it, a second visit would just re-step the
        // same problem. Classic W recursion applies γ at interior levels.
        let visits = if l + 2 == self.nlevels() { 1 } else { gamma };
        for v in 0..visits {
            if v > 0 {
                // Re-entering the coarse level: refresh its forcing from
                // the (unchanged) fine residual baseline is not needed —
                // FAS recursion continues from the coarse state directly.
                self.step_into_again(l + 1, gamma);
            } else {
                self.recurse(l + 1, gamma);
            }
        }
        self.prolong_up(l);
    }

    /// Second (and later) W-cycle visits to a coarse level: another full
    /// sub-cycle from that level downward, without re-restricting from
    /// the fine grid above it.
    fn step_into_again(&mut self, l: usize, gamma: usize) {
        self.recurse(l, gamma);
    }

    /// Restrict state and residuals from level `l` to `l + 1` and set the
    /// coarse forcing `P = R' − R(w')`.
    fn transfer_down(&mut self, l: usize) {
        if self.record_events {
            self.events.push(CycleEvent::Restrict(l));
        }
        // Fresh fine-level residual (includes the fine forcing).
        self.eval_resid(l);

        let (fine, coarse) = self.levels.split_at_mut(l + 1);
        let fine = &mut fine[l];
        let coarse = &mut coarse[0];

        // State moves down by direct interpolation onto coarse vertices,
        // one component plane at a time (per-slot arithmetic identical to
        // the interleaved pass; components are independent).
        for c in 0..NVAR {
            self.seq.to_coarse[l].interpolate(fine.w.plane(c), coarse.w.plane_mut(c), 1);
        }
        coarse.w_ref.copy_from(&coarse.w);
        count_vertex_loop(
            &mut self.counter,
            Phase::Transfer,
            coarse.n,
            FLOPS_TRANSFER_VERT,
        );

        // Residuals move down conservatively: transpose of prolongation.
        coarse.corr.fill(0.0);
        for c in 0..NVAR {
            self.seq.to_fine[l].restrict_transpose(fine.res.plane(c), coarse.corr.plane_mut(c), 1);
        }
        count_vertex_loop(
            &mut self.counter,
            Phase::Transfer,
            fine.n,
            FLOPS_TRANSFER_VERT,
        );

        // Forcing: P = R' − R(w') with R evaluated at the restricted
        // state *without* any forcing.
        coarse.forcing.fill(0.0);
        match &mut self.shared {
            Some(execs) => eval_total_residual(
                &self.seq.meshes[l + 1],
                coarse,
                &self.cfg,
                true,
                &mut execs[l + 1],
                &mut self.counter,
            ),
            None => eval_total_residual(
                &self.seq.meshes[l + 1],
                coarse,
                &self.cfg,
                true,
                &mut SerialExecutor,
                &mut self.counter,
            ),
        }
        for ((f, &c), &r) in coarse
            .forcing
            .flat_mut()
            .iter_mut()
            .zip(coarse.corr.flat())
            .zip(coarse.res.flat())
        {
            *f = c - r;
        }
    }

    /// Interpolate the coarse-grid correction `w − w'` back to level `l`.
    fn prolong_up(&mut self, l: usize) {
        if self.record_events {
            self.events.push(CycleEvent::Prolong(l));
        }
        let (fine, coarse) = self.levels.split_at_mut(l + 1);
        let fine = &mut fine[l];
        let coarse = &mut coarse[0];
        for ((d, &a), &b) in coarse
            .corr
            .flat_mut()
            .iter_mut()
            .zip(coarse.w.flat())
            .zip(coarse.w_ref.flat())
        {
            *d = a - b;
        }
        for c in 0..NVAR {
            self.seq.to_fine[l].interpolate(coarse.corr.plane(c), fine.corr.plane_mut(c), 1);
        }
        for (w, &c) in fine.w.flat_mut().iter_mut().zip(fine.corr.flat()) {
            *w += c;
        }
        count_vertex_loop(
            &mut self.counter,
            Phase::Transfer,
            fine.n,
            FLOPS_TRANSFER_VERT,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_mesh::gen::BumpSpec;

    fn bump_seq(levels: usize) -> MeshSequence {
        let spec = BumpSpec {
            nx: 16,
            ny: 6,
            nz: 4,
            jitter: 0.12,
            ..BumpSpec::default()
        };
        MeshSequence::bump_sequence(&spec, levels)
    }

    #[test]
    fn freestream_generates_no_coarse_corrections() {
        // "as the residuals are driven to zero on the fine grid, no
        // corrections will be generated by the coarse grid" (§2.3): at
        // exact freestream the cycle must be a no-op.
        let seq = MeshSequence::box_sequence(6, 3, 0.15, 11);
        let cfg = SolverConfig::default();
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::VCycle);
        let before = mg.levels[0].w.clone();
        let r = mg.cycle();
        assert!(r < 1e-11, "freestream residual {r}");
        for (a, b) in mg.levels[0].w.flat().iter().zip(before.flat()) {
            assert!((a - b).abs() < 1e-9, "no corrections at convergence");
        }
    }

    #[test]
    fn v_cycle_converges_faster_than_single_grid() {
        let cycles = 25;
        let run = |strategy: Strategy| -> Vec<f64> {
            let seq = bump_seq(3);
            let cfg = SolverConfig {
                mach: 0.5,
                ..SolverConfig::default()
            };
            let mut mg = MultigridSolver::new(seq, cfg, strategy);
            mg.solve(cycles)
        };
        let sg = run(Strategy::SingleGrid);
        let v = run(Strategy::VCycle);
        let ratio_sg = sg.last().unwrap() / sg[0];
        let ratio_v = v.last().unwrap() / v[0];
        assert!(
            ratio_v < ratio_sg,
            "V-cycle ({ratio_v:.3e}) must beat single grid ({ratio_sg:.3e}) per cycle"
        );
    }

    #[test]
    fn w_cycle_event_schedule_matches_figure_1() {
        // 3 levels, W-cycle: E0 R0 E1 R1 E2 P1 E1 R1 E2 P1 P0
        let seq = MeshSequence::box_sequence(4, 3, 0.1, 2);
        let mut mg = MultigridSolver::new(seq, SolverConfig::default(), Strategy::WCycle);
        mg.record_events = true;
        mg.cycle();
        use CycleEvent::*;
        assert_eq!(
            mg.events,
            vec![
                Step(0),
                Restrict(0),
                Step(1),
                Restrict(1),
                Step(2),
                Prolong(1),
                Step(1),
                Restrict(1),
                Step(2),
                Prolong(1),
                Prolong(0)
            ]
        );
    }

    #[test]
    fn v_cycle_event_schedule_matches_figure_1() {
        // 3 levels, V-cycle: one step per level down, then corrections up.
        let seq = MeshSequence::box_sequence(4, 3, 0.1, 2);
        let mut mg = MultigridSolver::new(seq, SolverConfig::default(), Strategy::VCycle);
        mg.record_events = true;
        mg.cycle();
        use CycleEvent::*;
        assert_eq!(
            mg.events,
            vec![
                Step(0),
                Restrict(0),
                Step(1),
                Restrict(1),
                Step(2),
                Prolong(1),
                Prolong(0)
            ]
        );
    }

    #[test]
    fn w_cycle_does_more_work_per_cycle_than_v() {
        let mut mg_v = MultigridSolver::new(
            MeshSequence::box_sequence(6, 3, 0.1, 3),
            SolverConfig::default(),
            Strategy::VCycle,
        );
        let mut mg_w = MultigridSolver::new(
            MeshSequence::box_sequence(6, 3, 0.1, 3),
            SolverConfig::default(),
            Strategy::WCycle,
        );
        mg_v.cycle();
        mg_w.cycle();
        assert!(
            mg_w.counter.flops() > mg_v.counter.flops(),
            "W ({}) must cost more than V ({})",
            mg_w.counter.flops(),
            mg_v.counter.flops()
        );
    }

    #[test]
    fn shared_multigrid_matches_serial_multigrid() {
        // The paper's C90 configuration: the whole W-cycle under the
        // coloured executor. Must agree with the serial recursion to
        // accumulation-order round-off.
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let mut serial = MultigridSolver::new(bump_seq(3), cfg, Strategy::WCycle);
        let hs = serial.solve(4);
        let mut shared =
            MultigridSolver::new_shared(bump_seq(3), cfg, Strategy::WCycle, 3).unwrap();
        let hp = shared.solve(4);
        for (a, b) in hs.iter().zip(&hp) {
            assert!(
                (a - b).abs() < 1e-9 * a.max(1e-30),
                "residual histories diverge: {a} vs {b}"
            );
        }
        let mut max = 0.0f64;
        for (x, y) in serial.state().flat().iter().zip(shared.state().flat()) {
            max = max.max((x - y).abs());
        }
        assert!(max < 1e-9, "states diverge: {max:.3e}");
        // Flop accounting is backend-independent: identical, not close.
        assert_eq!(serial.counter.flops(), shared.counter.flops());
    }

    #[test]
    fn fmg_startup_removes_the_impulsive_transient() {
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let cold_start = {
            let mut mg = MultigridSolver::new(bump_seq(3), cfg, Strategy::WCycle);
            mg.cycle()
        };
        let fmg_start = {
            let mut mg = MultigridSolver::new(bump_seq(3), cfg, Strategy::WCycle);
            mg.fmg_init(15);
            mg.cycle()
        };
        assert!(
            fmg_start < 0.4 * cold_start,
            "FMG first-cycle residual {fmg_start:.3e} should be far below cold start {cold_start:.3e}"
        );
    }

    #[test]
    fn fmg_then_cycles_converges_with_less_total_work() {
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let mut cold = MultigridSolver::new(bump_seq(3), cfg, Strategy::WCycle);
        let cold_hist = cold.solve(25);

        let mut warm = MultigridSolver::new(bump_seq(3), cfg, Strategy::WCycle);
        warm.fmg_init(10);
        let warm_hist = warm.solve(10);
        assert!(
            warm_hist.last().unwrap() <= &(cold_hist.last().unwrap() * 3.0),
            "FMG ({:.2e} after {:.2e} flops) should compete with cold start ({:.2e} after {:.2e} flops)",
            warm_hist.last().unwrap(),
            warm.counter.flops(),
            cold_hist.last().unwrap(),
            cold.counter.flops()
        );
        assert!(warm.counter.flops() < cold.counter.flops());
    }

    #[test]
    fn nested_sequence_also_converges() {
        // The paper's unrelated meshes vs refinement-nested meshes: both
        // must drive the fine grid.
        use eul3d_mesh::gen::BumpSpec;
        let spec = BumpSpec {
            nx: 8,
            ny: 4,
            nz: 3,
            jitter: 0.1,
            ..BumpSpec::default()
        };
        let seq = MeshSequence::nested_bump_sequence(&spec, 3);
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let hist = mg.solve(40);
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.12),
            "nested-sequence multigrid must converge: {:?}",
            (hist[0], hist.last().unwrap())
        );
    }

    #[test]
    fn multigrid_solution_stays_physical() {
        let seq = bump_seq(3);
        let cfg = SolverConfig {
            mach: 0.675,
            ..SolverConfig::default()
        };
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let hist = mg.solve(20);
        assert!(hist.iter().all(|r| r.is_finite()));
        for i in 0..mg.levels[0].n {
            assert!(mg.state().get(i, 0) > 0.05, "density positive at {i}");
        }
        assert!(hist.last().unwrap() < &(hist[0] * 0.8));
    }

    /// The issue's seeded diverging case: a tapered (stretched) bump at
    /// an over-aggressive CFL. The unguarded driver goes non-finite in a
    /// handful of cycles; the guard must back off, roll back, and finish.
    fn stretched_seq() -> MeshSequence {
        let spec = BumpSpec {
            nx: 10,
            ny: 4,
            nz: 3,
            taper: 0.6,
            jitter: 0.1,
            ..BumpSpec::default()
        };
        MeshSequence::bump_sequence(&spec, 2)
    }

    fn aggressive_cfg() -> SolverConfig {
        SolverConfig {
            mach: 0.5,
            cfl: 30.0,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn guard_recovers_where_the_unguarded_run_diverges() {
        let cycles = 12;
        let mut bare = MultigridSolver::new(stretched_seq(), aggressive_cfg(), Strategy::VCycle);
        let h = bare.solve(cycles);
        assert!(
            h.iter().any(|x| !x.is_finite()),
            "seed case must actually diverge unguarded: {h:?}"
        );

        let guard = GuardConfig {
            cfl_backoff: 0.25,
            // Keep the CFL parked at the backoff floor so the outcome
            // shows the reduction (re-ramp behavior has its own test).
            reramp_after: 100,
            ..GuardConfig::default()
        };
        let mut mg = MultigridSolver::new(stretched_seq(), aggressive_cfg(), Strategy::VCycle);
        let (hist, outcome) = mg
            .solve_guarded(cycles, &guard)
            .expect("guard must recover");
        assert_eq!(hist.len(), cycles);
        assert!(hist.iter().all(|x| x.is_finite()), "{hist:?}");
        assert!(
            !outcome.transcript.is_empty(),
            "recovery must go through at least one backoff epoch"
        );
        assert!(outcome.final_cfl < outcome.target_cfl);
        assert_eq!(outcome.target_cfl, 30.0);
        assert_eq!(outcome.exhausted, None);
        assert_eq!(
            check_state(aggressive_cfg().gamma, &mg.levels[0].w, mg.levels[0].n),
            crate::health::HealthVerdict::Healthy
        );
        // The user-visible config is restored to the requested target.
        assert_eq!(mg.cfg.cfl, 30.0);
        // Guard work is visible in the per-phase accounting.
        assert!(mg.counter.comp[Phase::Guard.index()].flops > 0.0);
    }

    #[test]
    fn guard_exhausts_retries_into_a_typed_error() {
        // A backoff factor this timid cannot rescue CFL 30 in two tries
        // (30 -> 28.5 -> 27.1, all far beyond the stability limit).
        let guard = GuardConfig {
            max_retries: 2,
            cfl_backoff: 0.95,
            ..GuardConfig::default()
        };
        let mut mg = MultigridSolver::new(stretched_seq(), aggressive_cfg(), Strategy::VCycle);
        let err = mg.solve_guarded(20, &guard).expect_err("must exhaust");
        match err {
            SolverError::RetriesExhausted {
                verdict,
                transcript,
                max_retries,
                ..
            } => {
                assert!(verdict.is_bad());
                assert_eq!(transcript.len(), 2);
                assert_eq!(max_retries, 2);
                // Each retry recorded a strictly decreasing CFL.
                assert!(transcript[0].cfl_after > transcript[1].cfl_after);
            }
            other => panic!("wrong error: {other}"),
        }
        assert_eq!(mg.cfg.cfl, 30.0, "target CFL restored even on failure");
    }

    #[test]
    fn guarded_serial_and_shared_agree_on_every_decision() {
        // The CFL schedule is pure configuration arithmetic, so serial
        // and shared must take bit-identical backoff decisions even
        // though their residuals differ in the last bits.
        let guard = GuardConfig {
            cfl_backoff: 0.25,
            ..GuardConfig::default()
        };
        let cycles = 12;
        let mut serial = MultigridSolver::new(stretched_seq(), aggressive_cfg(), Strategy::VCycle);
        let (hs, os) = serial
            .solve_guarded(cycles, &guard)
            .expect("serial recovers");
        let mut shared =
            MultigridSolver::new_shared(stretched_seq(), aggressive_cfg(), Strategy::VCycle, 3)
                .expect("colouring validates");
        let (hp, op) = shared
            .solve_guarded(cycles, &guard)
            .expect("shared recovers");

        assert_eq!(os.transcript.len(), op.transcript.len());
        for (a, b) in os.transcript.iter().zip(&op.transcript) {
            assert_eq!(a.cycle, b.cycle);
            assert_eq!(a.rollback_to, b.rollback_to);
            assert_eq!(
                a.verdict.canonical().severity(),
                b.verdict.canonical().severity()
            );
            assert_eq!(a.cfl_before.to_bits(), b.cfl_before.to_bits());
            assert_eq!(a.cfl_after.to_bits(), b.cfl_after.to_bits());
        }
        assert_eq!(os.final_cfl.to_bits(), op.final_cfl.to_bits());
        for (a, b) in hs.iter().zip(&hp) {
            assert!(
                (a - b).abs() < 1e-9 * a.abs().max(1e-30),
                "histories diverge after recovery: {a} vs {b}"
            );
        }
    }

    #[test]
    fn guard_is_a_no_op_on_a_healthy_run() {
        // Same cycles, same answer, empty transcript, CFL untouched.
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let mut bare = MultigridSolver::new(bump_seq(2), cfg, Strategy::VCycle);
        let hb = bare.solve(6);
        let mut guarded = MultigridSolver::new(bump_seq(2), cfg, Strategy::VCycle);
        let (hg, outcome) = guarded
            .solve_guarded(6, &GuardConfig::default())
            .expect("healthy run");
        assert!(outcome.transcript.is_empty());
        assert_eq!(outcome.final_cfl.to_bits(), outcome.target_cfl.to_bits());
        for (a, b) in hb.iter().zip(&hg) {
            assert_eq!(a.to_bits(), b.to_bits(), "guard must not perturb the solve");
        }
    }

    #[test]
    fn guard_reramps_cfl_back_to_target_after_clean_cycles() {
        let guard = GuardConfig {
            cfl_backoff: 0.25,
            reramp_after: 3,
            ..GuardConfig::default()
        };
        // Diverges at CFL 30, recovers at 7.5; with re-ramp every 3 clean
        // cycles the controller climbs 7.5 -> 30 (capped) well within 30
        // cycles... and promptly diverges again at 30, backing off anew.
        // Run long enough to see at least one re-ramp step in the final
        // CFL trajectory: final CFL must sit strictly above the first
        // backoff floor.
        let mut mg = MultigridSolver::new(stretched_seq(), aggressive_cfg(), Strategy::VCycle);
        let (_, outcome) = mg.solve_guarded(10, &guard).expect("recovers");
        let floor = outcome
            .transcript
            .iter()
            .map(|e| e.cfl_after)
            .fold(f64::INFINITY, f64::min);
        assert!(
            outcome.final_cfl > floor,
            "re-ramp must lift the CFL above the deepest backoff ({floor}) by the end: {}",
            outcome.final_cfl
        );
    }
}
