//! Multilevel recursive spectral bisection, the parRSB recipe the paper's
//! §6 asks for: flat RSB runs Lanczos on the *full* graph at every
//! recursion level, which is why the paper found partitioning "comparable
//! to the amount of time required for the entire flow solution". The
//! multilevel scheme instead
//!
//! 1. **coarsens** by heavy-edge matching until the graph is small
//!    (vertex and edge weights accumulate so the coarse graph is an
//!    exact aggregate of the fine one),
//! 2. runs the existing Lanczos/Fiedler **bisection on the coarse
//!    graph** (weighted Laplacian, weighted-median split), and
//! 3. **projects back** level by level, running a balance-constrained
//!    boundary refinement pass at each level that never worsens the
//!    weighted edge-cut.
//!
//! The spectral work thus happens on O(coarsen_target) vertices
//! regardless of mesh size; everything else is linear passes.

use crate::spectral::lanczos_fiedler;

/// A compact undirected graph in CSR form with integer vertex and edge
/// weights — the aggregate of a finer graph under a matching. Weights
/// are exact counters (`u64`), so level-to-level conservation is an
/// equality, not a tolerance.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// CSR row offsets (`nverts + 1` entries).
    pub offsets: Vec<u32>,
    /// Neighbour vertex per CSR slot.
    pub nbrs: Vec<u32>,
    /// Edge weight per CSR slot (both directions carry the weight).
    pub ewts: Vec<u64>,
    /// Vertex weights (fine vertices represented by each vertex).
    pub vwts: Vec<u64>,
}

impl WeightedGraph {
    /// Build with unit vertex and edge weights from an undirected edge
    /// list — the finest level of a multilevel hierarchy.
    pub fn unit_from_edges(nverts: usize, edges: &[[u32; 2]]) -> WeightedGraph {
        let mut counts = vec![0u32; nverts + 1];
        for &[a, b] in edges {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..nverts {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut nbrs = vec![0u32; offsets[nverts] as usize];
        let mut cursor = offsets.clone();
        for &[a, b] in edges {
            nbrs[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            nbrs[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        let ewts = vec![1u64; nbrs.len()];
        WeightedGraph {
            offsets,
            nbrs,
            ewts,
            vwts: vec![1u64; nverts],
        }
    }

    pub fn nverts(&self) -> usize {
        self.vwts.len()
    }

    /// Neighbour ids and edge weights of `v`.
    pub fn adj(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        self.nbrs[lo..hi]
            .iter()
            .copied()
            .zip(self.ewts[lo..hi].iter().copied())
    }

    /// Total vertex weight — conserved exactly across coarsening.
    pub fn total_vweight(&self) -> u64 {
        self.vwts.iter().sum()
    }

    /// Total edge weight (each undirected edge counted once).
    pub fn total_eweight(&self) -> u64 {
        self.ewts.iter().sum::<u64>() / 2
    }

    /// `y = L_w x` with the weighted Laplacian `L_w = D_w − A_w`.
    fn laplacian_matvec(&self, x: &[f64], y: &mut [f64]) {
        for v in 0..self.nverts() {
            let mut acc = 0.0;
            for (u, w) in self.adj(v) {
                let w = w as f64;
                acc += w * (x[v] - x[u as usize]);
            }
            y[v] = acc;
        }
    }
}

/// Deterministic heavy-edge matching: visit vertices in index order and
/// pair each unmatched vertex with its unmatched neighbour of maximum
/// edge weight (ties broken toward the smallest neighbour index).
/// Returns `mate[v]` — the partner, or `v` itself when unmatched — so
/// the result is an involution: `mate[mate[v]] == v`.
///
/// `max_weight` caps the combined vertex weight of a matched pair
/// (pass `u64::MAX` for no cap). Without a cap, an aggregate vertex's
/// edges grow heavy, it keeps winning matches, and it snowballs into a
/// single vertex holding most of the graph — which no weighted-median
/// split can then balance.
pub fn heavy_edge_matching(g: &WeightedGraph, max_weight: u64) -> Vec<u32> {
    let n = g.nverts();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    for v in 0..n {
        if matched[v] {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for (u, w) in g.adj(v) {
            if u as usize == v || matched[u as usize] {
                continue;
            }
            if g.vwts[v].saturating_add(g.vwts[u as usize]) > max_weight {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bu)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((w, u));
            }
        }
        if let Some((_, u)) = best {
            mate[v] = u;
            mate[u as usize] = v as u32;
            matched[v] = true;
            matched[u as usize] = true;
        }
    }
    mate
}

/// Collapse a matching into the coarse graph. Returns the coarse graph
/// and the fine→coarse vertex map. Coarse vertices are numbered by
/// first appearance in fine index order, so the construction is fully
/// deterministic. Vertex weights add across each pair; parallel edges
/// between the same coarse pair merge with summed weights; the matched
/// edge itself collapses into the new vertex (no self-loop).
pub fn coarsen(g: &WeightedGraph, mate: &[u32]) -> (WeightedGraph, Vec<u32>) {
    let n = g.nverts();
    let mut cmap = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if cmap[v] != u32::MAX {
            continue;
        }
        cmap[v] = nc;
        let m = mate[v] as usize;
        if m != v {
            cmap[m] = nc;
        }
        nc += 1;
    }
    let nc = nc as usize;

    let mut vwts = vec![0u64; nc];
    for v in 0..n {
        vwts[cmap[v] as usize] += g.vwts[v];
    }

    // Aggregate adjacency per coarse vertex with a dense scatter slate —
    // O(E) total, deterministic neighbour order (first touch in fine
    // CSR order). The inverse map gives each coarse vertex its 1–2 fine
    // members.
    let mut member_of = vec![[u32::MAX; 2]; nc];
    for (v, &cv) in cmap.iter().enumerate() {
        let c = cv as usize;
        if member_of[c][0] == u32::MAX {
            member_of[c][0] = v as u32;
        } else {
            member_of[c][1] = v as u32;
        }
    }
    let mut offsets = vec![0u32; nc + 1];
    let mut nbrs: Vec<u32> = Vec::with_capacity(g.nbrs.len());
    let mut ewts: Vec<u64> = Vec::with_capacity(g.nbrs.len());
    let mut slot = vec![u32::MAX; nc]; // coarse nbr -> index into this row
    let mut touched: Vec<u32> = Vec::with_capacity(16);
    for cv in 0..nc {
        for &v in member_of[cv].iter().filter(|&&v| v != u32::MAX) {
            for (u, w) in g.adj(v as usize) {
                let cu = cmap[u as usize];
                if cu as usize == cv {
                    continue; // matched edge collapses; no self-loop
                }
                if slot[cu as usize] == u32::MAX {
                    slot[cu as usize] = nbrs.len() as u32;
                    nbrs.push(cu);
                    ewts.push(w);
                    touched.push(cu);
                } else {
                    ewts[slot[cu as usize] as usize] += w;
                }
            }
        }
        for &cu in &touched {
            slot[cu as usize] = u32::MAX;
        }
        touched.clear();
        offsets[cv + 1] = nbrs.len() as u32;
    }

    (
        WeightedGraph {
            offsets,
            nbrs,
            ewts,
            vwts,
        },
        cmap,
    )
}

/// Weighted edge-cut of a two-sided split.
pub fn bisection_cut(g: &WeightedGraph, side: &[bool]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.nverts() {
        for (u, w) in g.adj(v) {
            if (u as usize) > v && side[v] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// One balance-constrained boundary-refinement sweep per pass: move a
/// vertex to the other side only when the move strictly reduces the
/// weighted cut (gain = external − internal connectivity > 0) and the
/// receiving side stays under its weight cap. Strictly-positive gains
/// mean the pass **never worsens the cut** — the invariant the
/// proptests pin down. Returns the number of vertices moved.
pub fn refine_bisection(
    g: &WeightedGraph,
    side: &mut [bool],
    target_left: u64,
    balance_tol: f64,
    passes: usize,
) -> usize {
    let n = g.nverts();
    let total: u64 = g.total_vweight();
    let target_right = total - target_left;
    let cap = |target: u64| ((target as f64 * balance_tol).floor() as u64).max(1);
    let (cap_left, cap_right) = (cap(target_left), cap(target_right));

    let mut weight_left: u64 = (0..n).filter(|&v| side[v]).map(|v| g.vwts[v]).sum();
    let mut count_left = side.iter().filter(|&&s| s).count();

    let mut moved_total = 0usize;
    for _pass in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let home_left = side[v];
            // Keep both sides nonempty.
            if home_left && count_left <= 1 {
                continue;
            }
            if !home_left && n - count_left <= 1 {
                continue;
            }
            let mut internal = 0u64;
            let mut external = 0u64;
            for (u, w) in g.adj(v) {
                if side[u as usize] == home_left {
                    internal += w;
                } else {
                    external += w;
                }
            }
            if external <= internal {
                continue;
            }
            let vw = g.vwts[v];
            let fits = if home_left {
                weight_left - vw >= 1 && total - (weight_left - vw) <= cap_right
            } else {
                weight_left + vw <= cap_left
            };
            if !fits {
                continue;
            }
            side[v] = !home_left;
            if home_left {
                weight_left -= vw;
                count_left -= 1;
            } else {
                weight_left += vw;
                count_left += 1;
            }
            moved += 1;
        }
        moved_total += moved;
        if moved == 0 {
            break;
        }
    }
    moved_total
}

/// Force the split back under the balance caps: while one side exceeds
/// its cap, move across the vertex with the best (possibly negative)
/// cut gain whose move strictly shrinks the overshoot. Unlike
/// [`refine_bisection`] this may increase the cut — it trades cut for
/// the balance guarantee after projecting a coarse split whose
/// aggregate vertices were too lumpy to balance. Returns moves made.
pub fn rebalance_bisection(
    g: &WeightedGraph,
    side: &mut [bool],
    target_left: u64,
    balance_tol: f64,
) -> usize {
    let n = g.nverts();
    let total = g.total_vweight();
    let target_right = total - target_left;
    let cap = |target: u64| ((target as f64 * balance_tol).floor() as u64).max(1);
    let (cap_left, cap_right) = (cap(target_left), cap(target_right));
    let overshoot =
        |wl: u64| (wl.saturating_sub(cap_left)).max((total - wl).saturating_sub(cap_right));

    let mut weight_left: u64 = (0..n).filter(|&v| side[v]).map(|v| g.vwts[v]).sum();
    let mut count_left = side.iter().filter(|&&s| s).count();
    let mut moves = 0usize;
    while overshoot(weight_left) > 0 {
        let from_left = weight_left > cap_left;
        if from_left && count_left <= 1 {
            break;
        }
        if !from_left && n - count_left <= 1 {
            break;
        }
        // Best gain among moves that strictly shrink the overshoot.
        let mut best: Option<(i64, usize)> = None;
        for v in 0..n {
            if side[v] != from_left {
                continue;
            }
            let vw = g.vwts[v];
            let new_left = if from_left {
                weight_left - vw
            } else {
                weight_left + vw
            };
            if overshoot(new_left) >= overshoot(weight_left) {
                continue;
            }
            // gain = external − internal: the cut reduction if v moves.
            let mut gain = 0i64;
            for (u, w) in g.adj(v) {
                if side[u as usize] == from_left {
                    gain -= w as i64;
                } else {
                    gain += w as i64;
                }
            }
            let better = match best {
                None => true,
                Some((bg, _)) => gain > bg,
            };
            if better {
                best = Some((gain, v));
            }
        }
        let Some((_, v)) = best else { break };
        side[v] = !from_left;
        if from_left {
            weight_left -= g.vwts[v];
            count_left -= 1;
        } else {
            weight_left += g.vwts[v];
            count_left += 1;
        }
        moves += 1;
    }
    moves
}

/// Tuning knobs of one multilevel bisection (shared across the whole
/// recursive partition).
#[derive(Debug, Clone, Copy)]
pub struct MultilevelParams {
    /// Stop coarsening once the graph has at most this many vertices.
    pub coarsen_target: usize,
    /// Refinement sweeps per level during uncoarsening.
    pub refine_passes: usize,
    /// Per-side weight cap as a multiple of the side's target weight.
    pub balance_tol: f64,
    /// Lanczos iteration cap for the coarse-graph Fiedler solve.
    pub lanczos_iters: usize,
    /// Fiedler residual tolerance (0.0 = run to the cap).
    pub tolerance: f64,
    /// Seed for the Lanczos start vector.
    pub seed: u64,
}

/// Split `g` into two sides with target left weight
/// `total · w_left / (w_left + w_right)` by coarsen → Fiedler-bisect →
/// uncoarsen-with-refinement. Returns the side mask (`true` = left) and
/// the Lanczos iterations spent on the coarse solve.
pub fn multilevel_bisect(
    g: &WeightedGraph,
    w_left: usize,
    w_right: usize,
    p: &MultilevelParams,
) -> (Vec<bool>, usize) {
    // Coarsening phase: stop at the target size or when matching stalls
    // (shrink factor worse than 0.95 means the graph is essentially
    // unmatchable — star graphs and the like).
    let mut maps: Vec<Vec<u32>> = Vec::new();
    let mut owned: Vec<WeightedGraph> = Vec::new();
    // METIS-style aggregate cap: no coarse vertex may hold more than
    // ~1.5× the average coarsest-level share, so the weighted-median
    // split always has pieces fine enough to balance with.
    let max_pair_weight =
        ((g.total_vweight().saturating_mul(3)) / (2 * p.coarsen_target.max(2) as u64)).max(2);
    loop {
        let cur: &WeightedGraph = owned.last().unwrap_or(g);
        if cur.nverts() <= p.coarsen_target.max(2) {
            break;
        }
        let mate = heavy_edge_matching(cur, max_pair_weight);
        let (coarse, cmap) = coarsen(cur, &mate);
        if (coarse.nverts() as f64) > 0.95 * cur.nverts() as f64 {
            break;
        }
        maps.push(cmap);
        owned.push(coarse);
    }
    // Finest-first level view without cloning any graph.
    let levels: Vec<&WeightedGraph> = std::iter::once(g).chain(owned.iter()).collect();

    let coarsest = *levels.last().unwrap();
    let nc = coarsest.nverts();
    let total = coarsest.total_vweight();
    let target_left = (total as u128 * w_left as u128 / (w_left + w_right) as u128) as u64;

    // Fiedler split of the coarse graph at the weighted median.
    let solve = lanczos_fiedler(
        nc,
        |x, y| coarsest.laplacian_matvec(x, y),
        p.lanczos_iters,
        p.tolerance,
        p.seed,
    );
    let f = &solve.vector;
    let mut order: Vec<u32> = (0..nc as u32).collect();
    order.sort_by(|&a, &b| {
        f[a as usize]
            .partial_cmp(&f[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut side = vec![false; nc];
    let mut acc = 0u64;
    for &v in &order {
        if acc >= target_left {
            break;
        }
        let w = coarsest.vwts[v as usize];
        // Stop short when overshooting would hurt balance more than
        // undershooting: |left − target| ≤ max vertex weight / 2.
        if acc + w > target_left && (acc + w - target_left) > (target_left - acc) {
            break;
        }
        side[v as usize] = true;
        acc += w;
    }
    // Degenerate guards: both sides must be nonempty.
    if side.iter().all(|&s| s) {
        side[order[nc - 1] as usize] = false;
    }
    if side.iter().all(|&s| !s) {
        side[order[0] as usize] = true;
    }

    // Uncoarsening: at each level restore the balance caps first (the
    // coarse split can be lumpy), then run the cut-monotone boundary
    // refinement. At the finest level vertices are unit weight, so the
    // rebalance always lands inside the tolerance band.
    let nlevels = levels.len();
    rebalance_bisection(levels[nlevels - 1], &mut side, target_left, p.balance_tol);
    refine_bisection(
        levels[nlevels - 1],
        &mut side,
        target_left,
        p.balance_tol,
        p.refine_passes,
    );
    for l in (0..nlevels - 1).rev() {
        let fine = levels[l];
        let cmap = &maps[l];
        let mut fine_side = vec![false; fine.nverts()];
        for v in 0..fine.nverts() {
            fine_side[v] = side[cmap[v] as usize];
        }
        side = fine_side;
        rebalance_bisection(fine, &mut side, target_left, p.balance_tol);
        refine_bisection(fine, &mut side, target_left, p.balance_tol, p.refine_passes);
    }
    (side, solve.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_graph(nx: usize, ny: usize) -> (usize, Vec<[u32; 2]>) {
        let id = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push([id(x, y), id(x + 1, y)]);
                }
                if y + 1 < ny {
                    edges.push([id(x, y), id(x, y + 1)]);
                }
            }
        }
        (nx * ny, edges)
    }

    fn params() -> MultilevelParams {
        MultilevelParams {
            coarsen_target: 16,
            refine_passes: 4,
            balance_tol: 1.1,
            lanczos_iters: 40,
            tolerance: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn matching_is_an_involution_of_adjacent_pairs() {
        let (n, edges) = grid_graph(8, 6);
        let g = WeightedGraph::unit_from_edges(n, &edges);
        let mate = heavy_edge_matching(&g, u64::MAX);
        for v in 0..n {
            let m = mate[v] as usize;
            assert_eq!(mate[m] as usize, v, "mate is an involution");
            if m != v {
                assert!(
                    g.adj(v).any(|(u, _)| u as usize == m),
                    "matched pair ({v},{m}) must be adjacent"
                );
            }
        }
    }

    #[test]
    fn coarsening_conserves_weights() {
        let (n, edges) = grid_graph(10, 10);
        let g = WeightedGraph::unit_from_edges(n, &edges);
        let mate = heavy_edge_matching(&g, u64::MAX);
        let (coarse, cmap) = coarsen(&g, &mate);
        assert_eq!(coarse.total_vweight(), g.total_vweight());
        // Edge weight: fine total = coarse total + weight collapsed
        // inside matched pairs.
        let mut collapsed = 0u64;
        for v in 0..n {
            for (u, w) in g.adj(v) {
                if (u as usize) > v && cmap[v] == cmap[u as usize] {
                    collapsed += w;
                }
            }
        }
        assert_eq!(coarse.total_eweight() + collapsed, g.total_eweight());
        assert!(coarse.nverts() < n);
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let (n, edges) = grid_graph(12, 5);
        let g = WeightedGraph::unit_from_edges(n, &edges);
        // A deliberately bad interleaved split.
        let mut side: Vec<bool> = (0..n).map(|v| v % 2 == 0).collect();
        let before = bisection_cut(&g, &side);
        refine_bisection(&g, &mut side, g.total_vweight() / 2, 1.2, 8);
        let after = bisection_cut(&g, &side);
        assert!(after <= before, "cut went {before} -> {after}");
        assert!(after < before, "interleave should improve a grid");
    }

    #[test]
    fn multilevel_bisect_splits_a_grid_cleanly() {
        let (n, edges) = grid_graph(16, 8);
        let g = WeightedGraph::unit_from_edges(n, &edges);
        let (side, iters) = multilevel_bisect(&g, 1, 1, &params());
        let left = side.iter().filter(|&&s| s).count();
        assert!(iters > 0);
        assert!(
            (left as f64 - n as f64 / 2.0).abs() <= n as f64 * 0.11,
            "balance: {left}/{n}"
        );
        // A 16x8 grid's optimal bisection cuts 8 edges; multilevel
        // should land near it, far below an interleaved split.
        let cut = bisection_cut(&g, &side);
        assert!(cut <= 24, "cut {cut}");
    }

    #[test]
    fn multilevel_bisect_deterministic() {
        let (n, edges) = grid_graph(11, 9);
        let g = WeightedGraph::unit_from_edges(n, &edges);
        let a = multilevel_bisect(&g, 1, 1, &params());
        let b = multilevel_bisect(&g, 1, 1, &params());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
