//! Incremental schedules (§4.3): "Incremental schedules obtain only those
//! off-processor data not requested by a given set of pre-existing
//! schedules. Hash-tables are used to omit duplicate off-processor data
//! references."
//!
//! [`GhostRegistry`] tracks which ghost globals are already covered by
//! earlier schedules for the *same* array; [`GhostRegistry::filter_new`]
//! returns only the uncovered references, which is what gets handed to
//! [`crate::localize`] for the incremental schedule.

use std::collections::HashMap;

/// Tracks ghost coverage for one distributed array.
#[derive(Debug, Clone, Default)]
pub struct GhostRegistry {
    /// Global id → local ghost slot, for every ghost already scheduled.
    covered: HashMap<u32, u32>,
}

impl GhostRegistry {
    pub fn new() -> GhostRegistry {
        GhostRegistry::default()
    }

    /// Number of distinct ghosts covered so far.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// Slot of an already-covered ghost.
    pub fn slot_of(&self, global: u32) -> Option<u32> {
        self.covered.get(&global).copied()
    }

    /// Split `required` into the *new* references (returned, with their
    /// slots, deduplicated) and record them as covered. References
    /// already covered are dropped — their data will be fetched by the
    /// pre-existing schedules, so refetching would be pure waste.
    pub fn filter_new(&mut self, required: &[u32], slots: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert_eq!(required.len(), slots.len());
        let mut new_globals = Vec::new();
        let mut new_slots = Vec::new();
        for (&g, &s) in required.iter().zip(slots) {
            if let Some(&prev) = self.covered.get(&g) {
                assert_eq!(prev, s, "ghost {g} mapped to two different slots");
            } else {
                self.covered.insert(g, s);
                new_globals.push(g);
                new_slots.push(s);
            }
        }
        (new_globals, new_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_call_passes_everything() {
        let mut reg = GhostRegistry::new();
        let (g, s) = reg.filter_new(&[10, 20, 30], &[0, 1, 2]);
        assert_eq!(g, vec![10, 20, 30]);
        assert_eq!(s, vec![0, 1, 2]);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn second_call_is_incremental() {
        let mut reg = GhostRegistry::new();
        reg.filter_new(&[10, 20], &[0, 1]);
        let (g, s) = reg.filter_new(&[20, 30, 10, 40], &[1, 2, 0, 3]);
        assert_eq!(g, vec![30, 40]);
        assert_eq!(s, vec![2, 3]);
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn duplicates_within_one_call_are_dropped() {
        let mut reg = GhostRegistry::new();
        let (g, _) = reg.filter_new(&[5, 5, 5], &[9, 9, 9]);
        assert_eq!(g, vec![5]);
    }

    #[test]
    fn slot_lookup() {
        let mut reg = GhostRegistry::new();
        reg.filter_new(&[7], &[3]);
        assert_eq!(reg.slot_of(7), Some(3));
        assert_eq!(reg.slot_of(8), None);
    }

    #[test]
    #[should_panic(expected = "two different slots")]
    fn conflicting_slots_rejected() {
        let mut reg = GhostRegistry::new();
        reg.filter_new(&[7], &[3]);
        reg.filter_new(&[7], &[4]);
    }
}
