//! The convective operator `Q(w)`: "computed in a single loop over the
//! edges" (§2.2). Drivers operate on raw edge/coefficient slices so the
//! same kernels serve the sequential mesh, the coloured shared-memory
//! groups, and the per-rank local meshes of the distributed path.

use eul3d_mesh::Vec3;

use crate::counters::{FlopCounter, FLOPS_CONV_EDGE, FLOPS_PRESSURE_VERT};
#[allow(deprecated)]
use crate::gas::get5;
use crate::gas::{flux_dot, pressure, NVAR};

/// Per-vertex pressures for `n` entries of an interleaved AoS array.
#[deprecated(note = "use eul3d_kernels::pressure_verts on plane-major state")]
#[allow(deprecated)]
pub fn compute_pressures(gamma: f64, w: &[f64], p: &mut [f64], counter: &mut FlopCounter) {
    let n = p.len();
    assert!(w.len() >= n * NVAR);
    for (i, pi) in p.iter_mut().enumerate() {
        *pi = pressure(gamma, &get5(w, i));
    }
    counter.add(n, FLOPS_PRESSURE_VERT);
}

/// Central flux of one edge: `½ (F(w_a) + F(w_b)) · η`, to be *added* to
/// vertex `a`'s residual (outflow) and subtracted from `b`'s.
#[inline(always)]
pub fn conv_edge_flux(wa: &[f64; 5], wb: &[f64; 5], pa: f64, pb: f64, eta: Vec3) -> [f64; 5] {
    let fa = flux_dot(wa, pa, eta);
    let fb = flux_dot(wb, pb, eta);
    [
        0.5 * (fa[0] + fb[0]),
        0.5 * (fa[1] + fb[1]),
        0.5 * (fa[2] + fb[2]),
        0.5 * (fa[3] + fb[3]),
        0.5 * (fa[4] + fb[4]),
    ]
}

/// Serial AoS edge loop accumulating the interior convective residual
/// into `q` (not zeroed here; callers compose boundary terms
/// separately). Retained as the AoS baseline of the kernel benchmarks.
#[deprecated(note = "use eul3d_kernels::conv_flux_edges on plane-major state")]
#[allow(deprecated)]
pub fn conv_residual_edges(
    edges: &[[u32; 2]],
    coef: &[Vec3],
    w: &[f64],
    p: &[f64],
    q: &mut [f64],
    counter: &mut FlopCounter,
) {
    for (e, &[a, b]) in edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        let f = conv_edge_flux(&get5(w, a), &get5(w, b), p[a], p[b], coef[e]);
        for c in 0..NVAR {
            q[a * NVAR + c] += f[c];
            q[b * NVAR + c] -= f[c];
        }
    }
    counter.add(edges.len(), FLOPS_CONV_EDGE);
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::gas::{Freestream, GAMMA};
    use eul3d_mesh::gen::unit_box;

    #[test]
    fn uniform_flow_edge_fluxes_telescope() {
        // With w constant, Σ over edges of ±flux at a vertex equals
        // F(w)·Ση, so interior vertices (closed dual surface minus
        // boundary part) see exactly -F·(boundary share). Here we check
        // the weaker telescoping identity: total sum over all vertices
        // is zero (every edge contributes +f and -f).
        let m = unit_box(3, 0.2, 1);
        let fs = Freestream::new(GAMMA, 0.5, 3.0);
        let n = m.nverts();
        let mut w = vec![0.0; n * NVAR];
        for i in 0..n {
            w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
        }
        let mut p = vec![0.0; n];
        let mut counter = FlopCounter::default();
        compute_pressures(GAMMA, &w, &mut p, &mut counter);
        let mut q = vec![0.0; n * NVAR];
        conv_residual_edges(&m.edges, &m.edge_coef, &w, &p, &mut q, &mut counter);
        for c in 0..NVAR {
            let total: f64 = (0..n).map(|i| q[i * NVAR + c]).sum();
            assert!(total.abs() < 1e-10, "component {c} total {total}");
        }
    }

    #[test]
    fn edge_flux_is_antisymmetric_in_orientation() {
        let wa = [1.0, 0.3, 0.1, -0.2, 2.2];
        let wb = [1.1, -0.1, 0.2, 0.3, 2.5];
        let pa = pressure(GAMMA, &wa);
        let pb = pressure(GAMMA, &wb);
        let eta = Vec3::new(0.5, -0.25, 1.0);
        let f1 = conv_edge_flux(&wa, &wb, pa, pb, eta);
        let f2 = conv_edge_flux(&wb, &wa, pb, pa, -eta);
        for c in 0..NVAR {
            assert!((f1[c] + f2[c]).abs() < 1e-14);
        }
    }

    #[test]
    fn pressures_match_gas_model() {
        let fs = Freestream::new(GAMMA, 0.8, 0.0);
        let mut w = vec![0.0; 2 * NVAR];
        w[..NVAR].copy_from_slice(&fs.w);
        w[NVAR..].copy_from_slice(&[2.0, 0.0, 0.0, 0.0, 4.0]);
        let mut p = vec![0.0; 2];
        let mut c = FlopCounter::default();
        compute_pressures(GAMMA, &w, &mut p, &mut c);
        assert!((p[0] - fs.p).abs() < 1e-14);
        assert!((p[1] - (GAMMA - 1.0) * 4.0).abs() < 1e-14);
    }
}
