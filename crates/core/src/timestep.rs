//! Local time stepping (§2.2: "locally varying time steps"): each vertex
//! advances with `Δt_i = CFL · V_i / Λ_i`, where `Λ_i` is the sum of the
//! convective spectral radii over the faces of its dual control volume.

use eul3d_mesh::{BoundaryFace, Vec3};

use crate::counters::{FlopCounter, FLOPS_DT_VERT, FLOPS_RADII_EDGE};
#[allow(deprecated)]
use crate::gas::get5;
use crate::gas::spectral_radius;
use crate::soa::SoaState;

/// Accumulate spectral radii over edges into `lam` (zeroed by caller):
/// `Λ_a += λ_ab`, `Λ_b += λ_ab`.
#[deprecated(note = "use eul3d_kernels::radii_edges_soa on plane-major state")]
#[allow(deprecated)]
pub fn radii_edges(
    edges: &[[u32; 2]],
    coef: &[Vec3],
    w: &[f64],
    p: &[f64],
    gamma: f64,
    lam: &mut [f64],
    counter: &mut FlopCounter,
) {
    for (e, &[a, b]) in edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        let l = 0.5
            * (spectral_radius(gamma, &get5(w, a), p[a], coef[e])
                + spectral_radius(gamma, &get5(w, b), p[b], coef[e]));
        lam[a] += l;
        lam[b] += l;
    }
    counter.add(edges.len(), FLOPS_RADII_EDGE);
}

/// Add the boundary-face contribution (each vertex gets the radius
/// through its third of the face), reading plane-major state.
pub fn radii_bfaces_soa(
    bfaces: &[BoundaryFace],
    w: &SoaState,
    p: &[f64],
    gamma: f64,
    lam: &mut [f64],
    counter: &mut FlopCounter,
) {
    for face in bfaces {
        let third = face.normal / 3.0;
        for &v in &face.v {
            let v = v as usize;
            lam[v] += spectral_radius(gamma, &w.get5(v), p[v], third);
        }
    }
    counter.add(bfaces.len(), FLOPS_RADII_EDGE);
}

/// Interleaved-AoS twin of [`radii_bfaces_soa`].
#[deprecated(note = "use radii_bfaces_soa on plane-major state")]
#[allow(deprecated)]
pub fn radii_bfaces(
    bfaces: &[BoundaryFace],
    w: &[f64],
    p: &[f64],
    gamma: f64,
    lam: &mut [f64],
    counter: &mut FlopCounter,
) {
    for face in bfaces {
        let third = face.normal / 3.0;
        for &v in &face.v {
            let v = v as usize;
            lam[v] += spectral_radius(gamma, &get5(w, v), p[v], third);
        }
    }
    counter.add(bfaces.len(), FLOPS_RADII_EDGE);
}

/// `dt_i = CFL · V_i / Λ_i` for the `vol.len()` owned vertices.
#[deprecated(note = "use eul3d_kernels::local_dt_verts")]
pub fn local_dt(cfl: f64, vol: &[f64], lam: &[f64], dt: &mut [f64], counter: &mut FlopCounter) {
    for i in 0..vol.len() {
        dt[i] = cfl * vol[i] / lam[i].max(1e-300);
    }
    counter.add(vol.len(), FLOPS_DT_VERT);
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::gas::{Freestream, GAMMA, NVAR};
    use eul3d_mesh::gen::unit_box;

    #[test]
    fn dt_scales_inversely_with_wavespeed() {
        let m = unit_box(3, 0.1, 1);
        let nv = m.nverts();
        let make = |mach: f64| -> Vec<f64> {
            let fs = Freestream::new(GAMMA, mach, 0.0);
            let mut w = vec![0.0; nv * NVAR];
            for i in 0..nv {
                w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
            }
            let p = vec![fs.p; nv];
            let mut lam = vec![0.0; nv];
            let mut c = FlopCounter::default();
            radii_edges(&m.edges, &m.edge_coef, &w, &p, GAMMA, &mut lam, &mut c);
            radii_bfaces(&m.bfaces, &w, &p, GAMMA, &mut lam, &mut c);
            let mut dt = vec![0.0; nv];
            local_dt(1.0, &m.vol, &lam, &mut dt, &mut c);
            dt
        };
        let slow = make(0.2);
        let fast = make(2.0);
        for (s, f) in slow.iter().zip(&fast) {
            assert!(*s > 0.0 && *f > 0.0);
            assert!(f < s, "faster flow must reduce the permissible step");
        }
    }

    #[test]
    fn dt_grows_with_cell_size() {
        // "the permissible time step is much greater, since it is
        // proportional to the cell size" (§2.3): a coarser mesh of the
        // same domain gets larger steps.
        let fs = Freestream::new(GAMMA, 0.675, 0.0);
        let dt_of = |n: usize| -> f64 {
            let m = unit_box(n, 0.0, 0);
            let nv = m.nverts();
            let mut w = vec![0.0; nv * NVAR];
            for i in 0..nv {
                w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
            }
            let p = vec![fs.p; nv];
            let mut lam = vec![0.0; nv];
            let mut c = FlopCounter::default();
            radii_edges(&m.edges, &m.edge_coef, &w, &p, GAMMA, &mut lam, &mut c);
            radii_bfaces(&m.bfaces, &w, &p, GAMMA, &mut lam, &mut c);
            let mut dt = vec![0.0; nv];
            local_dt(1.0, &m.vol, &lam, &mut dt, &mut c);
            dt.iter().sum::<f64>() / nv as f64
        };
        let ratio = dt_of(3) / dt_of(6);
        assert!(
            ratio > 1.5 && ratio < 3.0,
            "halving h should roughly halve dt, got ratio {ratio}"
        );
    }
}
