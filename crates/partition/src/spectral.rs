//! Self-contained spectral machinery for recursive spectral bisection
//! (Pothen, Simon, Liou, SIAM J. Matrix Anal. Appl. 1990 — reference \[10\]
//! of the paper): a Lanczos iteration on the graph Laplacian, deflated
//! against the constant vector, with a dense Jacobi eigensolver for the
//! small tridiagonal projection, yielding the **Fiedler vector** used to
//! split the mesh.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A compact undirected graph in CSR form (vertex → neighbour vertices).
#[derive(Debug, Clone)]
pub struct Graph {
    pub offsets: Vec<u32>,
    pub nbrs: Vec<u32>,
}

impl Graph {
    /// Build from an undirected edge list over `nverts` vertices.
    pub fn from_edges(nverts: usize, edges: &[[u32; 2]]) -> Graph {
        let mut counts = vec![0u32; nverts + 1];
        for &[a, b] in edges {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..nverts {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut nbrs = vec![0u32; offsets[nverts] as usize];
        let mut cursor = offsets.clone();
        for &[a, b] in edges {
            nbrs[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            nbrs[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        Graph { offsets, nbrs }
    }

    pub fn nverts(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.nbrs[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// `y = L x` where `L = D - A` is the combinatorial Laplacian.
    pub fn laplacian_matvec(&self, x: &[f64], y: &mut [f64]) {
        for v in 0..self.nverts() {
            let mut acc = self.degree(v) as f64 * x[v];
            for &u in self.neighbors(v) {
                acc -= x[u as usize];
            }
            y[v] = acc;
        }
    }
}

/// Eigen-decomposition of a small dense symmetric matrix by cyclic Jacobi
/// rotations. Returns `(eigenvalues, eigenvectors-as-columns)`; not sorted.
#[allow(clippy::needless_range_loop)] // textbook matrix index notation
pub fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += a[p][q] * a[p][q];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }
    let eigvals = (0..n).map(|i| a[i][i]).collect();
    (eigvals, v)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Remove the component of `x` along (normalized) `q`.
fn orthogonalize(x: &mut [f64], q: &[f64]) {
    let c = dot(x, q);
    for (xi, qi) in x.iter_mut().zip(q) {
        *xi -= c * qi;
    }
}

/// A Fiedler solve with its convergence accounting: the (Ritz) vector
/// plus the number of Lanczos iterations that were actually run, so
/// callers (and the partition plan) can report where the iteration cap
/// bound the work and where the tolerance stopped it early.
#[derive(Debug, Clone)]
pub struct FiedlerSolve {
    /// The approximate Fiedler vector.
    pub vector: Vec<f64>,
    /// Lanczos iterations performed (≤ the iteration cap).
    pub iterations: usize,
}

/// Approximate the Fiedler vector (eigenvector of the second-smallest
/// Laplacian eigenvalue) of a graph by Lanczos steps with full
/// reorthogonalization and deflation of the constant null vector.
///
/// Runs at most `iters` steps; `tol = 0.0` always runs to the cap (the
/// historical fixed-count behaviour), while `tol > 0.0` stops as soon as
/// the Ritz-pair residual bound `β·|s_k|` drops below `tol` relative to
/// the Ritz value — the iteration cap remains the fallback.
///
/// On disconnected graphs this returns a vector separating components
/// (an exact zero eigenvector orthogonal to 1), which still produces a
/// sensible bisection. Graphs with < 3 vertices get a trivial ±pattern.
pub fn fiedler_vector_tol(g: &Graph, iters: usize, tol: f64, seed: u64) -> FiedlerSolve {
    lanczos_fiedler(
        g.nverts(),
        |x, y| g.laplacian_matvec(x, y),
        iters,
        tol,
        seed,
    )
}

/// Fixed-iteration-count Fiedler vector — `fiedler_vector_tol` with the
/// tolerance disabled. Kept as the exact-compatibility entry point: the
/// flat-RSB golden histories depend on this running precisely `iters`
/// Lanczos steps (modulo breakdown).
pub fn fiedler_vector(g: &Graph, iters: usize, seed: u64) -> Vec<f64> {
    fiedler_vector_tol(g, iters, 0.0, seed).vector
}

/// The shared Lanczos driver: `matvec` applies the (possibly weighted)
/// graph Laplacian, which is the only thing that differs between the
/// flat unweighted path and the multilevel coarse-graph path.
pub(crate) fn lanczos_fiedler(
    n: usize,
    matvec: impl Fn(&[f64], &mut [f64]),
    iters: usize,
    tol: f64,
    seed: u64,
) -> FiedlerSolve {
    if n == 0 {
        return FiedlerSolve {
            vector: Vec::new(),
            iterations: 0,
        };
    }
    if n <= 2 {
        return FiedlerSolve {
            vector: (0..n).map(|i| if i == 0 { -1.0 } else { 1.0 }).collect(),
            iterations: 0,
        };
    }
    let m = iters.min(n - 1).max(2);
    let ones = vec![1.0 / (n as f64).sqrt(); n];
    let mut rng = StdRng::seed_from_u64(seed);

    // Lanczos basis with full reorthogonalization (robust at these sizes).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    orthogonalize(&mut v, &ones);
    let nv = norm(&v);
    if nv < 1e-30 {
        // Astronomically unlikely; fall back to a deterministic pattern.
        v = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        orthogonalize(&mut v, &ones);
    }
    let nv = norm(&v);
    for x in &mut v {
        *x /= nv;
    }

    let mut w = vec![0.0; n];
    for _k in 0..m {
        matvec(&v, &mut w);
        let alpha = dot(&v, &w);
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= alpha * vi;
        }
        if let Some(prev) = basis.last() {
            let beta_prev = *betas.last().unwrap();
            for (wi, pi) in w.iter_mut().zip(prev) {
                *wi -= beta_prev * pi;
            }
        }
        // Full reorthogonalization against the deflated space and basis.
        orthogonalize(&mut w, &ones);
        for b in &basis {
            orthogonalize(&mut w, b);
        }
        basis.push(v.clone());
        alphas.push(alpha);
        let beta = norm(&w);
        if beta < 1e-12 {
            break;
        }
        // Tolerance-based early stop: the Ritz pair (θ, y) of the
        // projected tridiagonal T_k has residual ‖L y − θ y‖ = β·|s_k|
        // (last component of the projected eigenvector), the classical
        // Lanczos bound. Guarded by `tol > 0.0` so the legacy
        // fixed-count path executes bit-identically.
        if tol > 0.0 && alphas.len() >= 3 {
            let (theta, s_last) = min_ritz_edge(&alphas, &betas);
            if beta * s_last.abs() <= tol * theta.abs().max(tol) {
                break;
            }
        }
        betas.push(beta);
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi / beta;
        }
    }

    // Projected tridiagonal problem.
    let k = alphas.len();
    let mut t = vec![vec![0.0; k]; k];
    for i in 0..k {
        t[i][i] = alphas[i];
        if i + 1 < k {
            t[i][i + 1] = betas[i];
            t[i + 1][i] = betas[i];
        }
    }
    let (evals, evecs) = jacobi_eigen(t);
    let best = (0..k)
        .min_by(|&i, &j| evals[i].partial_cmp(&evals[j]).unwrap())
        .unwrap();

    // Ritz vector = basis * evec column `best`.
    let mut fiedler = vec![0.0; n];
    for (j, b) in basis.iter().enumerate() {
        let c = evecs[j][best];
        for (fi, bi) in fiedler.iter_mut().zip(b) {
            *fi += c * bi;
        }
    }
    FiedlerSolve {
        vector: fiedler,
        iterations: k,
    }
}

/// Smallest Ritz value of the tridiagonal `T_k` built from `alphas` /
/// `betas`, plus the last component of its projected eigenvector —
/// the two numbers the Lanczos residual bound needs.
fn min_ritz_edge(alphas: &[f64], betas: &[f64]) -> (f64, f64) {
    let k = alphas.len();
    let mut t = vec![vec![0.0; k]; k];
    for i in 0..k {
        t[i][i] = alphas[i];
        if i + 1 < k {
            t[i][i + 1] = betas[i];
            t[i + 1][i] = betas[i];
        }
    }
    let (evals, evecs) = jacobi_eigen(t);
    let best = (0..k)
        .min_by(|&i, &j| evals[i].partial_cmp(&evals[j]).unwrap())
        .unwrap();
    (evals[best], evecs[k - 1][best])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<[u32; 2]> = (0..n - 1).map(|i| [i as u32, i as u32 + 1]).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn graph_from_edges_degrees() {
        let g = path_graph(5);
        assert_eq!(g.nverts(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let g = path_graph(7);
        let x = vec![3.5; 7];
        let mut y = vec![0.0; 7];
        g.laplacian_matvec(&x, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_eigen_2x2() {
        let (vals, vecs) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-10);
        assert!((sorted[1] - 3.0).abs() < 1e-10);
        // Eigenvector check: A v = λ v for the first column.
        let a = [[2.0, 1.0], [1.0, 2.0]];
        for col in 0..2 {
            for row in 0..2 {
                let av = a[row][0] * vecs[0][col] + a[row][1] * vecs[1][col];
                assert!((av - vals[col] * vecs[row][col]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn fiedler_of_path_is_monotone() {
        // The Fiedler vector of a path graph is a discrete cosine: strictly
        // monotone, so its sign pattern splits the path in half.
        let g = path_graph(20);
        let f = fiedler_vector(&g, 30, 7);
        let increasing = f.windows(2).all(|w| w[1] > w[0]);
        let decreasing = f.windows(2).all(|w| w[1] < w[0]);
        assert!(
            increasing || decreasing,
            "path Fiedler vector must be monotone: {f:?}"
        );
    }

    #[test]
    fn fiedler_separates_a_dumbbell() {
        // Two K4 cliques joined by one edge: the Fiedler vector's sign
        // splits the cliques.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push([a, b]);
                edges.push([a + 4, b + 4]);
            }
        }
        edges.push([3, 4]);
        let g = Graph::from_edges(8, &edges);
        let f = fiedler_vector(&g, 20, 3);
        let s0 = f[0].signum();
        for i in 0..4 {
            assert_eq!(f[i].signum(), s0, "clique A on one side");
            assert_eq!(f[i + 4].signum(), -s0, "clique B on the other");
        }
    }

    #[test]
    fn fiedler_orthogonal_to_ones() {
        let g = path_graph(15);
        let f = fiedler_vector(&g, 20, 1);
        let s: f64 = f.iter().sum();
        assert!(s.abs() < 1e-8 * norm(&f).max(1.0));
    }

    #[test]
    fn fiedler_tiny_graphs() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(fiedler_vector(&g, 10, 0).len(), 1);
        let g2 = Graph::from_edges(2, &[[0, 1]]);
        let f2 = fiedler_vector(&g2, 10, 0);
        assert_eq!(f2.len(), 2);
        assert!(f2[0] != f2[1]);
    }

    #[test]
    fn fiedler_disconnected_graph_separates_components() {
        // Two disjoint triangles.
        let edges = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]];
        let g = Graph::from_edges(6, &edges);
        let f = fiedler_vector(&g, 20, 5);
        let s0 = f[0].signum();
        assert!(f[..3].iter().all(|x| x.signum() == s0));
        assert!(f[3..].iter().all(|x| x.signum() == -s0));
    }
}
