//! The partitioning cost the paper complains about (§2.4, §6: RSB "was
//! found to require CPU times comparable to the amount of time required
//! for the entire flow solution procedure"): flat recursive spectral
//! bisection vs multilevel RSB and the cheap geometric/random baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eul3d_mesh::gen::unit_box;
use eul3d_partition::rcb::rcb_partition;
use eul3d_partition::{
    random_partition, FlatRsb, MultilevelRsb, PartitionOptions, PartitionQuality, Partitioner,
};

fn bench_partitioning(c: &mut Criterion) {
    let mesh = unit_box(12, 0.15, 5);
    let nparts = 16;
    let opts = PartitionOptions::new(nparts).lanczos_iters(40).seed(1);

    let mut group = c.benchmark_group("partitioning_16_parts");
    group.sample_size(10);
    group.bench_function("rsb_spectral_flat", |b| {
        b.iter(|| {
            black_box(
                FlatRsb
                    .partition(mesh.nverts(), &mesh.edges, &opts)
                    .unwrap(),
            )
        });
    });
    group.bench_function("rsb_spectral_multilevel", |b| {
        b.iter(|| {
            black_box(
                MultilevelRsb
                    .partition(mesh.nverts(), &mesh.edges, &opts)
                    .unwrap(),
            )
        });
    });
    group.bench_function("rcb_coordinate", |b| {
        b.iter(|| black_box(rcb_partition(&mesh.coords, nparts)));
    });
    group.bench_function("random", |b| {
        b.iter(|| black_box(random_partition(mesh.nverts(), nparts, 1)));
    });
    group.finish();

    // Print the quality side of the trade-off once (criterion measures
    // only time; cut quality is why RSB is worth its cost).
    for (name, parts) in [
        (
            "flat-rsb",
            FlatRsb
                .partition(mesh.nverts(), &mesh.edges, &opts)
                .unwrap()
                .assignment,
        ),
        (
            "multilevel",
            MultilevelRsb
                .partition(mesh.nverts(), &mesh.edges, &opts)
                .unwrap()
                .assignment,
        ),
        ("rcb", rcb_partition(&mesh.coords, nparts)),
        ("random", random_partition(mesh.nverts(), nparts, 1)),
    ] {
        let q = PartitionQuality::compute(&parts, nparts, &mesh.edges);
        eprintln!(
            "quality {name:10}: cut {:5} edges ({:.1}%), imbalance {:.3}",
            q.cut_edges,
            100.0 * q.cut_fraction,
            q.max_imbalance
        );
    }
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
