//! Quantitative verification suite: the solver against *exact*
//! compressible-flow solutions (beyond the paper's qualitative "good
//! shock resolution"). Three studies:
//!
//! 1. **freestream preservation** — uniform flow must be an exact
//!    discrete fixed point (dual-surface closure);
//! 2. **oblique shock** — supersonic wedge flow vs the exact θ–β–M
//!    relation (shock angle & pressure ratio);
//! 3. **grid convergence** — entropy-error norm of smooth subsonic bump
//!    flow under uniform mesh refinement (discretization order).

use eul3d_core::gas::oblique_shock;
use eul3d_core::postproc::{entropy_error_field, l2_norm, pressure_field};
use eul3d_core::{Scheme, SingleGridSolver, SolverConfig};
use eul3d_mesh::gen::{bump_channel, wedge_channel, BumpSpec, WedgeSpec};
use eul3d_mesh::refine::refine_uniform;
use eul3d_mesh::Vec3;
use eul3d_perf::TextTable;

fn nearest(mesh: &eul3d_mesh::TetMesh, pt: Vec3) -> usize {
    mesh.coords
        .iter()
        .enumerate()
        .map(|(i, &c)| (i, (c - pt).norm_sq()))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
}

fn main() {
    let mut failures = 0;

    // ---- 1. freestream preservation ------------------------------------
    println!("1) freestream preservation (uniform flow = exact fixed point):");
    {
        let mesh = eul3d_mesh::gen::unit_box(6, 0.22, 17);
        let cfg = SolverConfig {
            mach: 0.8,
            alpha_deg: 3.0,
            ..SolverConfig::default()
        };
        let mut s = SingleGridSolver::new(mesh, cfg);
        let r = s.cycle();
        let ok = r < 1e-12;
        println!(
            "   residual after one cycle: {r:.2e}  [{}]",
            if ok { "PASS" } else { "FAIL" }
        );
        failures += !ok as u32;
    }

    // ---- 2. oblique shock ------------------------------------------------
    println!("\n2) supersonic wedge vs exact oblique-shock theory (M=2, θ=10°):");
    for scheme in [Scheme::CentralJst, Scheme::RoeUpwind] {
        println!("   scheme: {scheme:?}");
        let cfg = SolverConfig {
            mach: 2.0,
            cfl: 2.0,
            scheme,
            ..SolverConfig::default()
        };
        let spec = WedgeSpec {
            nx: 30,
            ny: 12,
            nz: 3,
            ..WedgeSpec::default()
        };
        let mesh = wedge_channel(&spec);
        let mut s = SingleGridSolver::new(mesh, cfg);
        let hist = s.solve(300);
        println!("   converged to {:.2e}", hist.last().unwrap());
        let (beta, pr_exact, m2) = oblique_shock(cfg.gamma, 2.0, spec.angle_deg).unwrap();
        let p = pressure_field(cfg.gamma, s.state(), s.st.n);
        let p_inf = 1.0 / cfg.gamma;
        let mut t = TextTable::new(&["probe", "p/p∞ measured", "p/p∞ exact", "err %"]);
        let mut worst: f64 = 0.0;
        for (x, y) in [(0.7, 0.25), (0.9, 0.30), (1.1, 0.35)] {
            let pr = p[nearest(&s.mesh, Vec3::new(x, y, 0.2))] / p_inf;
            let err = 100.0 * (pr / pr_exact - 1.0);
            worst = worst.max(err.abs());
            t.row(&[
                format!("({x:.1},{y:.2}) behind shock"),
                format!("{pr:.4}"),
                format!("{pr_exact:.4}"),
                format!("{err:+.1}"),
            ]);
        }
        let pr_pre = p[nearest(&s.mesh, Vec3::new(-0.3, 0.5, 0.2))] / p_inf;
        t.row(&[
            "(-0.3,0.50) ahead of shock".into(),
            format!("{pr_pre:.4}"),
            "1.0000".into(),
            format!("{:+.1}", 100.0 * (pr_pre - 1.0)),
        ]);
        println!("{}", t.render());
        println!("   exact: β = {beta:.2}°, M₂ = {m2:.2}");
        let ok = worst < 3.0 && (pr_pre - 1.0).abs() < 0.02;
        println!(
            "   worst post-shock error {worst:.1}%  [{}]",
            if ok { "PASS" } else { "FAIL" }
        );
        failures += !ok as u32;
    }

    // ---- 3. grid convergence (entropy error) -----------------------------
    println!("\n3) grid convergence of the entropy error (smooth subsonic bump):");
    {
        let cfg = SolverConfig {
            mach: 0.4,
            ..SolverConfig::default()
        };
        let base = bump_channel(&BumpSpec {
            nx: 10,
            ny: 5,
            nz: 3,
            bump_height: 0.06,
            jitter: 0.08,
            seed: 5,
            ..BumpSpec::default()
        });
        let meshes = vec![
            base.clone(),
            refine_uniform(&base),
            refine_uniform(&refine_uniform(&base)),
        ];
        let mut t = TextTable::new(&["h (rel)", "nodes", "entropy L2", "order"]);
        let mut prev: Option<f64> = None;
        let mut orders = Vec::new();
        for (k, mesh) in meshes.into_iter().enumerate() {
            let cycles = 300 * (k + 1); // finer meshes need more cycles
            let mut s = SingleGridSolver::new(mesh, cfg);
            s.solve(cycles);
            let ent = entropy_error_field(cfg.gamma, s.state(), s.st.n);
            let err = l2_norm(&ent, &s.mesh.vol);
            let order = prev.map(|p: f64| (p / err).log2());
            if let Some(o) = order {
                orders.push(o);
            }
            t.row(&[
                format!("1/{}", 1 << k),
                s.st.n.to_string(),
                format!("{err:.3e}"),
                order
                    .map(|o| format!("{o:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
            prev = Some(err);
        }
        println!("{}", t.render());
        // Switched JST dissipation on irregular tets observes between
        // 1st and 2nd order in entropy; require monotone decay with
        // order comfortably above zero and improving toward refinement.
        let ok = orders.iter().all(|&o| o > 0.5) && orders.windows(2).all(|w| w[1] >= w[0] - 0.05);
        println!(
            "   error falls under refinement with observed order {:?}  [{}]",
            orders.iter().map(|o| format!("{o:.2}")).collect::<Vec<_>>(),
            if ok { "PASS" } else { "FAIL" }
        );
        failures += !ok as u32;
    }

    println!(
        "\nvalidation: {}",
        if failures == 0 {
            "ALL PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
