//! End-to-end tests of the `eul3d` binary.

use std::process::Command;

fn eul3d(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eul3d"))
        .args(args)
        .output()
        .expect("failed to run eul3d binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn mesh_command_reports_levels() {
    let (ok, stdout, _) = eul3d(&["mesh", "--nx", "8", "--levels", "2"]);
    assert!(ok);
    assert!(stdout.contains("level"));
    assert!(stdout.contains("true"), "meshes must be valid: {stdout}");
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.trim_start().starts_with(['0', '1']))
            .count(),
        2
    );
}

#[test]
fn partition_command_all_methods() {
    for method in [
        "flat-rsb",
        "rsb",
        "multilevel",
        "ml",
        "rcb",
        "random",
        "prcb",
    ] {
        let (ok, stdout, stderr) =
            eul3d(&["partition", "--nx", "8", "--parts", "4", "--method", method]);
        assert!(ok, "method {method} failed: {stderr}");
        assert!(stdout.contains("cut edges"), "{stdout}");
    }
    let (ok, _, stderr) = eul3d(&["partition", "--nx", "8", "--method", "metis"]);
    assert!(!ok, "unknown method must be rejected");
    assert!(stderr.contains("flat-rsb|multilevel"), "{stderr}");
}

#[test]
fn partition_command_reports_plan_quality() {
    // Spectral methods print the full plan block: comm volume, mapped vs
    // identity hop volume, Fiedler work, and partition wall time.
    let (ok, stdout, stderr) = eul3d(&[
        "partition",
        "--nx",
        "10",
        "--parts",
        "8",
        "--method",
        "multilevel",
        "--mapping",
        "topology",
        "--coarsen-target",
        "32",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("via multilevel"), "{stdout}");
    for line in [
        "cut edges",
        "max imbalance",
        "comm volume",
        "hop volume",
        "(topology; identity",
        "fiedler iters",
        "partition time",
    ] {
        assert!(stdout.contains(line), "missing '{line}' in: {stdout}");
    }

    // The geometric baselines have no spectral plan to map.
    let (ok, _, stderr) = eul3d(&[
        "partition",
        "--nx",
        "8",
        "--method",
        "rcb",
        "--mapping",
        "topology",
    ]);
    assert!(!ok, "topology mapping needs a spectral method");
    assert!(stderr.contains("spectral"), "{stderr}");

    let (ok, _, stderr) = eul3d(&["partition", "--nx", "8", "--mapping", "torus"]);
    assert!(!ok);
    assert!(stderr.contains("identity|topology"), "{stderr}");
}

#[test]
fn solve_roundtrip_with_checkpoint() {
    let dir = std::env::temp_dir().join("eul3d_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("cli_state.ck");
    let ck_s = ck.to_str().unwrap();

    let (ok, stdout, stderr) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--levels",
        "2",
        "--cycles",
        "10",
        "--strategy",
        "v",
        "--checkpoint",
        ck_s,
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("checkpointed"));

    let (ok2, stdout2, stderr2) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--levels",
        "2",
        "--cycles",
        "3",
        "--strategy",
        "v",
        "--restart",
        ck_s,
    ]);
    assert!(ok2, "{stderr2}");
    assert!(stdout2.contains("restarted"));
    std::fs::remove_file(&ck).ok();
}

#[test]
fn distributed_command_runs() {
    let (ok, stdout, stderr) = eul3d(&[
        "distributed",
        "--nx",
        "8",
        "--levels",
        "2",
        "--ranks",
        "4",
        "--cycles",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("modeled Delta cost"));
}

#[test]
fn distributed_with_mid_run_repartitioning() {
    let (ok, stdout, stderr) = eul3d(&[
        "distributed",
        "--nx",
        "8",
        "--levels",
        "2",
        "--ranks",
        "4",
        "--cycles",
        "6",
        "--partition-method",
        "multilevel",
        "--partition-mapping",
        "topology",
        "--repartition-every",
        "3",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("multilevel partitioning of all levels"),
        "{stdout}"
    );
    assert!(
        stdout.contains("mid-run repartition every 3 cycles (multilevel, topology mapping)"),
        "{stdout}"
    );
    assert!(stdout.contains("modeled Delta cost"), "{stdout}");

    let (ok, _, stderr) = eul3d(&["distributed", "--nx", "8", "--partition-method", "scotch"]);
    assert!(!ok, "unknown partition method must be rejected");
    assert!(stderr.contains("flat-rsb|multilevel"), "{stderr}");
}

#[test]
fn distributed_hybrid_backend_reports_wall_and_modeled_time() {
    let (ok, stdout, stderr) = eul3d(&[
        "distributed",
        "--nx",
        "8",
        "--levels",
        "2",
        "--ranks",
        "32",
        "--threads",
        "2",
        "--backend",
        "hybrid",
        "--cycles",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("on 2 hybrid threads"),
        "--threads must override --ranks under hybrid: {stdout}"
    );
    assert!(stdout.contains("modeled Delta cost"), "{stdout}");
    assert!(stdout.contains("hybrid wall time"), "{stdout}");

    let (ok, _, stderr) = eul3d(&["distributed", "--nx", "8", "--backend", "mpi"]);
    assert!(!ok, "unknown backend must be rejected");
    assert!(stderr.contains("delta|hybrid"), "{stderr}");
}

#[test]
fn distributed_with_faults_recovers_and_reports() {
    let (ok, stdout, stderr) = eul3d(&[
        "distributed",
        "--nx",
        "8",
        "--levels",
        "2",
        "--ranks",
        "4",
        "--cycles",
        "6",
        "--faults",
        "kill:1@2+5",
        "--checkpoint-every",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("recovery epoch"), "{stdout}");
    assert!(
        stdout.contains("rank 1 died") && stdout.contains("adopted by rank 2"),
        "{stdout}"
    );
    assert!(stdout.contains("modeled Delta cost"), "{stdout}");
}

#[test]
fn malformed_fault_spec_is_a_clean_error() {
    let (ok, _, stderr) = eul3d(&[
        "distributed",
        "--nx",
        "8",
        "--ranks",
        "4",
        "--faults",
        "explode:everything",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error: --faults:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn missing_restart_file_is_a_clean_error() {
    let bogus = std::env::temp_dir().join("eul3d_no_such_checkpoint.ck");
    std::fs::remove_file(&bogus).ok();
    let (ok, _, stderr) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--levels",
        "1",
        "--cycles",
        "1",
        "--restart",
        bogus.to_str().unwrap(),
    ]);
    assert!(!ok, "missing restart file must fail");
    assert!(stderr.contains("error: restart:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn zero_cycles_is_rejected() {
    let (ok, _, stderr) = eul3d(&["solve", "--nx", "8", "--levels", "1", "--cycles", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--cycles must be at least 1"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected() {
    let (ok, _, stderr) = eul3d(&["solve", "--nonsense", "1", "--cycles", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn unknown_command_is_rejected() {
    let (ok, _, stderr) = eul3d(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    let (ok, _, stderr) = eul3d(&["help"]);
    assert!(ok);
    assert!(stderr.contains("commands:"));
}

const STRETCHED: &[&str] = &[
    "--nx",
    "10",
    "--ny",
    "4",
    "--nz",
    "3",
    "--taper",
    "0.6",
    "--jitter",
    "0.1",
    "--levels",
    "2",
    "--cycles",
    "12",
    "--strategy",
    "v",
    "--cfl",
    "30",
    "--mach",
    "0.5",
];

#[test]
fn guard_recovers_a_run_that_diverges_unguarded() {
    let (ok, _, stderr) = eul3d(&[&["solve"], STRETCHED].concat());
    assert!(!ok, "CFL 30 on the stretched mesh must diverge unguarded");
    assert!(stderr.contains("run diverged"), "{stderr}");

    let (ok, stdout, stderr) =
        eul3d(&[&["solve"], STRETCHED, &["--guard", "--cfl-backoff", "0.25"]].concat());
    assert!(ok, "the guard must save the same run: {stderr}");
    assert!(stdout.contains("health guard:"), "{stdout}");
    assert!(stdout.contains("backoff epochs 1"), "{stdout}");
    assert!(
        stdout.contains("cfl 30.000 -> 7.500"),
        "one quarter backoff from the target: {stdout}"
    );
}

#[test]
fn guard_exhaustion_is_a_clean_typed_error() {
    let (ok, _, stderr) = eul3d(
        &[
            &["solve"],
            STRETCHED,
            &["--guard", "--cfl-backoff", "0.95", "--max-retries", "2"],
        ]
        .concat(),
    );
    assert!(!ok, "a 5% backoff cannot save CFL 30");
    assert!(stderr.contains("guard exhausted 2 retries"), "{stderr}");
    assert_eq!(
        stderr.matches("retry: cycle").count(),
        2,
        "the transcript lists both spent retries: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn guard_flags_are_validated() {
    let (ok, _, stderr) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--cycles",
        "2",
        "--cfl-backoff",
        "1.5",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--cfl-backoff must be in (0, 1)"),
        "{stderr}"
    );

    let (ok, _, stderr) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--cycles",
        "2",
        "--guard",
        "--max-retries",
        "0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--max-retries must be >= 1"), "{stderr}");
}

#[test]
fn trace_flag_writes_chrome_trace_json() {
    let dir = std::env::temp_dir().join("eul3d_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serial.json");
    let path_s = path.to_str().unwrap();
    let (ok, stdout, stderr) = eul3d(&[
        "solve",
        "--nx",
        "8",
        "--levels",
        "2",
        "--cycles",
        "4",
        "--trace",
        path_s,
        "--trace-summary",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote trace"), "{stdout}");
    assert!(
        stdout.contains("slowest spans"),
        "--trace-summary must print the table: {stdout}"
    );
    let trace = std::fs::read_to_string(&path).unwrap();
    assert!(trace.starts_with("{\"traceEvents\": ["), "{trace}");
    assert!(trace.contains("\"thread_name\""), "lane metadata: {trace}");
    assert!(
        trace.contains("\"ph\": \"B\"") && trace.contains("\"ph\": \"E\""),
        "phase spans present"
    );
    assert!(trace.trim_end().ends_with('}'), "JSON must be closed");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fault_recovery_traces_are_byte_identical_across_reruns() {
    let dir = std::env::temp_dir().join("eul3d_cli_trace_det");
    std::fs::create_dir_all(&dir).unwrap();
    let mut traces = Vec::new();
    for n in 0..2 {
        let path = dir.join(format!("fault_{n}.json"));
        let path_s = path.to_str().unwrap();
        let (ok, stdout, stderr) = eul3d(
            &[
                &["distributed"],
                STRETCHED,
                &[
                    "--ranks",
                    "4",
                    "--guard",
                    "--cfl-backoff",
                    "0.25",
                    "--faults",
                    "kill:1@6",
                    "--checkpoint-every",
                    "2",
                    "--fault-timeout-ms",
                    "60000",
                    "--trace",
                    path_s,
                ],
            ]
            .concat(),
        );
        assert!(ok, "{stderr}");
        assert!(stdout.contains("recovery epoch"), "{stdout}");
        traces.push(std::fs::read_to_string(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        traces[0], traces[1],
        "guarded fault-injected runs must export byte-identical traces"
    );
    assert!(traces[0].contains("\"recovery\""), "recovery epoch lane");
    assert!(traces[0].contains("\"cfl-change\""), "CFL backoff marker");
    assert!(traces[0].contains("(adopted by"), "replica lane present");
}

#[test]
fn config_file_loads_and_flags_override_it() {
    let dir = std::env::temp_dir().join("eul3d_cli_config_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.toml");
    std::fs::write(
        &path,
        "[mesh]\nnx = 8\nny = 4\nnz = 3\n\n[run]\ncycles = 4\nlevels = 2\n\n[solver]\ncfl = 4.0\n",
    )
    .unwrap();
    let path_s = path.to_str().unwrap();

    let (ok, stdout, stderr) = eul3d(&["solve", "--config", path_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("cycles"), "{stdout}");

    // A flag overrides the file: forcing zero cycles must now fail.
    let (ok, _, stderr) = eul3d(&["solve", "--config", path_s, "--cycles", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--cycles must be at least 1"), "{stderr}");

    // A malformed file is a clean, line-numbered error.
    std::fs::write(&path, "[mesh]\nnx = what\n").unwrap();
    let (ok, _, stderr) = eul3d(&["solve", "--config", path_s]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn distributed_guard_reports_the_same_recovery() {
    let (ok, stdout, stderr) = eul3d(
        &[
            &["distributed"],
            STRETCHED,
            &[
                "--ranks",
                "4",
                "--guard",
                "--cfl-backoff",
                "0.25",
                "--fault-timeout-ms",
                "60000",
            ],
        ]
        .concat(),
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("health guard:"), "{stdout}");
    assert!(stdout.contains("backoff epochs 1"), "{stdout}");
    assert!(stdout.contains("cfl 30.000 -> 7.500"), "{stdout}");
    assert!(stdout.contains("modeled Delta cost"), "{stdout}");
}
