//! Per-level solver state and **the** five-stage time step — eq. (1) of
//! the paper, with the dissipative operator evaluated at the first two
//! stages and frozen for the remainder.
//!
//! Every routine here is written once, generic over an
//! [`Executor`](crate::executor::Executor): the sequential reference, the
//! coloured shared-memory path and the PARTI distributed path all run
//! this exact code, differing only in how the edge loops are scheduled
//! and how ghost data is kept coherent. This is the paper's central
//! architectural claim, made literal.
//!
//! The hot per-vertex fields live in plane-major [`SoaState`] arrays and
//! the loops call the lane-chunked kernels of [`eul3d_kernels`] — see
//! that crate's docs for the bit-equivalence contract that keeps all
//! three backends producing the exact bits of the old interleaved path.

use eul3d_kernels as kn;
use eul3d_mesh::{BoundaryFace, TetMesh, Vec3};
use eul3d_partition::RankMesh;

use crate::boundary::boundary_residual_soa;
use crate::config::SolverConfig;
use crate::counters::{
    FlopCounter, PhaseCounters, FLOPS_ASSEMBLE_VERT, FLOPS_CONV_EDGE, FLOPS_DISS_FO_EDGE,
    FLOPS_DISS_P1_EDGE, FLOPS_DISS_P2_EDGE, FLOPS_DISS_ROE_EDGE, FLOPS_DT_VERT,
    FLOPS_PRESSURE_VERT, FLOPS_RADII_EDGE, FLOPS_SMOOTH_EDGE, FLOPS_SMOOTH_VERT, FLOPS_UPDATE_VERT,
};
use crate::executor::{
    count_edge_loop, count_vertex_loop, count_vertex_loop_with, Executor, HaloOp, Phase,
};
use crate::gas::NVAR;
use crate::smooth::degrees_from_edges;
use crate::soa::SoaState;
use crate::timestep::radii_bfaces_soa;

/// Anything a solver level can time-step on: an edge list with dual-face
/// coefficients, tagged boundary faces, and control volumes. Implemented
/// by [`TetMesh`], by agglomerated coarse levels
/// ([`crate::agglo::AggloLevel`]), and by the per-rank local meshes of
/// the distributed path ([`RankMesh`]).
pub trait SolverGrid {
    fn grid_edges(&self) -> &[[u32; 2]];
    fn grid_edge_coef(&self) -> &[Vec3];
    fn grid_bfaces(&self) -> &[BoundaryFace];
    /// Control volumes of the vertices this participant *owns* (updates).
    fn grid_vol(&self) -> &[f64];
    /// Total per-vertex array length — owned plus ghost slots. Equal to
    /// `grid_vol().len()` except on rank-local meshes.
    fn grid_nverts(&self) -> usize {
        self.grid_vol().len()
    }
}

impl SolverGrid for TetMesh {
    fn grid_edges(&self) -> &[[u32; 2]] {
        &self.edges
    }
    fn grid_edge_coef(&self) -> &[Vec3] {
        &self.edge_coef
    }
    fn grid_bfaces(&self) -> &[BoundaryFace] {
        &self.bfaces
    }
    fn grid_vol(&self) -> &[f64] {
        &self.vol
    }
}

impl SolverGrid for RankMesh {
    fn grid_edges(&self) -> &[[u32; 2]] {
        &self.edges
    }
    fn grid_edge_coef(&self) -> &[Vec3] {
        &self.edge_coef
    }
    fn grid_bfaces(&self) -> &[BoundaryFace] {
        &self.bfaces
    }
    fn grid_vol(&self) -> &[f64] {
        &self.vol
    }
    fn grid_nverts(&self) -> usize {
        self.n_local()
    }
}

/// All per-vertex working arrays of one solver level. Vector fields are
/// plane-major [`SoaState`]s; scalars are plain `Vec<f64>`. Sized by
/// [`SolverGrid::grid_nverts`], so on the distributed path every array
/// carries ghost slots after the owned prefix.
#[derive(Debug, Clone)]
pub struct LevelState {
    /// Per-vertex slot count of this level (owned + ghost).
    pub n: usize,
    /// Conserved variables (5 planes).
    pub w: SoaState,
    /// Stage-reference state `w^(0)` (5 planes).
    pub w0: SoaState,
    /// Pressures (n).
    pub p: Vec<f64>,
    /// Undivided Laplacian of `w` (5 planes).
    pub lapl: SoaState,
    /// Pressure-sensor accumulators (2 planes: Σ(p_j−p_i), Σ(p_j+p_i)).
    pub sens: SoaState,
    /// Shock sensor ν (n).
    pub nu: Vec<f64>,
    /// Frozen dissipation `D` (5 planes).
    pub diss: SoaState,
    /// Convective residual `Q` (5 planes).
    pub q: SoaState,
    /// Total (smoothed) residual `R = Q − D + P` (5 planes).
    pub res: SoaState,
    /// Unsmoothed residual baseline for the Jacobi sweeps (5 planes).
    pub r0: SoaState,
    /// Smoothing scratch (5 planes).
    pub acc: SoaState,
    /// Spectral-radius sums Λ (n).
    pub lam: Vec<f64>,
    /// Local time steps (n).
    pub dt: Vec<f64>,
    /// Vertex degrees for residual averaging (n). Built from the local
    /// edge list, so rank-local states hold *partial* degrees until the
    /// one-time setup scatter-add.
    pub deg: Vec<f64>,
    /// Multigrid forcing function `P` (5 planes); zero on the finest
    /// level.
    pub forcing: SoaState,
    /// Restricted state `w'` (5 planes), the correction baseline.
    pub w_ref: SoaState,
    /// Transfer scratch (5 planes).
    pub corr: SoaState,
}

impl LevelState {
    /// Fresh state at uniform freestream.
    pub fn new<G: SolverGrid + ?Sized>(mesh: &G, cfg: &SolverConfig) -> LevelState {
        let n = mesh.grid_nverts();
        let fs = cfg.freestream();
        let mut w = SoaState::new(n, NVAR);
        w.fill_rows(&fs.w);
        LevelState {
            n,
            w0: w.clone(),
            w,
            p: vec![0.0; n],
            lapl: SoaState::new(n, NVAR),
            sens: SoaState::new(n, 2),
            nu: vec![0.0; n],
            diss: SoaState::new(n, NVAR),
            q: SoaState::new(n, NVAR),
            res: SoaState::new(n, NVAR),
            r0: SoaState::new(n, NVAR),
            acc: SoaState::new(n, NVAR),
            lam: vec![0.0; n],
            dt: vec![0.0; n],
            deg: degrees_from_edges(mesh.grid_edges(), n),
            forcing: SoaState::new(n, NVAR),
            w_ref: SoaState::new(n, NVAR),
            corr: SoaState::new(n, NVAR),
        }
    }

    /// RMS of the density residual normalized by dual volume — the
    /// "average residual throughout the flow field" the paper monitors.
    /// Covers the `vol.len()` owned vertices.
    pub fn density_residual_norm(&self, vol: &[f64]) -> f64 {
        let (sum, count) = self.residual_norm_parts(vol);
        (sum / count.max(1.0)).sqrt()
    }

    /// Squared density-residual sum and owned-vertex count, the two
    /// pieces a distributed norm reduces before taking the square root.
    pub fn residual_norm_parts(&self, vol: &[f64]) -> (f64, f64) {
        let n = vol.len().min(self.n);
        let rho_res = self.res.plane(0);
        let mut sum = 0.0;
        for i in 0..n {
            let r = rho_res[i] / vol[i];
            sum += r * r;
        }
        (sum, n as f64)
    }
}

/// Per-vertex pressures for every local slot (ghost pressures are
/// recomputed redundantly rather than exchanged — they are cheaper to
/// evaluate than to communicate). Only the owned work is charged, so the
/// rank-summed count matches the serial count exactly.
pub fn compute_pressures_exec<E: Executor + ?Sized>(
    gamma: f64,
    st: &mut LevelState,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    let owned = exec.owned(st.n);
    let (n, w) = (st.n, &st.w);
    exec.for_vertex_spans(st.n, &mut [&mut st.p[..]], |range, s| {
        // SAFETY: plane sizes match, ranges are disjoint (executor
        // contract).
        unsafe { kn::pressure_verts(range, gamma, w.flat(), n, s) }
    });
    count_vertex_loop(counters, Phase::Pressure, owned, FLOPS_PRESSURE_VERT);
}

/// The per-stage flow gather fused with the pressure loop: begin the
/// ghost gather of `st.w`, price the owned pressures while the halo is
/// in flight, finish the gather, then recompute ghost pressures from the
/// freshly arrived flow state. Pressure is a pure per-vertex function,
/// so splitting the loop at the owned/ghost boundary changes no value
/// and no accumulation order — every backend produces bit-identical
/// `st.p` to [`compute_pressures_exec`]. Ghost pressures stay uncounted
/// (they are recomputed redundantly rather than exchanged), so the
/// rank-summed count still matches the serial count exactly.
fn gather_flow_and_pressures<E: Executor + ?Sized>(
    gamma: f64,
    st: &mut LevelState,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    let owned = exec.owned(st.n);
    exec.exchange_begin(
        Phase::Exchange,
        HaloOp::Gather,
        st.w.flat_mut(),
        NVAR,
        counters,
    );
    let cost = exec.comm_cost();
    let n = st.n;
    {
        let w = &st.w;
        exec.for_vertex_range(0..owned, &mut [&mut st.p[..]], |range, s| {
            // SAFETY: plane sizes match, ranges are disjoint (executor
            // contract).
            unsafe { kn::pressure_verts(range, gamma, w.flat(), n, s) }
        });
    }
    count_vertex_loop_with(counters, Phase::Pressure, owned, FLOPS_PRESSURE_VERT, &cost);
    exec.exchange_finish(
        Phase::Exchange,
        HaloOp::Gather,
        st.w.flat_mut(),
        NVAR,
        counters,
    );
    {
        let w = &st.w;
        exec.for_vertex_range(owned..n, &mut [&mut st.p[..]], |range, s| {
            // SAFETY: plane sizes match, ranges are disjoint (executor
            // contract).
            unsafe { kn::pressure_verts(range, gamma, w.flat(), n, s) }
        });
    }
}

/// Complete the deferred scatter-add of `st.diss` begun by
/// [`eval_dissipation_begin`]. Must run before anything reads the owned
/// entries of `st.diss`, and — because the dissipation and convection
/// scatters share one schedule stream — before the convection scatter
/// is issued.
fn finish_dissipation_scatter<E: Executor + ?Sized>(
    st: &mut LevelState,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    exec.exchange_finish(
        Phase::Dissipation,
        HaloOp::ScatterAdd,
        st.diss.flat_mut(),
        NVAR,
        counters,
    );
}

/// Evaluate the dissipation operator into `st.diss` (fresh). Assumes
/// ghost `w` is current unless the executor is configured to refetch.
pub fn eval_dissipation<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    eval_dissipation_begin(mesh, st, cfg, is_coarse, exec, counters);
    finish_dissipation_scatter(st, exec, counters);
}

/// [`eval_dissipation`] with its *final* ghost scatter left in the begun
/// state, so the convection edge loop can overlap the in-flight halo
/// (the intermediate Laplacian/sensor/ν exchanges of the JST path are
/// synchronous — their results feed pass 2 immediately). Pair with
/// [`finish_dissipation_scatter`].
fn eval_dissipation_begin<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    exec.refetch(&mut st.w, counters);
    st.diss.fill(0.0);
    let edges = mesh.grid_edges();
    let coef = mesh.grid_edge_coef();
    let gamma = cfg.gamma;
    let (n, lanes) = (st.n, cfg.lanes);

    if cfg.scheme == crate::config::Scheme::RoeUpwind {
        // One pass, no sensor: the Laplacian/ν ghost exchanges of the
        // JST path disappear entirely.
        {
            let (w, p) = (&st.w, &st.p);
            exec.for_edge_spans(edges.len(), &mut [st.diss.flat_mut()], |span, s| {
                // SAFETY: endpoint-only writes (executor conflict
                // contract); array sizes checked by the level layout.
                unsafe { kn::roe_diss_edges(span, edges, coef, gamma, w.flat(), p, n, s, lanes) }
            });
        }
        count_edge_loop(
            counters,
            Phase::Dissipation,
            exec,
            edges.len(),
            FLOPS_DISS_ROE_EDGE,
        );
        exec.exchange_begin(
            Phase::Dissipation,
            HaloOp::ScatterAdd,
            st.diss.flat_mut(),
            NVAR,
            counters,
        );
        return;
    }

    if is_coarse && cfg.coarse_first_order {
        let k = cfg.coarse_k2;
        {
            let (w, p) = (&st.w, &st.p);
            exec.for_edge_spans(edges.len(), &mut [st.diss.flat_mut()], |span, s| {
                // SAFETY: endpoint-only writes (executor conflict
                // contract).
                unsafe {
                    kn::first_order_diss_edges(
                        span,
                        edges,
                        coef,
                        gamma,
                        k,
                        w.flat(),
                        p,
                        n,
                        s,
                        lanes,
                    )
                }
            });
        }
        count_edge_loop(
            counters,
            Phase::Dissipation,
            exec,
            edges.len(),
            FLOPS_DISS_FO_EDGE,
        );
        exec.exchange_begin(
            Phase::Dissipation,
            HaloOp::ScatterAdd,
            st.diss.flat_mut(),
            NVAR,
            counters,
        );
        return;
    }

    // JST pass 1: undivided Laplacian + pressure-sensor accumulators.
    st.lapl.fill(0.0);
    st.sens.fill(0.0);
    {
        let (w, p) = (&st.w, &st.p);
        let (lapl, sens) = (&mut st.lapl, &mut st.sens);
        exec.for_edge_spans(
            edges.len(),
            &mut [lapl.flat_mut(), sens.flat_mut()],
            |span, s| {
                // SAFETY: endpoint-only writes (executor conflict
                // contract).
                unsafe { kn::jst_pass1_edges(span, edges, w.flat(), p, n, s, lanes) }
            },
        );
    }
    count_edge_loop(
        counters,
        Phase::Dissipation,
        exec,
        edges.len(),
        FLOPS_DISS_P1_EDGE,
    );
    exec.exchange_halo(
        Phase::Dissipation,
        HaloOp::ScatterAdd,
        st.lapl.flat_mut(),
        NVAR,
        counters,
    );
    exec.exchange_halo(
        Phase::Dissipation,
        HaloOp::ScatterAdd,
        st.sens.flat_mut(),
        2,
        counters,
    );

    // ν for owned vertices (uncounted, matching the sequential
    // reference), then ghost copies of L and ν for pass 2.
    {
        let owned = exec.owned(st.n);
        let sens = &st.sens;
        exec.for_vertex_spans(owned, &mut [&mut st.nu[..]], |range, s| {
            // SAFETY: disjoint ranges (executor contract).
            unsafe { kn::sensor_verts(range, sens.flat(), n, s) }
        });
    }
    exec.exchange_halo(
        Phase::Dissipation,
        HaloOp::Gather,
        st.lapl.flat_mut(),
        NVAR,
        counters,
    );
    exec.exchange_halo(Phase::Dissipation, HaloOp::Gather, &mut st.nu, 1, counters);

    // JST pass 2: switched Laplacian/biharmonic blend.
    exec.refetch(&mut st.w, counters);
    {
        let (w, p, lapl, nu) = (&st.w, &st.p, &st.lapl, &st.nu);
        let (k2, k4) = (cfg.k2, cfg.k4);
        exec.for_edge_spans(edges.len(), &mut [st.diss.flat_mut()], |span, s| {
            // SAFETY: endpoint-only writes (executor conflict contract).
            unsafe {
                kn::jst_pass2_edges(
                    span,
                    edges,
                    coef,
                    gamma,
                    k2,
                    k4,
                    w.flat(),
                    p,
                    lapl.flat(),
                    nu,
                    n,
                    s,
                    lanes,
                )
            }
        });
    }
    count_edge_loop(
        counters,
        Phase::Dissipation,
        exec,
        edges.len(),
        FLOPS_DISS_P2_EDGE,
    );
    exec.exchange_begin(
        Phase::Dissipation,
        HaloOp::ScatterAdd,
        st.diss.flat_mut(),
        NVAR,
        counters,
    );
}

/// Evaluate the convective operator into `st.q` (fresh), including
/// boundary fluxes. Boundary faces run sequentially within each
/// participant: each face is computed by exactly one rank, so the
/// rank-summed face counts still match the serial reference.
pub fn eval_convection<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    eval_convection_inner(mesh, st, cfg, exec, counters, false);
}

/// [`eval_convection`] with an optional deferred-dissipation completion:
/// when `finish_diss` is set, the dissipation scatter begun by
/// [`eval_dissipation_begin`] is finished *after* the convection edge
/// loop and boundary faces (maximizing overlap) but *before* the
/// convection scatter is issued — both scatters ride the same schedule
/// stream, so issuing convection's first would misorder their epochs.
fn eval_convection_inner<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    exec: &mut E,
    counters: &mut PhaseCounters,
    finish_diss: bool,
) {
    exec.refetch(&mut st.w, counters);
    st.q.fill(0.0);
    let edges = mesh.grid_edges();
    let coef = mesh.grid_edge_coef();
    let (n, lanes) = (st.n, cfg.lanes);
    {
        let (w, p) = (&st.w, &st.p);
        exec.for_edge_spans(edges.len(), &mut [st.q.flat_mut()], |span, s| {
            // SAFETY: endpoint-only writes (executor conflict contract).
            unsafe { kn::conv_flux_edges(span, edges, coef, w.flat(), p, n, s, lanes) }
        });
    }
    count_edge_loop(
        counters,
        Phase::Convection,
        exec,
        edges.len(),
        FLOPS_CONV_EDGE,
    );

    let fs = cfg.freestream();
    let mut scratch = FlopCounter::default();
    boundary_residual_soa(
        mesh.grid_bfaces(),
        &st.w,
        &st.p,
        &fs,
        cfg.gamma,
        &mut st.q,
        &mut scratch,
    );
    counters.phase(Phase::Boundary).merge(&scratch);

    if finish_diss {
        finish_dissipation_scatter(st, exec, counters);
    }

    exec.exchange_halo(
        Phase::Convection,
        HaloOp::ScatterAdd,
        st.q.flat_mut(),
        NVAR,
        counters,
    );
}

/// Assemble `res = Q − D + P` on owned vertices.
pub fn assemble_residual<E: Executor + ?Sized>(
    st: &mut LevelState,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    let owned = exec.owned(st.n);
    let n = st.n;
    let (q, diss, forcing) = (&st.q, &st.diss, &st.forcing);
    exec.for_vertex_spans(owned, &mut [st.res.flat_mut()], |range, s| {
        // SAFETY: disjoint ranges (executor contract).
        unsafe { kn::assemble_verts(range, q.flat(), diss.flat(), forcing.flat(), n, s) }
    });
    count_vertex_loop(counters, Phase::Assemble, owned, FLOPS_ASSEMBLE_VERT);
}

/// Implicit residual averaging: `passes` Jacobi sweeps of
/// `(I − εΔ) R̄ = R` in place over the owned prefix of `st.res`.
pub fn smooth_residual<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    if cfg.smooth_passes == 0 || cfg.smooth_eps == 0.0 {
        return;
    }
    let owned = exec.owned(st.n);
    st.r0.copy_owned_from(&st.res, owned);
    let edges = mesh.grid_edges();
    let eps = cfg.smooth_eps;
    let (n, lanes) = (st.n, cfg.lanes);
    for _ in 0..cfg.smooth_passes {
        exec.exchange_begin(
            Phase::Smooth,
            HaloOp::Gather,
            st.res.flat_mut(),
            NVAR,
            counters,
        );
        st.acc.fill(0.0);
        exec.exchange_finish(
            Phase::Smooth,
            HaloOp::Gather,
            st.res.flat_mut(),
            NVAR,
            counters,
        );
        {
            let res = &st.res;
            exec.for_edge_spans(edges.len(), &mut [st.acc.flat_mut()], |span, s| {
                // SAFETY: endpoint-only writes (executor conflict
                // contract).
                unsafe { kn::smooth_accumulate_edges(span, edges, res.flat(), n, s, lanes) }
            });
        }
        count_edge_loop(
            counters,
            Phase::Smooth,
            exec,
            edges.len(),
            FLOPS_SMOOTH_EDGE,
        );
        exec.exchange_halo(
            Phase::Smooth,
            HaloOp::ScatterAdd,
            st.acc.flat_mut(),
            NVAR,
            counters,
        );
        {
            let (r0, acc, deg) = (&st.r0, &st.acc, &st.deg);
            exec.for_vertex_spans(owned, &mut [st.res.flat_mut()], |range, s| {
                // SAFETY: disjoint ranges (executor contract).
                unsafe { kn::smooth_update_verts(range, r0.flat(), acc.flat(), deg, eps, n, s) }
            });
        }
        count_vertex_loop(counters, Phase::Smooth, owned, FLOPS_SMOOTH_VERT);
    }
}

/// Full fresh residual evaluation (used for multigrid transfers and
/// monitoring): exchange → pressures → dissipation → convection →
/// assembly.
pub fn eval_total_residual<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    gather_flow_and_pressures(cfg.gamma, st, exec, counters);
    eval_dissipation_begin(mesh, st, cfg, is_coarse, exec, counters);
    eval_convection_inner(mesh, st, cfg, exec, counters, true);
    assemble_residual(st, exec, counters);
}

/// One five-stage Runge–Kutta time step on a level (eq. (1)):
/// `w^(q) = w^(0) − α_q Δt/V [Q(w^(q−1)) − D(w^(≤1)) + P]`, with local
/// time steps and implicit residual averaging. Leaves the last stage's
/// smoothed residual in `st.res` for monitoring.
///
/// This is the single stage loop every backend executes; only the
/// [`Executor`] differs.
pub fn time_step<G: SolverGrid + ?Sized, E: Executor + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    exec: &mut E,
    counters: &mut PhaseCounters,
) {
    let owned = exec.owned(st.n);
    debug_assert_eq!(owned, mesh.grid_vol().len());
    st.w0.copy_owned_from(&st.w, owned);
    let nstages = cfg.nstages();
    let (n, lanes) = (st.n, cfg.lanes);
    for (stage, &alpha) in cfg.rk_alpha.iter().enumerate().take(nstages) {
        // One gather of the flow variables per stage (§4.3), reused by
        // every edge loop unless the executor is set to refetch; the
        // owned pressure loop overlaps the in-flight halo.
        gather_flow_and_pressures(cfg.gamma, st, exec, counters);

        if stage == 0 {
            // Local time steps from the stage-0 state, held for the step.
            st.lam.iter_mut().for_each(|x| *x = 0.0);
            let edges = mesh.grid_edges();
            let coef = mesh.grid_edge_coef();
            let gamma = cfg.gamma;
            {
                let (w, p) = (&st.w, &st.p);
                exec.for_edge_spans(edges.len(), &mut [&mut st.lam[..]], |span, s| {
                    // SAFETY: endpoint-only writes (executor conflict
                    // contract).
                    unsafe {
                        kn::radii_edges_soa(span, edges, coef, gamma, w.flat(), p, n, s, lanes)
                    }
                });
            }
            count_edge_loop(counters, Phase::Radii, exec, edges.len(), FLOPS_RADII_EDGE);
            {
                let mut scratch = FlopCounter::default();
                radii_bfaces_soa(
                    mesh.grid_bfaces(),
                    &st.w,
                    &st.p,
                    gamma,
                    &mut st.lam,
                    &mut scratch,
                );
                counters.phase(Phase::Radii).merge(&scratch);
            }
            exec.exchange_halo(Phase::Radii, HaloOp::ScatterAdd, &mut st.lam, 1, counters);
            {
                let vol = mesh.grid_vol();
                let lam = &st.lam;
                let cfl = cfg.cfl;
                exec.for_vertex_spans(owned, &mut [&mut st.dt[..]], |range, s| {
                    // SAFETY: disjoint ranges (executor contract).
                    unsafe { kn::local_dt_verts(range, cfl, vol, lam, s) }
                });
            }
            count_vertex_loop(counters, Phase::Radii, owned, FLOPS_DT_VERT);
        }
        if stage <= 1 {
            eval_dissipation_begin(mesh, st, cfg, is_coarse, exec, counters);
        }
        eval_convection_inner(mesh, st, cfg, exec, counters, stage <= 1);
        assemble_residual(st, exec, counters);
        smooth_residual(mesh, st, cfg, exec, counters);

        {
            let vol = mesh.grid_vol();
            let (w0, res, dt) = (&st.w0, &st.res, &st.dt);
            exec.for_vertex_spans(owned, &mut [st.w.flat_mut()], |range, s| {
                // SAFETY: disjoint ranges (executor contract).
                unsafe { kn::rk_update_verts(range, alpha, w0.flat(), res.flat(), dt, vol, n, s) }
            });
        }
        count_vertex_loop(counters, Phase::Update, owned, FLOPS_UPDATE_VERT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SerialExecutor;
    use eul3d_mesh::gen::unit_box;

    #[test]
    fn freestream_is_a_fixed_point_of_the_time_step() {
        let mesh = unit_box(4, 0.2, 3);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        let before = st.w.clone();
        let mut counters = PhaseCounters::default();
        time_step(
            &mesh,
            &mut st,
            &cfg,
            false,
            &mut SerialExecutor,
            &mut counters,
        );
        for (a, b) in st.w.flat().iter().zip(before.flat()) {
            assert!(
                (a - b).abs() < 1e-11,
                "freestream must not drift: {a} vs {b}"
            );
        }
        assert!(st.density_residual_norm(mesh.grid_vol()) < 1e-12);
        assert!(counters.flops() > 0.0);
        // Serial execution exchanges nothing.
        assert_eq!(counters.messages(), 0);
    }

    #[test]
    fn perturbation_decays_under_time_stepping() {
        let mesh = unit_box(5, 0.15, 4);
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let mut st = LevelState::new(&mesh, &cfg);
        // Small density/energy bump in the middle of the box.
        for (i, c) in mesh.coords.iter().enumerate() {
            let r2 = (*c - eul3d_mesh::Vec3::new(0.5, 0.5, 0.5)).norm_sq();
            let bump = 0.05 * (-20.0 * r2).exp();
            st.w.add(i, 0, bump);
            st.w.add(i, 4, bump * 2.0);
        }
        let mut counters = PhaseCounters::default();
        let mut exec = SerialExecutor;
        eval_total_residual(&mesh, &mut st, &cfg, false, &mut exec, &mut counters);
        let r0 = st.density_residual_norm(mesh.grid_vol());
        assert!(r0 > 1e-6, "perturbed state must have a residual");
        for _ in 0..30 {
            time_step(&mesh, &mut st, &cfg, false, &mut exec, &mut counters);
        }
        let r1 = st.density_residual_norm(mesh.grid_vol());
        assert!(
            r1 < 0.2 * r0,
            "multistage scheme must damp the perturbation: {r0} -> {r1}"
        );
        // State must remain physical.
        for i in 0..st.n {
            assert!(st.w.get(i, 0) > 0.0, "positive density");
            assert!(st.p[i] > 0.0, "positive pressure");
        }
    }

    #[test]
    fn forcing_shifts_the_fixed_point() {
        // With a nonzero forcing P, freestream is no longer stationary —
        // the multigrid driving mechanism.
        let mesh = unit_box(3, 0.1, 5);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        for i in 0..st.n {
            st.forcing.set(i, 0, 1e-4 * mesh.grid_vol()[i]);
        }
        let before = st.w.clone();
        let mut counters = PhaseCounters::default();
        time_step(
            &mesh,
            &mut st,
            &cfg,
            false,
            &mut SerialExecutor,
            &mut counters,
        );
        let moved =
            st.w.flat()
                .iter()
                .zip(before.flat())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
        assert!(moved > 1e-9, "forcing must drive the state");
    }

    #[test]
    fn coarse_first_order_dissipation_path_runs() {
        let mesh = unit_box(3, 0.1, 6);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        let mut counters = PhaseCounters::default();
        time_step(
            &mesh,
            &mut st,
            &cfg,
            true,
            &mut SerialExecutor,
            &mut counters,
        );
        // Freestream preserved on the coarse path too.
        assert!(st.density_residual_norm(mesh.grid_vol()) < 1e-12);
    }

    #[test]
    fn lane_width_cannot_change_a_single_bit() {
        // The chunk width only affects gather staging, never expression
        // trees or accumulation order — any lanes value must be
        // bit-identical (the SoA contract of eul3d-kernels).
        let mesh = unit_box(4, 0.2, 11);
        let run = |lanes: usize| -> LevelState {
            let cfg = SolverConfig {
                mach: 0.6,
                lanes,
                ..SolverConfig::default()
            };
            let mut st = LevelState::new(&mesh, &cfg);
            for (i, c) in mesh.coords.iter().enumerate() {
                let bump =
                    0.04 * (-10.0 * (*c - eul3d_mesh::Vec3::new(0.5, 0.5, 0.5)).norm_sq()).exp();
                st.w.add(i, 0, bump);
                st.w.add(i, 4, 2.0 * bump);
            }
            let mut counters = PhaseCounters::default();
            for _ in 0..3 {
                time_step(
                    &mesh,
                    &mut st,
                    &cfg,
                    false,
                    &mut SerialExecutor,
                    &mut counters,
                );
            }
            st
        };
        let base = run(1);
        for lanes in [2, 5, 8, 16] {
            let other = run(lanes);
            assert_eq!(
                base.w.flat(),
                other.w.flat(),
                "lanes={lanes} diverged from lanes=1"
            );
            assert_eq!(base.res.flat(), other.res.flat());
        }
    }

    #[test]
    fn phase_breakdown_covers_the_expected_phases() {
        let mesh = unit_box(3, 0.1, 7);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        let mut counters = PhaseCounters::default();
        time_step(
            &mesh,
            &mut st,
            &cfg,
            false,
            &mut SerialExecutor,
            &mut counters,
        );
        let labels: Vec<&str> = counters.rows().iter().map(|r| r.label).collect();
        for want in [
            "pressure",
            "radii/dt",
            "dissipation",
            "convection",
            "boundary",
            "assemble",
            "smooth",
            "update",
        ] {
            assert!(labels.contains(&want), "missing phase {want} in {labels:?}");
        }
        // A fixed per-phase identity: the convective edge loop runs once
        // per stage.
        let conv = counters.phase(Phase::Convection).flops;
        assert_eq!(
            conv,
            (mesh.edges.len() * cfg.nstages()) as f64 * FLOPS_CONV_EDGE
        );
    }
}
