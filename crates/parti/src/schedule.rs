//! Communication schedules and their executors.

use eul3d_delta::{CommClass, Rank};

/// A reusable communication pattern for one rank: which of its *owned*
/// entries to send to each peer, and into which local *ghost* slots to
/// place data arriving from each peer. Built once by the inspector
/// ([`crate::localize`]), executed many times.
///
/// All messages to one peer are packed into a single buffer — PARTI's
/// "packing various small messages with the same destinations into one
/// large message" (§4.1).
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Base tag; executors offset it to keep gather and scatter distinct.
    pub tag: u32,
    /// Traffic class charged to the cost model.
    pub class: CommClass,
    /// `(peer, owned local indices to pack)` — ascending peer order.
    pub sends: Vec<(usize, Vec<u32>)>,
    /// `(peer, local ghost slots to fill)` — ascending peer order.
    pub recvs: Vec<(usize, Vec<u32>)>,
}

impl Schedule {
    /// An empty schedule (single-rank runs, or nothing off-processor).
    pub fn empty(tag: u32, class: CommClass) -> Schedule {
        Schedule {
            tag,
            class,
            sends: Vec::new(),
            recvs: Vec::new(),
        }
    }

    /// Number of ghost entries this schedule fills.
    pub fn nghosts(&self) -> usize {
        self.recvs.iter().map(|(_, s)| s.len()).sum()
    }

    /// Number of owned entries this schedule exports.
    pub fn nexports(&self) -> usize {
        self.sends.iter().map(|(_, s)| s.len()).sum()
    }

    /// **Gather executor**: fetch off-processor data into ghost slots.
    /// `data` is a flat per-vertex array with `nc` components per entry;
    /// both owned and ghost slots live in the same array.
    ///
    /// Pack buffers come from the rank's [`CommBuffers`] pool via the
    /// persistent-send-buffer protocol: the receiver hands each consumed
    /// buffer straight back to its sender on the same stream
    /// ([`Rank::return_packed_f64`]), and the sender reclaims it before
    /// packing the next execution ([`Rank::take_pack_f64`]). After the
    /// first execution the same buffers ping-pong forever — zero
    /// steady-state allocation even for one-directional schedules
    /// (`eul3d_delta::RankCounters::comm_allocs` proves it). This is why
    /// schedules sharing a rank must reserve disjoint tags: the protocol
    /// relies on strict data/return alternation per `(peer, tag)` stream.
    ///
    /// [`CommBuffers`]: eul3d_delta::CommBuffers
    pub fn gather(&self, rank: &mut Rank, data: &mut [f64], nc: usize) {
        for (peer, idxs) in &self.sends {
            let mut buf = rank.take_pack_f64(*peer, self.tag, idxs.len() * nc);
            for &i in idxs {
                let base = i as usize * nc;
                buf.extend_from_slice(&data[base..base + nc]);
            }
            rank.send_packed_f64(*peer, self.tag, buf, self.class);
        }
        for (peer, slots) in &self.recvs {
            let buf = rank.recv_f64(*peer, self.tag);
            assert_eq!(buf.len(), slots.len() * nc, "gather buffer size mismatch");
            for (k, &s) in slots.iter().enumerate() {
                let base = s as usize * nc;
                data[base..base + nc].copy_from_slice(&buf[k * nc..k * nc + nc]);
            }
            rank.return_packed_f64(*peer, self.tag, buf);
        }
    }

    /// **Scatter-add executor**: flush partial sums accumulated in ghost
    /// slots back to their owners, *adding* into the owners' entries, and
    /// zero the ghost slots afterwards (they are accumulators).
    pub fn scatter_add(&self, rank: &mut Rank, data: &mut [f64], nc: usize) {
        // Reverse direction: ghosts (recvs side) are packed and sent to
        // owners; owners (sends side) receive and accumulate.
        let tag = self.tag + 1;
        for (peer, slots) in &self.recvs {
            let mut buf = rank.take_pack_f64(*peer, tag, slots.len() * nc);
            for &s in slots {
                let base = s as usize * nc;
                buf.extend_from_slice(&data[base..base + nc]);
                data[base..base + nc].iter_mut().for_each(|x| *x = 0.0);
            }
            rank.send_packed_f64(*peer, tag, buf, self.class);
        }
        for (peer, idxs) in &self.sends {
            let buf = rank.recv_f64(*peer, tag);
            assert_eq!(buf.len(), idxs.len() * nc, "scatter buffer size mismatch");
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * nc;
                for c in 0..nc {
                    data[base + c] += buf[k * nc + c];
                }
            }
            rank.return_packed_f64(*peer, tag, buf);
        }
    }

    /// Plane-major twin of [`Schedule::gather`]: `data` holds `nplanes`
    /// contiguous planes of `data.len() / nplanes` vertices each
    /// (component `c` of vertex `i` at `c * plane_len + i`). Packing
    /// strides across the planes per vertex, so the **wire format is
    /// byte-identical** to the interleaved gather — same per-vertex
    /// records, same message sizes, same pooled buffers — and recorded
    /// traces do not change across the layout switch.
    pub fn gather_planes(&self, rank: &mut Rank, data: &mut [f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        for (peer, idxs) in &self.sends {
            let mut buf = rank.take_pack_f64(*peer, self.tag, idxs.len() * nplanes);
            for &i in idxs {
                for c in 0..nplanes {
                    buf.push(data[c * plane + i as usize]);
                }
            }
            rank.send_packed_f64(*peer, self.tag, buf, self.class);
        }
        for (peer, slots) in &self.recvs {
            let buf = rank.recv_f64(*peer, self.tag);
            assert_eq!(
                buf.len(),
                slots.len() * nplanes,
                "gather buffer size mismatch"
            );
            for (k, &s) in slots.iter().enumerate() {
                for c in 0..nplanes {
                    data[c * plane + s as usize] = buf[k * nplanes + c];
                }
            }
            rank.return_packed_f64(*peer, self.tag, buf);
        }
    }

    /// Plane-major twin of [`Schedule::scatter_add`]: ghost accumulators
    /// are packed per vertex across the planes (wire format identical to
    /// the interleaved scatter), flushed to owners, and zeroed.
    pub fn scatter_add_planes(&self, rank: &mut Rank, data: &mut [f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        let tag = self.tag + 1;
        for (peer, slots) in &self.recvs {
            let mut buf = rank.take_pack_f64(*peer, tag, slots.len() * nplanes);
            for &s in slots {
                for c in 0..nplanes {
                    let j = c * plane + s as usize;
                    buf.push(data[j]);
                    data[j] = 0.0;
                }
            }
            rank.send_packed_f64(*peer, tag, buf, self.class);
        }
        for (peer, idxs) in &self.sends {
            let buf = rank.recv_f64(*peer, tag);
            assert_eq!(
                buf.len(),
                idxs.len() * nplanes,
                "scatter buffer size mismatch"
            );
            for (k, &i) in idxs.iter().enumerate() {
                for c in 0..nplanes {
                    data[c * plane + i as usize] += buf[k * nplanes + c];
                }
            }
            rank.return_packed_f64(*peer, tag, buf);
        }
    }

    /// Shared-memory-window twin of [`Schedule::gather_planes`], **begin
    /// half**: publish this rank's send regions straight into the peer
    /// windows (hybrid backend). The pack order per vertex is identical
    /// to the channel path — same strided per-vertex records, same
    /// lengths — so the published buffer is byte-for-byte the channel
    /// message, and the modeled cost charged by the publish matches the
    /// channel send exactly. Splitting begin/finish lets interior
    /// kernels run while peers catch up to their publishes.
    pub fn gather_planes_shm_begin(&self, rank: &mut Rank, data: &[f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        for (peer, idxs) in &self.sends {
            rank.window_publish_f64(*peer, self.tag, self.class, |buf| {
                for &i in idxs {
                    for c in 0..nplanes {
                        buf.push(data[c * plane + i as usize]);
                    }
                }
            });
        }
    }

    /// **Finish half** of the window gather: consume each peer's window
    /// in place into this rank's ghost slots (same fill order as the
    /// channel path). Must follow the matching
    /// [`Schedule::gather_planes_shm_begin`] on every rank, in the same
    /// global exchange order.
    pub fn gather_planes_shm_finish(&self, rank: &mut Rank, data: &mut [f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        for (peer, slots) in &self.recvs {
            rank.window_consume_f64(*peer, self.tag, |buf| {
                assert_eq!(
                    buf.len(),
                    slots.len() * nplanes,
                    "gather window size mismatch"
                );
                for (k, &s) in slots.iter().enumerate() {
                    for c in 0..nplanes {
                        data[c * plane + s as usize] = buf[k * nplanes + c];
                    }
                }
            });
        }
    }

    /// Shared-memory-window twin of [`Schedule::scatter_add_planes`],
    /// **begin half**: publish the ghost-slot accumulators to their
    /// owners' windows and zero them (they are accumulators), exactly as
    /// the channel path packs and zeroes.
    pub fn scatter_add_planes_shm_begin(&self, rank: &mut Rank, data: &mut [f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        let tag = self.tag + 1;
        for (peer, slots) in &self.recvs {
            rank.window_publish_f64(*peer, tag, self.class, |buf| {
                for &s in slots {
                    for c in 0..nplanes {
                        let j = c * plane + s as usize;
                        buf.push(data[j]);
                        data[j] = 0.0;
                    }
                }
            });
        }
    }

    /// **Finish half** of the window scatter-add: consume each peer's
    /// ghost contributions and add them into this rank's owned entries,
    /// in the channel path's `(record, plane)` order so the floating-
    /// point accumulation order — and therefore the result bits — are
    /// identical to the distributed backend.
    pub fn scatter_add_planes_shm_finish(&self, rank: &mut Rank, data: &mut [f64], nplanes: usize) {
        debug_assert!(nplanes > 0 && data.len().is_multiple_of(nplanes));
        let plane = data.len() / nplanes;
        let tag = self.tag + 1;
        for (peer, idxs) in &self.sends {
            rank.window_consume_f64(*peer, tag, |buf| {
                assert_eq!(
                    buf.len(),
                    idxs.len() * nplanes,
                    "scatter window size mismatch"
                );
                for (k, &i) in idxs.iter().enumerate() {
                    for c in 0..nplanes {
                        data[c * plane + i as usize] += buf[k * nplanes + c];
                    }
                }
            });
        }
    }

    /// Like [`Schedule::gather`] but with distinct source and destination
    /// arrays: owners pack from `src` (owner-local indices), receivers
    /// fill `dst` (buffer slots). Used by the inter-grid transfer
    /// executors, where fetched data lands in a compact staging buffer
    /// instead of ghost slots of the same array.
    pub fn gather_into(&self, rank: &mut Rank, src: &[f64], dst: &mut [f64], nc: usize) {
        for (peer, idxs) in &self.sends {
            let mut buf = rank.take_pack_f64(*peer, self.tag, idxs.len() * nc);
            for &i in idxs {
                let base = i as usize * nc;
                buf.extend_from_slice(&src[base..base + nc]);
            }
            rank.send_packed_f64(*peer, self.tag, buf, self.class);
        }
        for (peer, slots) in &self.recvs {
            let buf = rank.recv_f64(*peer, self.tag);
            assert_eq!(
                buf.len(),
                slots.len() * nc,
                "gather_into buffer size mismatch"
            );
            for (k, &s) in slots.iter().enumerate() {
                let base = s as usize * nc;
                dst[base..base + nc].copy_from_slice(&buf[k * nc..k * nc + nc]);
            }
            rank.return_packed_f64(*peer, self.tag, buf);
        }
    }

    /// Like [`Schedule::scatter_add`] but with distinct arrays: staged
    /// partial sums in `ghost_src` (buffer slots, zeroed after sending)
    /// are flushed to owners, who accumulate into `dst` (owner-local
    /// indices). Used to push restricted residuals to coarse-grid owners.
    pub fn scatter_add_into(
        &self,
        rank: &mut Rank,
        ghost_src: &mut [f64],
        dst: &mut [f64],
        nc: usize,
    ) {
        let tag = self.tag + 1;
        for (peer, slots) in &self.recvs {
            let mut buf = rank.take_pack_f64(*peer, tag, slots.len() * nc);
            for &s in slots {
                let base = s as usize * nc;
                buf.extend_from_slice(&ghost_src[base..base + nc]);
                ghost_src[base..base + nc].iter_mut().for_each(|x| *x = 0.0);
            }
            rank.send_packed_f64(*peer, tag, buf, self.class);
        }
        for (peer, idxs) in &self.sends {
            let buf = rank.recv_f64(*peer, tag);
            assert_eq!(buf.len(), idxs.len() * nc, "scatter_add_into size mismatch");
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * nc;
                for c in 0..nc {
                    dst[base + c] += buf[k * nc + c];
                }
            }
            rank.return_packed_f64(*peer, tag, buf);
        }
    }

    /// Plane-major-source twin of [`Schedule::gather_into`]: owners pack
    /// from the plane-major `src`, receivers fill the **vertex-major**
    /// staging buffer `dst` (the wire and staging layouts are unchanged —
    /// only the local source layout differs).
    pub fn gather_planes_into(
        &self,
        rank: &mut Rank,
        src: &[f64],
        dst: &mut [f64],
        nplanes: usize,
    ) {
        debug_assert!(nplanes > 0 && src.len().is_multiple_of(nplanes));
        let plane = src.len() / nplanes;
        for (peer, idxs) in &self.sends {
            let mut buf = rank.take_pack_f64(*peer, self.tag, idxs.len() * nplanes);
            for &i in idxs {
                for c in 0..nplanes {
                    buf.push(src[c * plane + i as usize]);
                }
            }
            rank.send_packed_f64(*peer, self.tag, buf, self.class);
        }
        for (peer, slots) in &self.recvs {
            let buf = rank.recv_f64(*peer, self.tag);
            assert_eq!(
                buf.len(),
                slots.len() * nplanes,
                "gather_planes_into buffer size mismatch"
            );
            for (k, &s) in slots.iter().enumerate() {
                let base = s as usize * nplanes;
                dst[base..base + nplanes].copy_from_slice(&buf[k * nplanes..(k + 1) * nplanes]);
            }
            rank.return_packed_f64(*peer, self.tag, buf);
        }
    }

    /// Plane-major-destination twin of [`Schedule::scatter_add_into`]:
    /// staged partial sums in the **vertex-major** buffer `ghost_src`
    /// (zeroed after sending) are flushed to owners, who accumulate into
    /// the plane-major `dst`.
    pub fn scatter_add_planes_into(
        &self,
        rank: &mut Rank,
        ghost_src: &mut [f64],
        dst: &mut [f64],
        nplanes: usize,
    ) {
        debug_assert!(nplanes > 0 && dst.len().is_multiple_of(nplanes));
        let plane = dst.len() / nplanes;
        let tag = self.tag + 1;
        for (peer, slots) in &self.recvs {
            let mut buf = rank.take_pack_f64(*peer, tag, slots.len() * nplanes);
            for &s in slots {
                let base = s as usize * nplanes;
                buf.extend_from_slice(&ghost_src[base..base + nplanes]);
                ghost_src[base..base + nplanes]
                    .iter_mut()
                    .for_each(|x| *x = 0.0);
            }
            rank.send_packed_f64(*peer, tag, buf, self.class);
        }
        for (peer, idxs) in &self.sends {
            let buf = rank.recv_f64(*peer, tag);
            assert_eq!(
                buf.len(),
                idxs.len() * nplanes,
                "scatter_add_planes_into size mismatch"
            );
            for (k, &i) in idxs.iter().enumerate() {
                for c in 0..nplanes {
                    dst[c * plane + i as usize] += buf[k * nplanes + c];
                }
            }
            rank.return_packed_f64(*peer, tag, buf);
        }
    }

    /// **Message aggregation across loops** (§4.3): combine several
    /// schedules into one whose executor sends a single message per peer.
    /// The inputs must address disjoint ghost slots (which incremental
    /// construction guarantees).
    pub fn merge(parts: &[&Schedule], tag: u32, class: CommClass) -> Schedule {
        let mut sends: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
        let mut recvs: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
        for s in parts {
            for (peer, idxs) in &s.sends {
                sends.entry(*peer).or_default().extend_from_slice(idxs);
            }
            for (peer, slots) in &s.recvs {
                recvs.entry(*peer).or_default().extend_from_slice(slots);
            }
        }
        Schedule {
            tag,
            class,
            sends: sends.into_iter().collect(),
            recvs: recvs.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_delta::run_spmd;

    /// Hand-built two-rank schedule: rank 0 owns entries {0,1}, rank 1
    /// owns {0,1}; each has one ghost slot (index 2) mirroring the peer's
    /// entry 1.
    fn mirror_schedule(me: usize) -> Schedule {
        let other = 1 - me;
        Schedule {
            tag: 10,
            class: CommClass::Halo,
            sends: vec![(other, vec![1])],
            recvs: vec![(other, vec![2])],
        }
    }

    #[test]
    fn gather_fills_ghosts() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let mut data = vec![r.id as f64 * 10.0, r.id as f64 * 10.0 + 1.0, -1.0];
            sched.gather(r, &mut data, 1);
            data
        });
        // Rank 0's ghost = rank 1's entry 1 = 11; rank 1's ghost = 1.
        assert_eq!(run.results[0][2], 11.0);
        assert_eq!(run.results[1][2], 1.0);
    }

    #[test]
    fn scatter_add_flushes_and_zeros_ghosts() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            // Owned entries start at 100; ghost accumulator holds 5+id.
            let mut data = vec![100.0, 100.0, 5.0 + r.id as f64];
            sched.scatter_add(r, &mut data, 1);
            data
        });
        // Rank 0's entry 1 += rank 1's ghost (6); ghost zeroed.
        assert_eq!(run.results[0], vec![100.0, 106.0, 0.0]);
        assert_eq!(run.results[1], vec![100.0, 105.0, 0.0]);
    }

    #[test]
    fn gather_multicomponent() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let base = r.id as f64 * 100.0;
            let mut data = vec![base, base + 1.0, base + 10.0, base + 11.0, 0.0, 0.0];
            sched.gather(r, &mut data, 2);
            data
        });
        assert_eq!(&run.results[0][4..], &[110.0, 111.0]);
        assert_eq!(&run.results[1][4..], &[10.0, 11.0]);
    }

    #[test]
    fn plane_major_gather_matches_interleaved_wire_and_values() {
        let interleaved = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let base = r.id as f64 * 100.0;
            let mut data = vec![base, base + 1.0, base + 10.0, base + 11.0, 0.0, 0.0];
            sched.gather(r, &mut data, 2);
            data
        });
        let planar = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let base = r.id as f64 * 100.0;
            // The same 3 vertices × 2 components, plane-major.
            let mut data = vec![base, base + 10.0, 0.0, base + 1.0, base + 11.0, 0.0];
            sched.gather_planes(r, &mut data, 2);
            data
        });
        for rank in 0..2 {
            // Ghost vertex 2: components at flat 4,5 (AoS) vs 2,5 (planes).
            assert_eq!(planar.results[rank][2], interleaved.results[rank][4]);
            assert_eq!(planar.results[rank][5], interleaved.results[rank][5]);
            assert_eq!(
                planar.counters[rank].total_bytes(),
                interleaved.counters[rank].total_bytes(),
                "wire format must not change with the layout"
            );
            assert_eq!(
                planar.counters[rank].total_messages(),
                interleaved.counters[rank].total_messages()
            );
        }
    }

    #[test]
    fn plane_major_scatter_add_flushes_and_zeros() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            // 3 vertices × 2 planes; ghost accumulator at vertex 2.
            let g = 5.0 + r.id as f64;
            let mut data = vec![100.0, 100.0, g, 200.0, 200.0, g + 10.0];
            sched.scatter_add_planes(r, &mut data, 2);
            data
        });
        // Rank 0's owned vertex 1 += rank 1's ghost (6 / 16); ghosts zeroed.
        assert_eq!(run.results[0], vec![100.0, 106.0, 0.0, 200.0, 216.0, 0.0]);
        assert_eq!(run.results[1], vec![100.0, 105.0, 0.0, 200.0, 215.0, 0.0]);
    }

    #[test]
    fn plane_executors_are_allocation_free_after_warm_up() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let mut data = vec![1.0, 2.0, 0.0, 4.0, 5.0, 0.0];
            sched.gather_planes(r, &mut data, 2);
            sched.scatter_add_planes(r, &mut data, 2);
            let warm = r.counters.comm_allocs;
            for _ in 0..20 {
                sched.gather_planes(r, &mut data, 2);
                sched.scatter_add_planes(r, &mut data, 2);
            }
            (warm, r.counters.comm_allocs)
        });
        for &(warm, steady) in &run.results {
            assert!(warm > 0, "warm-up must populate the pool");
            assert_eq!(
                steady, warm,
                "steady-state plane executors must not allocate"
            );
        }
    }

    #[test]
    fn merge_aggregates_per_peer() {
        let a = Schedule {
            tag: 1,
            class: CommClass::Halo,
            sends: vec![(1, vec![0])],
            recvs: vec![(1, vec![4])],
        };
        let b = Schedule {
            tag: 2,
            class: CommClass::Halo,
            sends: vec![(1, vec![2]), (2, vec![3])],
            recvs: vec![(2, vec![5])],
        };
        let m = Schedule::merge(&[&a, &b], 7, CommClass::Halo);
        assert_eq!(m.sends, vec![(1, vec![0, 2]), (2, vec![3])]);
        assert_eq!(m.recvs, vec![(1, vec![4]), (2, vec![5])]);
        assert_eq!(m.nexports(), 3);
        assert_eq!(m.nghosts(), 2);
    }

    #[test]
    fn merged_schedule_sends_fewer_messages() {
        // Two separate gathers vs one merged gather: same bytes moved,
        // half the messages (the aggregation win the cost model prices).
        let sched_pair = |me: usize, tag: u32, ghost: u32, own: u32| {
            let other = 1 - me;
            Schedule {
                tag,
                class: CommClass::Halo,
                sends: vec![(other, vec![own])],
                recvs: vec![(other, vec![ghost])],
            }
        };
        let separate = run_spmd(2, |r| {
            let s1 = sched_pair(r.id, 20, 2, 0);
            let s2 = sched_pair(r.id, 30, 3, 1);
            let mut data = vec![1.0, 2.0, 0.0, 0.0];
            s1.gather(r, &mut data, 1);
            s2.gather(r, &mut data, 1);
            data
        });
        let merged = run_spmd(2, |r| {
            let s1 = sched_pair(r.id, 20, 2, 0);
            let s2 = sched_pair(r.id, 30, 3, 1);
            let m = Schedule::merge(&[&s1, &s2], 40, CommClass::Halo);
            let mut data = vec![1.0, 2.0, 0.0, 0.0];
            m.gather(r, &mut data, 1);
            data
        });
        assert_eq!(separate.results, merged.results, "same data either way");
        assert_eq!(separate.counters[0].total_messages(), 2);
        assert_eq!(merged.counters[0].total_messages(), 1);
        assert_eq!(
            separate.counters[0].total_bytes(),
            merged.counters[0].total_bytes()
        );
    }

    #[test]
    fn gather_into_separate_arrays() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let src = vec![r.id as f64 * 10.0, r.id as f64 * 10.0 + 1.0];
            let mut dst = vec![0.0; 3];
            sched.gather_into(r, &src, &mut dst, 1);
            dst
        });
        assert_eq!(run.results[0][2], 11.0);
        assert_eq!(run.results[1][2], 1.0);
    }

    #[test]
    fn scatter_add_into_separate_arrays() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let mut staged = vec![0.0, 0.0, 7.0 + r.id as f64];
            let mut dst = vec![100.0, 100.0];
            sched.scatter_add_into(r, &mut staged, &mut dst, 1);
            (staged, dst)
        });
        // Rank 0's dst[1] += rank 1's staged (8); staging buffer zeroed.
        assert_eq!(run.results[0].1, vec![100.0, 108.0]);
        assert_eq!(run.results[1].1, vec![100.0, 107.0]);
        assert_eq!(run.results[0].0[2], 0.0);
    }

    #[test]
    fn executors_are_allocation_free_after_warm_up() {
        let run = run_spmd(2, |r| {
            let sched = mirror_schedule(r.id);
            let mut data = vec![1.0, 2.0, 0.0];
            let src = vec![4.0, 5.0];
            let mut into = vec![0.0; 3];
            let mut staged = vec![0.0, 0.0, 3.0];
            let mut dst = vec![0.0, 0.0];
            // One round warms the pool: each executor's send buffer comes
            // back as the peer's recycled receive buffer.
            sched.gather(r, &mut data, 1);
            sched.scatter_add(r, &mut data, 1);
            sched.gather_into(r, &src, &mut into, 1);
            sched.scatter_add_into(r, &mut staged, &mut dst, 1);
            let warm = r.counters.comm_allocs;
            for _ in 0..20 {
                sched.gather(r, &mut data, 1);
                sched.scatter_add(r, &mut data, 1);
                sched.gather_into(r, &src, &mut into, 1);
                staged[2] = 3.0;
                sched.scatter_add_into(r, &mut staged, &mut dst, 1);
            }
            (warm, r.counters.comm_allocs)
        });
        for &(warm, steady) in &run.results {
            assert!(warm > 0, "warm-up must populate the pool");
            assert_eq!(steady, warm, "steady-state executors must not allocate");
        }
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let run = run_spmd(2, |r| {
            let s = Schedule::empty(5, CommClass::Halo);
            let mut data = vec![1.0, 2.0];
            s.gather(r, &mut data, 1);
            s.scatter_add(r, &mut data, 1);
            data
        });
        assert_eq!(run.results[0], vec![1.0, 2.0]);
        assert_eq!(run.counters[0].total_messages(), 0);
    }
}
