//! The distributed solve driver: SPMD body construction, the distributed
//! multigrid recursion, and the top-level [`run_distributed`] entry.

use eul3d_delta::{MachineRun, Rank, RankCounters};
use eul3d_obs as obs;
use eul3d_parti::TagAllocator;

use eul3d_partition::RankMapping;

use crate::config::SolverConfig;
use crate::counters::PhaseCounters;
use crate::executor::Phase;
use crate::gas::NVAR;
use crate::health::GuardOutcome;
use crate::multigrid::Strategy;
use crate::runconfig::{PartitionConfig, PartitionMethod};

use super::level::{DistExecOptions, DistLevel};
use super::setup::DistSetup;
use super::transfer::TransferLink;

/// Which transport carries the per-cycle halo streams of a distributed
/// run. The SPMD structure, schedules, and numerics are identical either
/// way — the backends are bit-equivalent by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistBackend {
    /// The simulated Intel Delta: channel mailboxes, modeled wire time
    /// (the default, and the only transport fault injection understands).
    #[default]
    Delta,
    /// True-parallel shared memory: ranks are still one OS thread each,
    /// but halo data moves through epoch-stamped shared-memory windows
    /// with real overlap, and the driver reports wall time alongside the
    /// modeled clock. Falls back to `Delta` when a fault plan is active
    /// (injection intercepts the channel transport).
    Hybrid,
}

/// Mid-run repartition-and-migrate policy: every `every` committed
/// cycles the machine checkpoints, bumps into a fresh epoch, rebuilds
/// every schedule against a new partition plan, and restores the
/// checkpointed state onto the new layout — the PR 3 recovery machinery
/// driven by a planned trigger instead of a fault. The plan for
/// migration era `k` is cut with `seed + k`, so each boundary really
/// changes ownership; era indices are a pure function of the committed
/// cycle, which keeps reruns (and post-fault replays) byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepartitionPolicy {
    /// Committed-cycle cadence (> 0).
    pub every: usize,
    /// Partitioner used for migration-era plans.
    pub method: PartitionMethod,
    /// Multilevel: stop coarsening at this many vertices.
    pub coarsen_target: usize,
    /// Multilevel: refinement sweeps per level while uncoarsening.
    pub refine_passes: usize,
    /// Part→rank placement of each era's plan.
    pub mapping: RankMapping,
    /// Lanczos iteration cap per Fiedler solve.
    pub lanczos_iters: usize,
    /// Base seed; era `k` partitions with `seed + k`.
    pub seed: u64,
}

impl RepartitionPolicy {
    /// Build from a run's [`PartitionConfig`]; `None` when the config
    /// does not arm mid-run repartitioning.
    pub fn from_config(
        policy: &PartitionConfig,
        lanczos_iters: usize,
        seed: u64,
    ) -> Option<RepartitionPolicy> {
        (policy.repartition_every > 0).then_some(RepartitionPolicy {
            every: policy.repartition_every,
            method: policy.method,
            coarsen_target: policy.coarsen_target,
            refine_passes: policy.refine_passes,
            mapping: policy.mapping,
            lanczos_iters,
            seed,
        })
    }

    /// The migration era the cycle *after* `committed` runs in: cycles
    /// `(k·every, (k+1)·every]` run in era `k`, so a run restored to
    /// `committed` cycles resumes in era `committed / every`.
    pub fn era_of(&self, committed: usize) -> usize {
        committed / self.every
    }
}

/// Options of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// Re-gather flow variables before every loop (ablation of §4.3).
    pub refetch_per_loop: bool,
    /// All-reduce the residual norm every cycle (the paper's convergence
    /// monitoring, included in its timings).
    pub monitor_residual: bool,
    /// Arm every virtual-rank instance (primaries and adopted replicas)
    /// with a [`eul3d_obs::RingTracer`] of this capacity; the per-lane
    /// streams come back in [`RankOutput::trace`]. `None` leaves tracing
    /// off (the default).
    pub trace_capacity: Option<usize>,
    /// Halo transport (see [`DistBackend`]).
    pub backend: DistBackend,
    /// Stamp traced lanes with real wall time instead of the modeled
    /// clock (hybrid runs only — shows measured overlap in the trace;
    /// stamps are not reproducible across runs, so goldens keep this
    /// off).
    pub real_time_lanes: bool,
    /// Wedge timeout (ms) for the hybrid backend's shared-memory halo
    /// windows; a stalled window surfaces as a typed
    /// [`eul3d_delta::DeltaError::WindowWedged`] after this long.
    /// `None` uses [`eul3d_delta::DEFAULT_WEDGE_TIMEOUT`] (30 s).
    pub wedge_timeout_ms: Option<u64>,
    /// Mid-run repartition-and-migrate policy (`None` = the partition is
    /// fixed for the whole run, the historical behaviour). Arming this
    /// forces the channel transport for halo streams, like a fault plan
    /// does — migration rebuilds schedules mid-run, which the hybrid
    /// windows' fixed layout cannot follow.
    pub repartition: Option<RepartitionPolicy>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            refetch_per_loop: false,
            monitor_residual: true,
            trace_capacity: None,
            backend: DistBackend::Delta,
            real_time_lanes: false,
            wedge_timeout_ms: None,
            repartition: None,
        }
    }
}

/// How a virtual rank's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankFate {
    /// Ran to the final cycle.
    Completed,
    /// Killed by the fault plan with `cycle` cycles completed; its
    /// partition finished on an adopting node.
    Died { cycle: usize },
}

/// Output of a virtual rank a node hosted after adopting a dead rank's
/// partition during fault recovery.
#[derive(Debug, Clone)]
pub struct AdoptedOutput {
    /// Virtual rank id (the dead rank whose partition this instance ran).
    pub vid: usize,
    pub out: RankOutput,
    /// Machine counters of the adopted instance (also merged into the
    /// hosting node's counters — the physical node pays for both).
    pub counters: RankCounters,
}

/// What each rank returns from the SPMD body.
#[derive(Debug, Clone)]
pub struct RankOutput {
    /// Residual history (identical on every rank when monitoring; rank 0
    /// authoritative).
    pub history: Vec<f64>,
    /// Owned fine-grid state, for global reassembly.
    pub w_owned: Vec<f64>,
    /// Owned fine-grid global vertex ids.
    pub owned_globals: Vec<u32>,
    /// Counter snapshot taken after setup (schedule building), so the
    /// harness can separate inspector cost from cycle cost.
    pub setup_counters: RankCounters,
    /// Per-phase flop/launch/message accounting from the executor layer.
    pub phases: PhaseCounters,
    /// Cumulative fresh communication-buffer allocations of this
    /// instance at the end of each cycle, rollback-truncated like
    /// `history`: the tail deltas prove steady-state cycles allocate
    /// nothing even after a recovery.
    pub cycle_allocs: Vec<u64>,
    /// How this virtual rank ended.
    pub fate: RankFate,
    /// Guard outcome of a guarded run (`None` when the guard is off or
    /// the instance died before completing).
    pub guard: Option<GuardOutcome>,
    /// This instance's stamped event stream (empty unless
    /// [`DistOptions::trace_capacity`] armed a tracer). A killed
    /// primary's stream covers everything up to its death.
    pub trace: Vec<obs::Stamped>,
    /// Events this instance's ring dropped (drop-oldest overflow).
    pub trace_dropped: u64,
    /// Virtual ranks this node adopted and ran to completion.
    pub adopted: Vec<AdoptedOutput>,
}

/// Result of a distributed run.
pub struct DistRunResult {
    pub run: MachineRun<RankOutput>,
    /// Measured wall time of the SPMD region (thread spawn to join), in
    /// seconds. Meaningful for comparing hybrid scaling against the
    /// modeled Delta clock; on the channel backend it mostly measures
    /// the simulator.
    pub wall_seconds: f64,
}

impl DistRunResult {
    /// Every virtual-rank instance in the run: primaries plus any
    /// adopted replicas, tagged with their virtual id.
    pub fn instances(&self) -> Vec<(usize, &RankOutput)> {
        let mut all = Vec::new();
        for (vid, out) in self.run.results.iter().enumerate() {
            all.push((vid, out));
            for a in &out.adopted {
                all.push((a.vid, &a.out));
            }
        }
        all
    }

    /// The completed instance of virtual rank `vid` — the primary if it
    /// survived, its adopted replica otherwise.
    pub fn instance(&self, vid: usize) -> Option<&RankOutput> {
        self.instances()
            .into_iter()
            .find(|(v, o)| *v == vid && o.fate == RankFate::Completed)
            .map(|(_, o)| o)
    }

    /// Residual history (from virtual rank 0, wherever it finished;
    /// empty if the run produced no completed rank-0 instance).
    pub fn history(&self) -> &[f64] {
        self.instance(0)
            .map(|r| r.history.as_slice())
            .unwrap_or(&[])
    }

    /// Guard outcome of a guarded run (from virtual rank 0's completed
    /// instance; `None` for unguarded runs).
    pub fn guard_outcome(&self) -> Option<&GuardOutcome> {
        self.instance(0).and_then(|r| r.guard.as_ref())
    }

    /// Reassemble the global fine-grid state from the rank pieces.
    /// Vertices not owned by any reporting rank stay zero. Dead
    /// primaries report empty pieces; their adopted replicas fill in.
    pub fn global_state(&self, nverts: usize) -> Vec<f64> {
        let mut w = vec![0.0; nverts * NVAR];
        for (_, out) in self.instances() {
            for (k, &g) in out.owned_globals.iter().enumerate() {
                let (src, dst) = (k * NVAR, g as usize * NVAR);
                w[dst..dst + NVAR].copy_from_slice(&out.w_owned[src..src + NVAR]);
            }
        }
        w
    }

    /// Per-rank counters for the cycle phase only (setup subtracted).
    pub fn cycle_counters(&self) -> Vec<RankCounters> {
        self.run
            .counters
            .iter()
            .zip(&self.run.results)
            .map(|(total, out)| total.delta_since(&out.setup_counters))
            .collect()
    }

    /// Per-rank counters for the setup (inspector/partition-exchange)
    /// phase.
    pub fn setup_counters(&self) -> Vec<RankCounters> {
        self.run
            .results
            .iter()
            .map(|o| o.setup_counters.clone())
            .collect()
    }

    /// Per-instance per-phase executor counters for the cycle work
    /// (one entry per virtual-rank instance, adopted replicas included,
    /// so the list can be longer than the machine when a run recovered
    /// from rank deaths).
    pub fn phase_counters(&self) -> Vec<PhaseCounters> {
        self.instances()
            .into_iter()
            .map(|(_, o)| o.phases)
            .collect()
    }

    /// The run's trace lanes for export: one per virtual-rank instance
    /// (a primary that died and the replica that finished its partition
    /// appear as separate lanes), labelled by fate. Empty streams unless
    /// the run was traced via [`DistOptions::trace_capacity`].
    pub fn lanes(&self) -> Vec<obs::Lane> {
        let mut lanes = Vec::new();
        for (host, out) in self.run.results.iter().enumerate() {
            let name = match out.fate {
                RankFate::Completed => format!("rank {host}"),
                RankFate::Died { cycle } => format!("rank {host} (died@{cycle})"),
            };
            lanes.push(obs::Lane {
                id: lanes.len() as u32,
                name,
                events: out.trace.clone(),
                dropped: out.trace_dropped,
            });
            for a in &out.adopted {
                lanes.push(obs::Lane {
                    id: lanes.len() as u32,
                    name: format!("rank {} (adopted by {host})", a.vid),
                    events: a.out.trace.clone(),
                    dropped: a.out.trace_dropped,
                });
            }
        }
        lanes
    }
}

/// One rank's full solver: levels plus transfer links.
pub struct DistSolver {
    pub levels: Vec<DistLevel>,
    pub links: Vec<TransferLink>,
    pub cfg: SolverConfig,
    pub strategy: Strategy,
    pub opts: DistExecOptions,
    pub counter: PhaseCounters,
    /// Reserved tag pair for recovery traffic (checkpoint shipping to
    /// adopted ranks); epoch-shifted like every schedule tag.
    pub ck_tag: u32,
}

impl DistSolver {
    /// SPMD constructor: builds every level and link, localizing all
    /// schedules (the inspector phase).
    pub fn build(
        rank: &mut Rank,
        setup: &DistSetup,
        cfg: SolverConfig,
        strategy: Strategy,
        opts: DistOptions,
    ) -> DistSolver {
        DistSolver::build_epoch(rank, setup, cfg, strategy, opts, 0)
    }

    /// [`DistSolver::build`] for a recovery epoch: the whole tag sequence
    /// shifts into `epoch`'s disjoint stride, so schedules rebuilt after
    /// a fault never collide with ranges still reserved on survivors from
    /// before the failure.
    pub fn build_epoch(
        rank: &mut Rank,
        setup: &DistSetup,
        cfg: SolverConfig,
        strategy: Strategy,
        opts: DistOptions,
        epoch: u32,
    ) -> DistSolver {
        let nlevels = match strategy {
            Strategy::SingleGrid => 1,
            _ => setup.levels(),
        };
        // Disjoint tag ranges for every schedule: 2 tags per level halo,
        // 4 per transfer link (two schedules each). Identical allocation
        // sequence on every rank, so tags agree machine-wide.
        let mut tags = TagAllocator::for_epoch(100, epoch);
        let level_tags: Vec<u32> = (0..nlevels).map(|_| tags.range(2)).collect();
        let levels: Vec<DistLevel> = (0..nlevels)
            .map(|l| DistLevel::build(rank, &setup.pms[l], &cfg, level_tags[l]))
            .collect();
        let link_tags: Vec<u32> = (0..nlevels.saturating_sub(1))
            .map(|_| tags.range(4))
            .collect();
        let links: Vec<TransferLink> = (0..nlevels.saturating_sub(1))
            .map(|l| {
                TransferLink::build(
                    rank,
                    &setup.seq.to_coarse[l],
                    &setup.seq.to_fine[l],
                    &setup.pms[l],
                    &setup.pms[l + 1],
                    link_tags[l],
                )
            })
            .collect();
        let ck_tag = tags.range(2);
        rank.reserve_tags(ck_tag, ck_tag + 2);
        DistSolver {
            levels,
            links,
            cfg,
            strategy,
            opts: DistExecOptions {
                refetch_per_loop: opts.refetch_per_loop,
            },
            counter: PhaseCounters::default(),
            ck_tag,
        }
    }

    /// One cycle; returns the local residual-norm parts (sum, count).
    pub fn cycle(&mut self, rank: &mut Rank) -> (f64, f64) {
        match self.strategy {
            Strategy::SingleGrid => {
                let cfg = self.cfg;
                let opts = self.opts;
                self.levels[0].time_step(rank, &cfg, false, &opts, &mut self.counter);
            }
            _ => self.recurse(rank, 0, self.strategy.gamma()),
        }
        self.levels[0].residual_norm_parts()
    }

    fn recurse(&mut self, rank: &mut Rank, l: usize, gamma: usize) {
        let cfg = self.cfg;
        let opts = self.opts;
        self.levels[l].time_step(rank, &cfg, l > 0, &opts, &mut self.counter);
        if l + 1 == self.levels.len() {
            return;
        }
        self.transfer_down(rank, l);
        let visits = if l + 2 == self.levels.len() { 1 } else { gamma };
        for _ in 0..visits {
            self.recurse(rank, l + 1, gamma);
        }
        self.prolong_up(rank, l);
    }

    fn transfer_down(&mut self, rank: &mut Rank, l: usize) {
        let cfg = self.cfg;
        let opts = self.opts;
        // Fresh fine residual (with its forcing).
        self.levels[l].eval_total_residual(rank, &cfg, l > 0, &opts, &mut self.counter);

        let (fine, coarse) = self.levels.split_at_mut(l + 1);
        let fine = &mut fine[l];
        let coarse = &mut coarse[0];
        let link = &self.links[l];
        let nc_owned = coarse.n_owned();
        let (m0, b0, a0) = (
            rank.counters.total_messages(),
            rank.counters.total_bytes(),
            rank.counters.comm_allocs,
        );
        let xfer = self.counter.phase(Phase::Transfer);

        // State down (owned coarse entries set directly).
        link.restrict_state_planes(rank, fine.st.w.flat(), coarse.st.w.flat_mut(), NVAR, xfer);
        coarse.st.w_ref.copy_owned_from(&coarse.st.w, nc_owned);

        // Residuals down, conservatively, into coarse.st.corr (owned).
        for c in 0..NVAR {
            coarse.st.corr.plane_mut(c)[..nc_owned]
                .iter_mut()
                .for_each(|x| *x = 0.0);
        }
        // restrict_residual reads owned fine residuals only.
        link.restrict_residual_planes(
            rank,
            fine.st.res.flat(),
            coarse.st.corr.flat_mut(),
            NVAR,
            xfer,
        );
        let (m1, b1, a1) = (
            rank.counters.total_messages(),
            rank.counters.total_bytes(),
            rank.counters.comm_allocs,
        );
        self.counter
            .add_comm(Phase::Transfer, m1 - m0, b1 - b0, a1 - a0);

        // Forcing P = R' − R(w').
        coarse.st.forcing.fill(0.0);
        coarse.eval_total_residual(rank, &cfg, true, &opts, &mut self.counter);
        for c in 0..NVAR {
            for ((f, &cr), &r) in coarse.st.forcing.plane_mut(c)[..nc_owned]
                .iter_mut()
                .zip(&coarse.st.corr.plane(c)[..nc_owned])
                .zip(&coarse.st.res.plane(c)[..nc_owned])
            {
                *f = cr - r;
            }
        }
    }

    fn prolong_up(&mut self, rank: &mut Rank, l: usize) {
        let (fine, coarse) = self.levels.split_at_mut(l + 1);
        let fine = &mut fine[l];
        let coarse = &mut coarse[0];
        let link = &self.links[l];
        let nc_owned = coarse.n_owned();
        for c in 0..NVAR {
            for ((d, &a), &b) in coarse.st.corr.plane_mut(c)[..nc_owned]
                .iter_mut()
                .zip(&coarse.st.w.plane(c)[..nc_owned])
                .zip(&coarse.st.w_ref.plane(c)[..nc_owned])
            {
                *d = a - b;
            }
        }
        let (m0, b0, a0) = (
            rank.counters.total_messages(),
            rank.counters.total_bytes(),
            rank.counters.comm_allocs,
        );
        let xfer = self.counter.phase(Phase::Transfer);
        link.prolong_planes(
            rank,
            coarse.st.corr.flat(),
            fine.st.corr.flat_mut(),
            NVAR,
            xfer,
        );
        let (m1, b1, a1) = (
            rank.counters.total_messages(),
            rank.counters.total_bytes(),
            rank.counters.comm_allocs,
        );
        self.counter
            .add_comm(Phase::Transfer, m1 - m0, b1 - b0, a1 - a0);
        let nf_owned = fine.n_owned();
        for c in 0..NVAR {
            for (w, &d) in fine.st.w.plane_mut(c)[..nf_owned]
                .iter_mut()
                .zip(&fine.st.corr.plane(c)[..nf_owned])
            {
                *w += d;
            }
        }
    }
}

/// Run a full distributed solve on the simulated machine. Fault-free:
/// delegates to the recovery-capable driver with an empty fault plan,
/// which reduces to the plain cycle loop.
pub fn run_distributed(
    setup: &DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
) -> DistRunResult {
    super::recover::run_distributed_with_faults(
        setup,
        cfg,
        strategy,
        cycles,
        opts,
        &super::recover::FaultOptions::default(),
    )
}
