//! Property tests of the preprocessing algorithms over random graphs
//! (not just meshes): connected random graphs are built from a random
//! spanning tree plus extra edges.

use proptest::prelude::*;

use eul3d_partition::coloring::color_edge_list;
use eul3d_partition::reorder::{random_order, rcm_order};
use eul3d_partition::{kl_refine, rsb_partition, PartitionQuality};

/// A connected random graph: spanning tree + `extra` random edges.
fn arb_graph(n: usize) -> impl Strategy<Value = Vec<[u32; 2]>> {
    (
        proptest::collection::vec(0u64..u64::MAX, n.saturating_sub(1)),
        proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..2 * n),
    )
        .prop_map(move |(tree_picks, extras)| {
            let mut edges: Vec<[u32; 2]> = Vec::new();
            for (i, pick) in tree_picks.iter().enumerate() {
                let v = (i + 1) as u32;
                let parent = (pick % (i as u64 + 1)) as u32;
                edges.push(if parent < v { [parent, v] } else { [v, parent] });
            }
            for (a, b) in extras {
                if a != b {
                    edges.push(if a < b { [a, b] } else { [b, a] });
                }
            }
            edges.sort_unstable();
            edges.dedup();
            edges
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Greedy colouring of arbitrary graphs: no two edges in one colour
    /// share a vertex; colour count bounded by 2Δ−1.
    #[test]
    fn coloring_valid_on_random_graphs(edges in arb_graph(30)) {
        let n = 30;
        let coloring = color_edge_list(n, &edges);
        // Validate by hand (validate_coloring requires a TetMesh).
        let mut seen = vec![false; edges.len()];
        for group in &coloring.groups {
            let mut touched = std::collections::HashSet::new();
            for &e in group {
                prop_assert!(!seen[e as usize]);
                seen[e as usize] = true;
                let [a, b] = edges[e as usize];
                prop_assert!(touched.insert(a), "vertex {a} reused in a group");
                prop_assert!(touched.insert(b), "vertex {b} reused in a group");
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let mut deg = vec![0usize; n];
        for &[a, b] in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let max_deg = deg.iter().copied().max().unwrap_or(0);
        prop_assert!(coloring.ncolors() <= (2 * max_deg).max(1));
    }

    /// RSB on arbitrary connected graphs: full cover, sane balance.
    #[test]
    fn rsb_on_random_graphs(edges in arb_graph(40), nparts in 2usize..6) {
        let n = 40;
        let parts = rsb_partition(n, &edges, nparts, 25, 3);
        prop_assert_eq!(parts.len(), n);
        let q = PartitionQuality::compute(&parts, nparts, &edges);
        prop_assert!(q.max_imbalance < 1.4, "imbalance {}", q.max_imbalance);
    }

    /// KL refinement never increases the cut and keeps every part
    /// nonempty.
    #[test]
    fn kl_monotone_on_random_graphs(edges in arb_graph(36), seed in 0u64..50) {
        let n = 36;
        let nparts = 3;
        let mut parts = eul3d_partition::random_partition(n, nparts, seed);
        let before = PartitionQuality::compute(&parts, nparts, &edges);
        kl_refine(n, &edges, &mut parts, nparts, 1.4, 6);
        let after = PartitionQuality::compute(&parts, nparts, &edges);
        prop_assert!(after.cut_edges <= before.cut_edges);
        for p in 0..nparts as u32 {
            prop_assert!(parts.contains(&p));
        }
    }

    /// RCM is always a permutation, on any graph.
    #[test]
    fn rcm_is_permutation_on_random_graphs(edges in arb_graph(25)) {
        let order = rcm_order(25, &edges);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..25u32).collect::<Vec<_>>());
    }

    /// random_order is a permutation for any seed.
    #[test]
    fn random_order_is_permutation(n in 1usize..100, seed in 0u64..1000) {
        let order = random_order(n, seed);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }
}
