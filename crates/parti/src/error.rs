//! Typed errors for the PARTI runtime: tag-space exhaustion and
//! partition/translation inconsistencies a caller can provoke.

use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartiError {
    /// A `range` request would run past the collective tag space (or
    /// the base already sits inside it).
    TagSpaceExhausted { base: u32, width: u32 },
    /// `base + epoch * EPOCH_STRIDE` overflowed u32: the recovery epoch
    /// tag space is spent.
    EpochTagOverflow { base: u32, epoch: u32 },
}

impl fmt::Display for PartiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartiError::TagSpaceExhausted { base, width } => write!(
                f,
                "tag range [{base}, {base}+{width}) ran into the collective space"
            ),
            PartiError::EpochTagOverflow { base, epoch } => write!(
                f,
                "recovery epoch tag space overflowed u32 (base {base}, epoch {epoch})"
            ),
        }
    }
}

impl std::error::Error for PartiError {}
