//! Scalar perfect-gas thermodynamics and flux functions — the single
//! source of truth for the per-edge arithmetic. `eul3d-core`'s `gas` and
//! `roe` modules re-export these, and the lane-chunked kernels in this
//! crate inline exactly the same expression trees, which is what makes
//! the SoA path bit-identical to the AoS reference.

use eul3d_mesh::Vec3;

/// Static pressure from conserved variables.
#[inline(always)]
pub fn pressure(gamma: f64, w: &[f64; 5]) -> f64 {
    let rho = w[0];
    let ke = 0.5 * (w[1] * w[1] + w[2] * w[2] + w[3] * w[3]) / rho;
    (gamma - 1.0) * (w[4] - ke)
}

/// Speed of sound.
#[inline(always)]
pub fn sound_speed(gamma: f64, rho: f64, p: f64) -> f64 {
    (gamma * p / rho).sqrt()
}

/// Convective flux dotted with a (non-unit) area vector `eta`, given the
/// precomputed pressure: `F(w) · η`.
#[inline(always)]
pub fn flux_dot(w: &[f64; 5], p: f64, eta: Vec3) -> [f64; 5] {
    let rho = w[0];
    let u = w[1] / rho;
    let v = w[2] / rho;
    let ww = w[3] / rho;
    // Volume flux through the face.
    let qn = u * eta.x + v * eta.y + ww * eta.z;
    [
        rho * qn,
        w[1] * qn + p * eta.x,
        w[2] * qn + p * eta.y,
        w[3] * qn + p * eta.z,
        (w[4] + p) * qn,
    ]
}

/// Convective spectral radius on a face with area vector `eta`:
/// `|q·η| + c·|η|`.
#[inline(always)]
pub fn spectral_radius(gamma: f64, w: &[f64; 5], p: f64, eta: Vec3) -> f64 {
    let rho = w[0];
    let qn = (w[1] * eta.x + w[2] * eta.y + w[3] * eta.z) / rho;
    qn.abs() + sound_speed(gamma, rho, p) * eta.norm()
}

/// Fraction of the Roe-averaged sound speed below which eigenvalues are
/// smoothed (Harten's entropy fix), preventing expansion shocks.
pub const ENTROPY_FIX: f64 = 0.1;

/// `½ |Â(w_a, w_b)| (w_b − w_a)` through the (non-unit) face normal
/// `eta`: the upwind dissipation of the Roe flux. Returns the vector to
/// add at `a` and subtract at `b` under the `R = Q − D` convention.
#[inline]
pub fn roe_dissipation_flux(
    gamma: f64,
    wa: &[f64; 5],
    wb: &[f64; 5],
    pa: f64,
    pb: f64,
    eta: Vec3,
) -> [f64; 5] {
    let area = eta.norm();
    if area < 1e-300 {
        return [0.0; 5];
    }
    let n = eta / area;

    // Primitive states.
    let (ra, rb) = (wa[0], wb[0]);
    let ua = Vec3::new(wa[1] / ra, wa[2] / ra, wa[3] / ra);
    let ub = Vec3::new(wb[1] / rb, wb[2] / rb, wb[3] / rb);
    let ha = (wa[4] + pa) / ra;
    let hb = (wb[4] + pb) / rb;

    // Roe averages.
    let sra = ra.sqrt();
    let srb = rb.sqrt();
    let rho = sra * srb;
    let f = sra / (sra + srb);
    let u = ua * f + ub * (1.0 - f);
    let h = ha * f + hb * (1.0 - f);
    let q2 = u.norm_sq();
    let c2 = (gamma - 1.0) * (h - 0.5 * q2);
    // Roe average of physical states keeps c² > 0; guard anyway.
    let c = c2.max(1e-12).sqrt();
    let un = u.dot(n);

    // Jumps.
    let d_rho = rb - ra;
    let d_p = pb - pa;
    let d_u = ub - ua;
    let d_un = d_u.dot(n);

    // Wave strengths.
    let a1 = (d_p - rho * c * d_un) / (2.0 * c2); // λ = un − c
    let a5 = (d_p + rho * c * d_un) / (2.0 * c2); // λ = un + c
    let a2 = d_rho - d_p / c2; // entropy wave, λ = un
    let d_ut = d_u - n * d_un; // shear jump, λ = un

    // Entropy-fixed absolute eigenvalues.
    let fix = |lam: f64| -> f64 {
        let delta = ENTROPY_FIX * c;
        let al = lam.abs();
        if al < delta {
            0.5 * (al * al / delta + delta)
        } else {
            al
        }
    };
    let l1 = fix(un - c);
    let l2 = fix(un);
    let l5 = fix(un + c);

    // |A| Δw = Σ |λ_k| α_k r_k.
    let mut d = [0.0f64; 5];
    let mut add = |s: f64, r0: f64, rv: Vec3, re: f64| {
        d[0] += s * r0;
        d[1] += s * rv.x;
        d[2] += s * rv.y;
        d[3] += s * rv.z;
        d[4] += s * re;
    };
    // Acoustic waves.
    add(l1 * a1, 1.0, u - n * c, h - c * un);
    add(l5 * a5, 1.0, u + n * c, h + c * un);
    // Entropy wave.
    add(l2 * a2, 1.0, u, 0.5 * q2);
    // Shear waves.
    add(l2 * rho, 0.0, d_ut, u.dot(d_ut));

    for x in &mut d {
        *x *= 0.5 * area;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_and_sound_speed_consistency() {
        let w = [1.0, 0.5, 0.0, 0.0, 2.0];
        let p = pressure(1.4, &w);
        assert!((p - 0.4 * (2.0 - 0.125)).abs() < 1e-15);
        assert!((sound_speed(1.4, 1.0, p) - (1.4 * p).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn roe_zero_jump_is_zero() {
        let w = [1.0, 0.3, 0.1, 0.0, 2.2];
        let p = pressure(1.4, &w);
        let d = roe_dissipation_flux(1.4, &w, &w, p, p, Vec3::new(0.2, -0.1, 0.4));
        assert!(d.iter().all(|x| x.abs() < 1e-14));
    }
}
