//! Job-scoped solver invocation for the service layer: one fully
//! described run ([`crate::RunConfig`] + mode + partitioner seed) in,
//! one deterministic artifact bundle out, cancellable at cycle
//! granularity through the same [`eul3d_delta::FaultSignal`] unwind
//! path the fault-injection machinery uses.
//!
//! Determinism is the contract. For a fixed `(config, mode, seed)` the
//! returned [`JobArtifacts`] are **byte-identical** across runs, worker
//! threads, and process restarts: the residual table prints floats with
//! Rust's shortest-round-trip formatting (unique per bit pattern), the
//! Chrome trace rides the modeled clock (reset per job by
//! `obs::install`), and the VTK export is a pure function of the final
//! state. That is what lets the service layer treat a cache hit and a
//! recompute as provably interchangeable.

use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eul3d_delta::FaultSignal;
use eul3d_mesh::vtk::write_vtk;
use eul3d_mesh::MeshSequence;
use eul3d_obs as obs;

use crate::ckstore::{DurabilitySink, JobCheckpoint};
use crate::dist::{
    run_distributed, run_distributed_guarded, run_distributed_with_faults, DistBackend,
    DistOptions, DistSetup, FaultOptions,
};
use crate::error::{Eul3dError, SolverError};
use crate::health::GuardOutcome;
use crate::postproc::mach_field;
use crate::runconfig::{fnv1a_128, BackendKind};
use crate::{MultigridSolver, Phase, RunConfig};

/// Cooperative cancellation handle for one job. Cloneable; any clone's
/// [`CancelToken::cancel`] makes the next [`CancelToken::check`] on the
/// solver thread unwind via [`FaultSignal::Killed`] — the exact
/// non-local exit the fault-injection recovery driver uses — which the
/// job runner catches with `catch_unwind`. Cancellation is therefore
/// only observed at committed-cycle boundaries, so a cancelled job
/// never leaves a torn solver state behind.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Unwind with [`FaultSignal::Killed`] if cancellation was
    /// requested. Called by the job runner between committed cycles.
    pub fn check(&self) {
        if self.is_cancelled() {
            // The process-wide hook keeps expected unwinds silent.
            eul3d_delta::silence_fault_signal_panics();
            panic_any(FaultSignal::Killed);
        }
    }
}

/// Which driver a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobMode {
    /// Sequential multigrid on the driver thread (guarded when the
    /// config arms the guard). Cancellable per cycle.
    #[default]
    Solve,
    /// SPMD run on the simulated Delta (or hybrid threads), with
    /// faults/recovery/guard per the config. The SPMD region runs to
    /// completion once entered; cancellation is observed before setup
    /// and before launch.
    Distributed,
}

impl JobMode {
    /// Wire name (`"solve"` / `"distributed"`).
    pub fn name(self) -> &'static str {
        match self {
            JobMode::Solve => "solve",
            JobMode::Distributed => "distributed",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobMode> {
        match s {
            "solve" => Some(JobMode::Solve),
            "distributed" | "dist" => Some(JobMode::Distributed),
            _ => None,
        }
    }
}

/// The deterministic result bundle of one completed job.
#[derive(Debug, Clone)]
pub struct JobArtifacts {
    /// Committed residual history (bit-identical across reruns).
    pub history: Vec<f64>,
    /// The residual table: exact shortest-round-trip floats plus the
    /// final-state content hash, so two byte-identical tables imply
    /// bit-identical states.
    pub table: String,
    /// Chrome `trace_event` JSON of the run's lanes, when the config
    /// arms tracing (byte-identical across reruns on the modeled clock).
    pub trace_json: Option<String>,
    /// Stamped event stream of the driver lane (solve) or virtual rank
    /// 0's completed instance (distributed), for wire streaming.
    pub events: Vec<obs::Stamped>,
    /// ASCII VTK of the final Mach field on the fine mesh.
    pub vtk: String,
    /// Guard outcome of a guarded run.
    pub guard: Option<GuardOutcome>,
    /// FNV-1a 128 over table ‖ trace ‖ vtk — the content address of the
    /// result itself.
    pub result_hash: u128,
}

fn config_err(msg: &str) -> Eul3dError {
    Eul3dError::Solver(SolverError::ConfigParse {
        line: 0,
        msg: msg.to_string(),
    })
}

/// Exact-float residual table. `{r}` is Rust's shortest-round-trip
/// formatting: distinct bit patterns render distinctly, so byte-equality
/// of tables is bit-equality of histories (and, through the state hash,
/// of final states).
fn render_table(
    rc: &RunConfig,
    mode: JobMode,
    history: &[f64],
    state_hash: u128,
    guard: Option<&GuardOutcome>,
) -> String {
    let mut out = String::new();
    out.push_str("# eul3d job result\n");
    out.push_str(&format!("mode = \"{}\"\n", mode.name()));
    out.push_str(&format!("config_hash = \"{:032x}\"\n", rc.canonical_hash()));
    if let Some(g) = guard {
        out.push_str(&format!(
            "guard_backoffs = {}\nguard_final_cfl = {}\n",
            g.transcript.len(),
            g.final_cfl
        ));
    }
    out.push_str("cycle\tresidual\n");
    for (c, r) in history.iter().enumerate() {
        out.push_str(&format!("{c}\t{r}\n"));
    }
    out.push_str(&format!("state_fnv128 = \"{state_hash:032x}\"\n"));
    out
}

/// Content hash of a state vector: FNV-1a 128 over the little-endian
/// bit patterns, so two equal hashes mean bit-identical states.
fn hash_f64s(vals: &[f64]) -> u128 {
    let mut bytes = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a_128(&bytes)
}

fn phase_labels() -> Vec<&'static str> {
    Phase::ALL.iter().map(|p| p.label()).collect()
}

fn render_vtk(
    mesh: &eul3d_mesh::TetMesh,
    gamma: f64,
    w: &crate::SoaState,
    nverts: usize,
) -> Result<String, Eul3dError> {
    let mach = mach_field(gamma, w, nverts);
    let mut buf = Vec::new();
    write_vtk(&mut buf, mesh, &[("mach", &mach)])
        .map_err(|e| config_err(&format!("vtk export failed: {e}")))?;
    String::from_utf8(buf).map_err(|_| config_err("vtk export produced non-UTF-8 output"))
}

/// Run one job to completion on the calling thread.
///
/// * `partition_seed` seeds the RSB partitioner of the distributed path
///   (the service layer pins it at startup so cache keys are stable);
///   the solve path ignores it.
/// * `cancel` is polled at committed-cycle boundaries (solve) and
///   between setup stages (distributed); a cancelled job unwinds with
///   [`FaultSignal::Killed`], which the caller must `catch_unwind`.
/// * `on_cycle(cycle, residual)` streams progress: live per cycle on
///   the solve path, replayed from the committed history after the SPMD
///   region on the distributed path.
///
/// The returned artifacts are byte-identical for identical
/// `(config, mode, seed)` regardless of thread, load, or prior jobs on
/// the worker (the per-job `obs::install` resets the modeled clock).
pub fn run_job(
    rc: &RunConfig,
    mode: JobMode,
    partition_seed: u64,
    cancel: &CancelToken,
    on_cycle: &mut dyn FnMut(u64, f64),
) -> Result<JobArtifacts, Eul3dError> {
    run_job_durable(rc, mode, partition_seed, cancel, on_cycle, None)
}

/// [`run_job`] with a durability sink: the solve driver consults
/// `durability` for a resume point before the first cycle and persists a
/// [`JobCheckpoint`] through it at every `checkpoint_every` committed
/// cycles (never at the final one — completion is the terminal record).
///
/// Resume is **bit-exact**: the checkpoint carries the committed history
/// and the fine-grid state, and every coarse multigrid level is rebuilt
/// from the fine grid by restriction at the start of each cycle, so a
/// resumed run produces artifacts byte-identical to an uninterrupted
/// one. `on_cycle` is replayed for the committed prefix so progress
/// streaming is seamless across the resume.
///
/// The sink is only consulted on the solve path with tracing disabled
/// and no guard armed: a Chrome trace rides the modeled clock from cycle
/// 0 (a resumed trace could not be byte-identical) and guard retry state
/// is not serialized. In those configurations — and on the distributed
/// path — the job simply runs from scratch and writes no checkpoints.
/// Resume points that do not fit the config (wrong mesh size,
/// out-of-range cycle count, non-finite state) are ignored, not errors:
/// a damaged resume point costs recompute, never the job.
pub fn run_job_durable(
    rc: &RunConfig,
    mode: JobMode,
    partition_seed: u64,
    cancel: &CancelToken,
    on_cycle: &mut dyn FnMut(u64, f64),
    durability: Option<&mut dyn DurabilitySink>,
) -> Result<JobArtifacts, Eul3dError> {
    rc.validate()?;
    cancel.check();
    match mode {
        JobMode::Solve => run_solve_job(rc, cancel, on_cycle, durability),
        JobMode::Distributed => run_dist_job(rc, partition_seed, cancel, on_cycle),
    }
}

fn run_solve_job(
    rc: &RunConfig,
    cancel: &CancelToken,
    on_cycle: &mut dyn FnMut(u64, f64),
    mut durability: Option<&mut dyn DurabilitySink>,
) -> Result<JobArtifacts, Eul3dError> {
    if rc.faults.is_some() {
        return Err(config_err(
            "fault plans require mode = \"distributed\" (the solve driver has no recovery path)",
        ));
    }
    let seq = MeshSequence::bump_sequence(&rc.mesh, rc.levels);
    cancel.check();
    if rc.trace.enabled {
        obs::install(Box::new(obs::RingTracer::new(rc.trace.capacity)));
    }
    let mut mg = MultigridSolver::new(seq, rc.solver, rc.strategy);
    let (history, guard) = match &rc.guard {
        Some(g) => {
            let (hist, outcome) = mg.solve_guarded_hooked(rc.cycles, g, &mut |c, r| {
                cancel.check();
                on_cycle(c as u64, r);
            })?;
            (hist, Some(outcome))
        }
        None => {
            let mut hist = Vec::with_capacity(rc.cycles);
            let durable = !rc.trace.enabled;
            let nverts = mg.levels[0].n;
            let mut start = 0usize;
            if durable {
                if let Some(sink) = durability.as_mut() {
                    if let Some(ck) = sink.resume_point() {
                        let fits = ck.w.len() == nverts * crate::NVAR
                            && ck.history.len() == ck.cycles_done as usize
                            && (ck.cycles_done as usize) <= rc.cycles
                            && ck.w.iter().all(|x| x.is_finite())
                            && ck.history.iter().all(|x| x.is_finite());
                        if fits {
                            for i in 0..nverts {
                                mg.levels[0]
                                    .w
                                    .set_row(i, &ck.w[i * crate::NVAR..(i + 1) * crate::NVAR]);
                            }
                            for (c, &r) in ck.history.iter().enumerate() {
                                on_cycle(c as u64, r);
                            }
                            hist.extend_from_slice(&ck.history);
                            start = ck.cycles_done as usize;
                            sink.resumed(ck.cycles_done);
                        }
                    }
                }
            }
            for c in start..rc.cycles {
                cancel.check();
                let r = mg.cycle();
                hist.push(r);
                // Persist before announcing the cycle: once a caller has
                // observed `on_cycle(c)`, cycle c is durable — the serve
                // layer's journal relies on exactly that ordering.
                if durable && rc.checkpoint_every > 0 {
                    let done = c + 1;
                    if done % rc.checkpoint_every == 0 && done < rc.cycles {
                        if let Some(sink) = durability.as_mut() {
                            let mut aos = mg.levels[0].w.to_aos();
                            aos.truncate(nverts * crate::NVAR);
                            sink.checkpoint(&JobCheckpoint {
                                cycles_done: done as u64,
                                history: hist.clone(),
                                w: aos,
                            });
                        }
                    }
                }
                on_cycle(c as u64, r);
            }
            (hist, None)
        }
    };
    let (events, trace_json) = if rc.trace.enabled {
        match obs::take() {
            Some(tr) => {
                let lane = obs::Lane {
                    id: 0,
                    name: "driver".to_string(),
                    events: tr.snapshot(),
                    dropped: tr.dropped(),
                };
                let json = obs::chrome_trace(std::slice::from_ref(&lane), &phase_labels());
                (lane.events, Some(json))
            }
            None => (Vec::new(), None),
        }
    } else {
        (Vec::new(), None)
    };
    let nverts = mg.levels[0].n;
    let w = &mg.levels[0].w;
    let mut aos = w.to_aos();
    aos.truncate(nverts * crate::NVAR);
    let mesh0 = mg
        .seq
        .meshes
        .first()
        .ok_or(Eul3dError::Solver(SolverError::EmptyMeshSequence))?;
    let vtk = render_vtk(mesh0, rc.solver.gamma, w, nverts)?;
    let table = render_table(
        rc,
        JobMode::Solve,
        &history,
        hash_f64s(&aos),
        guard.as_ref(),
    );
    Ok(finish(history, table, trace_json, events, vtk, guard))
}

fn run_dist_job(
    rc: &RunConfig,
    partition_seed: u64,
    cancel: &CancelToken,
    on_cycle: &mut dyn FnMut(u64, f64),
) -> Result<JobArtifacts, Eul3dError> {
    let hybrid = rc.backend == BackendKind::Hybrid;
    let nranks = rc.effective_nranks();
    let seq = MeshSequence::bump_sequence(&rc.mesh, rc.levels);
    cancel.check();
    let setup = match &rc.partition {
        Some(p) => DistSetup::from_policy(seq, nranks, 40, partition_seed, p),
        None => DistSetup::new(seq, nranks, 40, partition_seed),
    };
    cancel.check();

    let fopts = match &rc.faults {
        Some(spec) => Some(FaultOptions {
            plan: Arc::new(eul3d_delta::FaultPlan::parse(spec, nranks).map_err(Eul3dError::Delta)?),
            checkpoint_every: rc.checkpoint_every,
            recv_timeout_ms: rc.fault_timeout_ms,
            ..FaultOptions::default()
        }),
        // The guarded driver needs a fault context for its rollback
        // checkpoints even when nothing is killed.
        None if rc.guard.is_some() => Some(FaultOptions {
            checkpoint_every: rc.checkpoint_every,
            recv_timeout_ms: rc.fault_timeout_ms,
            ..FaultOptions::default()
        }),
        None => None,
    };
    let opts = DistOptions {
        trace_capacity: rc.trace.enabled.then_some(rc.trace.capacity),
        backend: if hybrid {
            DistBackend::Hybrid
        } else {
            DistBackend::Delta
        },
        // Real-time lanes would break byte-identity; job traces always
        // ride the modeled clock, even on the hybrid backend.
        real_time_lanes: false,
        repartition: rc
            .partition
            .as_ref()
            .and_then(|p| crate::dist::RepartitionPolicy::from_config(p, 40, partition_seed)),
        ..DistOptions::default()
    };
    // The SPMD region re-raises rank panics. A typed DeltaError payload
    // (e.g. a wedged shared-memory window) is lifted back into the error
    // taxonomy here; anything else keeps unwinding unchanged.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<crate::dist::DistRunResult, Eul3dError> {
            match (&rc.guard, &fopts) {
                (Some(g), Some(f)) => Ok(run_distributed_guarded(
                    &setup,
                    rc.solver,
                    rc.strategy,
                    rc.cycles,
                    opts,
                    f,
                    g,
                )?),
                (None, Some(f)) => Ok(run_distributed_with_faults(
                    &setup,
                    rc.solver,
                    rc.strategy,
                    rc.cycles,
                    opts,
                    f,
                )),
                _ => Ok(run_distributed(
                    &setup,
                    rc.solver,
                    rc.strategy,
                    rc.cycles,
                    opts,
                )),
            }
        },
    ));
    let r = match run {
        Ok(res) => res?,
        Err(payload) => match payload.downcast::<eul3d_delta::DeltaError>() {
            Ok(e) => return Err(Eul3dError::Delta(*e)),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    };
    let history = r.history().to_vec();
    for (c, &res) in history.iter().enumerate() {
        on_cycle(c as u64, res);
    }
    let guard = r.guard_outcome().cloned();
    let (events, trace_json) = if rc.trace.enabled {
        let lanes = r.lanes();
        let json = obs::chrome_trace(&lanes, &phase_labels());
        let ev0 = r.instance(0).map(|o| o.trace.clone()).unwrap_or_default();
        (ev0, Some(json))
    } else {
        (Vec::new(), None)
    };
    let nverts = setup.seq.meshes[0].nverts();
    let aos = r.global_state(nverts);
    let w = crate::SoaState::from_aos(&aos, crate::NVAR);
    let vtk = render_vtk(&setup.seq.meshes[0], rc.solver.gamma, &w, nverts)?;
    let table = render_table(
        rc,
        JobMode::Distributed,
        &history,
        hash_f64s(&aos),
        guard.as_ref(),
    );
    Ok(finish(history, table, trace_json, events, vtk, guard))
}

fn finish(
    history: Vec<f64>,
    table: String,
    trace_json: Option<String>,
    events: Vec<obs::Stamped>,
    vtk: String,
    guard: Option<GuardOutcome>,
) -> JobArtifacts {
    let mut bytes =
        Vec::with_capacity(table.len() + trace_json.as_ref().map_or(0, String::len) + vtk.len());
    bytes.extend_from_slice(table.as_bytes());
    if let Some(t) = &trace_json {
        bytes.extend_from_slice(t.as_bytes());
    }
    bytes.extend_from_slice(vtk.as_bytes());
    let result_hash = fnv1a_128(&bytes);
    JobArtifacts {
        history,
        table,
        trace_json,
        events,
        vtk,
        guard,
        result_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rc(cycles: usize) -> RunConfig {
        RunConfig {
            levels: 2,
            cycles,
            mesh: eul3d_mesh::gen::BumpSpec {
                nx: 8,
                ny: 4,
                nz: 3,
                ..Default::default()
            },
            nranks: 4,
            ..RunConfig::default()
        }
    }

    #[test]
    fn solve_job_is_byte_deterministic_and_streams_progress() {
        let rc = small_rc(4);
        let token = CancelToken::new();
        let mut seen = Vec::new();
        let a = run_job(&rc, JobMode::Solve, 7, &token, &mut |c, r| {
            seen.push((c, r));
        })
        .unwrap();
        let b = run_job(&rc, JobMode::Solve, 7, &token, &mut |_, _| {}).unwrap();
        assert_eq!(a.table, b.table);
        assert_eq!(a.vtk, b.vtk);
        assert_eq!(a.result_hash, b.result_hash);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[2].1, a.history[2].to_owned());
        assert!(a.table.contains("state_fnv128"));
    }

    #[test]
    fn cancel_unwinds_with_fault_signal() {
        let rc = small_rc(50);
        let token = CancelToken::new();
        let t2 = token.clone();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&rc, JobMode::Solve, 7, &token, &mut |c, _| {
                if c == 1 {
                    t2.cancel();
                }
            })
        }))
        .expect_err("cancellation must unwind");
        assert!(
            err.downcast_ref::<FaultSignal>().is_some(),
            "payload must be the FaultSignal unwind"
        );
    }

    /// Collects every checkpoint and hands out a scripted resume point —
    /// the in-memory stand-in for the serve layer's disk-backed sink.
    #[derive(Default)]
    struct MemSink {
        resume: Option<crate::ckstore::JobCheckpoint>,
        taken: Vec<crate::ckstore::JobCheckpoint>,
    }

    impl crate::ckstore::DurabilitySink for MemSink {
        fn resume_point(&mut self) -> Option<crate::ckstore::JobCheckpoint> {
            self.resume.clone()
        }

        fn checkpoint(&mut self, ck: &crate::ckstore::JobCheckpoint) {
            self.taken.push(ck.clone());
        }
    }

    #[test]
    fn durable_resume_is_byte_identical_to_uninterrupted_run() {
        // The checkpoint stores only the fine-grid state; this test is
        // the proof that restriction rebuilds every coarse level, so the
        // resumed multigrid run reproduces the uninterrupted one bit for
        // bit.
        let mut rc = small_rc(8);
        rc.checkpoint_every = 2;
        let token = CancelToken::new();
        let mut full_sink = MemSink::default();
        let base = run_job_durable(
            &rc,
            JobMode::Solve,
            7,
            &token,
            &mut |_, _| {},
            Some(&mut full_sink),
        )
        .unwrap();
        // Checkpoints at cycles 2, 4, 6 — never at the final cycle.
        assert_eq!(
            full_sink
                .taken
                .iter()
                .map(|c| c.cycles_done)
                .collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
        for ck in &full_sink.taken {
            // Resume from every checkpoint the run produced.
            let mut sink = MemSink {
                resume: Some(ck.clone()),
                ..MemSink::default()
            };
            let mut seen = Vec::new();
            let resumed = run_job_durable(
                &rc,
                JobMode::Solve,
                7,
                &token,
                &mut |c, r| seen.push((c, r)),
                Some(&mut sink),
            )
            .unwrap();
            assert_eq!(resumed.table, base.table, "resume at {}", ck.cycles_done);
            assert_eq!(resumed.vtk, base.vtk, "resume at {}", ck.cycles_done);
            assert_eq!(resumed.result_hash, base.result_hash);
            assert_eq!(resumed.history, base.history);
            // Progress replays the committed prefix then streams live.
            assert_eq!(seen.len(), 8);
            for (c, (sc, sr)) in seen.iter().enumerate() {
                assert_eq!(*sc, c as u64);
                assert_eq!(*sr, base.history[c]);
            }
            // Later checkpoints are still emitted after a resume.
            assert!(sink
                .taken
                .iter()
                .all(|later| later.cycles_done > ck.cycles_done));
        }
    }

    #[test]
    fn unusable_resume_points_are_ignored_not_fatal() {
        let mut rc = small_rc(4);
        rc.checkpoint_every = 2;
        let token = CancelToken::new();
        let base = run_job(&rc, JobMode::Solve, 7, &token, &mut |_, _| {}).unwrap();
        let bad_points = vec![
            // Wrong mesh size.
            crate::ckstore::JobCheckpoint {
                cycles_done: 2,
                history: vec![1.0, 0.5],
                w: vec![1.0; 7],
            },
            // History length disagrees with the committed cycle count.
            crate::ckstore::JobCheckpoint {
                cycles_done: 2,
                history: vec![1.0],
                w: vec![1.0; 160 * crate::NVAR],
            },
            // Beyond the requested cycle count.
            crate::ckstore::JobCheckpoint {
                cycles_done: 99,
                history: vec![1.0; 99],
                w: vec![1.0; 160 * crate::NVAR],
            },
        ];
        for bad in bad_points {
            let mut sink = MemSink {
                resume: Some(bad),
                ..MemSink::default()
            };
            let got = run_job_durable(
                &rc,
                JobMode::Solve,
                7,
                &token,
                &mut |_, _| {},
                Some(&mut sink),
            )
            .unwrap();
            assert_eq!(got.result_hash, base.result_hash, "runs from scratch");
        }
    }

    #[test]
    fn solve_mode_rejects_fault_plans() {
        let mut rc = small_rc(4);
        rc.faults = Some("kill:1@2".into());
        rc.checkpoint_every = 2;
        let err = run_job(&rc, JobMode::Solve, 7, &CancelToken::new(), &mut |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("distributed"), "{err}");
    }
}
