//! **EUL3D** — the paper's three-dimensional unstructured Euler solver:
//! a compact vertex-based scheme with an edge-based data structure
//! (Galerkin linear-tet ≡ central differences + JST artificial
//! dissipation), five-stage Runge–Kutta time stepping with frozen
//! dissipation, local time steps, implicit residual averaging, and FAS
//! multigrid on sequences of *unrelated* meshes (V and W cycles).
//!
//! Three executors share the same kernels:
//!
//! * [`solver::SingleGridSolver`] / [`multigrid::MultigridSolver`] — the
//!   sequential reference implementation;
//! * [`shared`] — the shared-memory path of §3: edge-coloured groups
//!   work-shared across threads (rayon), the analogue of Cray
//!   autotasking over colour subgroups;
//! * [`dist`] — the distributed-memory path of §4: each rank runs the
//!   same cycle on its partition with PARTI gather/scatter keeping ghost
//!   data coherent, on the simulated Delta machine.

//! ```
//! use eul3d_core::{MultigridSolver, SolverConfig, Strategy};
//! use eul3d_mesh::gen::BumpSpec;
//! use eul3d_mesh::MeshSequence;
//!
//! let spec = BumpSpec { nx: 8, ny: 4, nz: 3, ..Default::default() };
//! let seq = MeshSequence::bump_sequence(&spec, 2);
//! let cfg = SolverConfig { mach: 0.5, ..Default::default() };
//! let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
//! let history = mg.solve(5);
//! assert!(history.iter().all(|r| r.is_finite()));
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod agglo;
pub mod boundary;
pub mod checkpoint;
pub mod ckstore;
pub mod config;
pub mod counters;
pub mod dissipation;
pub mod dist;
pub mod error;
pub mod executor;
pub mod flux;
pub mod gas;
pub mod health;
pub mod history;
pub mod job;
pub mod level;
pub mod multigrid;
pub mod postproc;
pub mod prelude;
pub mod roe;
pub mod runconfig;
pub mod shared;
pub mod smooth;
pub mod soa;
pub mod solver;
pub mod timestep;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use ckstore::{CheckpointLog, CkStoreError, DurabilitySink, JobCheckpoint, TailReport};
pub use config::{Scheme, SolverConfig};
pub use counters::{FlopCounter, PhaseCounters};
pub use error::{Eul3dError, SolverError};
pub use executor::{Executor, Phase, SerialExecutor};
pub use gas::{Freestream, NVAR};
pub use health::{GuardConfig, GuardOutcome, HealthVerdict, RetryEvent};
pub use history::ConvergenceHistory;
pub use job::{run_job, run_job_durable, CancelToken, JobArtifacts, JobMode};
pub use multigrid::{MultigridSolver, Strategy};
pub use runconfig::{fnv1a_128, RunConfig, RunConfigBuilder, TraceConfig};
pub use soa::SoaState;
pub use solver::SingleGridSolver;

/// Deterministic seed for randomized setup (mesh jitter, partitioner
/// starts): the `EUL3D_SEED` environment variable when set to a valid
/// integer, `default` otherwise. CI sweeps a small seed matrix through
/// this to keep tests honest about seed sensitivity.
pub fn env_seed(default: u64) -> u64 {
    std::env::var("EUL3D_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}
