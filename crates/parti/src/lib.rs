//! A Rust reimplementation of the **PARTI** primitives (Parallel
//! Automated Runtime Toolkit at ICASE) used by the paper's distributed
//! implementation (§4.1, references \[12\]–\[14\]).
//!
//! PARTI's programming model: irregular loops with indirect addressing
//! are transformed into an **inspector** and an **executor**. At runtime
//! the inspector ([`localize`]) scans the off-processor references a rank
//! will make, deduplicates them with hash tables, and builds a
//! [`Schedule`] — a reusable communication pattern. The executor then
//! calls [`Schedule::gather`] to fetch off-processor data into ghost
//! slots before a loop, and [`Schedule::scatter_add`] to flush partial
//! sums accumulated in ghost slots back to their owners after a loop.
//!
//! The §4.3 communication optimizations are implemented too:
//! * **incremental schedules** ([`GhostRegistry`]) fetch only the
//!   off-processor data *not already covered* by existing schedules;
//! * **message aggregation** ([`Schedule::merge`]) combines several
//!   schedules so each destination receives one large message instead of
//!   several small ones, paying the Delta's latency once.

//! ```
//! use eul3d_delta::{run_spmd, CommClass};
//! use eul3d_parti::{localize, Translation};
//!
//! // 8 globals block-distributed over 2 ranks; each rank ghosts the
//! // peer's first entry into local slot 4.
//! let parts: Vec<u32> = (0..8).map(|g| (g / 4) as u32).collect();
//! let run = run_spmd(2, move |rank| {
//!     let trans = Translation::from_parts(&parts, 2);
//!     let required = [if rank.id == 0 { 4 } else { 0 }];
//!     let sched = localize(rank, &trans, &required, &[4], 100, CommClass::Halo);
//!     let mut data = vec![rank.id as f64; 5]; // 4 owned + 1 ghost slot
//!     sched.gather(rank, &mut data, 1);
//!     data[4]
//! });
//! assert_eq!(run.results, vec![1.0, 0.0]); // each side sees the peer's value
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod inspector;
pub mod registry;
pub mod schedule;
pub mod tags;
pub mod translation;

pub use error::PartiError;
pub use inspector::localize;
pub use registry::GhostRegistry;
pub use schedule::Schedule;
pub use tags::{TagAllocator, EPOCH_STRIDE};
pub use translation::Translation;
