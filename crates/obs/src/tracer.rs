//! Typed events and the tracer implementations.

/// One observability event. Small and `Copy` so recording is a plain
/// store into a pre-allocated ring slot — no boxing, no formatting, no
/// allocation on the hot path.
///
/// Span pairs ([`Event::PhaseBegin`]/[`Event::PhaseEnd`],
/// [`Event::CheckpointBegin`]/[`Event::CheckpointEnd`],
/// [`Event::RecoveryBegin`]/[`Event::RecoveryEnd`],
/// [`Event::RepartitionBegin`]/[`Event::RepartitionEnd`]) nest properly
/// per lane; the rest are instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A solver phase (dense [`index`](Event::PhaseBegin::phase) into the
    /// core `Phase::ALL` table) started on this lane.
    PhaseBegin {
        /// Dense phase index (`Phase::index()`).
        phase: u8,
    },
    /// The matching phase span ended.
    PhaseEnd {
        /// Dense phase index (`Phase::index()`).
        phase: u8,
    },
    /// A charged message left this rank.
    MsgSend {
        /// Destination rank.
        peer: u32,
        /// Message tag (collective tags appear verbatim).
        tag: u32,
        /// Payload wire bytes.
        bytes: u64,
    },
    /// A message was accepted by this rank's receive path.
    MsgRecv {
        /// Source rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload wire bytes.
        bytes: u64,
    },
    /// The communication-buffer pool missed and allocated fresh storage.
    PoolAlloc {
        /// Freshly allocated bytes.
        bytes: u64,
    },
    /// A distributed checkpoint (gather + replicate) started.
    CheckpointBegin {
        /// Solver cycle being checkpointed (1-based, the cycle count
        /// completed so far).
        cycle: u64,
    },
    /// The checkpoint finished.
    CheckpointEnd {
        /// Solver cycle being checkpointed.
        cycle: u64,
    },
    /// This rank entered a recovery epoch (fault rollback + schedule
    /// rebuild).
    RecoveryBegin {
        /// The recovery epoch being entered.
        epoch: u32,
    },
    /// Recovery finished; normal cycling resumes in the new epoch.
    RecoveryEnd {
        /// The recovery epoch that was entered.
        epoch: u32,
    },
    /// A planned mid-run repartition (checkpoint + epoch bump + rebuild
    /// against a new partition plan + restore) started on this rank.
    RepartitionBegin {
        /// Committed-cycle boundary the repartition runs at.
        cycle: u64,
    },
    /// The repartition finished; cycling resumes on the new layout.
    RepartitionEnd {
        /// Committed-cycle boundary the repartition ran at.
        cycle: u64,
    },
    /// The health guard agreed on a non-healthy verdict for a cycle.
    GuardVerdict {
        /// Cycle the verdict applies to (0-based).
        cycle: u64,
        /// Verdict severity (`HealthVerdict::severity()`).
        severity: u8,
    },
    /// The CFL controller changed the CFL in force (backoff or re-ramp).
    /// Values travel as raw bits so recording never formats a float.
    CflChange {
        /// `f64::to_bits` of the CFL before the change.
        from_bits: u64,
        /// `f64::to_bits` of the CFL after the change.
        to_bits: u64,
    },
}

/// An [`Event`] stamped with the lane-local deterministic clock
/// (nanoseconds; see [`crate::ctx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Nanoseconds on the recording lane's deterministic clock.
    pub ts_ns: u64,
    /// The event.
    pub ev: Event,
}

/// An event sink. Implementations must not allocate in
/// [`Tracer::record`] — it sits on the solver's steady-state hot path.
pub trait Tracer: Send {
    /// Whether recording is live (lets emit sites skip argument
    /// marshalling; [`NullTracer`] returns `false`).
    fn enabled(&self) -> bool;

    /// Record one stamped event. Must be allocation-free.
    fn record(&mut self, ts_ns: u64, ev: Event);

    /// Events discarded because the sink was full (drop-oldest policy).
    fn dropped(&self) -> u64;

    /// The retained events in recording order. Allocates — export path
    /// only.
    fn snapshot(&self) -> Vec<Stamped>;

    /// Total events ever recorded (monotone between [`Tracer::rewind`]s;
    /// includes events the ring later overwrote).
    fn written(&self) -> u64 {
        0
    }

    /// Discard every event recorded after the first `to` (a position
    /// previously read from [`Tracer::written`]). Distributed recovery
    /// rewinds a lane to the checkpoint it rolls the state back to, so
    /// the retained trace is the **committed** timeline — work aborted
    /// at a thread-timing-dependent point never reaches the export.
    /// Cold path (recovery only); may allocate.
    fn rewind(&mut self, to: u64) {
        let _ = to;
    }
}

/// The default sink: records nothing, reports nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ts_ns: u64, _ev: Event) {}

    fn dropped(&self) -> u64 {
        0
    }

    fn snapshot(&self) -> Vec<Stamped> {
        Vec::new()
    }
}

/// Default [`RingTracer`] capacity (events). 64 Ki events × 32 bytes =
/// 2 MiB per lane — several smoke-mesh cycles of full-detail trace.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Fixed-capacity ring sink: the storage is allocated once at
/// construction and never grows, so recording is a slot store. When the
/// ring is full the **oldest** event is overwritten and
/// [`Tracer::dropped`] counts the loss — a long run keeps its most
/// recent window, which is the one a post-mortem wants.
#[derive(Debug)]
pub struct RingTracer {
    buf: Vec<Stamped>,
    cap: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    dropped: u64,
    /// Total events ever recorded (monotone between rewinds).
    written: u64,
}

impl RingTracer {
    /// A ring retaining at most `capacity` events (min 1). Allocates its
    /// full storage up front.
    pub fn new(capacity: usize) -> RingTracer {
        let cap = capacity.max(1);
        RingTracer {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            written: 0,
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl Default for RingTracer {
    fn default() -> RingTracer {
        RingTracer::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ts_ns: u64, ev: Event) {
        let s = Stamped { ts_ns, ev };
        self.written += 1;
        if self.buf.len() < self.cap {
            // Below capacity: push into the pre-reserved storage (no
            // reallocation — `cap` was reserved at construction).
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn snapshot(&self) -> Vec<Stamped> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn written(&self) -> u64 {
        self.written
    }

    fn rewind(&mut self, to: u64) {
        let discard = self.written.saturating_sub(to);
        if discard == 0 {
            return;
        }
        self.written = to;
        if discard as usize >= self.buf.len() {
            self.buf.clear();
            self.head = 0;
            return;
        }
        // Straighten the ring, drop the `discard` newest events, and
        // restart un-wrapped. Cold path; `snapshot` stays within one
        // extra allocation.
        let keep = self.buf.len() - discard as usize;
        let mut straight = self.snapshot();
        straight.truncate(keep);
        self.buf.clear();
        self.buf.extend_from_slice(&straight);
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_records_nothing() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(1, Event::PhaseBegin { phase: 0 });
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut t = RingTracer::new(3);
        assert!(t.is_empty());
        for k in 0..5u64 {
            t.record(k, Event::PoolAlloc { bytes: k });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.dropped(), 2);
        let got: Vec<u64> = t.snapshot().iter().map(|s| s.ts_ns).collect();
        assert_eq!(got, vec![2, 3, 4], "drop-oldest keeps the newest window");
    }

    #[test]
    fn ring_does_not_reallocate_when_full() {
        let mut t = RingTracer::new(8);
        let ptr = t.buf.as_ptr();
        for k in 0..100u64 {
            t.record(
                k,
                Event::MsgSend {
                    peer: 1,
                    tag: 2,
                    bytes: k,
                },
            );
        }
        assert_eq!(t.buf.as_ptr(), ptr, "ring storage must never move");
        assert_eq!(t.dropped(), 92);
    }

    #[test]
    fn rewind_discards_events_past_the_mark() {
        let mut t = RingTracer::new(4);
        for k in 0..3u64 {
            t.record(k, Event::PoolAlloc { bytes: k });
        }
        let mark = t.written();
        for k in 3..6u64 {
            t.record(k, Event::PoolAlloc { bytes: k });
        }
        assert_eq!(t.written(), 6);
        t.rewind(mark);
        assert_eq!(t.written(), 3);
        let got: Vec<u64> = t.snapshot().iter().map(|s| s.ts_ns).collect();
        // The ring wrapped (cap 4, 6 recorded) so events 0 and 1 were
        // overwritten; events past the mark are discarded, leaving the
        // surviving tail of the first 3.
        assert_eq!(got, vec![2]);
        // Recording resumes cleanly after a rewind.
        t.record(9, Event::PoolAlloc { bytes: 9 });
        let got: Vec<u64> = t.snapshot().iter().map(|s| s.ts_ns).collect();
        assert_eq!(got, vec![2, 9]);
        assert_eq!(t.written(), 4);
    }

    #[test]
    fn rewind_to_zero_clears_everything() {
        let mut t = RingTracer::new(8);
        for k in 0..5u64 {
            t.record(k, Event::PhaseBegin { phase: 0 });
        }
        t.rewind(0);
        assert!(t.is_empty());
        assert_eq!(t.written(), 0);
    }

    #[test]
    fn snapshot_preserves_recording_order_before_wrap() {
        let mut t = RingTracer::new(10);
        t.record(5, Event::RecoveryBegin { epoch: 1 });
        t.record(9, Event::RecoveryEnd { epoch: 1 });
        let s = t.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].ev, Event::RecoveryBegin { epoch: 1 });
        assert_eq!(s[1].ts_ns, 9);
    }
}
