//! The distributed-memory EUL3D (§4): each rank owns a partition of every
//! mesh level and runs the same multistage/multigrid cycle, with PARTI
//! schedules keeping ghost data coherent over the simulated Delta.
//!
//! Data movement per Runge–Kutta stage follows §4.3: the flow variables
//! are gathered **once** at the start of the stage and reused by the
//! convective loop, both dissipation passes and the boundary loop
//! (set [`DistOptions::refetch_per_loop`] to measure the unoptimized
//! variant); edge-loop partial sums destined for off-rank vertices
//! accumulate in ghost slots and are flushed by `scatter_add`.

mod hybrid;
mod level;
mod recover;
mod setup;
mod solver;
mod transfer;

pub use hybrid::HybridExecutor;
pub use level::{DistExecOptions, DistExecutor, DistLevel};
pub use recover::{run_distributed_guarded, run_distributed_with_faults, FaultOptions};
pub use setup::{partition_options, partitioner_of, DistSetup};
pub use solver::{
    run_distributed, AdoptedOutput, DistBackend, DistOptions, DistRunResult, DistSolver, RankFate,
    RankOutput, RepartitionPolicy,
};
pub use transfer::TransferLink;

#[cfg(test)]
mod tests;
