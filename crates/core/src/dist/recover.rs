//! Fault-tolerant distributed driver: deterministic fault injection,
//! failure detection, and checkpoint/rollback recovery on the simulated
//! Delta.
//!
//! The fault model and protocol (see `DESIGN.md` §6):
//!
//! * Every rank installs the same [`FaultPlan`]; each evaluates only the
//!   events it originates. Faults surface as [`FaultSignal`] unwinds out
//!   of the communication layer — `Killed` on the doomed rank,
//!   `Recover { epoch, .. }` on survivors when they detect loss,
//!   corruption, a death notice, a peer's abort, or a bounded-receive
//!   timeout.
//! * Survivors **roll back** to the newest checkpoint *every* live
//!   instance still holds (agreed by an `all_reduce_max` over negated
//!   checkpoint cycles), **rebuild** all PARTI schedules in a fresh,
//!   epoch-shifted tag space, and **resume** the cycle loop.
//! * A dead rank's partition is **adopted** by a deterministically
//!   chosen buddy (the first live virtual id after it): the buddy clones
//!   the dead rank's mailbox receiver and hosts a replica thread running
//!   this same loop. The computation graph — who owns which vertices,
//!   the order of every collective reduction — is unchanged, so a
//!   recovered run reproduces the fault-free residual history **bit for
//!   bit**; only the cost model sees the load imbalance.
//!
//! Checkpoints are in-memory and replicated: every `checkpoint_every`
//! cycles the owned fine-grid state is gathered to virtual rank 0,
//! reassembled into global layout, and broadcast back, so any survivor
//! can serve a restore. Two generations are kept (double-buffered), the
//! writer always overwriting the older slot, and rollback discards
//! checkpoints from beyond the rollback point — together this guarantees
//! the agreed rollback target is restorable everywhere even when a fault
//! lands in the middle of a checkpoint.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::Duration;

use eul3d_delta::{run_spmd, CommClass, FaultPlan, FaultSignal, Rank, RankCounters};

use crate::config::SolverConfig;
use crate::counters::PhaseCounters;
use crate::executor::Phase;
use crate::gas::NVAR;
use crate::multigrid::Strategy;

use super::setup::DistSetup;
use super::solver::{AdoptedOutput, DistOptions, DistRunResult, DistSolver, RankFate, RankOutput};

/// Fault-injection and recovery options of a distributed run. The
/// default is fault-free: empty plan, no checkpoints, and the
/// communication layer stays on its blocking (timeout-free) fast path.
#[derive(Debug, Clone)]
pub struct FaultOptions {
    /// The machine-wide fault plan (shared; each rank evaluates only the
    /// events it originates).
    pub plan: Arc<FaultPlan>,
    /// Checkpoint cadence in cycles (0 = never). A cadence of `k` also
    /// snapshots the initial state before cycle 1, so there is always a
    /// rollback target once the first commit lands.
    pub checkpoint_every: usize,
    /// Bounded-receive window used to detect silently lost messages.
    /// Simulation wall-clock, not cost-model time; only armed when the
    /// plan is non-empty.
    pub recv_timeout_ms: u64,
    /// Abort the run (loud panic) if any rank enters more than this many
    /// recovery epochs — a backstop against livelock on a hostile plan.
    pub max_recoveries: u32,
}

impl Default for FaultOptions {
    fn default() -> FaultOptions {
        FaultOptions {
            plan: Arc::new(FaultPlan::none()),
            checkpoint_every: 0,
            recv_timeout_ms: 1500,
            max_recoveries: 8,
        }
    }
}

/// Everything the SPMD body needs, bundled so replicas can share it.
struct Ctx<'a> {
    setup: &'a DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &'a FaultOptions,
}

/// One in-memory checkpoint generation: the global fine-grid state at
/// the end of `cycle` cycles (`cycle == None` marks the slot invalid,
/// including mid-write).
#[derive(Default)]
struct CkSnap {
    cycle: Option<usize>,
    w: Vec<f64>,
}

/// Double-buffered checkpoint store. The writer invalidates and
/// overwrites the slot holding the *older* checkpoint, so the newest
/// committed generation survives a fault that lands mid-checkpoint.
#[derive(Default)]
struct CkStore {
    slots: [CkSnap; 2],
}

impl CkStore {
    /// Cycle of the newest committed checkpoint.
    fn latest(&self) -> Option<usize> {
        self.slots.iter().filter_map(|s| s.cycle).max()
    }

    fn get(&self, cycle: usize) -> Option<&[f64]> {
        self.slots
            .iter()
            .find(|s| s.cycle == Some(cycle))
            .map(|s| s.w.as_slice())
    }

    /// Invalidate every checkpoint from beyond the rollback point
    /// (`None` = all of them). Replayed cycles recommit the same
    /// (deterministic) snapshots; discarding keeps the divergence
    /// between any two instances' stores to at most one generation,
    /// which is what makes the agreed rollback target restorable
    /// everywhere.
    fn rollback_to(&mut self, keep_up_to: Option<usize>) {
        for s in &mut self.slots {
            if let Some(c) = s.cycle {
                if keep_up_to.is_none_or(|k| c > k) {
                    s.cycle = None;
                }
            }
        }
    }

    /// Start writing a new generation: pick the invalid or older slot,
    /// mark it invalid (commit happens by setting `cycle` afterwards),
    /// and hand it out. Never touches the newest committed slot.
    fn begin_write(&mut self) -> &mut CkSnap {
        let i = match (self.slots[0].cycle, self.slots[1].cycle) {
            (None, _) => 0,
            (_, None) => 1,
            (Some(a), Some(b)) => usize::from(a > b),
        };
        self.slots[i].cycle = None;
        &mut self.slots[i]
    }

    /// Install a received (shipped) checkpoint as a committed slot.
    fn install(&mut self, cycle: usize, w: Vec<f64>) {
        let s = self.begin_write();
        s.w = w;
        s.cycle = Some(cycle);
    }
}

/// Mutable state of one virtual rank's cycle loop.
struct LoopState {
    solver: Option<DistSolver>,
    /// Cycles completed (== `history.len()`).
    cycle: usize,
    history: Vec<f64>,
    /// Cumulative `comm_allocs` after each cycle, truncated on rollback
    /// in lockstep with `history`.
    cycle_allocs: Vec<u64>,
    cks: CkStore,
    /// Phase counters of solvers retired by recovery rebuilds.
    retired: PhaseCounters,
    setup_counters: Option<RankCounters>,
    /// Dead ranks whose adoption this instance has already resolved.
    handled: Vec<bool>,
}

fn comm_snap(rank: &Rank) -> (u64, u64, u64) {
    (
        rank.counters.total_messages(),
        rank.counters.total_bytes(),
        rank.counters.comm_allocs,
    )
}

/// The adopting buddy of dead rank `d`: the first live virtual id after
/// it, scanning cyclically. Every instance computes the same answer from
/// the (epoch-consistent) dead set, so no negotiation is needed.
fn buddy(rank: &Rank, d: usize) -> usize {
    (1..rank.nranks)
        .map(|k| (d + k) % rank.nranks)
        .find(|&v| rank.live(v))
        .expect("every rank is dead; nobody left to adopt")
}

/// Copy this rank's owned fine-grid entries out of a global snapshot.
/// Ghost slots stay stale; every stage re-gathers them before use.
fn restore_from(s: &mut DistSolver, w_global: &[f64]) {
    let fine = &mut s.levels[0];
    let n = fine.n_owned();
    for k in 0..n {
        let g = fine.rm.owned_globals[k] as usize * NVAR;
        fine.st.w[k * NVAR..(k + 1) * NVAR].copy_from_slice(&w_global[g..g + NVAR]);
    }
}

/// Collective checkpoint: gather owned fine-grid state to virtual rank
/// 0, reassemble the global layout there, broadcast it back, and commit
/// it into the double-buffered store on every instance. Charged to
/// [`Phase::Checkpoint`]. Runs over the persistent ping-pong pack-buffer
/// streams (`ck_tag` up to root, `ck_tag + 1` back down) rather than the
/// collective primitives: collectives migrate buffer ownership from
/// sender pool to receiver pool, which slowly churns fresh allocations
/// when the two directions move different sizes; pack streams return
/// every buffer to its owner, so steady-state checkpoints allocate
/// nothing.
fn take_checkpoint(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState, cycle: usize) {
    let LoopState { solver, cks, .. } = st;
    let s = solver.as_mut().expect("checkpoint without a solver");
    let (m0, b0, a0) = comm_snap(rank);
    let nglob = ctx.setup.seq.meshes[0].nverts() * NVAR;
    let slot = cks.begin_write();
    slot.w.resize(nglob, 0.0);
    let fine = &s.levels[0];
    let own = &fine.st.w[..fine.n_owned() * NVAR];
    if rank.id == 0 {
        for (k, &g) in fine.rm.owned_globals.iter().enumerate() {
            let dst = g as usize * NVAR;
            slot.w[dst..dst + NVAR].copy_from_slice(&own[k * NVAR..(k + 1) * NVAR]);
        }
        for src in 1..ctx.setup.nranks {
            let part = rank.recv_f64(src, s.ck_tag);
            for (k, &g) in ctx.setup.pms[0].ranks[src].owned_globals.iter().enumerate() {
                let dst = g as usize * NVAR;
                slot.w[dst..dst + NVAR].copy_from_slice(&part[k * NVAR..(k + 1) * NVAR]);
            }
            rank.return_packed_f64(src, s.ck_tag, part);
        }
        for dst in 1..ctx.setup.nranks {
            let mut buf = rank.take_pack_f64(dst, s.ck_tag + 1, nglob);
            buf.extend_from_slice(&slot.w);
            rank.send_packed_f64(dst, s.ck_tag + 1, buf, CommClass::Recovery);
        }
    } else {
        let mut buf = rank.take_pack_f64(0, s.ck_tag, own.len());
        buf.extend_from_slice(own);
        rank.send_packed_f64(0, s.ck_tag, buf, CommClass::Recovery);
        let got = rank.recv_f64(0, s.ck_tag + 1);
        slot.w.copy_from_slice(&got);
        rank.return_packed_f64(0, s.ck_tag + 1, got);
    }
    slot.cycle = Some(cycle);
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Checkpoint, m1 - m0, b1 - b0, a1 - a0);
}

/// One solver cycle, preceded by its due checkpoint, followed by the
/// residual-monitoring reduction.
fn do_step(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState) {
    let c = st.cycle;
    // Everything in this iteration — including the leading checkpoint —
    // belongs to (1-based) fault cycle c + 1.
    rank.set_fault_cycle((c + 1) as u64);
    let k = ctx.fopts.checkpoint_every;
    if k > 0 && c.is_multiple_of(k) {
        take_checkpoint(rank, ctx, st, c);
    }
    let LoopState {
        solver, history, ..
    } = st;
    let s = solver.as_mut().expect("cycle without a solver");
    let (sum, n) = s.cycle(rank);
    if ctx.opts.monitor_residual {
        let (m0, b0, a0) = comm_snap(rank);
        let mut parts = [sum, n];
        rank.all_reduce_sum_in_place(&mut parts);
        let (m1, b1, a1) = comm_snap(rank);
        s.counter
            .add_comm(Phase::Monitor, m1 - m0, b1 - b0, a1 - a0);
        history.push((parts[0] / parts[1]).sqrt());
    } else {
        history.push(f64::NAN);
    }
    st.cycle_allocs.push(rank.counters.comm_allocs);
    st.cycle += 1;
}

/// Hand dead rank `d`'s partition to a replica thread on this node. The
/// replica enters [`virtual_loop`] in joining mode and its output lands
/// in `collector` when the run completes.
fn spawn_replica<'scope, 'env>(
    rank: &Rank,
    ctx: &'scope Ctx<'scope>,
    d: usize,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
) {
    let mut vrank = rank.adopt(d);
    let host = rank.id;
    std::thread::Builder::new()
        .name(format!("delta-virt-{d}"))
        .stack_size(4 << 20)
        .spawn_scoped(scope, move || {
            let out = virtual_loop(&mut vrank, ctx, scope, collector, Some(host));
            let counters = vrank.counters.clone();
            collector.lock().unwrap().push(AdoptedOutput {
                vid: d,
                out,
                counters,
            });
        })
        .expect("spawn adopted-rank thread");
}

/// Enter recovery epoch `e`: abort peers, adopt newly dead partitions
/// this instance is buddy for, rebuild every schedule in the epoch's tag
/// space, agree on the rollback target, restore, and ship the agreed
/// checkpoint (plus residual history) to replicas spawned here.
fn do_recover<'scope, 'env>(
    rank: &mut Rank,
    ctx: &'scope Ctx<'scope>,
    st: &mut LoopState,
    e: u32,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
) {
    let (m0, b0, a0) = comm_snap(rank);
    rank.begin_recovery(e);
    if let Some(s) = st.solver.take() {
        st.retired.merge(&s.counter);
    }
    let mut shipped: Vec<usize> = Vec::new();
    for d in 0..ctx.setup.nranks {
        if !rank.live(d) && !st.handled[d] {
            st.handled[d] = true;
            if buddy(rank, d) == rank.id {
                spawn_replica(rank, ctx, d, scope, collector);
                shipped.push(d);
            }
        }
    }
    let mut s = DistSolver::build_epoch(
        rank,
        ctx.setup,
        ctx.cfg,
        ctx.strategy,
        ctx.opts,
        rank.epoch(),
    );
    // Agree on the newest checkpoint every instance can restore:
    // min over instances of their newest commit, via a max of negated
    // cycles. An instance with nothing to offer forces a restart from
    // initial conditions (+inf -> agreed = -inf); replicas spawned this
    // epoch contribute -inf (unconstraining) and get the result shipped.
    let mut v = [match st.cks.latest() {
        Some(c) => -(c as f64),
        None => f64::INFINITY,
    }];
    rank.all_reduce_max_in_place(&mut v);
    let agreed = -v[0];
    if agreed.is_finite() {
        let c = agreed as usize;
        restore_from(
            &mut s,
            st.cks
                .get(c)
                .expect("agreed rollback target missing from this instance's store"),
        );
        st.cycle = c;
        st.history.truncate(c);
        st.cycle_allocs.truncate(c);
        st.cks.rollback_to(Some(c));
        for &d in &shipped {
            let w = st.cks.get(c).expect("just restored from it");
            let mut buf = rank.take_f64(w.len());
            buf.extend_from_slice(w);
            rank.send_f64(d, s.ck_tag, buf, CommClass::Recovery);
            let mut h = rank.take_f64(st.history.len());
            h.extend_from_slice(&st.history);
            rank.send_f64(d, s.ck_tag + 1, h, CommClass::Recovery);
        }
    } else {
        // Nobody has a usable checkpoint: restart the (deterministic)
        // run from the freshly built initial state.
        st.cycle = 0;
        st.history.clear();
        st.cycle_allocs.clear();
        st.cks.rollback_to(None);
    }
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Recovery, m1 - m0, b1 - b0, a1 - a0);
    st.solver = Some(s);
}

/// A freshly adopted replica joins the recovery epoch in progress:
/// rebuild (same collective sequence as the survivors' rebuild), take
/// part in the rollback agreement without constraining it, and receive
/// the agreed checkpoint and history from the hosting buddy.
fn do_join(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState, host: usize) {
    let (m0, b0, a0) = comm_snap(rank);
    let mut s = DistSolver::build_epoch(
        rank,
        ctx.setup,
        ctx.cfg,
        ctx.strategy,
        ctx.opts,
        rank.epoch(),
    );
    let mut v = [f64::NEG_INFINITY];
    rank.all_reduce_max_in_place(&mut v);
    let agreed = -v[0];
    if agreed.is_finite() {
        let c = agreed as usize;
        let w = rank.recv_f64(host, s.ck_tag);
        let h = rank.recv_f64(host, s.ck_tag + 1);
        st.history.clear();
        st.history.extend_from_slice(&h);
        rank.recycle_f64(h);
        st.cks.install(c, w);
        restore_from(&mut s, st.cks.get(c).expect("just installed"));
        st.cycle = c;
    } else {
        st.cycle = 0;
        st.history.clear();
    }
    // The replica has no alloc record of the cycles it skipped past;
    // pad with the current counter so tail deltas stay meaningful.
    st.cycle_allocs.clear();
    st.cycle_allocs.resize(st.cycle, rank.counters.comm_allocs);
    st.setup_counters = Some(rank.counters.clone());
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Recovery, m1 - m0, b1 - b0, a1 - a0);
    st.solver = Some(s);
}

/// The cycle loop of one virtual rank, primary or adopted replica: a
/// state machine of `build | join | recover | step` actions, each run
/// under `catch_unwind` so [`FaultSignal`] unwinds from the
/// communication layer become state transitions instead of crashes.
fn virtual_loop<'scope, 'env>(
    rank: &mut Rank,
    ctx: &'scope Ctx<'scope>,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
    join_from: Option<usize>,
) -> RankOutput {
    let nranks = ctx.setup.nranks;
    let mut st = LoopState {
        solver: None,
        cycle: 0,
        history: Vec::new(),
        cycle_allocs: Vec::new(),
        cks: CkStore::default(),
        retired: PhaseCounters::default(),
        setup_counters: None,
        handled: vec![false; nranks],
    };
    if join_from.is_some() {
        // Ranks already dead when this replica was spawned were adopted
        // by others (or are this replica itself); never re-adopt them.
        for d in 0..nranks {
            st.handled[d] = !rank.live(d);
        }
    }
    let mut pending: Option<u32> = None;
    let mut join = join_from;
    loop {
        if pending.is_some() && rank.counters.recoveries >= u64::from(ctx.fopts.max_recoveries) {
            panic!(
                "virtual rank {} exceeded max_recoveries ({}): fault plan livelocks",
                rank.id, ctx.fopts.max_recoveries
            );
        }
        let res = catch_unwind(AssertUnwindSafe(|| {
            if let Some(e) = pending.take() {
                do_recover(rank, ctx, &mut st, e, scope, collector);
            } else if let Some(host) = join.take() {
                do_join(rank, ctx, &mut st, host);
            } else if st.solver.is_none() {
                st.solver = Some(DistSolver::build(
                    rank,
                    ctx.setup,
                    ctx.cfg,
                    ctx.strategy,
                    ctx.opts,
                ));
                st.setup_counters = Some(rank.counters.clone());
            } else if st.cycle < ctx.cycles {
                do_step(rank, ctx, &mut st);
            } else {
                return true;
            }
            false
        }));
        match res {
            Ok(true) => break,
            Ok(false) => {}
            Err(payload) => match payload.downcast::<FaultSignal>() {
                Ok(sig) => match *sig {
                    FaultSignal::Killed => {
                        rank.announce_death();
                        let mut phases = st.retired;
                        if let Some(s) = &st.solver {
                            phases.merge(&s.counter);
                        }
                        rank.add_flops(phases.flops());
                        return RankOutput {
                            history: st.history,
                            cycle_allocs: st.cycle_allocs,
                            w_owned: Vec::new(),
                            owned_globals: Vec::new(),
                            setup_counters: st
                                .setup_counters
                                .unwrap_or_else(|| rank.counters.clone()),
                            phases,
                            fate: RankFate::Died { cycle: st.cycle },
                            adopted: Vec::new(),
                        };
                    }
                    FaultSignal::Recover { epoch, .. } => {
                        pending = Some(epoch.max(rank.epoch() + 1));
                    }
                },
                Err(other) => resume_unwind(other),
            },
        }
    }
    let solver = st.solver.take().expect("completed without a solver");
    let mut phases = st.retired;
    phases.merge(&solver.counter);
    rank.add_flops(phases.flops());
    let fine = &solver.levels[0];
    RankOutput {
        history: st.history,
        cycle_allocs: st.cycle_allocs,
        w_owned: fine.st.w[..fine.n_owned() * NVAR].to_vec(),
        owned_globals: fine.rm.owned_globals.clone(),
        setup_counters: st.setup_counters.unwrap_or_default(),
        phases,
        fate: RankFate::Completed,
        adopted: Vec::new(),
    }
}

/// Run a distributed solve under a fault plan. With the default
/// (fault-free) options this reduces to the plain cycle loop of
/// [`super::solver::run_distributed`]; with faults, ranks detect
/// failures, roll back to the last replicated checkpoint, rebuild their
/// schedules, and converge to the bit-identical residual history of the
/// fault-free run.
pub fn run_distributed_with_faults(
    setup: &DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &FaultOptions,
) -> DistRunResult {
    let ctx = Ctx {
        setup,
        cfg,
        strategy,
        cycles,
        opts,
        fopts,
    };
    let run = run_spmd(setup.nranks, |rank| {
        rank.install_faults(
            fopts.plan.clone(),
            Some(Duration::from_millis(fopts.recv_timeout_ms)),
        );
        let collector = Mutex::new(Vec::new());
        let mut out = std::thread::scope(|scope| virtual_loop(rank, &ctx, scope, &collector, None));
        for a in collector.into_inner().expect("replica thread poisoned") {
            // The physical node pays for the replicas it hosts.
            rank.counters.merge(&a.counters);
            out.adopted.push(a);
        }
        out
    });
    DistRunResult { run }
}
