//! The line-delimited JSON wire protocol.
//!
//! Every message is one flat JSON object on one line. Three families
//! share the stream, distinguished by which key they carry:
//!
//! * **requests** (client → server) carry `"op"`:
//!   `submit` / `cancel` / `stats` / `shutdown`;
//! * **lifecycle events** (server → client) carry `"event"`:
//!   `accepted`, `rejected`, `error`, `started`, `progress`, trace
//!   (`trace-*` below), `done`, `cancelled`, `failed`, `stats`,
//!   `cancel`, `shutdown`;
//! * **trace events** (server → client) carry `"ev"` — these are raw
//!   [`eul3d_obs::wire`] lines replayed from the job's tracer, so a
//!   client can pipe them straight into the same decoder the rest of
//!   the workspace uses.
//!
//! `jq 'select(.event)'` / `jq 'select(.ev)'` therefore split a
//! captured stream without any framing beyond newlines.
//!
//! Float fields (`residual`, `final_residual`) are emitted with Rust's
//! shortest-round-trip formatting, which `f64` parsing recovers
//! bit-exactly — the determinism e2e suite relies on this to compare
//! streamed residuals against recomputed ones without tolerances.

use eul3d_core::JobMode;

use crate::cache::{CacheKey, JobBlob};
use crate::engine::{CancelOutcome, EngineStats, JobState};
use crate::json::{escape, JObj};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch from cache) one job.
    Submit {
        /// The run configuration, as TOML text.
        config: String,
        /// Which driver runs it.
        mode: JobMode,
        /// Bypass the cache lookup and recompute.
        force: bool,
        /// Inline the full artifacts (table, trace JSON, VTK) in the
        /// terminal `done` event.
        artifacts: bool,
    },
    /// Cancel a job by id.
    Cancel {
        /// The id from the job's `accepted` event.
        job: u64,
    },
    /// Fetch aggregate engine counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let o = JObj::parse(line)?;
        match o.str_of("op") {
            Some("submit") => {
                let config = o
                    .str_of("config")
                    .ok_or("submit requires a string 'config' field (TOML text)")?
                    .to_string();
                let mode = match o.str_of("mode") {
                    None => JobMode::Solve,
                    Some(m) => JobMode::parse(m)
                        .ok_or_else(|| format!("unknown mode '{m}' (solve|distributed)"))?,
                };
                Ok(Request::Submit {
                    config,
                    mode,
                    force: o.bool_of("force").unwrap_or(false),
                    artifacts: o.bool_of("artifacts").unwrap_or(false),
                })
            }
            Some("cancel") => Ok(Request::Cancel {
                job: o
                    .u64_of("job")
                    .ok_or("cancel requires a numeric 'job' field")?,
            }),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!(
                "unknown op '{other}' (submit|cancel|stats|shutdown)"
            )),
            None => Err("request must carry an 'op' field".into()),
        }
    }

    /// Render the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit {
                config,
                mode,
                force,
                artifacts,
            } => format!(
                "{{\"op\":\"submit\",\"mode\":\"{}\",\"force\":{force},\"artifacts\":{artifacts},\"config\":\"{}\"}}",
                mode.name(),
                escape(config)
            ),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }
}

/// `accepted`: the submission has an id and a content key.
pub fn ev_accepted(job: u64, key: CacheKey) -> String {
    format!("{{\"event\":\"accepted\",\"job\":{job},\"key\":\"{key}\"}}")
}

/// `rejected`: backpressure bounced the submission; retry after the
/// hinted delay.
pub fn ev_rejected(retry_after_ms: u64) -> String {
    format!(
        "{{\"event\":\"rejected\",\"reason\":\"queue-full\",\"retry_after_ms\":{retry_after_ms}}}"
    )
}

/// `error`: the request itself was invalid (parse/validation error).
pub fn ev_error(msg: &str) -> String {
    format!("{{\"event\":\"error\",\"msg\":\"{}\"}}", escape(msg))
}

/// `started`: the job left the queue and is on a worker.
pub fn ev_started(job: u64) -> String {
    format!("{{\"event\":\"started\",\"job\":{job}}}")
}

/// `progress`: one committed multigrid cycle.
pub fn ev_progress(job: u64, cycle: u64, residual: f64) -> String {
    format!("{{\"event\":\"progress\",\"job\":{job},\"cycle\":{cycle},\"residual\":{residual}}}")
}

/// `done`: terminal success. `cache` says whether the artifacts came
/// from the content-addressed cache (`"hit"`) or a solve (`"miss"`) —
/// by the determinism contract that is the *only* byte that may differ
/// between the two streams. With `artifacts`, the result table, trace
/// JSON, and VTK export are inlined as escaped strings.
pub fn ev_done(job: u64, cache_hit: bool, blob: &JobBlob, artifacts: bool) -> String {
    let a = &blob.artifacts;
    let mut line = format!(
        "{{\"event\":\"done\",\"job\":{job},\"cache\":\"{}\",\"result_hash\":\"{:032x}\",\"cycles\":{},\"final_residual\":{}",
        if cache_hit { "hit" } else { "miss" },
        a.result_hash,
        a.history.len(),
        a.history.last().copied().unwrap_or(f64::NAN),
    );
    if let Some(g) = &a.guard {
        line.push_str(&format!(
            ",\"guard_backoffs\":{},\"guard_final_cfl\":{}",
            g.transcript.len(),
            g.final_cfl
        ));
    }
    if artifacts {
        line.push_str(&format!(",\"table\":\"{}\"", escape(&a.table)));
        if let Some(t) = &a.trace_json {
            line.push_str(&format!(",\"trace\":\"{}\"", escape(t)));
        }
        line.push_str(&format!(",\"vtk\":\"{}\"", escape(&a.vtk)));
    }
    line.push('}');
    line
}

/// `cancelled`: terminal, the job was cancelled.
pub fn ev_cancelled(job: u64) -> String {
    format!("{{\"event\":\"cancelled\",\"job\":{job}}}")
}

/// `failed`: terminal, the solver returned an error.
pub fn ev_failed(job: u64, msg: &str) -> String {
    format!(
        "{{\"event\":\"failed\",\"job\":{job},\"msg\":\"{}\"}}",
        escape(msg)
    )
}

/// `stats`: aggregate engine counters.
pub fn ev_stats(s: &EngineStats) -> String {
    format!(
        "{{\"event\":\"stats\",\"submitted\":{},\"rejected\":{},\"done\":{},\"cancelled\":{},\"failed\":{},\"queued\":{},\"running\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_len\":{},\"cache_bytes\":{},\"cache_evicted_bytes\":{}}}",
        s.submitted,
        s.rejected,
        s.done,
        s.cancelled,
        s.failed,
        s.queued,
        s.running,
        s.cache_hits,
        s.cache_misses,
        s.cache_len,
        s.cache_bytes,
        s.cache_evicted_bytes
    )
}

/// `cancel`: acknowledgement of a cancel request. `ok` is true when the
/// cancel changed anything (the job was queued or running).
pub fn ev_cancel_ack(job: u64, outcome: CancelOutcome, state: Option<JobState>) -> String {
    let ok = matches!(
        outcome,
        CancelOutcome::WasQueued | CancelOutcome::WasRunning
    );
    let state = match (outcome, state) {
        (CancelOutcome::Unknown, _) => "unknown",
        (_, Some(JobState::Queued)) => "queued",
        (_, Some(JobState::Running)) => "running",
        (_, Some(JobState::Done)) => "done",
        (_, Some(JobState::Cancelled)) => "cancelled",
        (_, Some(JobState::Failed)) => "failed",
        (_, None) => "unknown",
    };
    format!("{{\"event\":\"cancel\",\"job\":{job},\"ok\":{ok},\"state\":\"{state}\"}}")
}

/// `shutdown`: acknowledgement that the server is stopping.
pub fn ev_shutdown_ack() -> String {
    "{\"event\":\"shutdown\",\"ok\":true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_with_toml_payload() {
        let req = Request::Submit {
            config: "[run]\ncycles = 3\n# comment \"quoted\"\n".to_string(),
            mode: JobMode::Distributed,
            force: true,
            artifacts: false,
        };
        assert_eq!(Request::parse(&req.to_line()), Ok(req));
        for r in [
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&r.to_line()), Ok(r));
        }
    }

    #[test]
    fn submit_defaults_and_errors() {
        let r = Request::parse("{\"op\":\"submit\",\"config\":\"\"}").unwrap();
        assert_eq!(
            r,
            Request::Submit {
                config: String::new(),
                mode: JobMode::Solve,
                force: false,
                artifacts: false,
            }
        );
        assert!(Request::parse("{\"op\":\"submit\"}").is_err());
        assert!(Request::parse("{\"op\":\"submit\",\"config\":\"\",\"mode\":\"warp\"}").is_err());
        assert!(Request::parse("{\"op\":\"cancel\"}").is_err());
        assert!(Request::parse("{\"op\":\"nope\"}").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn event_lines_parse_back_as_flat_json() {
        let stats = EngineStats::default();
        for line in [
            ev_accepted(1, crate::cache::CacheKey(0xabc)),
            ev_rejected(300),
            ev_error("bad \"config\""),
            ev_started(1),
            ev_progress(1, 0, 0.125),
            ev_cancelled(1),
            ev_failed(1, "solver.mach must be positive"),
            ev_stats(&stats),
            ev_cancel_ack(1, CancelOutcome::WasRunning, Some(JobState::Running)),
            ev_cancel_ack(7, CancelOutcome::Unknown, None),
            ev_shutdown_ack(),
        ] {
            let o = JObj::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(o.str_of("event").is_some(), "{line}");
        }
    }

    #[test]
    fn progress_residual_round_trips_bit_exactly() {
        let r = 0.1f64 + 0.2f64; // a value with no short decimal form
        let line = ev_progress(3, 11, r);
        let o = JObj::parse(&line).unwrap();
        let got = o.f64_of("residual").unwrap();
        assert_eq!(got.to_bits(), r.to_bits());
    }
}
