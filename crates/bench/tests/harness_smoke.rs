//! Smoke tests of the table/figure harness binaries at tiny scale: each
//! must run to completion and emit its structural markers. (Numeric
//! assertions live in the solver tests; these pin the harness plumbing.)

use std::process::Command;

fn run(bin: &str, env: &[(&str, &str)]) -> (bool, String) {
    let mut cmd = Command::new(bin);
    cmd.env("EUL3D_NX", "10")
        .env("EUL3D_LEVELS", "2")
        .env("EUL3D_CYCLES", "3")
        .env("EUL3D_RANKS", "3,5")
        .env(
            "EUL3D_OUT",
            std::env::temp_dir()
                .join("eul3d_harness_smoke")
                .to_str()
                .unwrap(),
        );
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("failed to run harness");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

#[test]
fn fig1_prints_schedules() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_fig1"), &[]);
    assert!(ok);
    assert!(out.contains("3 levels, V-cycle"));
    assert!(out.contains("5 levels, W-cycle"));
    assert!(out.contains("E0"));
}

#[test]
fn fig2_writes_csv_and_summary() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_fig2"), &[]);
    assert!(ok, "{out}");
    assert!(out.contains("single grid"));
    assert!(out.contains("W-cycle"));
    assert!(out.contains("fig2_convergence.csv"));
}

#[test]
fn fig3_reports_every_level() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_fig3"), &[]);
    assert!(ok, "{out}");
    assert!(out.contains("level-to-level node ratio"));
    assert!(out.contains("fig3_finest.vtk"));
}

#[test]
fn table1_prints_both_scales() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_table1"), &[]);
    assert!(ok, "{out}");
    assert!(out.contains("Table 1a"));
    assert!(out.contains("Table 1c"));
    assert!(out.contains("at measured scale"));
    assert!(out.contains("extrapolated to paper scale"));
}

#[test]
fn table2_prints_cost_breakdown() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_table2"), &[]);
    assert!(ok, "{out}");
    assert!(out.contains("Table 2a"));
    assert!(out.contains("Communication"));
    assert!(out.contains("table2_delta.csv"));
}

#[test]
fn table2_partitioner_env_is_honoured() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_table2"), &[("EUL3D_PART", "rcb")]);
    assert!(ok, "{out}");
    assert!(out.contains("partitioner rcb"));
}

#[test]
fn faults_sweep_is_bit_identical_everywhere() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_faults"), &[("EUL3D_CYCLES", "6")]);
    assert!(ok, "{out}");
    assert!(out.contains("kill+corrupt+drop"), "{out}");
    assert!(out.contains("faults_sweep.csv"), "{out}");
    assert!(!out.contains("NO"), "a scenario diverged:\n{out}");
}

#[test]
fn scaling_emits_the_ladder() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_scaling"), &[]);
    assert!(ok, "{out}");
    assert!(out.contains("efficiency"));
    assert!(out.contains("scaling.csv"));
}
