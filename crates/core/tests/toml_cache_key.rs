//! The TOML ↔ cache-key contract that the service's content-addressed
//! cache stands on: every *spelling* of a configuration — key order,
//! section order, comments, whitespace, float formatting — collapses to
//! one canonical hash, while every *semantic* change (any field that
//! alters what is computed) produces a different one. Malformed inputs
//! that TOML forbids (duplicate keys, reopened sections, unknown keys)
//! are line-numbered errors rather than silent last-wins aliasing.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use eul3d_core::{GuardConfig, RunConfig};

/// Deterministic xorshift for spelling permutations (proptest feeds the
/// seed, so every case is reproducible from the failure report).
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn shuffle<T>(v: &mut [T], state: &mut u64) {
    for i in (1..v.len()).rev() {
        let j = (next(state) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Build a valid configuration from sampled primitives.
#[allow(clippy::too_many_arguments)]
fn sample_config(
    cycles: usize,
    levels: usize,
    nranks_pow: u32,
    cfl: f64,
    mach: f64,
    nx: usize,
    flags: u64,
    seed: u64,
) -> RunConfig {
    let mut rc = RunConfig {
        cycles,
        levels,
        nranks: 1 << nranks_pow,
        checkpoint_every: 1 + (flags % 4) as usize,
        ..RunConfig::default()
    };
    rc.solver.cfl = cfl;
    rc.solver.mach = mach;
    rc.mesh.nx = nx;
    rc.mesh.ny = 4;
    rc.mesh.nz = 3;
    rc.mesh.seed = seed;
    if flags & 1 != 0 {
        rc.guard = Some(GuardConfig::default());
    }
    if flags & 2 != 0 && rc.nranks > 1 {
        rc.faults = Some("kill:1@2".to_string());
    }
    rc.trace.enabled = flags & 4 != 0;
    rc.trace.capacity = 256 + (flags % 1024) as usize;
    rc.validate().expect("sampled config is valid");
    rc
}

/// Re-spell `toml` without changing its meaning: shuffle whole
/// sections, shuffle keys within each section, vary whitespace around
/// `=`, drop redundant `.0` suffixes, inject comments (standalone and
/// inline) and blank lines.
fn respell(toml: &str, state: &mut u64) -> String {
    // Split into (header, body-lines) section blocks; the preamble
    // comment lines before the first header are dropped (legal:
    // comments are not content).
    let mut sections: Vec<(String, Vec<String>)> = Vec::new();
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            sections.push((line.to_string(), Vec::new()));
        } else if !line.is_empty() && !line.starts_with('#') {
            if let Some(last) = sections.last_mut() {
                last.1.push(line.to_string());
            }
        }
    }
    shuffle(&mut sections, state);
    let mut out = String::from("# re-spelled by the invariance proptest\n");
    for (header, mut body) in sections {
        shuffle(&mut body, state);
        out.push_str(&header);
        out.push('\n');
        for line in body {
            let (key, val) = line.split_once('=').expect("key = value");
            let mut val = val.trim().to_string();
            // `N.0` → `N`: a float respelled as an integer literal.
            if let Some(stripped) = val.strip_suffix(".0") {
                if stripped.chars().all(|c| c.is_ascii_digit() || c == '-') && !stripped.is_empty()
                {
                    val = stripped.to_string();
                }
            }
            let pad = ["", " ", "  ", "\t"][(next(state) % 4) as usize];
            let quoted = val.starts_with('"') || val.starts_with('[');
            let inline = if !quoted && next(state).is_multiple_of(3) {
                " # inline noise"
            } else {
                ""
            };
            if next(state).is_multiple_of(4) {
                out.push_str("# interleaved comment\n");
            }
            out.push_str(&format!("{}{pad}={pad}{val}{inline}\n", key.trim()));
            if next(state).is_multiple_of(5) {
                out.push('\n');
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// `to_toml` is a serialization fixed point, so parse∘print is
    /// identity on the canonical hash (and on the canonical bytes).
    #[test]
    fn round_trip_is_a_fixed_point(
        cycles in 1usize..40,
        levels in 1usize..4,
        nranks_pow in 0u32..4,
        cfl in 1.0f64..60.0,
        mach in 0.1f64..0.9,
        nx in 4usize..16,
        flags in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
    ) {
        let rc = sample_config(cycles, levels, nranks_pow, cfl, mach, nx, flags, seed);
        let parsed = RunConfig::from_toml(&rc.to_toml()).expect("own output parses");
        prop_assert_eq!(parsed.to_toml(), rc.to_toml());
        prop_assert_eq!(parsed.canonical_hash(), rc.canonical_hash());
    }

    /// Any re-spelling — key/section order, floats, comments,
    /// whitespace — hashes identically.
    #[test]
    fn spelling_never_changes_the_cache_key(
        cycles in 1usize..40,
        levels in 1usize..4,
        nranks_pow in 0u32..4,
        cfl in 1.0f64..60.0,
        mach in 0.1f64..0.9,
        nx in 4usize..16,
        flags in 0u64..u64::MAX,
        mut spell_seed in 0u64..u64::MAX,
    ) {
        let rc = sample_config(cycles, levels, nranks_pow, cfl, mach, nx, flags, flags);
        let variant = respell(&rc.to_toml(), &mut spell_seed);
        let parsed = RunConfig::from_toml(&variant)
            .unwrap_or_else(|e| panic!("re-spelled config must parse: {e}\n---\n{variant}"));
        prop_assert_eq!(parsed.canonical_hash(), rc.canonical_hash());
        prop_assert_eq!(parsed.canonical_toml(), rc.canonical_toml());
    }

    /// Any semantic field change moves the hash (no aliasing between
    /// genuinely different jobs).
    #[test]
    fn semantic_changes_always_move_the_cache_key(
        cycles in 1usize..40,
        levels in 1usize..4,
        nranks_pow in 1u32..4,
        cfl in 1.0f64..60.0,
        mach in 0.1f64..0.9,
        nx in 4usize..16,
        flags in 0u64..u64::MAX,
        selector in 0u8..9,
    ) {
        let rc = sample_config(cycles, levels, nranks_pow, cfl, mach, nx, flags, flags);
        let mut m = rc.clone();
        match selector {
            0 => m.cycles += 1,
            1 => m.levels += 1,
            2 => m.nranks *= 2,
            3 => m.solver.cfl += 1.0,
            4 => m.solver.mach += 0.05,
            5 => m.mesh.nx += 1,
            6 => m.mesh.seed = m.mesh.seed.wrapping_add(1),
            7 => m.trace.enabled = !m.trace.enabled,
            8 => m.guard = match m.guard {
                Some(_) => None,
                None => Some(GuardConfig::default()),
            },
            _ => unreachable!(),
        }
        m.validate().expect("mutated config stays valid");
        prop_assert_ne!(m.canonical_hash(), rc.canonical_hash());
    }
}

#[test]
fn duplicate_keys_are_line_numbered_errors() {
    let toml = "[run]\nlevels = 2\ncycles = 3\ncycles = 4\n";
    let err = RunConfig::from_toml(toml).expect_err("duplicate must not last-win");
    let msg = err.to_string();
    assert!(
        msg.contains("line 4") && msg.contains("duplicate key 'cycles'") && msg.contains("line 3"),
        "error names both lines: {msg}"
    );
}

#[test]
fn reopened_sections_are_line_numbered_errors() {
    let toml = "[run]\nlevels = 2\n[mesh]\nnx = 8\n[run]\ncycles = 3\n";
    let err = RunConfig::from_toml(toml).expect_err("reopening must not alias");
    let msg = err.to_string();
    assert!(
        msg.contains("line 5") && msg.contains("[run] reopened") && msg.contains("line 1"),
        "{msg}"
    );
}

#[test]
fn unknown_keys_and_sections_are_line_numbered_errors() {
    let msg = RunConfig::from_toml("[run]\nlevels = 2\nwarp = 9\n")
        .expect_err("unknown key")
        .to_string();
    assert!(msg.contains("line 3") && msg.contains("warp"), "{msg}");
    let msg = RunConfig::from_toml("[run]\nlevels = 2\n\n[warpdrive]\nx = 1\n")
        .expect_err("unknown section")
        .to_string();
    assert!(msg.contains("line 4") && msg.contains("warpdrive"), "{msg}");
}

#[test]
fn integer_and_float_spellings_of_the_same_value_hash_identically() {
    let base =
        "[solver]\ncfl = 30{X}\n[run]\nlevels = 2\ncycles = 3\n[mesh]\nnx = 8\nny = 4\nnz = 3\n";
    let spellings = ["", ".0", ".00", "e0", ".0e0"];
    let hashes: Vec<u128> = spellings
        .iter()
        .map(|s| {
            RunConfig::from_toml(&base.replace("{X}", s))
                .unwrap_or_else(|e| panic!("cfl = 30{s}: {e}"))
                .canonical_hash()
        })
        .collect();
    assert!(
        hashes.windows(2).all(|w| w[0] == w[1]),
        "30 / 30.0 / 30.00 / 30e0 / 30.0e0 must alias: {hashes:x?}"
    );
    // ...but a different *value* does not.
    let other = RunConfig::from_toml(&base.replace("{X}", ".5"))
        .unwrap()
        .canonical_hash();
    assert_ne!(other, hashes[0]);
}

#[test]
fn presentation_fields_are_outside_the_identity() {
    let rc = RunConfig::default();
    let mut noisy = rc.clone();
    noisy.trace.out = Some("elsewhere.json".into());
    noisy.trace.summary = true;
    noisy.trace.top_n = rc.trace.top_n + 7;
    assert_eq!(noisy.canonical_hash(), rc.canonical_hash());
    // trace.capacity shapes the exported artifact: semantic.
    let mut deeper = rc.clone();
    deeper.trace.capacity += 1;
    assert_ne!(deeper.canonical_hash(), rc.canonical_hash());
}
