//! Machine performance models that map *measured operation counts* from
//! the real solver onto the paper's 1992 hardware, regenerating the
//! Table-1/Table-2 report format.
//!
//! The Delta model lives in `eul3d-delta` (it is driven by that machine's
//! traffic counters); this crate provides the **Cray Y-MP C90 model**
//! (§3), cross-machine comparison helpers (§5), and plain-text table
//! rendering.

//! ```
//! use eul3d_perf::CrayC90Model;
//!
//! // Price 4.7e11 measured flops (the paper's single-grid run) on the
//! // modeled C90 at 1 and 16 CPUs.
//! let model = CrayC90Model::default();
//! let r1 = model.evaluate(4.73e11, 35_000, 1);
//! let r16 = model.evaluate(4.73e11, 35_000, 16);
//! assert!(r1.wall_clock_s / r16.wall_clock_s > 11.0); // the Table-1 speedup
//! assert!(r16.cpu_s > r1.cpu_s);                      // multitasking inflation
//! ```

pub mod compare;
pub mod cray;
pub mod kernels;
pub mod tables;

pub use compare::Comparison;
pub use cray::{C90Row, CrayC90Model};
pub use kernels::{aggregate_speedup, kernels_report_json, KernelSample};
pub use tables::TextTable;
