//! The inspector: `localize`, PARTI's schedule-building primitive.
//!
//! "During program execution, the inspector examines the data references
//! made by a processor, and calculates what off-processor data needs to
//! be fetched" (§4.1). Here the references are presented as the list of
//! global indices a rank needs as ghosts, together with the local slots
//! they map to. The inspector deduplicates them (hash table, §4.3),
//! groups them by owner, and exchanges request lists with every peer so
//! owners learn what to export. The exchange itself runs on the simulated
//! machine and is charged to [`CommClass::Inspector`].

use std::collections::HashMap;

use eul3d_delta::{CommClass, Rank};

use crate::schedule::Schedule;
use crate::translation::Translation;

/// Build a communication [`Schedule`] for this rank.
///
/// * `required` — global indices this rank references but does not own;
/// * `slots` — the local (ghost) slot for each entry of `required`;
/// * `tag` — base tag for the schedule's executors. **Schedules sharing a
///   machine must use tags at least 2 apart** (scatter uses `tag + 1`);
///   `localize` *enforces* this by reserving `[tag, tag + 2)` on the rank
///   and panicking on overlap with any schedule built earlier;
/// * `class` — traffic class its *executors* will be charged to.
///
/// Duplicate `required` entries are deduplicated (first slot wins), the
/// paper's hash-table optimization. Every rank must call `localize` the
/// same number of times with the same tags (SPMD discipline).
pub fn localize(
    rank: &mut Rank,
    trans: &Translation,
    required: &[u32],
    slots: &[u32],
    tag: u32,
    class: CommClass,
) -> Schedule {
    assert_eq!(required.len(), slots.len());
    rank.reserve_tags(tag, tag + 2);
    let me = rank.id;

    // Hash-table dedup of off-processor references (§4.3).
    let mut seen: HashMap<u32, u32> = HashMap::with_capacity(required.len());
    // Requests per owner, in stable order of first reference.
    let mut want: Vec<Vec<u32>> = vec![Vec::new(); rank.nranks];
    let mut want_slots: Vec<Vec<u32>> = vec![Vec::new(); rank.nranks];
    for (&g, &s) in required.iter().zip(slots) {
        let owner = trans.owner_of(g);
        assert_ne!(owner, me, "required global {g} is owned locally");
        if seen.insert(g, s).is_none() {
            want[owner].push(g);
            want_slots[owner].push(s);
        }
    }

    // Request exchange: every rank sends its (possibly empty) request
    // list to every peer, so peers know what to export. Empty lists are
    // sent too — the inspector is a synchronizing all-to-all, exactly
    // once per schedule construction, amortized over many executions.
    for (peer, req) in want.iter().enumerate() {
        if peer != me {
            let mut buf = rank.take_u32(req.len());
            buf.extend_from_slice(req);
            rank.send_u32(peer, tag, buf, CommClass::Inspector);
        }
    }
    let mut sends: Vec<(usize, Vec<u32>)> = Vec::new();
    for peer in 0..rank.nranks {
        if peer == me {
            continue;
        }
        let req = rank.recv_u32(peer, tag);
        if !req.is_empty() {
            let locals: Vec<u32> = req
                .iter()
                .map(|&g| {
                    assert_eq!(trans.owner_of(g), me, "peer {peer} requested non-owned {g}");
                    trans.local_of(g)
                })
                .collect();
            sends.push((peer, locals));
        }
        rank.recycle_u32(req);
    }

    let recvs: Vec<(usize, Vec<u32>)> = want_slots
        .into_iter()
        .enumerate()
        .filter(|(p, s)| *p != me && !s.is_empty())
        .collect();

    Schedule {
        tag,
        class,
        sends,
        recvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_delta::run_spmd;

    /// 8 globals block-distributed over 2 ranks (0..4 on rank 0).
    fn block_translation() -> Translation {
        let parts: Vec<u32> = (0..8).map(|g| (g / 4) as u32).collect();
        Translation::from_parts(&parts, 2)
    }

    #[test]
    fn localize_round_trip_gather() {
        let run = run_spmd(2, |r| {
            let trans = block_translation();
            // Each rank owns 4 entries (locals 0..4) and wants the first
            // two entries of the peer as ghosts in slots 4, 5.
            let required: Vec<u32> = if r.id == 0 { vec![4, 5] } else { vec![0, 1] };
            let sched = localize(r, &trans, &required, &[4, 5], 100, CommClass::Halo);
            let mut data: Vec<f64> = (0..4).map(|l| (r.id * 100 + l) as f64).collect();
            data.extend([0.0, 0.0]);
            sched.gather(r, &mut data, 1);
            data
        });
        assert_eq!(&run.results[0][4..], &[100.0, 101.0]);
        assert_eq!(&run.results[1][4..], &[0.0, 1.0]);
    }

    #[test]
    fn localize_deduplicates_required() {
        let run = run_spmd(2, |r| {
            let trans = block_translation();
            // Duplicate references to the same global: only one ghost
            // entry should be scheduled.
            let required: Vec<u32> = if r.id == 0 {
                vec![4, 4, 4]
            } else {
                vec![0, 0, 0]
            };
            let sched = localize(r, &trans, &required, &[4, 4, 4], 100, CommClass::Halo);
            (sched.nghosts(), sched.nexports())
        });
        assert_eq!(run.results, vec![(1, 1), (1, 1)]);
    }

    #[test]
    fn localize_nothing_required() {
        let run = run_spmd(3, |r| {
            let parts = vec![0, 1, 2];
            let trans = Translation::from_parts(&parts, 3);
            let sched = localize(r, &trans, &[], &[], 100, CommClass::Halo);
            let mut data = vec![r.id as f64];
            sched.gather(r, &mut data, 1);
            (sched.nghosts(), data[0])
        });
        for (id, &(g, d)) in run.results.iter().enumerate() {
            assert_eq!(g, 0);
            assert_eq!(d, id as f64);
        }
    }

    #[test]
    fn localize_then_scatter_add() {
        let run = run_spmd(2, |r| {
            let trans = block_translation();
            let required: Vec<u32> = if r.id == 0 { vec![4] } else { vec![3] };
            let sched = localize(r, &trans, &required, &[4], 100, CommClass::Halo);
            // Accumulate 2.5 into the ghost, flush to owner.
            let mut data = vec![1.0, 1.0, 1.0, 1.0, 2.5];
            sched.scatter_add(r, &mut data, 1);
            data
        });
        // Rank 0's local 3 (global 3) received rank 1's ghost 2.5.
        assert_eq!(run.results[0], vec![1.0, 1.0, 1.0, 3.5, 0.0]);
        // Rank 1's local 0 (global 4) received rank 0's ghost 2.5.
        assert_eq!(run.results[1], vec![3.5, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn inspector_traffic_is_classified() {
        let run = run_spmd(2, |r| {
            let trans = block_translation();
            let required: Vec<u32> = if r.id == 0 { vec![4] } else { vec![0] };
            localize(r, &trans, &required, &[4], 100, CommClass::Halo);
        });
        for c in &run.counters {
            assert!(c.sent[CommClass::Inspector as usize].messages > 0);
            assert_eq!(c.sent[CommClass::Halo as usize].messages, 0);
        }
    }

    #[test]
    #[should_panic(expected = "collides with reserved")]
    fn adjacent_schedule_tags_are_rejected() {
        run_spmd(2, |r| {
            let trans = block_translation();
            let required: Vec<u32> = if r.id == 0 { vec![4] } else { vec![0] };
            localize(r, &trans, &required, &[4], 100, CommClass::Halo);
            // Tag 101 is the first schedule's scatter stream (tag + 1):
            // without enforcement this silently corrupts data.
            localize(r, &trans, &required, &[4], 101, CommClass::Halo);
        });
    }

    #[test]
    fn localize_many_ranks() {
        // 12 globals over 4 ranks; every rank wants one entry from every
        // other rank.
        let run = run_spmd(4, |r| {
            let parts: Vec<u32> = (0..12).map(|g| (g / 3) as u32).collect();
            let trans = Translation::from_parts(&parts, 4);
            let mut required = Vec::new();
            let mut slots = Vec::new();
            let mut slot = 3u32;
            for peer in 0..4 {
                if peer != r.id {
                    required.push((peer * 3) as u32);
                    slots.push(slot);
                    slot += 1;
                }
            }
            let sched = localize(r, &trans, &required, &slots, 100, CommClass::Halo);
            let mut data = vec![r.id as f64; 3];
            data.extend([f64::NAN; 3]);
            sched.gather(r, &mut data, 1);
            data[3..].to_vec()
        });
        for (id, ghosts) in run.results.iter().enumerate() {
            let expected: Vec<f64> = (0..4).filter(|&p| p != id).map(|p| p as f64).collect();
            assert_eq!(ghosts, &expected);
        }
    }
}
