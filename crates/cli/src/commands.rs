//! Subcommand implementations.

use std::path::PathBuf;

use eul3d_core::checkpoint::Checkpoint;
use eul3d_core::health::GuardOutcome;
use eul3d_core::postproc::{cp_field, mach_field, pressure_field};
use eul3d_core::runconfig::{
    parse_backend, parse_partition_method, parse_scheme, parse_strategy, partition_method_name,
    BackendKind,
};
use eul3d_core::shared::SharedSingleGridSolver;
use eul3d_core::{
    ConvergenceHistory, Eul3dError, MultigridSolver, Phase, RunConfig, Strategy, TraceConfig,
};
use eul3d_delta::CostModel;
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::stats::MeshStats;
use eul3d_mesh::vtk::write_vtk_file;
use eul3d_mesh::MeshSequence;
use eul3d_obs as obs;
use eul3d_partition::rcb::rcb_partition;
use eul3d_partition::{
    kl_refine, parallel_rcb, random_partition, FlatRsb, MultilevelRsb, PartitionOptions,
    PartitionQuality, Partitioner, RankMapping,
};
use eul3d_perf::TextTable;

use crate::args::Args;

fn bump_spec(a: &Args) -> Result<BumpSpec, String> {
    let nx: usize = a.get("nx", 24)?;
    Ok(BumpSpec {
        nx,
        ny: a.get("ny", (nx * 7 / 20).max(4))?,
        nz: a.get("nz", (nx * 3 / 10).max(3))?,
        bump_height: a.get("bump", 0.10)?,
        taper: a.get("taper", 0.0)?,
        jitter: a.get("jitter", 0.12)?,
        seed: a.get("seed", 42u64)?,
    })
}

/// Override `slot` from `--key` when the flag was passed (and note the
/// flag as seen either way, for unknown-flag reporting).
fn over<T: std::str::FromStr>(a: &Args, key: &str, slot: &mut T) -> Result<(), String> {
    if let Some(v) = a.get_str(key) {
        *slot = v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'"))?;
    }
    Ok(())
}

/// Assemble the consolidated [`RunConfig`] for a solve: a `--config
/// run.toml` file (when given) supplies the base, individual CLI flags
/// override file values, and the result passes through the same
/// [`RunConfig::validate`] as library callers — so every entry point
/// rejects exactly the same inputs. `dist` gates the distributed-only
/// flags, keeping `solve --ranks N` an unknown-flag error as before.
fn run_config_of(a: &Args, levels: usize, cycles: usize, dist: bool) -> Result<RunConfig, String> {
    let config_path = a.get_str("config");
    let mut rc = match &config_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--config {path}: {e}"))?;
            RunConfig::from_toml(&text).map_err(|e| format!("--config {path}: {e}"))?
        }
        None => RunConfig {
            levels,
            cycles,
            mesh: bump_spec(a)?,
            ..RunConfig::default()
        },
    };
    if config_path.is_some() {
        // With a file base, mesh flags override field-by-field (the
        // flag-only path above derives ny/nz from nx in `bump_spec`).
        over(a, "nx", &mut rc.mesh.nx)?;
        over(a, "ny", &mut rc.mesh.ny)?;
        over(a, "nz", &mut rc.mesh.nz)?;
        over(a, "bump", &mut rc.mesh.bump_height)?;
        over(a, "taper", &mut rc.mesh.taper)?;
        over(a, "jitter", &mut rc.mesh.jitter)?;
        over(a, "seed", &mut rc.mesh.seed)?;
    }
    over(a, "levels", &mut rc.levels)?;
    over(a, "cycles", &mut rc.cycles)?;
    if let Some(s) = a.get_str("strategy") {
        rc.strategy =
            parse_strategy(&s).ok_or_else(|| format!("--strategy must be sg|v|w, got '{s}'"))?;
    }
    if let Some(s) = a.get_str("scheme") {
        rc.solver.scheme =
            parse_scheme(&s).ok_or_else(|| format!("--scheme must be jst|roe, got '{s}'"))?;
    }
    over(a, "mach", &mut rc.solver.mach)?;
    over(a, "alpha", &mut rc.solver.alpha_deg)?;
    over(a, "cfl", &mut rc.solver.cfl)?;

    // Health guard: a file `[guard]` section arms it, as does `--guard`
    // or any explicit guard parameter; flags override file values.
    let armed = rc.guard.is_some()
        || a.has("guard")
        || a.get_str("max-retries").is_some()
        || a.get_str("cfl-backoff").is_some()
        || a.get_str("health-window").is_some();
    let mut g = rc.guard.take().unwrap_or_default();
    over(a, "max-retries", &mut g.max_retries)?;
    over(a, "cfl-backoff", &mut g.cfl_backoff)?;
    over(a, "health-window", &mut g.window)?;
    rc.guard = armed.then_some(g);

    if dist {
        over(a, "ranks", &mut rc.nranks)?;
        if let Some(s) = a.get_str("backend") {
            rc.backend = parse_backend(&s)
                .ok_or_else(|| format!("--backend must be delta|hybrid, got '{s}'"))?;
        }
        over(a, "threads", &mut rc.threads)?;
        over(a, "checkpoint-every", &mut rc.checkpoint_every)?;
        over(a, "fault-timeout-ms", &mut rc.fault_timeout_ms)?;
        if let Some(spec) = a.get_str("faults") {
            rc.faults = Some(spec);
        }

        // Partitioning policy: a file `[partition]` section arms it, as
        // does any explicit partition flag; flags override file values.
        let armed = rc.partition.is_some()
            || a.get_str("partition-method").is_some()
            || a.get_str("partition-mapping").is_some()
            || a.get_str("repartition-every").is_some();
        let mut p = rc.partition.take().unwrap_or_default();
        if let Some(s) = a.get_str("partition-method") {
            p.method = parse_partition_method(&s).ok_or_else(|| {
                format!("--partition-method must be flat-rsb|multilevel, got '{s}'")
            })?;
        }
        if let Some(s) = a.get_str("partition-mapping") {
            p.mapping = eul3d_partition::RankMapping::parse(&s).ok_or_else(|| {
                format!("--partition-mapping must be identity|topology, got '{s}'")
            })?;
        }
        over(a, "repartition-every", &mut p.repartition_every)?;
        rc.partition = armed.then_some(p);
    }

    // Tracing: `--trace out.json` writes the Chrome trace there,
    // `--trace-summary` prints the human table; either arms the ring.
    if let Some(path) = a.get_str("trace") {
        rc.trace.enabled = true;
        rc.trace.out = Some(path);
    } else if a.has("trace") {
        rc.trace.enabled = true;
    }
    if a.has("trace-summary") {
        rc.trace.enabled = true;
        rc.trace.summary = true;
    }
    over(a, "trace-capacity", &mut rc.trace.capacity)?;
    over(a, "trace-top", &mut rc.trace.top_n)?;

    if rc.cycles == 0 {
        return Err("--cycles must be at least 1".into());
    }
    rc.validate().map_err(|e| match e {
        // The only Delta error `validate` raises is the fault plan's.
        Eul3dError::Delta(d) => format!("--faults: {d}"),
        other => other.to_string(),
    })?;
    Ok(rc)
}

fn phase_labels() -> Vec<&'static str> {
    Phase::ALL.iter().map(|p| p.label()).collect()
}

/// Arm the driver thread with a ring tracer when tracing is enabled
/// (the distributed path instead arms each simulated rank's thread).
fn arm_driver_trace(t: &TraceConfig) {
    if t.enabled {
        obs::install(Box::new(obs::RingTracer::new(t.capacity)));
    }
}

/// Collect the driver-thread lane armed by [`arm_driver_trace`] and
/// export it.
fn finish_driver_trace(t: &TraceConfig) -> Result<(), String> {
    if !t.enabled {
        return Ok(());
    }
    let Some(tr) = obs::take() else {
        return Ok(());
    };
    let lane = obs::Lane {
        id: 0,
        name: "driver".to_string(),
        events: tr.snapshot(),
        dropped: tr.dropped(),
    };
    export_trace(&[lane], t)
}

/// Write the Chrome `trace_event` JSON and/or print the summary table,
/// per the trace configuration.
fn export_trace(lanes: &[obs::Lane], t: &TraceConfig) -> Result<(), String> {
    let labels = phase_labels();
    if let Some(path) = &t.out {
        std::fs::write(path, obs::chrome_trace(lanes, &labels))
            .map_err(|e| format!("--trace {path}: {e}"))?;
        println!(
            "wrote trace {path} ({} lane(s), {} event(s))",
            lanes.len(),
            lanes.iter().map(|l| l.events.len()).sum::<usize>()
        );
    }
    if t.summary {
        print!("{}", obs::summary_table(lanes, &labels, t.top_n));
    }
    Ok(())
}

fn print_guard_summary(o: &GuardOutcome) {
    println!("health guard:");
    println!("  backoff epochs {}", o.transcript.len());
    for e in &o.transcript {
        println!("    {e}");
    }
    println!(
        "  final CFL      {:.3} (target {:.3}{})",
        o.final_cfl,
        o.target_cfl,
        if o.final_cfl < o.target_cfl {
            ", still re-ramping"
        } else {
            ""
        }
    );
}

pub fn mesh(a: &Args) -> Result<(), String> {
    let spec = bump_spec(a)?;
    let levels: usize = a.get("levels", 1)?;
    let vtk = a.get_str("vtk");
    a.check_unknown()?;

    let seq = MeshSequence::bump_sequence(&spec, levels);
    let mut t = TextTable::new(&["level", "nodes", "edges", "tets", "bfaces", "valid"]);
    for (l, m) in seq.meshes.iter().enumerate() {
        let s = MeshStats::compute(m);
        t.row(&[
            l.to_string(),
            s.nverts.to_string(),
            s.nedges.to_string(),
            s.ntets.to_string(),
            s.nbfaces.to_string(),
            s.is_valid().to_string(),
        ]);
    }
    println!("{}", t.render());
    if let Some(path) = vtk {
        write_vtk_file(&PathBuf::from(&path), &seq.meshes[0], &[])
            .map_err(|e| format!("vtk export failed: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

pub fn partition(a: &Args) -> Result<(), String> {
    let spec = bump_spec(a)?;
    let parts_n: usize = a.get("parts", 16)?;
    let method = a.get_str("method").unwrap_or_else(|| "flat-rsb".into());
    let mapping_s = a.get_str("mapping").unwrap_or_else(|| "identity".into());
    let coarsen_target: usize = a.get("coarsen-target", 64)?;
    let refine_passes: usize = a.get("refine-passes", 4)?;
    let kl = a.has("kl");
    a.check_unknown()?;
    let mapping = RankMapping::parse(&mapping_s)
        .ok_or_else(|| format!("--mapping must be identity|topology, got '{mapping_s}'"))?;

    let mesh = eul3d_mesh::gen::bump_channel(&spec);
    // The spectral methods go through the `Partitioner` trait and report
    // the full plan quality (hop volumes, Fiedler work, wall time); the
    // geometric/random baselines keep the legacy cut/balance report.
    let spectral: Option<&dyn Partitioner> = match method.as_str() {
        "flat-rsb" | "rsb" => Some(&FlatRsb),
        "multilevel" | "ml" => Some(&MultilevelRsb),
        _ => None,
    };
    let t0 = std::time::Instant::now();
    let (mut parts, plan) = if let Some(p) = spectral {
        let opts = PartitionOptions::new(parts_n)
            .seed(eul3d_core::env_seed(7))
            .coarsen_target(coarsen_target)
            .refine_passes(refine_passes)
            .mapping(mapping);
        let plan = p
            .partition(mesh.nverts(), &mesh.edges, &opts)
            .map_err(|e| e.to_string())?;
        (plan.assignment.clone(), Some(plan))
    } else {
        if mapping != RankMapping::Identity {
            return Err(format!(
                "--mapping {mapping_s} needs a spectral method (flat-rsb|multilevel)"
            ));
        }
        let parts = match method.as_str() {
            "rcb" => rcb_partition(&mesh.coords, parts_n),
            "random" => random_partition(mesh.nverts(), parts_n, 7),
            "prcb" => {
                if !parts_n.is_power_of_two() {
                    return Err("--method prcb needs a power-of-two --parts".into());
                }
                parallel_rcb(&mesh.coords, parts_n, 8)
            }
            other => {
                return Err(format!(
                    "--method must be flat-rsb|multilevel|rcb|random|prcb, got '{other}'"
                ))
            }
        };
        (parts, None)
    };
    let seconds = t0.elapsed().as_secs_f64();
    if kl {
        let moved = kl_refine(mesh.nverts(), &mesh.edges, &mut parts, parts_n, 1.06, 8);
        println!("KL refinement moved {moved} vertices");
    }
    let q = PartitionQuality::compute(&parts, parts_n, &mesh.edges);
    let label = match spectral {
        Some(p) => p.name(),
        None => method.as_str(),
    };
    println!(
        "{} vertices into {parts_n} parts via {label}{}:",
        mesh.nverts(),
        if kl { "+kl" } else { "" }
    );
    println!(
        "  cut edges      {} ({:.1}%)",
        q.cut_edges,
        100.0 * q.cut_fraction
    );
    println!("  max imbalance  {:.3}", q.max_imbalance);
    println!("  boundary verts {}", q.boundary_vertices);
    println!("  surface/volume {:.3}", q.mean_surface_to_volume);
    if let Some(plan) = &plan {
        // Post-KL the cut/balance lines above reflect the refined
        // assignment; the plan block reports what the partitioner itself
        // produced.
        println!("  comm volume    {}", plan.comm_volume);
        println!(
            "  hop volume     {} ({}; identity {})",
            plan.hop_volume,
            mapping.label(),
            plan.hop_volume_identity
        );
        println!("  fiedler iters  {}", plan.fiedler_iterations);
        println!("  partition time {seconds:.3}s");
    }
    Ok(())
}

pub fn solve(a: &Args) -> Result<(), String> {
    let rc = run_config_of(a, 4, 100, false)?;
    let fmg = a.has("fmg");
    let agglo = a.get_str("coarse").as_deref() == Some("agglo");
    let threads: usize = a.get("threads", 0)?;
    let restart = a.get_str("restart");
    let checkpoint = a.get_str("checkpoint");
    let vtk = a.get_str("vtk");
    a.check_unknown()?;
    let (spec, levels, cycles) = (rc.mesh.clone(), rc.levels, rc.cycles);
    let (strategy, cfg, guard) = (rc.strategy, rc.solver, rc.guard);

    if threads > 0 && strategy != Strategy::SingleGrid && guard.is_none() {
        return Err(
            "--threads (shared-memory executor) currently drives the single-grid strategy; \
                    use --strategy sg with --threads, or add --guard for the \
                    guarded multigrid path"
                .into(),
        );
    }
    if guard.is_some() && (agglo || restart.is_some() || fmg) {
        return Err("the health guard is incompatible with --coarse agglo/--restart/--fmg".into());
    }

    println!(
        "solve: nx={} levels={levels} {} cycles={cycles} M={} α={}°{}{}",
        spec.nx,
        strategy.label(),
        cfg.mach,
        cfg.alpha_deg,
        if fmg { " +FMG" } else { "" },
        if agglo {
            " [agglomerated coarse levels]"
        } else {
            ""
        }
    );
    let t0 = std::time::Instant::now();
    arm_driver_trace(&rc.trace);
    if agglo {
        if threads > 0 || restart.is_some() || fmg {
            return Err("--coarse agglo is incompatible with --threads/--restart/--fmg".into());
        }
        let mesh = eul3d_mesh::gen::bump_channel(&spec);
        let mut mg = eul3d_core::agglo::AggloMultigrid::new(mesh, cfg, strategy, levels);
        println!("agglomerated levels: {:?} cells", mg.level_sizes());
        let hist = mg.solve(cycles);
        let h = ConvergenceHistory::from_residuals(hist);
        let last = h
            .residuals
            .last()
            .copied()
            .ok_or("empty residual history")?;
        println!(
            "{} cycles in {:.2}s host: residual {:.3e} -> {:.3e} ({:.2} orders)",
            cycles,
            t0.elapsed().as_secs_f64(),
            h.residuals[0],
            last,
            h.orders_reduced()
        );
        if let Some(path) = checkpoint {
            Checkpoint::from_state(mg.state(), cycles as u64, cfg.mach, cfg.alpha_deg)
                .save(PathBuf::from(&path).as_path())
                .map_err(|e| format!("checkpoint: {e}"))?;
            println!("checkpointed to {path}");
        }
        if let Some(path) = vtk {
            let n = mg.mesh.nverts();
            let mach = mach_field(cfg.gamma, mg.state(), n);
            write_vtk_file(PathBuf::from(&path).as_path(), &mg.mesh, &[("mach", &mach)])
                .map_err(|e| format!("vtk export: {e}"))?;
            println!("wrote {path}");
        }
        return finish_driver_trace(&rc.trace);
    }

    let seq = MeshSequence::bump_sequence(&spec, levels);
    println!(
        "mesh family {:?} vertices ({:.2}s preprocessing)",
        seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>(),
        t0.elapsed().as_secs_f64()
    );

    let (hist, w, nverts, flops, mesh0) = if let Some(g) = &guard {
        let mut mg = if threads > 0 {
            MultigridSolver::new_shared(seq, cfg, strategy, threads)
                .map_err(|e| format!("shared executor: {e}"))?
        } else {
            MultigridSolver::new(seq, cfg, strategy)
        };
        let (hist, outcome) = mg.solve_guarded(cycles, g).map_err(|e| e.to_string())?;
        print_guard_summary(&outcome);
        let n = mg.levels[0].n;
        let w = mg.levels[0].w.clone();
        let mesh0 = mg
            .seq
            .meshes
            .into_iter()
            .next()
            .ok_or("mesh sequence is empty")?;
        (hist, w, n, mg.counter.flops(), mesh0)
    } else if threads > 0 {
        let mesh = seq
            .meshes
            .into_iter()
            .next()
            .ok_or("mesh sequence is empty")?;
        let mut s = SharedSingleGridSolver::new(mesh, cfg, threads)
            .map_err(|e| format!("shared executor: {e}"))?;
        if let Some(path) = &restart {
            let ck = Checkpoint::load(PathBuf::from(path).as_path())
                .map_err(|e| format!("restart: {e}"))?;
            ck.restore_into_state(&mut s.st.w)
                .map_err(|e| format!("restart: {e}"))?;
            println!("restarted from {path} ({} cycles done)", ck.cycles_done);
        }
        let hist = s.solve(cycles);
        let n = s.st.n;
        (hist, s.st.w.clone(), n, s.counter.flops(), s.mesh)
    } else {
        let mut mg = MultigridSolver::new(seq, cfg, strategy);
        if let Some(path) = &restart {
            let ck = Checkpoint::load(PathBuf::from(path).as_path())
                .map_err(|e| format!("restart: {e}"))?;
            ck.restore_into_state(&mut mg.levels[0].w)
                .map_err(|e| format!("restart: {e}"))?;
            println!("restarted from {path} ({} cycles done)", ck.cycles_done);
        } else if fmg {
            mg.fmg_init(cycles.min(20));
        }
        let hist = mg.solve(cycles);
        let n = mg.levels[0].n;
        let w = mg.levels[0].w.clone();
        let mesh0 = mg
            .seq
            .meshes
            .into_iter()
            .next()
            .ok_or("mesh sequence is empty")?;
        (hist, w, n, mg.counter.flops(), mesh0)
    };
    // Export before the divergence check so a failing run still leaves
    // its trace behind for inspection.
    finish_driver_trace(&rc.trace)?;

    let h = ConvergenceHistory::from_residuals(hist);
    let last = h
        .residuals
        .last()
        .copied()
        .ok_or("empty residual history")?;
    println!(
        "{} cycles in {:.2}s host: residual {:.3e} -> {:.3e} ({:.2} orders, rate {:.4}/cycle, {:.2e} flops)",
        cycles,
        t0.elapsed().as_secs_f64(),
        h.residuals[0],
        last,
        h.orders_reduced(),
        h.asymptotic_rate(10),
        flops
    );
    if h.diverged() {
        return Err("run diverged".into());
    }
    if h.stalled(10, 0.002) {
        println!("note: convergence has stalled (rate ≈ 1)");
    }

    if let Some(path) = checkpoint {
        Checkpoint::from_state(&w, cycles as u64, cfg.mach, cfg.alpha_deg)
            .save(PathBuf::from(&path).as_path())
            .map_err(|e| format!("checkpoint: {e}"))?;
        println!("checkpointed to {path}");
    }
    if let Some(path) = vtk {
        let mach = mach_field(cfg.gamma, &w, nverts);
        let p = pressure_field(cfg.gamma, &w, nverts);
        let cp = cp_field(cfg.gamma, cfg.mach, &w, nverts);
        write_vtk_file(
            PathBuf::from(&path).as_path(),
            &mesh0,
            &[("mach", &mach), ("pressure", &p), ("cp", &cp)],
        )
        .map_err(|e| format!("vtk export: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

pub fn distributed(a: &Args) -> Result<(), String> {
    use eul3d_core::dist::{
        run_distributed, run_distributed_guarded, run_distributed_with_faults, DistBackend,
        DistOptions, DistSetup, FaultOptions, RankFate,
    };
    let rc = run_config_of(a, 3, 25, true)?;
    let no_incr = a.has("no-incremental");
    a.check_unknown()?;
    let hybrid = rc.backend == BackendKind::Hybrid;
    let nranks = rc.effective_nranks();
    let (spec, levels, cycles) = (rc.mesh.clone(), rc.levels, rc.cycles);
    let (strategy, cfg, guard) = (rc.strategy, rc.solver, rc.guard);
    let fopts = match &rc.faults {
        Some(spec) => Some(FaultOptions {
            plan: std::sync::Arc::new(
                eul3d_delta::FaultPlan::parse(spec, nranks)
                    .map_err(|e| format!("--faults: {e}"))?,
            ),
            checkpoint_every: rc.checkpoint_every,
            recv_timeout_ms: rc.fault_timeout_ms,
            ..FaultOptions::default()
        }),
        // The guarded driver needs a fault context for its rollback
        // checkpoints even when nothing is killed.
        None if guard.is_some() => Some(FaultOptions {
            checkpoint_every: rc.checkpoint_every,
            recv_timeout_ms: rc.fault_timeout_ms,
            ..FaultOptions::default()
        }),
        None => None,
    };

    println!(
        "distributed: nx={} levels={levels} {} cycles={cycles} on {nranks} {}",
        spec.nx,
        strategy.label(),
        if hybrid {
            "hybrid threads (shared-memory windows)"
        } else {
            "simulated ranks"
        }
    );
    let seq = MeshSequence::bump_sequence(&spec, levels);
    let t0 = std::time::Instant::now();
    let pseed = eul3d_core::env_seed(7);
    let (setup, method_label) = match &rc.partition {
        Some(p) => (
            DistSetup::from_policy(seq, nranks, 40, pseed, p),
            partition_method_name(p.method),
        ),
        None => (DistSetup::new(seq, nranks, 40, pseed), "flat-rsb"),
    };
    println!(
        "{method_label} partitioning of all levels: {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let repartition = rc
        .partition
        .as_ref()
        .and_then(|p| eul3d_core::dist::RepartitionPolicy::from_config(p, 40, pseed));
    if let Some(pol) = &repartition {
        println!(
            "mid-run repartition every {} cycles ({method_label}, {} mapping)",
            pol.every,
            pol.mapping.label()
        );
    }
    let opts = DistOptions {
        refetch_per_loop: no_incr,
        trace_capacity: rc.trace.enabled.then_some(rc.trace.capacity),
        backend: if hybrid {
            DistBackend::Hybrid
        } else {
            DistBackend::Delta
        },
        real_time_lanes: hybrid && rc.trace.enabled,
        repartition,
        ..DistOptions::default()
    };
    let t1 = std::time::Instant::now();
    let r = match (&guard, &fopts) {
        (Some(g), Some(f)) => run_distributed_guarded(&setup, cfg, strategy, cycles, opts, f, g)
            .map_err(|e| e.to_string())?,
        (None, Some(f)) => run_distributed_with_faults(&setup, cfg, strategy, cycles, opts, f),
        _ => run_distributed(&setup, cfg, strategy, cycles, opts),
    };
    if let Some(o) = r.guard_outcome() {
        print_guard_summary(o);
    }
    if rc.faults.is_some() {
        let epochs: u64 = r
            .run
            .counters
            .iter()
            .map(|c| c.recoveries)
            .max()
            .unwrap_or(0);
        println!("fault injection: {epochs} recovery epoch(s)");
        for (vid, out) in r.run.results.iter().enumerate() {
            if let RankFate::Died { cycle } = out.fate {
                let host = r
                    .run
                    .results
                    .iter()
                    .position(|o| o.adopted.iter().any(|ad| ad.vid == vid))
                    .map(|h| format!("rank {h}"))
                    .unwrap_or_else(|| "nobody".into());
                println!("  rank {vid} died in cycle {cycle}; partition adopted by {host}");
            }
        }
    }
    let h = ConvergenceHistory::from_residuals(r.history().to_vec());
    let last = h
        .residuals
        .last()
        .copied()
        .ok_or("empty residual history")?;
    println!(
        "{} cycles in {:.2}s host: residual {:.3e} -> {:.3e} ({:.2} orders)",
        cycles,
        t1.elapsed().as_secs_f64(),
        h.residuals[0],
        last,
        h.orders_reduced()
    );

    let model = CostModel::delta_i860();
    let b = model.evaluate(&r.cycle_counters());
    println!(
        "modeled Delta cost: comm {:.2}s + comp {:.2}s = {:.2}s ({:.0} MFlops, comm/comp {:.2})",
        b.comm_seconds,
        b.comp_seconds,
        b.total_seconds,
        b.mflops,
        b.comm_to_comp()
    );
    if hybrid {
        println!(
            "hybrid wall time: {:.3}s on {nranks} threads (vs {:.2}s modeled Delta)",
            r.wall_seconds, b.total_seconds
        );
    }
    if rc.trace.enabled {
        export_trace(&r.lanes(), &rc.trace)?;
    }
    Ok(())
}
