//! `kernels` — SoA edge-kernel benchmark emitting `BENCH_kernels.json`.
//!
//! Times every vectorized plane-major edge kernel against the retained
//! interleaved-AoS baseline on the same mesh and state, asserts the two
//! layouts produce **bit-identical** accumulations before timing them,
//! and reports per-kernel GFLOP/s, modeled bandwidth, and the aggregate
//! (time-weighted) speedup through [`eul3d_perf::kernels`].
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `EUL3D_BENCH_ROUNDS` | timed rounds per kernel | 60 |
//! | `EUL3D_BENCH_OUT` | output path | `BENCH_kernels.json` |
//!
//! `--smoke` shrinks the mesh and caps the rounds for CI; `--gate R`
//! exits nonzero unless the aggregate SoA speedup is at least `R`
//! (CI runs `--gate 1.2`).

#![allow(deprecated)] // the AoS baselines are the deprecated shims, on purpose

use std::time::Instant;

use eul3d_core::counters::{
    FlopCounter, FLOPS_CONV_EDGE, FLOPS_DISS_FO_EDGE, FLOPS_DISS_P1_EDGE, FLOPS_DISS_P2_EDGE,
    FLOPS_DISS_ROE_EDGE, FLOPS_RADII_EDGE, FLOPS_SMOOTH_EDGE,
};
use eul3d_core::dissipation::{dissipation_first_order, dissipation_pass, laplacian_pass};
use eul3d_core::flux::{compute_pressures, conv_residual_edges};
use eul3d_core::gas::{GAMMA, NVAR};
use eul3d_core::roe::roe_dissipation_edges;
use eul3d_core::smooth::smooth_accumulate;
use eul3d_core::timestep::radii_edges;
use eul3d_core::{SoaState, SolverConfig};
use eul3d_kernels::{EdgeSpan, ScatterAccess};
use eul3d_mesh::gen::{bump_channel, BumpSpec};
use eul3d_mesh::TetMesh;
use eul3d_perf::kernels::{aggregate_speedup, kernels_report_json, KernelSample};

/// The benchmark state: mesh plus a smoothly perturbed flow in both
/// layouts, with derived pressures/Laplacians/sensors so pass-2 kernels
/// run on realistic operands.
struct Workload {
    mesh: TetMesh,
    w_aos: Vec<f64>,
    w_soa: SoaState,
    p: Vec<f64>,
    lapl_aos: Vec<f64>,
    lapl_soa: SoaState,
    nu: Vec<f64>,
    k2: f64,
    k4: f64,
    coarse_k2: f64,
}

fn workload(smoke: bool) -> Workload {
    let spec = if smoke {
        BumpSpec {
            nx: 14,
            ny: 6,
            nz: 5,
            jitter: 0.15,
            ..Default::default()
        }
    } else {
        BumpSpec {
            nx: 28,
            ny: 12,
            nz: 10,
            jitter: 0.15,
            ..Default::default()
        }
    };
    let mesh = bump_channel(&spec);
    let cfg = SolverConfig::default();
    let fs = cfg.freestream();
    let n = mesh.nverts();
    let mut w_aos = vec![0.0; n * NVAR];
    for (i, c) in mesh.coords.iter().enumerate() {
        let s = 1.0 + 0.05 * (c.x * 3.0).sin() * (c.y * 5.0).cos() + 0.02 * (c.z * 7.0).sin();
        for k in 0..NVAR {
            w_aos[i * NVAR + k] = fs.w[k] * s;
        }
    }
    let w_soa = SoaState::from_aos(&w_aos, NVAR);
    let mut p = vec![0.0; n];
    let mut counter = FlopCounter::default();
    compute_pressures(GAMMA, &w_aos, &mut p, &mut counter);

    // Pass-1 accumulators feed the pass-2 kernels.
    let mut lapl_aos = vec![0.0; n * NVAR];
    let mut sens = vec![0.0; n * 2];
    laplacian_pass(
        &mesh.edges,
        &w_aos,
        &p,
        &mut lapl_aos,
        &mut sens,
        &mut counter,
    );
    let lapl_soa = SoaState::from_aos(&lapl_aos, NVAR);
    let mut nu = vec![0.0; n];
    eul3d_core::dissipation::sensor_from_accumulators(&sens, &mut nu);

    Workload {
        mesh,
        w_aos,
        w_soa,
        p,
        lapl_aos,
        lapl_soa,
        nu,
        k2: cfg.k2,
        k4: cfg.k4,
        coarse_k2: cfg.coarse_k2,
    }
}

/// Time one kernel in both layouts. `aos` and `soa` must accumulate the
/// same edge loop into their (zeroed) target buffers; the outputs are
/// asserted bit-identical before the timed rounds, so a fast-but-wrong
/// kernel can't pass the gate.
#[allow(clippy::too_many_arguments)]
fn sample<A, S>(
    name: &str,
    nedges: usize,
    rounds: usize,
    // One (vertices, components) pair per scatter target; the AoS
    // baseline writes interleaved rows, the SoA kernel planes.
    targets: &[(usize, usize)],
    aos: A,
    soa: S,
    flops_per_item: f64,
    f64s_per_item: f64,
) -> KernelSample
where
    A: Fn(&mut [Vec<f64>]),
    S: Fn(&mut [Vec<f64>]),
{
    let mut bufs_aos: Vec<Vec<f64>> = targets.iter().map(|&(n, nc)| vec![0.0; n * nc]).collect();
    let mut bufs_soa: Vec<Vec<f64>> = targets.iter().map(|&(n, nc)| vec![0.0; n * nc]).collect();

    // Bit-identity check: one zero-initialized application of each, with
    // the interleaved baseline transposed into planes for the compare.
    aos(&mut bufs_aos);
    soa(&mut bufs_soa);
    for (t, ((a, s), &(_, nc))) in bufs_aos.iter().zip(&bufs_soa).zip(targets).enumerate() {
        let a_planes = SoaState::from_aos(a, nc);
        assert_eq!(
            a_planes.flat(),
            &s[..],
            "{name}: SoA target {t} is not bit-identical to the AoS baseline"
        );
    }

    // Report min-of-rounds × rounds: on a single-core host any OS
    // preemption lands inside some round, so the per-round minimum is
    // the jitter-robust estimate of true kernel time. Target zeroing is
    // outside the timed region — it is identical for both layouts.
    let warm = (rounds / 10).max(2);
    let time = |f: &dyn Fn(&mut [Vec<f64>]), bufs: &mut [Vec<f64>]| -> f64 {
        for _ in 0..warm {
            for b in bufs.iter_mut() {
                b.iter_mut().for_each(|x| *x = 0.0);
            }
            f(bufs);
        }
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            for b in bufs.iter_mut() {
                b.iter_mut().for_each(|x| *x = 0.0);
            }
            let t0 = Instant::now();
            f(bufs);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * rounds as f64
    };
    let aos_seconds = time(&aos, &mut bufs_aos);
    let soa_seconds = time(&soa, &mut bufs_soa);

    KernelSample {
        name: name.to_string(),
        items: nedges as u64,
        rounds: rounds as u64,
        aos_seconds,
        soa_seconds,
        flops_per_item,
        f64s_per_item,
    }
}

/// Run a SoA kernel body against a freshly-built [`ScatterAccess`] over
/// `bufs` (one target per buffer).
fn with_access(bufs: &mut [Vec<f64>], f: impl Fn(&ScatterAccess)) {
    let mut refs: Vec<&mut [f64]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
    let access = ScatterAccess::new(&mut refs);
    f(&access);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args[i + 1].parse().expect("--gate takes a ratio"));
    let mut rounds: usize = std::env::var("EUL3D_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    if smoke {
        rounds = rounds.min(20);
    }
    let out_path =
        std::env::var("EUL3D_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());

    let wl = workload(smoke);
    let n = wl.mesh.nverts();
    let ne = wl.mesh.nedges();
    let lanes = SolverConfig::default().lanes;
    let span = EdgeSpan::Range(0..ne);
    let sink = FlopCounter::default();
    println!(
        "kernel benchmark: {} vertices, {} edges, lane width {}, {} rounds{}",
        n,
        ne,
        lanes,
        rounds,
        if smoke { " (smoke)" } else { "" }
    );

    // Per-edge f64 traffic models (reads + 2× scatter slots), documented
    // in eul3d_perf::kernels. AoS and SoA touch the same slot count —
    // the layouts differ in locality, not volume.
    let samples = vec![
        sample(
            "conv_flux",
            ne,
            rounds,
            &[(n, NVAR)],
            |b| {
                conv_residual_edges(
                    &wl.mesh.edges,
                    &wl.mesh.edge_coef,
                    &wl.w_aos,
                    &wl.p,
                    &mut b[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::conv_flux_edges(
                        &span,
                        &wl.mesh.edges,
                        &wl.mesh.edge_coef,
                        wl.w_soa.flat(),
                        &wl.p,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_CONV_EDGE,
            35.0,
        ),
        sample(
            "jst_pass1",
            ne,
            rounds,
            &[(n, NVAR), (n, 2)],
            |b| {
                let (lapl, sens) = b.split_at_mut(1);
                laplacian_pass(
                    &wl.mesh.edges,
                    &wl.w_aos,
                    &wl.p,
                    &mut lapl[0],
                    &mut sens[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::jst_pass1_edges(
                        &span,
                        &wl.mesh.edges,
                        wl.w_soa.flat(),
                        &wl.p,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_DISS_P1_EDGE,
            40.0,
        ),
        sample(
            "jst_pass2",
            ne,
            rounds,
            &[(n, NVAR)],
            |b| {
                dissipation_pass(
                    &wl.mesh.edges,
                    &wl.mesh.edge_coef,
                    &wl.w_aos,
                    &wl.p,
                    &wl.lapl_aos,
                    &wl.nu,
                    GAMMA,
                    wl.k2,
                    wl.k4,
                    &mut b[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::jst_pass2_edges(
                        &span,
                        &wl.mesh.edges,
                        &wl.mesh.edge_coef,
                        GAMMA,
                        wl.k2,
                        wl.k4,
                        wl.w_soa.flat(),
                        &wl.p,
                        wl.lapl_soa.flat(),
                        &wl.nu,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_DISS_P2_EDGE,
            47.0,
        ),
        sample(
            "first_order_diss",
            ne,
            rounds,
            &[(n, NVAR)],
            |b| {
                dissipation_first_order(
                    &wl.mesh.edges,
                    &wl.mesh.edge_coef,
                    &wl.w_aos,
                    &wl.p,
                    GAMMA,
                    wl.coarse_k2,
                    &mut b[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::first_order_diss_edges(
                        &span,
                        &wl.mesh.edges,
                        &wl.mesh.edge_coef,
                        GAMMA,
                        wl.coarse_k2,
                        wl.w_soa.flat(),
                        &wl.p,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_DISS_FO_EDGE,
            35.0,
        ),
        sample(
            "roe_diss",
            ne,
            rounds,
            &[(n, NVAR)],
            |b| {
                roe_dissipation_edges(
                    &wl.mesh.edges,
                    &wl.mesh.edge_coef,
                    &wl.w_aos,
                    &wl.p,
                    GAMMA,
                    &mut b[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::roe_diss_edges(
                        &span,
                        &wl.mesh.edges,
                        &wl.mesh.edge_coef,
                        GAMMA,
                        wl.w_soa.flat(),
                        &wl.p,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_DISS_ROE_EDGE,
            35.0,
        ),
        sample(
            "radii",
            ne,
            rounds,
            &[(n, 1)],
            |b| {
                radii_edges(
                    &wl.mesh.edges,
                    &wl.mesh.edge_coef,
                    &wl.w_aos,
                    &wl.p,
                    GAMMA,
                    &mut b[0],
                    &mut sink.clone(),
                )
            },
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::radii_edges_soa(
                        &span,
                        &wl.mesh.edges,
                        &wl.mesh.edge_coef,
                        GAMMA,
                        wl.w_soa.flat(),
                        &wl.p,
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_RADII_EDGE,
            19.0,
        ),
        sample(
            "smooth_accumulate",
            ne,
            rounds,
            &[(n, NVAR)],
            |b| smooth_accumulate(&wl.mesh.edges, &wl.w_aos, &mut b[0], &mut sink.clone()),
            |b| {
                with_access(b, |s| unsafe {
                    eul3d_kernels::smooth_accumulate_edges(
                        &span,
                        &wl.mesh.edges,
                        wl.w_soa.flat(),
                        n,
                        s,
                        lanes,
                    )
                })
            },
            FLOPS_SMOOTH_EDGE,
            30.0,
        ),
    ];

    for s in &samples {
        println!(
            "{:<18} {:>9} edges  aos {:>9.3e} s  soa {:>9.3e} s  speedup {:>5.2}x  {:>7.3} GFLOP/s  {:>7.3} GB/s",
            s.name,
            s.items,
            s.aos_seconds / s.rounds as f64,
            s.soa_seconds / s.rounds as f64,
            s.speedup(),
            s.soa_gflops(),
            s.soa_bandwidth_gbs(),
        );
    }
    let agg = aggregate_speedup(&samples);
    println!("aggregate speedup (time-weighted): {agg:.3}x");

    let config = format!(
        "{{\"nverts\": {n}, \"nedges\": {ne}, \"lanes\": {lanes}, \"rounds\": {rounds}, \"smoke\": {smoke}}}"
    );
    std::fs::write(&out_path, kernels_report_json(&config, &samples))
        .expect("write BENCH_kernels.json");
    println!("wrote {out_path}");

    if let Some(g) = gate {
        assert!(
            agg >= g,
            "aggregate SoA speedup {agg:.3}x is below the required {g}x gate"
        );
        println!("gate {g}x passed");
    }
}
