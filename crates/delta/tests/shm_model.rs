//! Exhaustive model checking of the hybrid backend's shared-memory
//! window protocol (`eul3d_delta::shm::Window`) — the capacity-1 SPSC
//! seqlock whose two monotonic counters (`published` / `consumed`)
//! carry the entire ownership discipline.
//!
//! Loom is not available in this tree, so this is a hand-rolled
//! explicit-state checker: each side of the protocol is decomposed into
//! the same atomic steps the implementation performs (guard load →
//! buffer write/read in two non-atomic halves → counter store), and a
//! DFS enumerates **every** interleaving of those steps for a small
//! number of epochs, with counter loads additionally allowed to return
//! **stale** (older) values — the only staleness Release/Acquire on
//! monotonic counters permits. At every reachable state the checker
//! asserts:
//!
//! * **mutual exclusion** — writer and reader never own the buffer
//!   simultaneously (the `UnsafeCell` safety argument);
//! * **coherence** — a reader holding the buffer sees both halves from
//!   exactly the epoch it is consuming (no torn reads);
//! * **bounded epochs** — `consumed ≤ published ≤ consumed + 1`;
//! * **exactly-once, in-order** — epochs are consumed as 0, 1, 2, …;
//! * **deadlock freedom** — every non-terminal state has a successor,
//!   and every terminal state has both sides finished.
//!
//! To prove the checker has teeth, mutated protocols (publish before
//! the buffer is fully written — a missing Release edge; consume
//! without the guard — a missing Acquire edge) must each be *caught*.
//! A second model checks the exchange-ordering deadlock-freedom claim
//! from the module docs: publish-all-sends-then-consume is deadlock
//! free, while consume-first on both sides deadlocks — and the checker
//! must find that deadlock.
//!
//! This complements the TSan job and the in-crate stress tests: those
//! sample real schedules under the real memory model; this enumerates
//! all schedules under the modeled one.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;

/// Epochs each side runs in the model. Three is enough to cover
/// steady-state wrap behaviour (fill → drain → refill) while keeping
/// the state space tiny.
const EPOCHS: u64 = 3;

/// Marker for a buffer half that no epoch has written yet.
const UNWRITTEN: u64 = u64::MAX;

/// Protocol variants: the real one, plus mutations the checker must
/// reject.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// The shipped protocol.
    Correct,
    /// Writer bumps `published` before the second buffer half is
    /// written — models the store being reordered past the buffer
    /// writes (i.e. a missing `Release`).
    PublishBeforeFill,
    /// Reader touches the buffer without waiting for the guard —
    /// models a missing `Acquire`/guard check.
    ConsumeWithoutGuard,
}

/// One interleaved machine state. `*_pc` walk the atomic steps:
/// 0 = at guard, 1 = first buffer half done, 2 = second half done,
/// (writer) 3 ≡ wrapped back after the counter store.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    w_pc: u8,
    r_pc: u8,
    /// Epochs fully published / consumed (also the counters' values,
    /// updated by the pc-3 steps).
    published: u64,
    consumed: u64,
    /// What each side's *next* guard load is allowed to be stale down
    /// to: the freshest value that side has already observed.
    w_floor: u64,
    r_floor: u64,
    /// Epoch markers in the two buffer halves.
    buf_lo: u64,
    buf_hi: u64,
}

impl State {
    fn initial() -> State {
        State {
            w_pc: 0,
            r_pc: 0,
            published: 0,
            consumed: 0,
            w_floor: 0,
            r_floor: 0,
            buf_lo: UNWRITTEN,
            buf_hi: UNWRITTEN,
        }
    }

    fn writer_done(&self) -> bool {
        self.w_pc == 0 && self.published == EPOCHS
    }

    fn reader_done(&self) -> bool {
        self.r_pc == 0 && self.consumed == EPOCHS
    }
}

/// Check the per-state safety invariants; returns a violation message.
fn safety(s: &State, variant: Variant) -> Option<String> {
    let w_owns = s.w_pc == 1 || s.w_pc == 2;
    let r_owns = s.r_pc == 1 || s.r_pc == 2;
    if w_owns && r_owns {
        return Some(format!(
            "mutual exclusion violated: writer pc={} and reader pc={} both own the buffer \
             (published={}, consumed={})",
            s.w_pc, s.r_pc, s.published, s.consumed
        ));
    }
    if s.consumed > s.published || s.published - s.consumed > 1 {
        return Some(format!(
            "epoch bound violated: published={} consumed={}",
            s.published, s.consumed
        ));
    }
    // Coherence: while the reader owns the buffer, the halves it has
    // already read must have carried its epoch. pc=1 means it read the
    // low half, pc=2 both.
    if r_owns {
        let epoch = s.consumed;
        if s.buf_lo != epoch {
            return Some(format!(
                "torn read: reader of epoch {epoch} sees low half from {:?} \
                 (variant exposes a missing happens-before edge)",
                s.buf_lo
            ));
        }
        if s.r_pc == 2 && s.buf_hi != epoch {
            return Some(format!(
                "torn read: reader of epoch {epoch} sees high half from {:?}",
                s.buf_hi
            ));
        }
    }
    let _ = variant;
    None
}

/// All successor states of `s` under `variant`. Guard steps fan out
/// over every staleness choice the memory model allows.
fn successors(s: &State, variant: Variant) -> Vec<State> {
    let mut out = Vec::new();

    // Writer transitions.
    if !s.writer_done() {
        match s.w_pc {
            0 => {
                // Guard: load `consumed` with any staleness down to the
                // writer's floor. The guard passes iff the loaded value
                // equals `published` (writer-owned state).
                for loaded in s.w_floor..=s.consumed {
                    let mut n = *s;
                    n.w_floor = loaded;
                    if loaded == s.published {
                        n.w_pc = 1;
                        // The real writer clears the buffer before
                        // filling: model the first half write here.
                        n.buf_lo = s.published;
                        out.push(n);
                    } else if loaded != s.w_floor {
                        // Spin observed a newer (still failing) value:
                        // a distinct state, else a no-op self-loop.
                        out.push(n);
                    }
                }
            }
            1 => {
                if variant == Variant::PublishBeforeFill {
                    // BUG MODEL: the counter store is reordered before
                    // the second half write.
                    let mut n = *s;
                    n.published += 1;
                    n.w_pc = 2;
                    out.push(n);
                } else {
                    let mut n = *s;
                    n.buf_hi = s.published;
                    n.w_pc = 2;
                    out.push(n);
                }
            }
            2 => {
                let mut n = *s;
                if variant == Variant::PublishBeforeFill {
                    // The write that should have preceded the store.
                    n.buf_hi = s.published - 1;
                } else {
                    n.published += 1;
                }
                n.w_pc = 0;
                out.push(n);
            }
            _ => unreachable!("writer pc"),
        }
    }

    // Reader transitions.
    if !s.reader_done() {
        match s.r_pc {
            0 => {
                if variant == Variant::ConsumeWithoutGuard {
                    // BUG MODEL: skip the guard entirely.
                    let mut n = *s;
                    n.r_pc = 1;
                    out.push(n);
                } else {
                    for loaded in s.r_floor..=s.published {
                        let mut n = *s;
                        n.r_floor = loaded;
                        if loaded > s.consumed {
                            n.r_pc = 1;
                            out.push(n);
                        } else if loaded != s.r_floor {
                            out.push(n);
                        }
                    }
                }
            }
            1 => {
                let mut n = *s;
                n.r_pc = 2;
                out.push(n);
            }
            2 => {
                let mut n = *s;
                n.consumed += 1;
                n.r_pc = 0;
                out.push(n);
            }
            _ => unreachable!("reader pc"),
        }
    }
    out
}

/// Exhaustively explore `variant`; returns the first safety/liveness
/// violation found, or stats on success.
fn explore(variant: Variant) -> Result<(usize, usize), String> {
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial()];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if !visited.insert(s) {
            continue;
        }
        if let Some(v) = safety(&s, variant) {
            return Err(v);
        }
        if s.writer_done() && s.reader_done() {
            if s.published != EPOCHS || s.consumed != EPOCHS {
                return Err(format!(
                    "terminal state with published={} consumed={}",
                    s.published, s.consumed
                ));
            }
            terminals += 1;
            continue;
        }
        let next = successors(&s, variant);
        // Deadlock: a non-terminal state no interleaving can leave.
        // Guard self-loops (stale re-reads of an unchanged value) were
        // already excluded by `successors`.
        if next.iter().all(|n| n == &s) || next.is_empty() {
            return Err(format!(
                "deadlock: writer pc={} epoch={} / reader pc={} epoch={}",
                s.w_pc, s.published, s.r_pc, s.consumed
            ));
        }
        stack.extend(next);
    }
    Ok((visited.len(), terminals))
}

#[test]
fn window_protocol_is_safe_and_live_under_all_interleavings() {
    let (states, terminals) = explore(Variant::Correct)
        .unwrap_or_else(|v| panic!("protocol violation found by model checker: {v}"));
    // The space must be larger than one serialized trace (a single
    // straight-line execution of 3 epochs is 18 states) — i.e. the DFS
    // really explored overlapping guard/ownership states — and every
    // path must converge on the unique all-done terminal. The space is
    // *legitimately* small: capacity-1 ownership alternation means most
    // steps strictly serialize, which is exactly the property proved.
    assert!(states > 18, "no concurrency explored: {states} states");
    assert_eq!(terminals, 1, "all interleavings converge to one terminal");
}

#[test]
fn checker_catches_publish_before_fill() {
    let v = explore(Variant::PublishBeforeFill)
        .expect_err("a publish reordered before the buffer write must be caught");
    // The premature counter store lets the reader's guard pass while
    // the writer still holds the buffer: depending on DFS order it
    // surfaces as the ownership break or as the resulting torn read.
    assert!(
        v.contains("mutual exclusion") || v.contains("torn read"),
        "wrong violation class: {v}"
    );
}

#[test]
fn checker_catches_consume_without_guard() {
    let v = explore(Variant::ConsumeWithoutGuard)
        .expect_err("consuming without the guard must be caught");
    assert!(
        v.contains("torn read") || v.contains("mutual exclusion") || v.contains("epoch bound"),
        "wrong violation class: {v}"
    );
}

// ---------------------------------------------------------------------
// Exchange-ordering model: two ranks, two directed streams. The module
// docs claim deadlock freedom because every rank publishes all its
// sends before consuming any receive. Model both that ordering and the
// broken consume-first ordering; each rank's stream op is atomic here
// (the single-stream model above already covers intra-op interleaving).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ExchangeState {
    /// Per rank: (next op index, epochs completed).
    pc: [u8; 2],
    epoch: [u64; 2],
    /// Per directed stream `a→b`, `b→a`: published - consumed ∈ {0,1}.
    in_flight: [u8; 2],
}

/// Each rank's per-epoch program as (is_publish, stream index) pairs.
fn program(rank: usize, consume_first: bool) -> [(bool, usize); 2] {
    // Stream 0 is rank0→rank1, stream 1 is rank1→rank0.
    let send = (true, rank);
    let recv = (false, 1 - rank);
    if consume_first {
        [recv, send]
    } else {
        [send, recv]
    }
}

fn explore_exchange(consume_first: [bool; 2]) -> Result<usize, String> {
    let mut visited: HashSet<ExchangeState> = HashSet::new();
    let mut stack = vec![ExchangeState {
        pc: [0, 0],
        epoch: [0, 0],
        in_flight: [0, 0],
    }];
    let mut states = 0usize;
    while let Some(s) = stack.pop() {
        if !visited.insert(s) {
            continue;
        }
        states += 1;
        let done = (0..2).all(|r| s.epoch[r] == EPOCHS);
        if done {
            continue;
        }
        let mut progressed = false;
        for (r, &cf) in consume_first.iter().enumerate() {
            if s.epoch[r] == EPOCHS {
                continue;
            }
            let (is_publish, stream) = program(r, cf)[s.pc[r] as usize];
            let enabled = if is_publish {
                s.in_flight[stream] == 0 // capacity-1 window is free
            } else {
                s.in_flight[stream] == 1 // an epoch is waiting
            };
            if !enabled {
                continue;
            }
            progressed = true;
            let mut n = s;
            n.in_flight[stream] = if is_publish { 1 } else { 0 };
            if n.pc[r] == 1 {
                n.pc[r] = 0;
                n.epoch[r] += 1;
            } else {
                n.pc[r] = 1;
            }
            stack.push(n);
        }
        if !progressed {
            return Err(format!(
                "deadlock at pc={:?} epoch={:?} in_flight={:?}",
                s.pc, s.epoch, s.in_flight
            ));
        }
    }
    Ok(states)
}

#[test]
fn publish_before_consume_ordering_is_deadlock_free() {
    // The shipped SPMD ordering, and the mixed case (one rank happens
    // to drain its receives late) — both must complete.
    explore_exchange([false, false]).expect("symmetric publish-first deadlocked");
    explore_exchange([false, true]).expect("mixed ordering deadlocked");
    explore_exchange([true, false]).expect("mixed ordering deadlocked");
}

#[test]
fn consume_first_on_both_ranks_deadlocks_and_the_checker_finds_it() {
    let v = explore_exchange([true, true]).expect_err("both-consume-first must deadlock");
    assert!(v.contains("deadlock"), "{v}");
}
