//! Offline stand-in for the `rand` crate (0.10 API subset).
//!
//! This workspace vendors source-compatible subsets of its external
//! dependencies so the build is hermetic (no registry access). Provided
//! here: [`rngs::StdRng`] (xoshiro256** seeded by SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] over uniform
//! integer/float ranges, and [`seq::SliceRandom::shuffle`]. Streams are
//! deterministic per seed but do **not** match upstream `rand`'s.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo draw: bias is negligible for the span sizes the
                // solver uses (all far below 2^64).
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The draw actually spreads over the interval.
        assert!(lo < -0.9 && hi > 0.9);
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }
}
