//! One rank's share of one mesh level, with its halo schedule and local
//! working arrays, plus the distributed five-stage time step.

use eul3d_delta::{CommClass, Rank};
use eul3d_parti::{localize, Schedule, Translation};
use eul3d_partition::{PartitionedMesh, RankMesh};

use crate::boundary::boundary_residual;
use crate::config::SolverConfig;
use crate::counters::{FlopCounter, FLOPS_ASSEMBLE_VERT, FLOPS_UPDATE_VERT};
use crate::dissipation::{
    dissipation_first_order, dissipation_pass, laplacian_pass, sensor_from_accumulators,
};
use crate::flux::{compute_pressures, conv_residual_edges};
use crate::gas::NVAR;
use crate::smooth::{degrees_from_edges, smooth_accumulate, smooth_update};
use crate::timestep::{local_dt, radii_bfaces, radii_edges};

/// Execution options for the distributed path.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistExecOptions {
    /// Disable the §4.3 fetch-once optimization: re-gather the flow
    /// variables before *every* edge loop instead of once per stage.
    pub refetch_per_loop: bool,
}

/// Per-rank state of one level. Every per-vertex array has `n_local =
/// n_owned + n_ghost` entries; ghost slots serve as receive targets
/// (gather) and off-rank accumulators (scatter_add).
pub struct DistLevel {
    pub rm: RankMesh,
    pub trans: Translation,
    /// Ghost exchange schedule for per-vertex arrays.
    pub halo: Schedule,
    pub w: Vec<f64>,
    pub w0: Vec<f64>,
    pub p: Vec<f64>,
    pub lapl: Vec<f64>,
    pub sens: Vec<f64>,
    pub nu: Vec<f64>,
    pub diss: Vec<f64>,
    pub q: Vec<f64>,
    pub res: Vec<f64>,
    pub r0: Vec<f64>,
    pub acc: Vec<f64>,
    pub lam: Vec<f64>,
    pub dt: Vec<f64>,
    pub deg: Vec<f64>,
    pub forcing: Vec<f64>,
    pub w_ref: Vec<f64>,
    pub corr: Vec<f64>,
}

impl DistLevel {
    /// Build this rank's level: extract its `RankMesh`, localize the halo
    /// schedule (tag space `[tag, tag+2)`), and initialize freestream
    /// state. Must be called SPMD (every rank, same order).
    pub fn build(
        rank: &mut Rank,
        pm: &PartitionedMesh,
        cfg: &SolverConfig,
        tag: u32,
    ) -> DistLevel {
        let rm = pm.ranks[rank.id].clone();
        let trans = Translation::new(pm.owner.clone(), pm.owner_local.clone());
        let n_owned = rm.n_owned();
        let nl = rm.n_local();

        let slots: Vec<u32> = (0..rm.n_ghost() as u32).map(|k| n_owned as u32 + k).collect();
        let halo = localize(rank, &trans, &rm.ghost_globals, &slots, tag, CommClass::Halo);

        let fs = cfg.freestream();
        let mut w = vec![0.0; nl * NVAR];
        for i in 0..nl {
            w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
        }

        // Degrees: local partial counts summed across ranks once.
        let mut deg = degrees_from_edges(&rm.edges, nl);
        halo.scatter_add(rank, &mut deg, 1);

        DistLevel {
            trans,
            w0: w.clone(),
            w,
            p: vec![0.0; nl],
            lapl: vec![0.0; nl * NVAR],
            sens: vec![0.0; nl * 2],
            nu: vec![0.0; nl],
            diss: vec![0.0; nl * NVAR],
            q: vec![0.0; nl * NVAR],
            res: vec![0.0; nl * NVAR],
            r0: vec![0.0; nl * NVAR],
            acc: vec![0.0; nl * NVAR],
            lam: vec![0.0; nl],
            dt: vec![0.0; n_owned],
            deg,
            forcing: vec![0.0; n_owned * NVAR],
            w_ref: vec![0.0; n_owned * NVAR],
            corr: vec![0.0; nl * NVAR],
            halo,
            rm,
        }
    }

    pub fn n_owned(&self) -> usize {
        self.rm.n_owned()
    }

    pub fn n_local(&self) -> usize {
        self.rm.n_local()
    }

    /// Gather ghost copies of the flow variables.
    pub fn fetch_w(&mut self, rank: &mut Rank) {
        self.halo.gather(rank, &mut self.w, NVAR);
    }

    fn zero(v: &mut [f64]) {
        v.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Fresh dissipation into `diss` (owned entries complete after the
    /// scatter). Assumes ghost `w` is current.
    pub fn eval_dissipation(
        &mut self,
        rank: &mut Rank,
        cfg: &SolverConfig,
        is_coarse: bool,
        opts: &DistExecOptions,
        counter: &mut FlopCounter,
    ) {
        if opts.refetch_per_loop {
            self.fetch_w(rank);
        }
        Self::zero(&mut self.diss);
        if cfg.scheme == crate::config::Scheme::RoeUpwind {
            // One pass, no sensor: the Laplacian/ν ghost exchanges of the
            // JST path disappear entirely.
            crate::roe::roe_dissipation_edges(
                &self.rm.edges,
                &self.rm.edge_coef,
                &self.w,
                &self.p,
                cfg.gamma,
                &mut self.diss,
                counter,
            );
            self.halo.scatter_add(rank, &mut self.diss, NVAR);
            return;
        }
        if is_coarse && cfg.coarse_first_order {
            dissipation_first_order(
                &self.rm.edges,
                &self.rm.edge_coef,
                &self.w,
                &self.p,
                cfg.gamma,
                cfg.coarse_k2,
                &mut self.diss,
                counter,
            );
            self.halo.scatter_add(rank, &mut self.diss, NVAR);
            return;
        }
        Self::zero(&mut self.lapl);
        Self::zero(&mut self.sens);
        laplacian_pass(&self.rm.edges, &self.w, &self.p, &mut self.lapl, &mut self.sens, counter);
        self.halo.scatter_add(rank, &mut self.lapl, NVAR);
        self.halo.scatter_add(rank, &mut self.sens, 2);
        // ν for owned vertices, then ghost copies of L and ν for pass 2.
        sensor_from_accumulators(&self.sens[..self.n_owned() * 2], &mut self.nu[..self.rm.n_owned()]);
        self.halo.gather(rank, &mut self.lapl, NVAR);
        self.halo.gather(rank, &mut self.nu, 1);
        if opts.refetch_per_loop {
            self.fetch_w(rank);
        }
        dissipation_pass(
            &self.rm.edges,
            &self.rm.edge_coef,
            &self.w,
            &self.p,
            &self.lapl,
            &self.nu,
            cfg.gamma,
            cfg.k2,
            cfg.k4,
            &mut self.diss,
            counter,
        );
        self.halo.scatter_add(rank, &mut self.diss, NVAR);
    }

    /// Fresh convective residual into `q` (owned complete after scatter).
    pub fn eval_convection(
        &mut self,
        rank: &mut Rank,
        cfg: &SolverConfig,
        opts: &DistExecOptions,
        counter: &mut FlopCounter,
    ) {
        if opts.refetch_per_loop {
            self.fetch_w(rank);
        }
        Self::zero(&mut self.q);
        conv_residual_edges(&self.rm.edges, &self.rm.edge_coef, &self.w, &self.p, &mut self.q, counter);
        let fs = cfg.freestream();
        boundary_residual(&self.rm.bfaces, &self.w, &self.p, &fs, cfg.gamma, &mut self.q, counter);
        self.halo.scatter_add(rank, &mut self.q, NVAR);
    }

    /// `res = Q − D + P` on owned vertices.
    pub fn assemble_residual(&mut self, counter: &mut FlopCounter) {
        let n = self.n_owned();
        for i in 0..n * NVAR {
            self.res[i] = self.q[i] - self.diss[i] + self.forcing[i];
        }
        counter.add(n, FLOPS_ASSEMBLE_VERT);
    }

    /// Full fresh residual evaluation (for transfers/monitoring).
    pub fn eval_total_residual(
        &mut self,
        rank: &mut Rank,
        cfg: &SolverConfig,
        is_coarse: bool,
        opts: &DistExecOptions,
        counter: &mut FlopCounter,
    ) {
        self.fetch_w(rank);
        compute_pressures(cfg.gamma, &self.w, &mut self.p, counter);
        self.eval_dissipation(rank, cfg, is_coarse, opts, counter);
        self.eval_convection(rank, cfg, opts, counter);
        self.assemble_residual(counter);
    }

    /// Distributed residual averaging on the owned residuals.
    fn smooth(&mut self, rank: &mut Rank, cfg: &SolverConfig, counter: &mut FlopCounter) {
        if cfg.smooth_passes == 0 || cfg.smooth_eps == 0.0 {
            return;
        }
        let n = self.n_owned();
        self.r0[..n * NVAR].copy_from_slice(&self.res[..n * NVAR]);
        for _ in 0..cfg.smooth_passes {
            self.halo.gather(rank, &mut self.res, NVAR);
            Self::zero(&mut self.acc);
            smooth_accumulate(&self.rm.edges, &self.res, &mut self.acc, counter);
            self.halo.scatter_add(rank, &mut self.acc, NVAR);
            smooth_update(n, &self.r0, &self.acc, &self.deg, cfg.smooth_eps, &mut self.res, counter);
        }
    }

    /// One distributed five-stage time step (the §4.1 executor sequence).
    pub fn time_step(
        &mut self,
        rank: &mut Rank,
        cfg: &SolverConfig,
        is_coarse: bool,
        opts: &DistExecOptions,
        counter: &mut FlopCounter,
    ) {
        let n = self.n_owned();
        self.w0[..n * NVAR].copy_from_slice(&self.w[..n * NVAR]);
        for (stage, &alpha) in cfg.rk_alpha.iter().enumerate() {
            // One gather of the flow variables per stage (§4.3).
            self.fetch_w(rank);
            compute_pressures(cfg.gamma, &self.w, &mut self.p, counter);

            if stage == 0 {
                Self::zero(&mut self.lam);
                radii_edges(
                    &self.rm.edges,
                    &self.rm.edge_coef,
                    &self.w,
                    &self.p,
                    cfg.gamma,
                    &mut self.lam,
                    counter,
                );
                radii_bfaces(&self.rm.bfaces, &self.w, &self.p, cfg.gamma, &mut self.lam, counter);
                self.halo.scatter_add(rank, &mut self.lam, 1);
                local_dt(cfg.cfl, &self.rm.vol, &self.lam[..n], &mut self.dt, counter);
            }
            if stage <= 1 {
                self.eval_dissipation(rank, cfg, is_coarse, opts, counter);
            }
            self.eval_convection(rank, cfg, opts, counter);
            self.assemble_residual(counter);
            self.smooth(rank, cfg, counter);

            for i in 0..n {
                let scale = alpha * self.dt[i] / self.rm.vol[i];
                for c in 0..NVAR {
                    self.w[i * NVAR + c] = self.w0[i * NVAR + c] - scale * self.res[i * NVAR + c];
                }
            }
            counter.add(n, FLOPS_UPDATE_VERT);
        }
    }

    /// Squared density-residual sum and count for the global norm.
    pub fn residual_norm_parts(&self) -> (f64, f64) {
        let n = self.n_owned();
        let mut sum = 0.0;
        for i in 0..n {
            let r = self.res[i * NVAR] / self.rm.vol[i];
            sum += r * r;
        }
        (sum, n as f64)
    }
}
