//! Collective costs on the simulated Delta: the root-based reductions,
//! broadcast, and gather used for residual monitoring and partitioning,
//! all in their pooled in-place forms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eul3d_delta::run_spmd;

const NRANKS: usize = 8;
const LEN: usize = 256;
const ROUNDS: usize = 100;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);

    group.bench_function("all_reduce_sum_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let mut vals = vec![1.0 + r.id as f64; LEN];
                for _ in 0..ROUNDS {
                    r.all_reduce_sum_in_place(&mut vals);
                    // Keep magnitudes bounded across rounds.
                    vals.iter_mut().for_each(|x| *x /= NRANKS as f64);
                }
                black_box(vals[0])
            })
        });
    });

    group.bench_function("all_reduce_max_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let mut vals = vec![1.0 + r.id as f64; LEN];
                for _ in 0..ROUNDS {
                    r.all_reduce_max_in_place(&mut vals);
                }
                black_box(vals[0])
            })
        });
    });

    group.bench_function("broadcast_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let mut vals = vec![r.id as f64; LEN];
                for i in 0..ROUNDS {
                    r.broadcast_in_place(i % NRANKS, &mut vals);
                }
                black_box(vals[0])
            })
        });
    });

    group.bench_function("gather_to_root_100_rounds", |b| {
        b.iter(|| {
            run_spmd(NRANKS, |r| {
                let vals = vec![r.id as f64; LEN];
                let mut out = Vec::new();
                for i in 0..ROUNDS {
                    r.gather_to_root_into(i % NRANKS, &vals, &mut out);
                }
                black_box(out.first().copied())
            })
        });
    });
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
