//! **Agglomeration multigrid** — coarse levels built by fusing dual
//! control volumes of the fine grid instead of generating independent
//! coarse meshes (the approach Mavriplis' post-1992 work adopted, and the
//! natural answer to the paper's §2.4 complaint that coarse-mesh
//! generation and inter-grid search are sequential preprocessing).
//!
//! A coarse "grid" here is not a mesh at all: it is a set of agglomerated
//! cells with
//! * **edges** between touching agglomerates whose coefficients are the
//!   *sums* of the fine dual-face vectors they swallow, and
//! * **pseudo boundary faces** accumulating each cell's share of the fine
//!   boundary.
//!
//! Because everything is summed from fine-grid quantities, the discrete
//! closure identity (Σ ±η + Σ S = 0 per cell) holds **exactly** by
//! construction — freestream is preserved on every agglomerated level —
//! and the whole construction is a cheap local pass (no spectral solves,
//! no point-location search). Transfers are trivially local: residual
//! restriction sums over members, state restriction volume-averages,
//! prolongation injects (piecewise constant) followed by an optional
//! Jacobi smoothing of the corrections on the fine grid.

use std::collections::HashMap;

use eul3d_mesh::{BcKind, BoundaryFace, TetMesh, Vec3};

use crate::config::SolverConfig;
use crate::counters::{PhaseCounters, FLOPS_TRANSFER_VERT};
use crate::executor::{count_vertex_loop, Phase, SerialExecutor};
use crate::gas::NVAR;
use crate::level::{eval_total_residual, time_step, LevelState, SolverGrid};
use crate::multigrid::Strategy;
use crate::smooth::smooth_residual_serial_soa;
use crate::soa::SoaState;

/// One agglomerated coarse level.
#[derive(Debug, Clone)]
pub struct AggloLevel {
    /// Cells on this level.
    pub n: usize,
    /// Fine entity (vertex or cell of the level above) → cell here.
    pub assign: Vec<u32>,
    pub edges: Vec<[u32; 2]>,
    pub edge_coef: Vec<Vec3>,
    pub bfaces: Vec<BoundaryFace>,
    pub vol: Vec<f64>,
}

impl SolverGrid for AggloLevel {
    fn grid_edges(&self) -> &[[u32; 2]] {
        &self.edges
    }
    fn grid_edge_coef(&self) -> &[Vec3] {
        &self.edge_coef
    }
    fn grid_bfaces(&self) -> &[BoundaryFace] {
        &self.bfaces
    }
    fn grid_vol(&self) -> &[f64] {
        &self.vol
    }
}

/// Greedy seed agglomeration of any [`SolverGrid`]: scan entities in
/// order; each unassigned entity seeds a cell that swallows its
/// unassigned neighbours (the classic Lallemand/Mavriplis heuristic,
/// coarsening tet meshes by roughly the vertex degree).
pub fn agglomerate<G: SolverGrid + ?Sized>(fine: &G) -> AggloLevel {
    let n_fine = fine.grid_nverts();
    let edges = fine.grid_edges();

    // Fine adjacency (CSR) for the greedy sweep.
    let mut counts = vec![0u32; n_fine + 1];
    for &[a, b] in edges {
        counts[a as usize + 1] += 1;
        counts[b as usize + 1] += 1;
    }
    for i in 0..n_fine {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut nbrs = vec![0u32; offsets[n_fine] as usize];
    let mut cursor = offsets.clone();
    for &[a, b] in edges {
        nbrs[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        nbrs[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }

    let mut assign = vec![u32::MAX; n_fine];
    let mut ncells = 0u32;
    for v in 0..n_fine {
        if assign[v] != u32::MAX {
            continue;
        }
        assign[v] = ncells;
        for &u in &nbrs[offsets[v] as usize..offsets[v + 1] as usize] {
            if assign[u as usize] == u32::MAX {
                assign[u as usize] = ncells;
            }
        }
        ncells += 1;
    }
    let n = ncells as usize;

    // Coarse edge coefficients: sums of swallowed fine dual faces.
    let mut coef_map: HashMap<(u32, u32), Vec3> = HashMap::new();
    for (e, &[a, b]) in edges.iter().enumerate() {
        let (ca, cb) = (assign[a as usize], assign[b as usize]);
        if ca == cb {
            continue;
        }
        let (key, sign) = if ca < cb {
            ((ca, cb), 1.0)
        } else {
            ((cb, ca), -1.0)
        };
        *coef_map.entry(key).or_insert(Vec3::ZERO) += fine.grid_edge_coef()[e] * sign;
    }
    let mut coarse_edges: Vec<((u32, u32), Vec3)> = coef_map.into_iter().collect();
    coarse_edges.sort_by_key(|&((a, b), _)| (a, b));
    let (edges_out, coef_out): (Vec<[u32; 2]>, Vec<Vec3>) = coarse_edges
        .into_iter()
        .map(|((a, b), c)| ([a, b], c))
        .unzip();

    // Volumes.
    let mut vol = vec![0.0; n];
    for (v, &a) in assign.iter().enumerate() {
        vol[a as usize] += fine.grid_vol()[v];
    }

    // Pseudo boundary faces: each fine face contributes a third of its
    // normal per vertex to that vertex's cell (so the per-cell closure
    // identity is the exact sum of the fine identities).
    let mut bmap: HashMap<(u32, BcKind), Vec3> = HashMap::new();
    for f in fine.grid_bfaces() {
        let third = f.normal / 3.0;
        for &v in &f.v {
            *bmap
                .entry((assign[v as usize], f.kind))
                .or_insert(Vec3::ZERO) += third;
        }
    }
    let mut bfaces: Vec<BoundaryFace> = bmap
        .into_iter()
        .map(|((c, kind), normal)| BoundaryFace {
            v: [c, c, c],
            normal,
            kind,
        })
        .collect();
    bfaces.sort_by_key(|f| (f.v[0], f.kind as u8));

    AggloLevel {
        n,
        assign,
        edges: edges_out,
        edge_coef: coef_out,
        bfaces,
        vol,
    }
}

/// FAS multigrid on agglomerated levels: the fine grid is a real mesh,
/// every coarse level an [`AggloLevel`] built by repeated agglomeration.
pub struct AggloMultigrid {
    pub mesh: TetMesh,
    pub coarse: Vec<AggloLevel>,
    pub cfg: SolverConfig,
    pub strategy: Strategy,
    /// `states[0]` is the fine grid, `states[l]` lives on `coarse[l-1]`.
    pub states: Vec<LevelState>,
    pub counter: PhaseCounters,
    /// Jacobi sweeps applied to prolonged corrections (piecewise-constant
    /// injection is rough; 1–2 sweeps recover most of the smoothness).
    pub correction_smoothing: usize,
}

impl AggloMultigrid {
    pub fn new(
        mesh: TetMesh,
        cfg: SolverConfig,
        strategy: Strategy,
        levels: usize,
    ) -> AggloMultigrid {
        assert!(levels >= 1);
        let mut coarse: Vec<AggloLevel> = Vec::new();
        for _ in 1..levels {
            let lvl = match coarse.last() {
                None => agglomerate(&mesh),
                Some(prev) => agglomerate(prev),
            };
            // Stop coarsening once the level is too small to help or no
            // longer shrinks meaningfully: a handful of giant cells has a
            // badly-conditioned time step and adds nothing.
            if lvl.n < 16 || lvl.n + 2 >= lvl.assign.len() {
                break;
            }
            coarse.push(lvl);
        }
        let mut states = vec![LevelState::new(&mesh, &cfg)];
        states.extend(coarse.iter().map(|c| LevelState::new(c, &cfg)));
        AggloMultigrid {
            mesh,
            coarse,
            cfg,
            strategy,
            states,
            counter: PhaseCounters::default(),
            correction_smoothing: 2,
        }
    }

    pub fn nlevels(&self) -> usize {
        self.states.len()
    }

    /// Sizes of all levels, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        std::iter::once(self.mesh.nverts())
            .chain(self.coarse.iter().map(|c| c.n))
            .collect()
    }

    pub fn state(&self) -> &SoaState {
        &self.states[0].w
    }

    pub fn cycle(&mut self) -> f64 {
        match self.strategy {
            Strategy::SingleGrid => self.step(0),
            _ => self.recurse(0, self.strategy.gamma()),
        }
        self.states[0].density_residual_norm(&self.mesh.vol)
    }

    pub fn solve(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.cycle()).collect()
    }

    fn step(&mut self, l: usize) {
        if l == 0 {
            time_step(
                &self.mesh,
                &mut self.states[0],
                &self.cfg,
                false,
                &mut SerialExecutor,
                &mut self.counter,
            );
        } else {
            time_step(
                &self.coarse[l - 1],
                &mut self.states[l],
                &self.cfg,
                true,
                &mut SerialExecutor,
                &mut self.counter,
            );
        }
    }

    fn recurse(&mut self, l: usize, gamma: usize) {
        self.step(l);
        if l + 1 == self.nlevels() {
            return;
        }
        self.transfer_down(l);
        let visits = if l + 2 == self.nlevels() { 1 } else { gamma };
        for _ in 0..visits {
            self.recurse(l + 1, gamma);
        }
        self.prolong_up(l);
    }

    fn transfer_down(&mut self, l: usize) {
        if l == 0 {
            eval_total_residual(
                &self.mesh,
                &mut self.states[0],
                &self.cfg,
                false,
                &mut SerialExecutor,
                &mut self.counter,
            );
        } else {
            eval_total_residual(
                &self.coarse[l - 1],
                &mut self.states[l],
                &self.cfg,
                true,
                &mut SerialExecutor,
                &mut self.counter,
            );
        }
        let agg = &self.coarse[l]; // maps level l entities -> level l+1 cells
        let (fine_states, coarse_states) = self.states.split_at_mut(l + 1);
        let fine = &mut fine_states[l];
        let coarse = &mut coarse_states[0];

        // State: volume-weighted average over members.
        coarse.w.fill(0.0);
        let fine_vol: &[f64] = if l == 0 {
            &self.mesh.vol
        } else {
            &self.coarse[l - 1].vol
        };
        for (v, &c) in agg.assign.iter().enumerate() {
            let wgt = fine_vol[v];
            for k in 0..NVAR {
                coarse.w.add(c as usize, k, wgt * fine.w.get(v, k));
            }
        }
        for (c, &cv) in agg.vol.iter().enumerate() {
            for k in 0..NVAR {
                let x = coarse.w.get(c, k);
                coarse.w.set(c, k, x / cv);
            }
        }
        coarse.w_ref.copy_from(&coarse.w);
        count_vertex_loop(
            &mut self.counter,
            Phase::Transfer,
            fine.n,
            FLOPS_TRANSFER_VERT,
        );

        // Residuals: conservative member sum.
        coarse.corr.fill(0.0);
        for (v, &c) in agg.assign.iter().enumerate() {
            for k in 0..NVAR {
                coarse.corr.add(c as usize, k, fine.res.get(v, k));
            }
        }

        // Forcing P = R' − R(w').
        coarse.forcing.fill(0.0);
        eval_total_residual(
            agg,
            coarse,
            &self.cfg,
            true,
            &mut SerialExecutor,
            &mut self.counter,
        );
        for ((f, &c), &r) in coarse
            .forcing
            .flat_mut()
            .iter_mut()
            .zip(coarse.corr.flat())
            .zip(coarse.res.flat())
        {
            *f = c - r;
        }
    }

    fn prolong_up(&mut self, l: usize) {
        let agg = &self.coarse[l];
        let (fine_states, coarse_states) = self.states.split_at_mut(l + 1);
        let fine = &mut fine_states[l];
        let coarse = &mut coarse_states[0];
        for ((d, &a), &b) in coarse
            .corr
            .flat_mut()
            .iter_mut()
            .zip(coarse.w.flat())
            .zip(coarse.w_ref.flat())
        {
            *d = a - b;
        }
        // Piecewise-constant injection...
        for (v, &c) in agg.assign.iter().enumerate() {
            for k in 0..NVAR {
                fine.corr.set(v, k, coarse.corr.get(c as usize, k));
            }
        }
        // ...then smooth the correction on the receiving level.
        if self.correction_smoothing > 0 {
            let fine_edges: &[[u32; 2]] = if l == 0 {
                &self.mesh.edges
            } else {
                &self.coarse[l - 1].edges
            };
            smooth_residual_serial_soa(
                fine_edges,
                fine.n,
                &fine.deg,
                0.5,
                self.correction_smoothing,
                &mut fine.corr,
                &mut fine.acc,
                self.counter.phase(Phase::Transfer),
            );
        }
        for (w, &c) in fine.w.flat_mut().iter_mut().zip(fine.corr.flat()) {
            *w += c;
        }
        count_vertex_loop(
            &mut self.counter,
            Phase::Transfer,
            fine.n,
            FLOPS_TRANSFER_VERT,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_mesh::dual::closure_residual;
    use eul3d_mesh::gen::{bump_channel, unit_box, BumpSpec};

    #[test]
    fn agglomeration_covers_and_shrinks() {
        let m = unit_box(5, 0.15, 3);
        let a = agglomerate(&m);
        assert!(a.assign.iter().all(|&c| (c as usize) < a.n));
        let ratio = m.nverts() as f64 / a.n as f64;
        assert!(
            (3.0..20.0).contains(&ratio),
            "agglomeration ratio {ratio} out of the expected band"
        );
        // Conservation of volume.
        let vf: f64 = m.vol.iter().sum();
        let vc: f64 = a.vol.iter().sum();
        assert!((vf - vc).abs() < 1e-12);
    }

    #[test]
    fn agglomerated_closure_is_exact() {
        // Σ ±η + Σ S = 0 per cell, inherited exactly from the fine grid.
        let m = bump_channel(&BumpSpec {
            nx: 10,
            ny: 4,
            nz: 3,
            ..BumpSpec::default()
        });
        let a = agglomerate(&m);
        let bf: Vec<_> = a
            .bfaces
            .iter()
            .map(|f| (f.normal / 3.0 * 3.0, [f.v[0], f.v[0], f.v[0]]))
            .collect();
        // closure_residual adds normal/3 per listed vertex; our pseudo
        // faces list the cell three times, so pass the normal as-is.
        let res = closure_residual(a.n, &a.edges, &a.edge_coef, &bf);
        for r in res {
            assert!(
                r.norm() < 1e-12,
                "agglomerated dual surface must close: {r:?}"
            );
        }
    }

    #[test]
    fn freestream_preserved_on_agglomerated_level() {
        let m = unit_box(4, 0.2, 7);
        let a = agglomerate(&m);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&a, &cfg);
        let before = st.w.clone();
        let mut counter = PhaseCounters::default();
        time_step(&a, &mut st, &cfg, true, &mut SerialExecutor, &mut counter);
        for (x, y) in st.w.flat().iter().zip(before.flat()) {
            assert!(
                (x - y).abs() < 1e-11,
                "freestream drift on agglomerated level"
            );
        }
    }

    #[test]
    fn repeated_agglomeration_builds_a_hierarchy() {
        let m = bump_channel(&BumpSpec {
            nx: 16,
            ny: 6,
            nz: 4,
            ..BumpSpec::default()
        });
        let mg = AggloMultigrid::new(m, SolverConfig::default(), Strategy::WCycle, 4);
        let sizes = mg.level_sizes();
        assert!(sizes.len() >= 3, "hierarchy too shallow: {sizes:?}");
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
        }
    }

    #[test]
    fn agglomeration_multigrid_beats_single_grid() {
        let spec = BumpSpec {
            nx: 16,
            ny: 6,
            nz: 4,
            jitter: 0.12,
            ..BumpSpec::default()
        };
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let run = |levels: usize| {
            let mut mg = AggloMultigrid::new(bump_channel(&spec), cfg, Strategy::WCycle, levels);
            let h = mg.solve(40);
            (h[0] / h.last().unwrap()).log10()
        };
        let sg = run(1);
        let amg = run(4);
        assert!(
            amg > sg + 0.4,
            "agglomeration MG ({amg:.2} orders) must beat single grid ({sg:.2})"
        );
    }

    #[test]
    fn agglomeration_multigrid_freestream_fixed_point() {
        let m = unit_box(4, 0.2, 5);
        let mut mg = AggloMultigrid::new(m, SolverConfig::default(), Strategy::VCycle, 3);
        let r = mg.cycle();
        assert!(
            r < 1e-11,
            "freestream residual through a full agglo cycle: {r:.3e}"
        );
    }
}
