//! Typed errors for the simulated machine: conditions a caller can
//! provoke with bad input (as opposed to protocol violations inside the
//! simulator, which stay hard panics so they are never papered over).

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A `--faults` specification failed to parse or referenced an
    /// impossible rank/stream.
    BadFaultSpec { spec: String, reason: String },
    /// A machine with zero ranks was requested.
    NoRanks,
    /// More ranks (or hybrid threads) than the machine supports were
    /// requested — rank ids are carried as `u32` in trace events and
    /// messages, and the cap keeps every conversion provably lossless.
    TooManyRanks { requested: usize, max: usize },
    /// A shared-memory halo window stalled past its wedge timeout: the
    /// publish/consume sequence on one directed stream is mismatched
    /// (a protocol bug, or a peer that died outside the fault model).
    /// Carries the full stream and epoch context so the wedge is
    /// attributable to one `(src, dst, tag)` exchange.
    WindowWedged {
        /// Stream source rank.
        src: usize,
        /// Stream destination rank.
        dst: usize,
        /// Stream tag.
        tag: u32,
        /// Which side stalled (`"publisher"` waits on the consumer,
        /// `"consumer"` waits on the publisher).
        side: &'static str,
        /// The epoch the stalled side was trying to advance past.
        epoch: u64,
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BadFaultSpec { spec, reason } => {
                write!(f, "bad fault spec '{spec}': {reason}")
            }
            DeltaError::NoRanks => write!(f, "machine needs at least one rank"),
            DeltaError::TooManyRanks { requested, max } => {
                write!(f, "{requested} ranks requested; the machine caps at {max}")
            }
            DeltaError::WindowWedged {
                src,
                dst,
                tag,
                side,
                epoch,
                timeout_ms,
            } => write!(
                f,
                "shared-memory window {src}->{dst} tag {tag} wedged: {side} stalled at \
                 epoch {epoch} for {timeout_ms} ms (mismatched publish/consume sequence)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}
