//! Point location by tetrahedron-adjacency walking — the "efficient graph
//! traversal search algorithm" of §2.4, used to build the inter-grid
//! interpolation operators in a preprocessing pass.

use crate::mesh::TetMesh;
use crate::topology::tet_neighbors;
use crate::vec3::{tet_volume, Vec3};

/// Barycentric coordinates of `p` in tet `t` (sum to 1; all non-negative
/// iff `p` is inside).
pub fn barycentric(mesh: &TetMesh, t: usize, p: Vec3) -> [f64; 4] {
    let tv = mesh.tets[t];
    let a = mesh.coords[tv[0] as usize];
    let b = mesh.coords[tv[1] as usize];
    let c = mesh.coords[tv[2] as usize];
    let d = mesh.coords[tv[3] as usize];
    let v = tet_volume(a, b, c, d);
    [
        tet_volume(p, b, c, d) / v,
        tet_volume(a, p, c, d) / v,
        tet_volume(a, b, p, d) / v,
        tet_volume(a, b, c, p) / v,
    ]
}

/// A reusable point locator over one mesh. Construction builds the
/// face-adjacency graph once; queries walk from a seed tet toward the
/// target, which is `O(path length)` — near-constant when queries have
/// spatial locality (as successive mesh vertices do).
pub struct Locator<'m> {
    mesh: &'m TetMesh,
    nbrs: Vec<[u32; 4]>,
    /// Tet centroids, for the brute-force fallback.
    centroids: Vec<Vec3>,
}

/// Result of a locate query.
#[derive(Debug, Clone, Copy)]
pub struct Located {
    /// Containing (or closest-found) tet index.
    pub tet: usize,
    /// Barycentric weights in that tet, clamped to `[0, 1]` and
    /// renormalized when the point was (slightly) outside the mesh.
    pub bary: [f64; 4],
    /// True if the point was strictly inside (no clamping applied).
    pub inside: bool,
}

impl<'m> Locator<'m> {
    pub fn new(mesh: &'m TetMesh) -> Self {
        let nbrs = tet_neighbors(&mesh.tets);
        let centroids = mesh
            .tets
            .iter()
            .map(|t| {
                (mesh.coords[t[0] as usize]
                    + mesh.coords[t[1] as usize]
                    + mesh.coords[t[2] as usize]
                    + mesh.coords[t[3] as usize])
                    / 4.0
            })
            .collect();
        Locator {
            mesh,
            nbrs,
            centroids,
        }
    }

    /// Walk from `seed` toward `p`: while some barycentric coordinate is
    /// negative, step across the face opposite the most-negative one.
    /// Bounded by the tet count; on failure (point outside the mesh, or a
    /// rare cycle on a boundary) falls back to the nearest-centroid tet
    /// with clamped weights.
    pub fn locate(&self, p: Vec3, seed: usize) -> Located {
        const EPS: f64 = -1e-12;
        let mut t = seed.min(self.mesh.ntets() - 1);
        let mut steps = 0usize;
        let max_steps = self.mesh.ntets();
        loop {
            let bary = barycentric(self.mesh, t, p);
            let mut worst = 0;
            for k in 1..4 {
                if bary[k] < bary[worst] {
                    worst = k;
                }
            }
            let min = bary[worst];
            if min >= EPS {
                return Located {
                    tet: t,
                    bary: clamp_bary(bary),
                    inside: min >= 0.0,
                };
            }
            // The face opposite local vertex `worst` leads toward p.
            let next = self.nbrs[t][worst];
            steps += 1;
            if next == u32::MAX || steps > max_steps {
                return self.fallback(p);
            }
            t = next as usize;
        }
    }

    /// Brute-force fallback: nearest centroid, clamped weights.
    fn fallback(&self, p: Vec3) -> Located {
        let best = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, (c - p).norm_sq()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map_or_else(|| unreachable!("mesh has no tets"), |(i, _)| i);
        let bary = barycentric(self.mesh, best, p);
        Located {
            tet: best,
            bary: clamp_bary(bary),
            inside: false,
        }
    }
}

/// Clamp barycentric weights to `[0, 1]` and renormalize to sum 1.
fn clamp_bary(b: [f64; 4]) -> [f64; 4] {
    let mut c = b.map(|w| w.clamp(0.0, 1.0));
    let s: f64 = c.iter().sum();
    if s > 0.0 {
        for w in &mut c {
            *w /= s;
        }
    } else {
        c = [0.25; 4];
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::unit_box;

    #[test]
    fn barycentric_at_vertices() {
        let m = unit_box(2, 0.0, 0);
        let t = 0usize;
        for local in 0..4 {
            let p = m.coords[m.tets[t][local] as usize];
            let b = barycentric(&m, t, p);
            for (i, w) in b.iter().enumerate() {
                let expect = if i == local { 1.0 } else { 0.0 };
                assert!((w - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn locate_interior_points() {
        let m = unit_box(4, 0.15, 5);
        let loc = Locator::new(&m);
        for (i, pt) in [
            Vec3::new(0.3, 0.4, 0.5),
            Vec3::new(0.9, 0.1, 0.2),
            Vec3::new(0.01, 0.99, 0.5),
        ]
        .iter()
        .enumerate()
        {
            let r = loc.locate(*pt, i * 7 % m.ntets());
            assert!(r.inside, "interior point must be found inside");
            // Reconstruct the point from the weights.
            let t = m.tets[r.tet];
            let mut q = Vec3::ZERO;
            for (&v, &bk) in t.iter().zip(&r.bary) {
                q += m.coords[v as usize] * bk;
            }
            assert!((q - *pt).norm() < 1e-10);
        }
    }

    #[test]
    fn locate_outside_point_clamps() {
        let m = unit_box(3, 0.0, 0);
        let loc = Locator::new(&m);
        let r = loc.locate(Vec3::new(2.0, 0.5, 0.5), 0);
        assert!(!r.inside);
        let s: f64 = r.bary.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(r.bary.iter().all(|&w| (0.0..=1.0).contains(&w)));
    }

    #[test]
    fn locate_every_lattice_vertex_of_other_mesh() {
        let a = unit_box(5, 0.2, 1);
        let b = unit_box(3, 0.2, 2);
        let loc = Locator::new(&b);
        let mut seed = 0usize;
        for &p in &a.coords {
            let r = loc.locate(p, seed);
            seed = r.tet;
            let t = b.tets[r.tet];
            let mut q = Vec3::ZERO;
            for (&v, &bk) in t.iter().zip(&r.bary) {
                q += b.coords[v as usize] * bk;
            }
            // Both meshes fill the same unit cube, so every vertex must be
            // reproduced (up to clamping at the very boundary).
            assert!((q - p).norm() < 1e-9, "vertex {p:?} badly located");
        }
    }
}
