//! The SPMD driver: spawns one thread per rank, wires the mailboxes, runs
//! the rank body, and collects results and counters.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier};

use crossbeam::channel::unbounded;

use crate::error::DeltaError;
use crate::msg::RankCounters;
use crate::rank::Rank;

/// Most ranks (or hybrid threads) one machine supports. Rank ids travel
/// as `u32` in messages and trace events; capping well below `u32::MAX`
/// keeps every narrowing conversion provably lossless, and 2^20 ranks is
/// three orders of magnitude past the 512-node Delta.
pub const MAX_RANKS: usize = 1 << 20;

/// Validate a requested rank/thread count against the machine's limits.
pub fn check_nranks(nranks: usize) -> Result<(), DeltaError> {
    if nranks == 0 {
        return Err(DeltaError::NoRanks);
    }
    if nranks > MAX_RANKS {
        return Err(DeltaError::TooManyRanks {
            requested: nranks,
            max: MAX_RANKS,
        });
    }
    Ok(())
}

/// Result of an SPMD run: per-rank return values and accounting.
#[derive(Debug)]
pub struct MachineRun<T> {
    pub results: Vec<T>,
    pub counters: Vec<RankCounters>,
}

impl<T> MachineRun<T> {
    /// Machine-total flops.
    pub fn total_flops(&self) -> f64 {
        self.counters.iter().map(|c| c.flops).sum()
    }
}

/// Run `body` on `nranks` simulated ranks and wait for completion.
///
/// Hundreds of ranks are fine on a single-core host: threads block on
/// channel receives, so the scheduler interleaves them; determinism comes
/// from fully-addressed receives, not timing. Stacks default to 4 MiB —
/// rank bodies keep their big arrays on the heap.
pub fn run_spmd<T, F>(nranks: usize, body: F) -> MachineRun<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    if let Err(e) = check_nranks(nranks) {
        panic!("run_spmd: {e}");
    }
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..nranks).map(|_| unbounded()).unzip();
    let barrier = Arc::new(Barrier::new(nranks));
    // Every rank gets a handle on every mailbox (receivers clone), so a
    // survivor can adopt a dead rank's channel during fault recovery —
    // and channels stay connected even after a rank's thread exits.
    let rxs_all = Arc::new(rxs.clone());
    let body = &body;

    let mut slots: Vec<Option<(T, RankCounters)>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (id, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            let barrier = barrier.clone();
            let rxs_all = rxs_all.clone();
            let h = std::thread::Builder::new()
                .name(format!("delta-rank-{id}"))
                .stack_size(4 << 20)
                .spawn_scoped(scope, move || {
                    let mut rank = Rank::new(id, nranks, rx, txs, barrier, rxs_all);
                    // A panicking rank poisons its peers so ranks blocked
                    // in a receive abort instead of deadlocking the scope
                    // join; the original panic is then re-raised.
                    match catch_unwind(AssertUnwindSafe(|| body(&mut rank))) {
                        Ok(out) => (out, rank.counters),
                        Err(e) => {
                            rank.poison_peers();
                            resume_unwind(e);
                        }
                    }
                })
                .unwrap_or_else(|e| unreachable!("spawn rank thread: {e}"));
            handles.push(h);
        }
        let mut panics = Vec::new();
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => slots[id] = Some(v),
                // Join every thread before re-raising, so no rank outlives
                // the scope.
                Err(e) => panics.push(e),
            }
        }
        if !panics.is_empty() {
            // Re-raise the originating panic, not a poison casualty —
            // casualties only say "some peer died".
            let k = panics
                .iter()
                .position(|e| !is_poison_casualty(e.as_ref()))
                .unwrap_or(0);
            resume_unwind(panics.swap_remove(k));
        }
    });

    let (results, counters) = slots.into_iter().map(Option::unwrap).unzip();
    MachineRun { results, counters }
}

/// True if a thread's panic payload is the secondary "peer died" panic
/// raised by [`Rank`]'s poison handling rather than an original failure.
fn is_poison_casualty(e: &(dyn std::any::Any + Send)) -> bool {
    let msg = e
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| e.downcast_ref::<&'static str>().copied());
    msg.is_some_and(|m| m.contains("aborting blocked receive"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::CommClass;

    #[test]
    fn single_rank_runs() {
        let run = run_spmd(1, |r| r.id * 10);
        assert_eq!(run.results, vec![0]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its id to the next; receives from the previous.
        let n = 8;
        let run = run_spmd(n, |r| {
            let next = (r.id + 1) % r.nranks;
            let prev = (r.id + r.nranks - 1) % r.nranks;
            r.send_u32(next, 1, vec![r.id as u32], CommClass::Halo);
            let got = r.recv_u32(prev, 1);
            got[0]
        });
        for (id, &got) in run.results.iter().enumerate() {
            assert_eq!(got as usize, (id + n - 1) % n);
        }
        // Each rank sent exactly one 4-byte message.
        for c in &run.counters {
            assert_eq!(c.total_messages(), 1);
            assert_eq!(c.total_bytes(), 4);
        }
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let run = run_spmd(2, |r| {
            if r.id == 0 {
                r.send_f64(1, 2, vec![2.0], CommClass::Halo);
                r.send_f64(1, 1, vec![1.0], CommClass::Halo);
                0.0
            } else {
                let first = r.recv_f64(0, 1);
                let second = r.recv_f64(0, 2);
                first[0] * 10.0 + second[0]
            }
        });
        assert_eq!(run.results[1], 12.0);
    }

    #[test]
    fn all_reduce_sum_is_correct_and_deterministic() {
        let run1 = run_spmd(16, |r| r.all_reduce_sum(&[r.id as f64, 1.0]));
        let expect: f64 = (0..16).sum::<usize>() as f64;
        for v in &run1.results {
            assert_eq!(v[0], expect);
            assert_eq!(v[1], 16.0);
        }
        let run2 = run_spmd(16, |r| r.all_reduce_sum(&[r.id as f64, 1.0]));
        assert_eq!(run1.results, run2.results, "bitwise deterministic");
    }

    #[test]
    fn all_reduce_max() {
        let run = run_spmd(7, |r| r.all_reduce_max(&[-(r.id as f64), r.id as f64]));
        for v in &run.results {
            assert_eq!(v[0], 0.0);
            assert_eq!(v[1], 6.0);
        }
    }

    #[test]
    fn barriers_do_not_deadlock() {
        let run = run_spmd(32, |r| {
            for _ in 0..10 {
                r.barrier();
            }
            r.counters.syncs
        });
        assert!(run.results.iter().all(|&s| s == 10));
    }

    #[test]
    fn many_ranks_on_one_core() {
        // 256 ranks exchanging with neighbours must complete quickly.
        let run = run_spmd(256, |r| {
            let next = (r.id + 1) % r.nranks;
            let prev = (r.id + r.nranks - 1) % r.nranks;
            r.send_f64(next, 7, vec![r.id as f64; 100], CommClass::Halo);
            let got = r.recv_f64(prev, 7);
            got.iter().sum::<f64>()
        });
        assert_eq!(run.results.len(), 256);
        assert_eq!(run.counters[3].total_bytes(), 800);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let run = run_spmd(9, |r| {
            let got = r.broadcast(3, &[r.id as f64 * 0.0 + 42.0, r.id as f64]);
            (got[0], got[1])
        });
        for &(a, b) in &run.results {
            assert_eq!(a, 42.0);
            assert_eq!(b, 3.0, "payload must come from the root");
        }
    }

    #[test]
    fn gather_to_root_concatenates_in_rank_order() {
        let run = run_spmd(5, |r| r.gather_to_root(2, &[r.id as f64, -(r.id as f64)]));
        assert_eq!(
            run.results[2],
            vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0]
        );
        assert!(run.results[0].is_empty());
    }

    #[test]
    fn hop_accounting_uses_manhattan_distance() {
        // 16 ranks => 4x4 mesh. Rank 0 at (0,0) sends to rank 15 at (3,3):
        // 6 hops; to rank 1 at (0,1): 1 hop.
        let run = run_spmd(16, |r| {
            if r.id == 0 {
                r.send_f64(15, 1, vec![0.0], CommClass::Halo);
                r.send_f64(1, 2, vec![0.0], CommClass::Halo);
            }
            if r.id == 15 {
                r.recv_f64(0, 1);
            }
            if r.id == 1 {
                r.recv_f64(0, 2);
            }
            (r.hops_to(15), r.hops_to(1))
        });
        assert_eq!(run.results[0], (6, 1));
        assert_eq!(run.counters[0].hops, 7);
    }

    #[test]
    fn mesh_dims_is_an_exact_nearly_square_factorization() {
        use crate::rank::mesh_dims;
        // Property sweep: for every n the grid is exact (rows*cols == n,
        // so every rank id has a valid coordinate — no holes), rows <=
        // cols, and rows is the largest divisor not exceeding sqrt(n).
        for n in 1..=1000usize {
            let (rows, cols) = mesh_dims(n);
            assert_eq!(rows * cols, n, "n={n}: grid must be exact");
            assert!(rows <= cols, "n={n}: {rows}x{cols} not row-minor");
            for f in rows + 1..=n {
                if f * f > n {
                    break;
                }
                assert_ne!(n % f, 0, "n={n}: {f} is a larger near-square divisor");
            }
        }
        // The regression that motivated the fix: 8 ranks used to land on
        // a ragged 3x3 grid with a hole; now it is an exact 2x4.
        assert_eq!(mesh_dims(8), (2, 4));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(512), (16, 32)); // the Delta itself
    }

    #[test]
    fn hop_distances_are_symmetric_and_zero_on_self() {
        for n in [2usize, 3, 5, 6, 8, 12, 17, 24] {
            let run = run_spmd(n, |r| {
                (0..r.nranks).map(|d| r.hops_to(d)).collect::<Vec<_>>()
            });
            for a in 0..n {
                assert_eq!(run.results[a][a], 0, "n={n}: self-distance");
                for b in 0..n {
                    assert_eq!(
                        run.results[a][b], run.results[b][a],
                        "n={n}: hops({a},{b}) asymmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn nranks_cap_is_enforced() {
        assert_eq!(check_nranks(0), Err(crate::error::DeltaError::NoRanks));
        assert!(check_nranks(1).is_ok());
        assert!(check_nranks(MAX_RANKS).is_ok());
        assert_eq!(
            check_nranks(MAX_RANKS + 1),
            Err(crate::error::DeltaError::TooManyRanks {
                requested: MAX_RANKS + 1,
                max: MAX_RANKS
            })
        );
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let run = run_spmd(4, |r| {
            let a = r.all_reduce_sum(&[1.0])[0];
            let b = r.all_reduce_sum(&[2.0])[0];
            let c = r.all_reduce_max(&[r.id as f64])[0];
            (a, b, c)
        });
        for &(a, b, c) in &run.results {
            assert_eq!(a, 4.0);
            assert_eq!(b, 8.0);
            assert_eq!(c, 3.0);
        }
    }

    #[test]
    fn collectives_are_allocation_free_after_warm_up() {
        let run = run_spmd(8, |r| {
            let mut v = [r.id as f64, 1.0, 2.0];
            let mut g = Vec::new();
            // Warm the pools (and g's capacity).
            for _ in 0..3 {
                r.all_reduce_sum_in_place(&mut v);
                r.all_reduce_max_in_place(&mut v);
                r.broadcast_in_place(0, &mut v);
                r.gather_to_root_into(0, &v, &mut g);
            }
            let warm = r.counters.comm_allocs;
            for _ in 0..10 {
                r.all_reduce_sum_in_place(&mut v);
                r.all_reduce_max_in_place(&mut v);
                r.broadcast_in_place(0, &mut v);
                r.gather_to_root_into(0, &v, &mut g);
            }
            (warm, r.counters.comm_allocs)
        });
        for &(warm, steady) in &run.results {
            assert_eq!(
                steady, warm,
                "steady-state collectives must not allocate (warm-up: {warm})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "all_reduce_max length mismatch")]
    fn all_reduce_max_rejects_mismatched_lengths() {
        run_spmd(3, |r| {
            // Rank 2 contributes a short vector; zip would silently drop
            // the longer ranks' trailing entries without the assert.
            if r.id == 2 {
                r.all_reduce_max(&[1.0])
            } else {
                r.all_reduce_max(&[1.0, 2.0])
            }
        });
    }

    #[test]
    #[should_panic(expected = "all_reduce length mismatch")]
    fn all_reduce_sum_rejects_mismatched_lengths() {
        run_spmd(3, |r| {
            if r.id == 1 {
                r.all_reduce_sum(&[1.0, 2.0, 3.0])
            } else {
                r.all_reduce_sum(&[1.0])
            }
        });
    }

    #[test]
    #[should_panic(expected = "collides with reserved")]
    fn overlapping_tag_ranges_are_rejected() {
        run_spmd(2, |r| {
            r.reserve_tags(100, 102);
            r.reserve_tags(101, 103); // adjacent tags: overlap at 101
        });
    }

    #[test]
    fn disjoint_tag_ranges_are_accepted() {
        let run = run_spmd(2, |r| {
            r.reserve_tags(100, 102);
            r.reserve_tags(102, 104);
            r.reserve_tags(0, 2);
            true
        });
        assert!(run.results.iter().all(|&ok| ok));
    }

    #[test]
    #[should_panic(expected = "deliberate failure on rank 1")]
    fn rank_panic_poisons_blocked_peers_instead_of_deadlocking() {
        run_spmd(4, |r| {
            if r.id == 1 {
                panic!("deliberate failure on rank {}", r.id);
            }
            // Every other rank blocks on a message that will never come.
            r.recv_f64(1, 77)
        });
    }

    mod faults {
        use super::*;
        use crate::cost::CostModel;
        use crate::fault::{FaultCause, FaultPlan, FaultSignal};
        use std::sync::Arc;
        use std::time::Duration;

        const WINDOW: Duration = Duration::from_secs(5);

        /// Run `f`, returning the [`FaultSignal`] it unwound with.
        fn caught<R>(f: impl FnOnce() -> R) -> FaultSignal {
            let e = match catch_unwind(AssertUnwindSafe(f)) {
                Ok(_) => panic!("expected a fault"),
                Err(e) => e,
            };
            match e.downcast::<FaultSignal>() {
                Ok(s) => *s,
                Err(e) => resume_unwind(e),
            }
        }

        #[test]
        fn duplicated_message_is_discarded_by_seq_filter() {
            let plan = Arc::new(FaultPlan::parse("dup:0>1#0", 2).unwrap());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(WINDOW));
                if r.id == 0 {
                    r.send_f64(1, 5, vec![1.0], CommClass::Halo);
                    r.send_f64(1, 5, vec![2.0], CommClass::Halo);
                    0.0
                } else {
                    // Without the sequence filter the duplicate of the
                    // first message would shadow the second.
                    r.recv_f64(0, 5)[0] + r.recv_f64(0, 5)[0]
                }
            });
            assert_eq!(run.results[1], 3.0);
            assert_eq!(run.counters[1].dup_discards, 1);
        }

        #[test]
        fn delay_fault_is_priced_as_latency() {
            let plan = Arc::new(FaultPlan::parse("delay:0>1#0=500", 2).unwrap());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(WINDOW));
                if r.id == 0 {
                    r.send_f64(1, 5, vec![1.0], CommClass::Halo);
                }
                if r.id == 1 {
                    r.recv_f64(0, 5);
                }
            });
            assert_eq!(run.counters[0].fault_ticks, 500);
            let m = CostModel::delta_i860();
            let with = m.evaluate(&run.counters).comm_seconds;
            let mut clean = run.counters.clone();
            clean[0].fault_ticks = 0;
            let without = m.evaluate(&clean).comm_seconds;
            assert!((with - without - 500.0 * m.latency_s).abs() < 1e-12);
        }

        #[test]
        fn dropped_message_raises_lost_on_the_gap() {
            let plan = Arc::new(FaultPlan::parse("drop:0>1#0", 2).unwrap());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(WINDOW));
                if r.id == 0 {
                    r.send_f64(1, 5, vec![1.0], CommClass::Halo);
                    r.send_f64(1, 5, vec![2.0], CommClass::Halo);
                    true
                } else {
                    // The second message arrives with seq 1 while seq 0
                    // was never seen: a detectable gap.
                    match caught(|| r.recv_f64(0, 5)) {
                        FaultSignal::Recover {
                            epoch: 1,
                            cause: FaultCause::Lost,
                            ..
                        } => true,
                        other => panic!("unexpected signal {other:?}"),
                    }
                }
            });
            assert!(run.results.iter().all(|&ok| ok));
        }

        #[test]
        fn silently_lost_message_hits_the_timeout() {
            // Drop the only message on the stream: no gap ever shows, so
            // the bounded receive is the detector of last resort.
            let plan = Arc::new(FaultPlan::parse("drop:0>1#0", 2).unwrap());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(Duration::from_millis(50)));
                if r.id == 0 {
                    r.send_f64(1, 5, vec![1.0], CommClass::Halo);
                    true
                } else {
                    matches!(
                        caught(|| r.recv_f64(0, 5)),
                        FaultSignal::Recover {
                            epoch: 1,
                            cause: FaultCause::Timeout,
                            ..
                        }
                    )
                }
            });
            assert!(run.results.iter().all(|&ok| ok));
        }

        #[test]
        fn slow_but_alive_peer_does_not_trip_the_silent_loss_detector() {
            // Regression for the hybrid backend's real preemptible
            // threads: a peer that is merely descheduled (here: sleeping
            // far past the detection window) must not be mistaken for a
            // dropped message. The plan carries faults — but none that
            // can drop — so the bounded receive must stay disarmed even
            // though a timeout was requested.
            let plan = Arc::new(FaultPlan::parse("delay:0>1#5=10", 2).unwrap());
            assert!(!plan.may_drop());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(Duration::from_millis(20)));
                if r.id == 0 {
                    std::thread::sleep(Duration::from_millis(200));
                    r.send_f64(1, 5, vec![9.0], CommClass::Halo);
                    9.0
                } else {
                    // Under the old wall-clock detector this unwound with
                    // FaultCause::Timeout after 20 ms.
                    r.recv_f64(0, 5)[0]
                }
            });
            assert_eq!(run.results, vec![9.0, 9.0]);
        }

        #[test]
        fn drop_capable_plan_still_arms_the_detector() {
            let plan = Arc::new(FaultPlan::parse("drop:0>1#0", 2).unwrap());
            assert!(plan.may_drop());
        }

        #[test]
        fn corrupted_message_fails_its_checksum() {
            let plan = Arc::new(FaultPlan::parse("corrupt:0>1#0", 2).unwrap());
            let run = run_spmd(2, |r| {
                r.install_faults(plan.clone(), Some(WINDOW));
                if r.id == 0 {
                    r.send_f64(1, 5, vec![1.0, 2.0], CommClass::Halo);
                    true
                } else {
                    matches!(
                        caught(|| r.recv_f64(0, 5)),
                        FaultSignal::Recover {
                            epoch: 1,
                            cause: FaultCause::Corrupt,
                            ..
                        }
                    )
                }
            });
            assert!(run.results.iter().all(|&ok| ok));
        }

        #[test]
        fn stale_epoch_traffic_is_discarded_after_recovery() {
            let run = run_spmd(2, |r| {
                if r.id == 0 {
                    r.send_f64(1, 5, vec![7.0], CommClass::Halo); // epoch 0
                    r.begin_recovery(1);
                    r.send_f64(1, 5, vec![8.0], CommClass::Halo); // epoch 1
                    (0.0, 0)
                } else {
                    // This rank detected the (hypothetical) failure first
                    // and entered epoch 1 before consuming anything.
                    r.begin_recovery(1);
                    let got = r.recv_f64(0, 5)[0];
                    (got, r.counters.stale_discards)
                }
            });
            assert_eq!(run.results[1], (8.0, 1), "epoch-0 payload must be dropped");
        }

        #[test]
        fn killed_rank_announces_death_and_its_mailbox_is_adoptable() {
            let plan = Arc::new(FaultPlan::parse("kill:1@0", 3).unwrap());
            let run = run_spmd(3, |r| {
                r.install_faults(plan.clone(), Some(WINDOW));
                r.set_fault_cycle(0);
                match r.id {
                    1 => {
                        // The kill fires on this rank's first comm op.
                        assert!(matches!(
                            caught(|| r.send_f64(0, 5, vec![1.0], CommClass::Halo)),
                            FaultSignal::Killed
                        ));
                        r.announce_death();
                        -1.0
                    }
                    0 => {
                        // Blocked on the dead rank; the death notice (or a
                        // peer's abort relaying it) unwinds the receive.
                        match caught(|| r.recv_f64(1, 5)) {
                            FaultSignal::Recover { epoch: 1, dead, .. } => {
                                assert_eq!(dead, vec![1]);
                            }
                            other => panic!("unexpected signal {other:?}"),
                        }
                        r.begin_recovery(1);
                        // Adopt the dead rank's partition: its mailbox
                        // lives on, and epoch-1 traffic addressed to rank
                        // 1 arrives at the adopted instance.
                        let mut v = r.adopt(1);
                        v.recv_f64(2, 9)[0]
                    }
                    _ => {
                        match caught(|| r.recv_f64(1, 5)) {
                            FaultSignal::Recover { epoch: 1, dead, .. } => {
                                assert_eq!(dead, vec![1]);
                            }
                            other => panic!("unexpected signal {other:?}"),
                        }
                        r.begin_recovery(1);
                        r.send_f64(1, 9, vec![42.0], CommClass::Recovery);
                        0.0
                    }
                }
            });
            assert_eq!(run.results[0], 42.0, "adopted mailbox must deliver");
            assert!(run.counters[0].recoveries >= 1);
        }
    }
}
