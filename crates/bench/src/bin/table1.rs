//! **Tables 1a/1b/1c** — Cray Y-MP C90 speeds for EUL3D running 100
//! cycles of each strategy at 1, 2, 4, 8 and 16 CPUs: wall clock, CPU
//! seconds, MFlops.
//!
//! The decomposition is real: the run below executes the actual solver
//! (and the coloured shared-memory executor that embodies the §3.1
//! autotasking decomposition), counting operations and colour-group loop
//! launches. The C90 machine model prices that measured work at
//! calibrated 1992 rates twice:
//!
//! * **at measured scale** — our CI-size mesh as-is (short vectors, so
//!   slave start-up overhead is visible, exactly as §3.1 warns for small
//!   subgroup lengths);
//! * **at paper scale** — per-cycle flops extrapolated linearly to the
//!   804,056-node mesh (per-cycle *launch counts* are mesh-size
//!   independent, so they are kept), which is where the paper's numbers
//!   live and where the Table-1 shape targets apply: CPU seconds inflate
//!   ~15-20% at 16 CPUs, wall clock drops ~12x (>99% parallel), all
//!   three strategies reach similar MFlops.

use eul3d_bench::{write_csv, CaseSpec};
use eul3d_core::{MultigridSolver, Strategy};
use eul3d_perf::{CrayC90Model, TextTable};

const PAPER_FINE_NODES: f64 = 804_056.0;

fn print_sweep(model: &CrayC90Model, flops: f64, launches: u64) -> Vec<Vec<String>> {
    let mut t = TextTable::new(&["CPUs", "Wall Clock", "CPU sec.", "MFlops"]);
    let mut rows = Vec::new();
    for row in model.sweep(flops, launches) {
        t.row(&[
            row.cpus.to_string(),
            format!("{:.1}", row.wall_clock_s),
            format!("{:.1}", row.cpu_s),
            format!("{:.0}", row.mflops),
        ]);
        rows.push(vec![
            row.cpus.to_string(),
            format!("{:.3}", row.wall_clock_s),
            format!("{:.3}", row.cpu_s),
            format!("{:.1}", row.mflops),
        ]);
    }
    println!("{}", t.render());
    let r1 = model.evaluate(flops, launches, 1);
    let r16 = model.evaluate(flops, launches, 16);
    println!(
        "  speedup at 16 CPUs: {:.1}x (paper: 12.3-12.4x); CPU-time inflation: {:.0}% (paper: ~16-24%)\n",
        r1.wall_clock_s / r16.wall_clock_s,
        100.0 * (r16.cpu_s / r1.cpu_s - 1.0)
    );
    rows
}

fn main() {
    let case = CaseSpec::from_env(100);
    let cfg = case.config();
    let model = CrayC90Model::default();
    println!(
        "table1: C90 model over measured work; bump channel nx={}, {} levels, {} cycles, M={}",
        case.nx, case.levels, case.cycles, cfg.mach
    );
    println!(
        "model: {} MFlops/CPU, {:.1}% serial, {:.1}% multitask overhead/CPU\n",
        model.cpu_mflops,
        100.0 * model.serial_fraction,
        100.0 * model.multitask_overhead
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (label, strategy) in [
        ("Table 1a: single grid", Strategy::SingleGrid),
        ("Table 1b: V cycle", Strategy::VCycle),
        ("Table 1c: W cycle", Strategy::WCycle),
    ] {
        let seq = case.sequence();
        let fine_nodes = seq.meshes[0].nverts() as f64;
        let fine_edges = seq.meshes[0].nedges();
        let ncolors = eul3d_core::shared::SharedExecutor::new(&seq.meshes[0], 2)
            .expect("edge colouring must validate")
            .coloring
            .ncolors();

        // Run the real coloured/rayon multigrid (§3.2): launch counts come
        // straight from the executor (one launch per colour group).
        let mut mg = MultigridSolver::new_shared(seq, cfg, strategy, 2)
            .expect("edge colourings must validate");
        let t0 = std::time::Instant::now();
        let hist = mg.solve(case.cycles);
        let host = t0.elapsed().as_secs_f64();
        // Normalize to 100 cycles like the paper's tables.
        let norm = 100.0 / case.cycles as f64;
        let flops = mg.counter.flops() * norm;
        let launches = (mg.counter.launches() as f64 * norm) as u64;

        println!(
            "{label}  ({ncolors} fine-grid colour groups, {:.2e} flops/100cyc, host {:.1}s, residual -> {:.2e})",
            flops,
            host,
            hist.last().unwrap()
        );
        println!(
            "  subgroup vector length at 16 CPUs: {} edges (paper: ~2000 at 128 CPUs on 5.5M edges)",
            fine_edges / ncolors / 16
        );

        // Per-phase computation breakdown from the executor layer.
        let mut phases = TextTable::new(&["phase", "flops", "launches"]);
        for r in mg.counter.rows() {
            phases.row(&[
                r.label.to_string(),
                format!("{:.3e}", r.flops),
                r.launches.to_string(),
            ]);
        }
        println!("{}", phases.render());

        println!("-- at measured scale ({} fine nodes):", fine_nodes as u64);
        print_sweep(&model, flops, launches);

        let scale = PAPER_FINE_NODES / fine_nodes;
        println!(
            "-- extrapolated to paper scale ({} fine nodes, x{scale:.0} flops, same launches):",
            PAPER_FINE_NODES as u64
        );
        let rows = print_sweep(&model, flops * scale, launches);
        for r in rows {
            let mut row = vec![strategy.label().to_string()];
            row.extend(r);
            csv_rows.push(row);
        }
    }

    let path = case.out_dir().join("table1_c90.csv");
    write_csv(
        &path,
        &["strategy", "cpus", "wall_clock_s", "cpu_s", "mflops"],
        &csv_rows,
    );
    println!("wrote {}", path.display());
    println!("\nPaper reference rows (100 cycles, 804k-node mesh):");
    println!("  1a single grid: 1 CPU 1916s/252MF ... 16 CPUs 156s/3252MF");
    println!("  1b V cycle:     1 CPU 2586s/247MF ... 16 CPUs 223s/3161MF");
    println!("  1c W cycle:     1 CPU 3041s/249MF ... 16 CPUs 268s/3136MF");
}
