//! Offline stand-in for the `crossbeam` facade.
//!
//! This workspace vendors source-compatible subsets of its external
//! dependencies so the build is hermetic (no registry access). Only the
//! API surface EUL3D actually uses is provided: `channel::unbounded` with
//! cloneable senders, built on `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of an unbounded FIFO channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Queue `msg`; never blocks.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded FIFO channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_preserved() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || tx.send(1u32).unwrap());
                s.spawn(move || tx2.send(2u32).unwrap());
            });
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_after_hangup_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
