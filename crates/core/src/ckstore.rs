//! Disk-backed, crash-safe checkpoint logs for resumable jobs.
//!
//! A [`CheckpointLog`] is an append-only file of CRC-framed
//! [`JobCheckpoint`] frames behind a versioned header. The format is
//! designed so that a `kill -9` at *any* byte boundary loses at most
//! the frame being written:
//!
//! ```text
//! header:  magic "EUL3DLOG" (8) | version u32 LE (4)
//! frame:   len u32 LE | crc32(payload) u32 LE | payload (len bytes)
//! payload: cycles_done u64 | nhist u64 | hist f64× | nw u64 | w f64×
//! ```
//!
//! Opening a log scans frames from the front and keeps the **longest
//! valid prefix**: the first frame whose length field runs past the end
//! of the file or whose CRC mismatches ends the scan, the file is
//! truncated back to the last valid frame boundary, and a
//! [`TailReport`] says how many frames and bytes were dropped. A
//! corrupted or truncated tail therefore costs one checkpoint interval
//! of recompute, never the run. Appends go through `write` +
//! `sync_data` so a frame is durable before the caller's own
//! write-ahead record points at it.
//!
//! Every float is stored as its little-endian bit pattern, so a resumed
//! run reproduces the interrupted run's residual history and final
//! state **bit for bit** (the crash-recovery harness asserts exactly
//! that across a `SIGKILL`).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"EUL3DLOG";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;
/// Sanity cap on one frame (a fine-grid state of ~30M f64s); a length
/// field beyond this is treated as corruption, not an allocation.
const MAX_FRAME_LEN: u32 = 1 << 28;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the classic
/// zlib/gzip checksum, computed bytewise from a lazily built table.
pub fn crc32(bytes: &[u8]) -> u32 {
    fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let t = TABLE.get_or_init(table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One durable resume point of a running job: everything needed to
/// continue the solve *and* reproduce its observable output exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    /// Committed cycles at the snapshot (the next cycle to run).
    pub cycles_done: u64,
    /// The committed residual history, bit-exact — a resumed run replays
    /// this prefix so its residual table matches an uninterrupted run
    /// byte for byte.
    pub history: Vec<f64>,
    /// Fine-grid conserved variables in the interleaved (AoS) layout,
    /// `nverts × NVAR`.
    pub w: Vec<f64>,
}

impl JobCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 8 * (self.history.len() + self.w.len()));
        out.extend_from_slice(&self.cycles_done.to_le_bytes());
        out.extend_from_slice(&(self.history.len() as u64).to_le_bytes());
        for &r in &self.history {
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.w.len() as u64).to_le_bytes());
        for &x in &self.w {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<JobCheckpoint> {
        let mut at = 0usize;
        let mut u64_at = |bytes: &[u8]| -> Option<u64> {
            let v = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
            at += 8;
            Some(v)
        };
        let cycles_done = u64_at(payload)?;
        let nhist = u64_at(payload)? as usize;
        if nhist > payload.len() / 8 {
            return None;
        }
        let mut history = Vec::with_capacity(nhist);
        for _ in 0..nhist {
            history.push(f64::from_bits(u64_at(payload)?));
        }
        let nw = u64_at(payload)? as usize;
        if nw > payload.len() / 8 {
            return None;
        }
        let mut w = Vec::with_capacity(nw);
        for _ in 0..nw {
            w.push(f64::from_bits(u64_at(payload)?));
        }
        if at != payload.len() {
            return None; // trailing garbage inside a framed payload
        }
        Some(JobCheckpoint {
            cycles_done,
            history,
            w,
        })
    }
}

/// What opening a log dropped while recovering the longest valid
/// prefix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Torn or corrupt frames discarded from the tail.
    pub dropped_frames: usize,
    /// Bytes truncated from the file.
    pub dropped_bytes: u64,
}

impl TailReport {
    /// Whether anything was dropped.
    pub fn clean(&self) -> bool {
        self.dropped_frames == 0 && self.dropped_bytes == 0
    }
}

/// A checkpoint-log open/append failure (I/O or an unrecognized
/// header — tail damage is *not* an error, it is a [`TailReport`]).
#[derive(Debug)]
pub enum CkStoreError {
    /// The file exists but does not start with the log magic/version.
    BadHeader,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for CkStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkStoreError::BadHeader => write!(f, "not a EUL3D checkpoint log (bad header)"),
            CkStoreError::Io(e) => write!(f, "checkpoint log I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkStoreError {}

impl From<io::Error> for CkStoreError {
    fn from(e: io::Error) -> CkStoreError {
        CkStoreError::Io(e)
    }
}

/// An open, append-only checkpoint log. Holds the file handle for the
/// job's lifetime; [`CheckpointLog::append`] is durable when it
/// returns.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    file: File,
    /// The latest valid checkpoint (recovered on open, updated on
    /// append).
    latest: Option<JobCheckpoint>,
    frames: usize,
}

impl CheckpointLog {
    /// Open (or create) the log at `path`, recover the longest valid
    /// frame prefix, and truncate any torn/corrupt tail. Returns the
    /// log and what the recovery dropped.
    pub fn open(path: &Path) -> Result<(CheckpointLog, TailReport), CkStoreError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let total = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        if total == 0 {
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok((
                CheckpointLog {
                    path: path.to_path_buf(),
                    file,
                    latest: None,
                    frames: 0,
                },
                TailReport::default(),
            ));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        if total < HEADER_LEN {
            // A crash can tear even the header of a brand-new log; an
            // incomplete header is tail damage, not a foreign file.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok((
                CheckpointLog {
                    path: path.to_path_buf(),
                    file,
                    latest: None,
                    frames: 0,
                },
                TailReport {
                    dropped_frames: 0,
                    dropped_bytes: total,
                },
            ));
        }
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC
            || u32::from_le_bytes([header[8], header[9], header[10], header[11]]) != VERSION
        {
            return Err(CkStoreError::BadHeader);
        }
        // Scan frames, remembering the last offset after a valid one.
        let mut rest = Vec::with_capacity((total - HEADER_LEN) as usize);
        file.read_to_end(&mut rest)?;
        let mut at = 0usize;
        let mut valid_end = 0usize;
        let mut latest = None;
        let mut frames = 0usize;
        let mut dropped_frames = 0usize;
        while at + 8 <= rest.len() {
            let len = u32::from_le_bytes([rest[at], rest[at + 1], rest[at + 2], rest[at + 3]]);
            let crc = u32::from_le_bytes([rest[at + 4], rest[at + 5], rest[at + 6], rest[at + 7]]);
            if len > MAX_FRAME_LEN {
                dropped_frames = 1;
                break;
            }
            let (start, end) = (at + 8, at + 8 + len as usize);
            if end > rest.len() {
                dropped_frames = 1; // torn tail frame
                break;
            }
            let payload = &rest[start..end];
            if crc32(payload) != crc {
                dropped_frames = 1;
                break;
            }
            match JobCheckpoint::decode(payload) {
                Some(ck) => latest = Some(ck),
                None => {
                    // CRC-valid but undecodable: corruption that
                    // happened before the CRC was computed, or a future
                    // payload revision. Stop here too.
                    dropped_frames = 1;
                    break;
                }
            }
            frames += 1;
            at = end;
            valid_end = end;
        }
        // Anything between valid_end and EOF is a damaged or trailing
        // region: count partial leftovers as a dropped frame and
        // truncate so future appends land on a clean boundary.
        if valid_end < rest.len() && dropped_frames == 0 {
            dropped_frames = 1;
        }
        let dropped_bytes = (rest.len() - valid_end) as u64;
        if dropped_bytes > 0 {
            file.set_len(HEADER_LEN + valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            CheckpointLog {
                path: path.to_path_buf(),
                file,
                latest,
                frames,
            },
            TailReport {
                dropped_frames,
                dropped_bytes,
            },
        ))
    }

    /// Append one checkpoint frame; durable (`sync_data`) when this
    /// returns.
    pub fn append(&mut self, ck: &JobCheckpoint) -> Result<(), CkStoreError> {
        let payload = ck.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.latest = Some(ck.clone());
        self.frames += 1;
        Ok(())
    }

    /// The most recent valid checkpoint (the resume point).
    pub fn latest(&self) -> Option<&JobCheckpoint> {
        self.latest.as_ref()
    }

    /// Valid frames currently in the log.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete the log file (the job completed; its resume point is
    /// garbage now). Consumes the log.
    pub fn remove(self) -> io::Result<()> {
        drop(self.file);
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// How a resumable job talks to its durability layer. The solve loop
/// calls [`DurabilitySink::resume_point`] once at start and
/// [`DurabilitySink::checkpoint`] at every committed checkpoint
/// interval; implementations must make the checkpoint durable before
/// returning.
pub trait DurabilitySink {
    /// The resume point to continue from, if any.
    fn resume_point(&mut self) -> Option<JobCheckpoint>;
    /// Persist one checkpoint durably.
    fn checkpoint(&mut self, ck: &JobCheckpoint);
    /// Notification that the run *accepted* the resume point and is
    /// continuing from committed cycle `cycle` (a resume point that does
    /// not fit the config is silently ignored and this is not called).
    fn resumed(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

impl DurabilitySink for CheckpointLog {
    fn resume_point(&mut self) -> Option<JobCheckpoint> {
        self.latest.clone()
    }

    fn checkpoint(&mut self, ck: &JobCheckpoint) {
        // Durability is best-effort from the solver's perspective: a
        // full disk must not fail the run itself, only its resumability.
        let _ = self.append(ck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eul3d-ckstore-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ck(cycle: u64) -> JobCheckpoint {
        JobCheckpoint {
            cycles_done: cycle,
            history: (0..cycle).map(|c| 0.1 * c as f64 + 0.05).collect(),
            w: vec![1.25; 10],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors (zlib crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_reopen_round_trips_latest() {
        let p = tmp("rt");
        let (mut log, rep) = CheckpointLog::open(&p).unwrap();
        assert!(rep.clean());
        assert!(log.latest().is_none());
        log.append(&ck(2)).unwrap();
        log.append(&ck(4)).unwrap();
        drop(log);
        let (log, rep) = CheckpointLog::open(&p).unwrap();
        assert!(rep.clean());
        assert_eq!(log.frames(), 2);
        assert_eq!(log.latest(), Some(&ck(4)));
        log.remove().unwrap();
        assert!(!p.exists());
    }

    #[test]
    fn torn_tail_truncates_to_longest_valid_prefix() {
        let p = tmp("torn");
        let (mut log, _) = CheckpointLog::open(&p).unwrap();
        log.append(&ck(2)).unwrap();
        log.append(&ck(4)).unwrap();
        drop(log);
        let full = std::fs::metadata(&p).unwrap().len();
        // Cut the file at every byte position inside the last frame: the
        // first frame must always survive.
        let bytes = std::fs::read(&p).unwrap();
        let first_end = {
            let len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as u64;
            HEADER_LEN + 8 + len
        };
        for cut in [first_end + 1, first_end + 9, full - 1] {
            std::fs::write(&p, &bytes[..cut as usize]).unwrap();
            let (log, rep) = CheckpointLog::open(&p).unwrap();
            assert_eq!(log.latest(), Some(&ck(2)), "cut at {cut}");
            assert_eq!(rep.dropped_frames, 1, "cut at {cut}");
            assert_eq!(rep.dropped_bytes, cut - first_end, "cut at {cut}");
            assert_eq!(
                std::fs::metadata(&p).unwrap().len(),
                first_end,
                "tail truncated at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_tail_byte_drops_only_the_damaged_frame() {
        let p = tmp("corrupt");
        let (mut log, _) = CheckpointLog::open(&p).unwrap();
        log.append(&ck(2)).unwrap();
        log.append(&ck(4)).unwrap();
        drop(log);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // flip a bit inside the second payload
        std::fs::write(&p, &bytes).unwrap();
        let (mut log, rep) = CheckpointLog::open(&p).unwrap();
        assert_eq!(log.latest(), Some(&ck(2)));
        assert_eq!(rep.dropped_frames, 1);
        assert!(rep.dropped_bytes > 0);
        // The log stays appendable after recovery.
        log.append(&ck(6)).unwrap();
        drop(log);
        let (log, rep) = CheckpointLog::open(&p).unwrap();
        assert!(rep.clean());
        assert_eq!(log.latest(), Some(&ck(6)));
        log.remove().unwrap();
    }

    #[test]
    fn foreign_file_is_a_typed_header_error() {
        let p = tmp("foreign");
        std::fs::write(&p, b"definitely not a checkpoint log").unwrap();
        match CheckpointLog::open(&p) {
            Err(CkStoreError::BadHeader) => {}
            other => panic!("expected BadHeader, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_header_recovers_as_empty_log() {
        let p = tmp("tornhdr");
        std::fs::write(&p, &MAGIC[..5]).unwrap();
        let (log, rep) = CheckpointLog::open(&p).unwrap();
        assert!(log.latest().is_none());
        assert_eq!(rep.dropped_bytes, 5);
        log.remove().unwrap();
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let p = tmp("absurd");
        let (mut log, _) = CheckpointLog::open(&p).unwrap();
        log.append(&ck(2)).unwrap();
        drop(log);
        let mut bytes = std::fs::read(&p).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&frame);
        std::fs::write(&p, &bytes).unwrap();
        let (log, rep) = CheckpointLog::open(&p).unwrap();
        assert_eq!(log.latest(), Some(&ck(2)));
        assert_eq!(rep.dropped_frames, 1);
        log.remove().unwrap();
    }
}
