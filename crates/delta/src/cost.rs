//! The machine cost model: maps counters accumulated by a run to the
//! wall-clock breakdown reported in Tables 2a–2c of the paper.
//!
//! The accounting mirrors how the paper measured the Delta:
//! * **computation seconds** — the *slowest rank's* flops divided by the
//!   effective per-node rate (so load imbalance shows up as lost time);
//! * **communication seconds** — the slowest rank's
//!   `messages × latency + bytes / bandwidth` (message aggregation pays
//!   off by reducing the latency term, exactly the §4.1 optimization);
//! * **total** = computation + communication (the paper reports them
//!   additively);
//! * **MFlops** = machine-total flops / total seconds, "obtained by
//!   counting the number of operations in each loop" (§4.4).

use crate::msg::{CommClass, RankCounters};

/// The pluggable communication-cost seam: anything that can price a
/// message on the wire and a kernel's flops in modeled nanoseconds.
/// [`CostModel`] is the canonical implementation; executors carry one so
/// a backend running on real threads (the hybrid backend) can keep
/// charging the same modeled Delta clock that the channel backend
/// charges — one run reports both simulated-Delta time and wall time.
pub trait CommCost {
    /// Modeled ns one message of `bytes` over `hops` occupies its sender.
    fn send_ns(&self, bytes: u64, hops: u64) -> u64;
    /// Modeled ns a kernel of `flops` operations takes on one rank.
    fn comp_ns(&self, flops: f64) -> u64;
}

impl CommCost for CostModel {
    fn send_ns(&self, bytes: u64, hops: u64) -> u64 {
        CostModel::send_ns(self, bytes, hops)
    }
    fn comp_ns(&self, flops: f64) -> u64 {
        CostModel::comp_ns(self, flops)
    }
}

/// Calibrated machine constants. Defaults approximate a Touchstone Delta
/// node: an i860 sustaining ~3 MFlops on irregular edge loops *after* the
/// §4.2 reordering (the paper: 1496 MFlops / 512 nodes ≈ 2.9), NX-era
/// latency ~75 µs and ~10 MB/s effective point-to-point bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub mflops_per_rank: f64,
    pub latency_s: f64,
    pub bandwidth_bytes_per_s: f64,
    /// Extra latency per 2-D-mesh hop. Wormhole routing made distance
    /// nearly free on the real Delta (~a few hundred ns/hop), but the
    /// term exposes partition-placement quality in the model.
    pub hop_latency_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::delta_i860()
    }
}

impl CostModel {
    /// Touchstone Delta constants (post-reordering node rate).
    pub fn delta_i860() -> CostModel {
        CostModel {
            mflops_per_rank: 3.0,
            latency_s: 75e-6,
            bandwidth_bytes_per_s: 10e6,
            hop_latency_s: 0.3e-6,
        }
    }

    /// The same node *without* the §4.2 node/edge reordering: the paper
    /// reports the reordering "alone improved the single node
    /// computational rate by a factor of two".
    pub fn delta_i860_unordered() -> CostModel {
        CostModel {
            mflops_per_rank: 1.5,
            ..CostModel::delta_i860()
        }
    }

    /// Seconds of computation a single rank's flops take.
    pub fn comp_seconds(&self, flops: f64) -> f64 {
        flops / (self.mflops_per_rank * 1e6)
    }

    /// Seconds of communication for one rank's traffic.
    pub fn comm_seconds(&self, messages: u64, bytes: u64) -> f64 {
        self.comm_seconds_with_hops(messages, bytes, 0)
    }

    /// Seconds of communication including the per-hop routing term.
    pub fn comm_seconds_with_hops(&self, messages: u64, bytes: u64, hops: u64) -> f64 {
        messages as f64 * self.latency_s
            + bytes as f64 / self.bandwidth_bytes_per_s
            + hops as f64 * self.hop_latency_s
    }

    /// Modeled nanoseconds a kernel of `flops` floating-point operations
    /// takes on one rank — the quantum the observability clock advances
    /// by on compute charges (see `eul3d-obs`). Pure arithmetic on
    /// deterministic inputs: bit-identical across reruns.
    pub fn comp_ns(&self, flops: f64) -> u64 {
        (self.comp_seconds(flops) * 1e9) as u64
    }

    /// Modeled nanoseconds one message of `bytes` over `hops` mesh hops
    /// occupies the sender — the observability clock's send quantum.
    pub fn send_ns(&self, bytes: u64, hops: u64) -> u64 {
        (self.comm_seconds_with_hops(1, bytes, hops) * 1e9) as u64
    }

    /// Evaluate a full run.
    pub fn evaluate(&self, counters: &[RankCounters]) -> CostBreakdown {
        let comp = counters
            .iter()
            .map(|c| self.comp_seconds(c.flops))
            .fold(0.0, f64::max);
        let comm = counters
            .iter()
            .map(|c| {
                // Injected delivery delays are priced as extra latency
                // quanta on the sending rank.
                self.comm_seconds_with_hops(c.total_messages(), c.total_bytes(), c.hops)
                    + c.fault_ticks as f64 * self.latency_s
            })
            .fold(0.0, f64::max);
        let total_flops: f64 = counters.iter().map(|c| c.flops).sum();
        let mut class_seconds = [0.0f64; crate::msg::N_COMM_CLASSES];
        for (k, sec) in class_seconds.iter_mut().enumerate() {
            *sec = counters
                .iter()
                .map(|c| self.comm_seconds(c.sent[k].messages, c.sent[k].bytes))
                .fold(0.0, f64::max);
        }
        CostBreakdown {
            nranks: counters.len(),
            comp_seconds: comp,
            comm_seconds: comm,
            total_seconds: comp + comm,
            total_flops,
            mflops: total_flops / (comp + comm).max(1e-300) / 1e6,
            class_seconds,
        }
    }
}

/// The Table-2 row: per-run seconds and machine rate.
#[derive(Debug, Clone, Copy)]
pub struct CostBreakdown {
    pub nranks: usize,
    pub comp_seconds: f64,
    pub comm_seconds: f64,
    pub total_seconds: f64,
    pub total_flops: f64,
    /// Machine rate over the whole run.
    pub mflops: f64,
    /// Communication seconds split per [`CommClass`].
    pub class_seconds: [f64; crate::msg::N_COMM_CLASSES],
}

impl CostBreakdown {
    /// Communication-to-computation ratio (§5 reports ~50% at 512 nodes).
    pub fn comm_to_comp(&self) -> f64 {
        self.comm_seconds / self.comp_seconds.max(1e-300)
    }

    /// Seconds attributed to one traffic class.
    pub fn class(&self, c: CommClass) -> f64 {
        self.class_seconds[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::CommClass;

    fn counters(flops: f64, msgs: u64, bytes_per_msg: u64) -> RankCounters {
        let mut c = RankCounters::default();
        c.add_flops(flops);
        for _ in 0..msgs {
            c.record_send(CommClass::Halo, bytes_per_msg);
        }
        c
    }

    #[test]
    fn comp_seconds_scale_with_rate() {
        let m = CostModel {
            mflops_per_rank: 2.0,
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
            hop_latency_s: 0.0,
        };
        assert!((m.comp_seconds(4e6) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_seconds_latency_plus_bandwidth() {
        let m = CostModel {
            mflops_per_rank: 1.0,
            latency_s: 0.1,
            bandwidth_bytes_per_s: 100.0,
            hop_latency_s: 0.0,
        };
        // 3 messages, 50 bytes: 0.3 + 0.5
        assert!((m.comm_seconds(3, 50) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn evaluate_takes_slowest_rank() {
        let m = CostModel {
            mflops_per_rank: 1.0,
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e9,
            hop_latency_s: 0.0,
        };
        let cs = vec![counters(1e6, 0, 0), counters(3e6, 0, 0)];
        let b = m.evaluate(&cs);
        assert!(
            (b.comp_seconds - 3.0).abs() < 1e-12,
            "imbalance must cost time"
        );
        assert!((b.total_flops - 4e6).abs() < 1.0);
    }

    #[test]
    fn aggregation_cuts_latency_cost() {
        // Same bytes, fewer messages => cheaper (the PARTI aggregation
        // rationale).
        let m = CostModel::delta_i860();
        let many = m.comm_seconds(100, 100_000);
        let one = m.comm_seconds(1, 100_000);
        assert!(one < many);
        assert!((many - one - 99.0 * m.latency_s).abs() < 1e-12);
    }

    #[test]
    fn mflops_consistency() {
        let m = CostModel {
            mflops_per_rank: 1.0,
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e9,
            hop_latency_s: 0.0,
        };
        let cs = vec![counters(1e6, 0, 0); 4];
        let b = m.evaluate(&cs);
        // 4 Mflop in 1 second (perfectly balanced) = 4 MFlops.
        assert!((b.mflops - 4.0).abs() < 1e-9);
        assert!(b.comm_to_comp() < 1e-9);
    }

    #[test]
    fn class_breakdown_separates_traffic() {
        let m = CostModel {
            mflops_per_rank: 1.0,
            latency_s: 1.0,
            bandwidth_bytes_per_s: 1e9,
            hop_latency_s: 0.0,
        };
        let mut c = RankCounters::default();
        c.record_send(CommClass::Halo, 0);
        c.record_send(CommClass::Halo, 0);
        c.record_send(CommClass::Transfer, 0);
        let b = m.evaluate(&[c]);
        assert!((b.class(CommClass::Halo) - 2.0).abs() < 1e-12);
        assert!((b.class(CommClass::Transfer) - 1.0).abs() < 1e-12);
        assert!((b.class(CommClass::Inspector)).abs() < 1e-12);
    }

    #[test]
    fn unordered_model_is_slower() {
        let fast = CostModel::delta_i860();
        let slow = CostModel::delta_i860_unordered();
        assert!((fast.mflops_per_rank / slow.mflops_per_rank - 2.0).abs() < 1e-12);
    }
}
