//! Sequential preprocessing for a distributed run: partition every mesh
//! level (recursive spectral bisection by default, §4.1) and build the
//! per-rank mesh pieces. Like the paper's, this phase is sequential and
//! its cost is amortized over many flow solutions.

use std::sync::Arc;

use eul3d_mesh::MeshSequence;
use eul3d_partition::{FlatRsb, MultilevelRsb, PartitionOptions, PartitionedMesh, Partitioner};

use crate::runconfig::{PartitionConfig, PartitionMethod};

/// The statically-dispatched partitioner for a configured method.
pub fn partitioner_of(method: PartitionMethod) -> &'static dyn Partitioner {
    match method {
        PartitionMethod::FlatRsb => &FlatRsb,
        PartitionMethod::Multilevel => &MultilevelRsb,
    }
}

/// Everything the SPMD ranks need, shared read-only.
pub struct DistSetup {
    pub seq: Arc<MeshSequence>,
    /// One partitioned mesh per level.
    pub pms: Vec<Arc<PartitionedMesh>>,
    pub nranks: usize,
}

impl DistSetup {
    /// Partition all levels of `seq` over `nranks` ranks with flat RSB
    /// (the historical default; bit-identical to the old
    /// `rsb_partition` path).
    pub fn new(seq: MeshSequence, nranks: usize, lanczos_iters: usize, seed: u64) -> DistSetup {
        let opts = PartitionOptions::new(nranks)
            .lanczos_iters(lanczos_iters)
            .seed(seed);
        Self::from_arc(Arc::new(seq), nranks, &FlatRsb, &opts)
    }

    /// Partition all levels with a configured [`PartitionConfig`] policy
    /// (method, multilevel knobs, rank mapping).
    pub fn from_policy(
        seq: MeshSequence,
        nranks: usize,
        lanczos_iters: usize,
        seed: u64,
        policy: &PartitionConfig,
    ) -> DistSetup {
        let opts = partition_options(nranks, lanczos_iters, seed, policy);
        Self::from_arc(Arc::new(seq), nranks, partitioner_of(policy.method), &opts)
    }

    /// Partition all levels of an already-shared mesh sequence with an
    /// arbitrary [`Partitioner`] — the entry point mid-run
    /// repartitioning uses to rebuild the per-rank layout without
    /// copying the meshes.
    pub fn from_arc(
        seq: Arc<MeshSequence>,
        nranks: usize,
        partitioner: &dyn Partitioner,
        opts: &PartitionOptions,
    ) -> DistSetup {
        let pms = seq
            .meshes
            .iter()
            .map(|m| {
                let plan = partitioner
                    .partition(m.nverts(), &m.edges, opts)
                    .unwrap_or_else(|e| panic!("partition options rejected: {e}"));
                Arc::new(PartitionedMesh::build(m, &plan.assignment, nranks))
            })
            .collect();
        DistSetup { seq, pms, nranks }
    }

    /// Partition with a caller-supplied partitioner (e.g. RCB or random,
    /// for the partitioning ablation).
    pub fn with_partitioner(
        seq: MeshSequence,
        nranks: usize,
        partitioner: impl Fn(&eul3d_mesh::TetMesh) -> Vec<u32>,
    ) -> DistSetup {
        let pms = seq
            .meshes
            .iter()
            .map(|m| Arc::new(PartitionedMesh::build(m, &partitioner(m), nranks)))
            .collect();
        DistSetup {
            seq: Arc::new(seq),
            pms,
            nranks,
        }
    }

    pub fn levels(&self) -> usize {
        self.seq.levels()
    }
}

/// Translate a [`PartitionConfig`] into validated [`PartitionOptions`].
pub fn partition_options(
    nranks: usize,
    lanczos_iters: usize,
    seed: u64,
    policy: &PartitionConfig,
) -> PartitionOptions {
    PartitionOptions::new(nranks)
        .lanczos_iters(lanczos_iters)
        .seed(seed)
        .coarsen_target(policy.coarsen_target)
        .refine_passes(policy.refine_passes)
        .mapping(policy.mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_partition::RankMapping;

    #[test]
    fn setup_partitions_every_level() {
        let seq = MeshSequence::box_sequence(6, 3, 0.1, 3);
        let setup = DistSetup::new(seq, 4, 20, 1);
        assert_eq!(setup.pms.len(), 3);
        for (pm, mesh) in setup.pms.iter().zip(&setup.seq.meshes) {
            assert_eq!(pm.nparts, 4);
            let owned: usize = pm.ranks.iter().map(|r| r.n_owned()).sum();
            assert_eq!(owned, mesh.nverts());
        }
    }

    #[test]
    fn new_matches_the_historic_flat_rsb_assignment() {
        // DistSetup::new must stay bit-identical to the deprecated
        // rsb_partition path it replaced.
        let seq = MeshSequence::box_sequence(5, 2, 0.1, 2);
        let setup = DistSetup::new(seq, 4, 30, 9);
        #[allow(deprecated)]
        for (pm, mesh) in setup.pms.iter().zip(&setup.seq.meshes) {
            let old = eul3d_partition::rsb_partition(mesh.nverts(), &mesh.edges, 4, 30, 9);
            assert_eq!(pm.owner, old);
        }
    }

    #[test]
    fn policy_setup_partitions_every_level() {
        let seq = MeshSequence::box_sequence(5, 2, 0.1, 5);
        let policy = PartitionConfig {
            method: PartitionMethod::Multilevel,
            coarsen_target: 16,
            mapping: RankMapping::Topology,
            ..PartitionConfig::default()
        };
        let setup = DistSetup::from_policy(seq, 4, 30, 7, &policy);
        assert_eq!(setup.pms.len(), 2);
        for (pm, mesh) in setup.pms.iter().zip(&setup.seq.meshes) {
            assert_eq!(pm.nparts, 4);
            let owned: usize = pm.ranks.iter().map(|r| r.n_owned()).sum();
            assert_eq!(owned, mesh.nverts());
        }
    }

    #[test]
    fn from_arc_shares_the_sequence_and_changes_with_the_seed() {
        let seq = Arc::new(MeshSequence::box_sequence(5, 2, 0.1, 4));
        let opts_a = PartitionOptions::new(4).lanczos_iters(30).seed(1);
        let opts_b = PartitionOptions::new(4).lanczos_iters(30).seed(2);
        let a = DistSetup::from_arc(seq.clone(), 4, &FlatRsb, &opts_a);
        let b = DistSetup::from_arc(seq.clone(), 4, &FlatRsb, &opts_b);
        assert!(Arc::ptr_eq(&a.seq, &b.seq), "meshes are shared, not copied");
        assert_ne!(
            a.pms[0].owner, b.pms[0].owner,
            "different seeds must give a different assignment for \
             migration to be meaningful"
        );
    }

    #[test]
    fn custom_partitioner_is_used() {
        let seq = MeshSequence::box_sequence(4, 2, 0.0, 0);
        let setup = DistSetup::with_partitioner(seq, 2, |m| {
            (0..m.nverts() as u32).map(|v| v % 2).collect()
        });
        assert_eq!(setup.pms[0].nparts, 2);
    }
}
