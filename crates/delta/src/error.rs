//! Typed errors for the simulated machine: conditions a caller can
//! provoke with bad input (as opposed to protocol violations inside the
//! simulator, which stay hard panics so they are never papered over).

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A `--faults` specification failed to parse or referenced an
    /// impossible rank/stream.
    BadFaultSpec { spec: String, reason: String },
    /// A machine with zero ranks was requested.
    NoRanks,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BadFaultSpec { spec, reason } => {
                write!(f, "bad fault spec '{spec}': {reason}")
            }
            DeltaError::NoRanks => write!(f, "machine needs at least one rank"),
        }
    }
}

impl std::error::Error for DeltaError {}
