//! A genuinely three-dimensional "wing-like" case: the bump tapers along
//! the span (`BumpSpec::taper`), so the shock strength and the flow vary
//! in z — the closest synthetic analogue of the paper's aircraft
//! configuration that the bump-channel family supports.
//!
//! ```sh
//! cargo run --release --example swept_wing
//! ```

use eul3d::mesh::gen::BumpSpec;
use eul3d::mesh::vtk::write_vtk_file;
use eul3d::mesh::MeshSequence;
use eul3d::solver::postproc::{mach_field, probe_line};
use eul3d::solver::{MultigridSolver, SolverConfig, Strategy};

fn main() {
    let spec = BumpSpec {
        nx: 28,
        ny: 10,
        nz: 12,
        taper: 0.7, // bump shrinks to 30% height at the far span
        jitter: 0.12,
        ..BumpSpec::default()
    };
    let seq = MeshSequence::bump_sequence(&spec, 3);
    println!(
        "swept-wing analogue: {:?} vertices, taper {}",
        seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>(),
        spec.taper
    );

    // The paper's freestream: M∞ = 0.768, α = 1.116°.
    let cfg = SolverConfig::paper_case();
    let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
    let hist = mg.solve(100);
    println!(
        "100 W-cycles: residual {:.3e} -> {:.3e} ({:.2} orders)",
        hist[0],
        hist.last().unwrap(),
        (hist[0] / hist.last().unwrap()).log10()
    );

    let mesh = &mg.seq.meshes[0];
    let mach = mach_field(cfg.gamma, mg.state(), mesh.nverts());

    // Spanwise variation: peak Mach near the thick root vs the thin tip.
    let span = eul3d::mesh::gen::CHANNEL_DEPTH;
    let peak_at = |z: f64| -> f64 {
        probe_line(
            mesh,
            &mach,
            eul3d::mesh::Vec3::new(0.0, 0.08, z),
            eul3d::mesh::Vec3::new(1.0, 0.08, z),
            25,
        )
        .iter()
        .map(|&(_, m)| m)
        .fold(0.0, f64::max)
    };
    let root = peak_at(0.05 * span);
    let tip = peak_at(0.95 * span);
    println!("peak surface Mach: root {root:.3} vs tip {tip:.3} (3-D relief)");
    assert!(root > tip, "the tapered bump must unload toward the tip");

    let out = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out).unwrap();
    let path = out.join("swept_wing_mach.vtk");
    write_vtk_file(&path, mesh, &[("mach", &mach)]).unwrap();
    println!("wrote {}", path.display());
}
