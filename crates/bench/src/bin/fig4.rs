//! **Figure 4** — Computed Mach contours of the transonic flow. "Good
//! shock resolution is observed."
//!
//! Converges the W-cycle solver on the transonic bump case, exports the
//! Mach field as VTK (contour it in ParaView to reproduce the figure),
//! and prints the textual diagnostics: Mach band occupancy, the
//! supersonic pocket, and the floor-line Mach distribution whose sharp
//! drop is the captured shock.

use eul3d_bench::CaseSpec;
use eul3d_core::postproc::{band_histogram, crosses, mach_field, probe_line};
use eul3d_core::{MultigridSolver, Strategy};
use eul3d_mesh::vtk::write_vtk_file;
use eul3d_mesh::Vec3;

fn main() {
    let case = CaseSpec::from_env(150);
    let cfg = case.config();
    println!(
        "fig4: transonic bump, M∞={}, W-cycle, {} cycles, nx={}",
        cfg.mach, case.cycles, case.nx
    );
    let seq = case.sequence();
    let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
    let hist = mg.solve(case.cycles);
    println!(
        "converged {:.2} orders (residual {:.3e} -> {:.3e})",
        (hist[0] / hist.last().unwrap()).log10(),
        hist[0],
        hist.last().unwrap()
    );

    let mesh = &mg.seq.meshes[0];
    let mach = mach_field(cfg.gamma, mg.state(), mesh.nverts());
    let mmin = mach.iter().cloned().fold(f64::INFINITY, f64::min);
    let mmax = mach.iter().cloned().fold(0.0f64, f64::max);
    println!("Mach range: [{mmin:.3}, {mmax:.3}]");
    if crosses(&mach, 1.0) {
        println!("transonic: supersonic pocket present (M > 1 over the bump)");
    } else {
        println!("note: flow is entirely subsonic at these settings");
    }

    // Textual contour bands.
    println!("\nMach band occupancy (the 'contour plot'):");
    let nb = 12;
    let bands = band_histogram(&mach, mmin, mmax + 1e-12, nb);
    let peak = *bands.iter().max().unwrap() as f64;
    for (b, &count) in bands.iter().enumerate() {
        let lo = mmin + (mmax - mmin) * b as f64 / nb as f64;
        let hi = mmin + (mmax - mmin) * (b + 1) as f64 / nb as f64;
        let bar = "#".repeat((50.0 * count as f64 / peak) as usize);
        println!("  M {lo:.2}-{hi:.2} {count:6} {bar}");
    }

    // Floor-line Mach distribution: acceleration over the bump, then the
    // shock (sharp drop) on the aft part.
    println!("\nMach just above the bump surface (x from -0.5 to 1.5):");
    let line = probe_line(
        mesh,
        &mach,
        Vec3::new(-0.5, 0.06, 0.35),
        Vec3::new(1.5, 0.06, 0.35),
        33,
    );
    for (t, m) in &line {
        let x = -0.5 + 2.0 * t;
        println!("  x={x:6.2}  M={m:.3} {}", "*".repeat((m * 30.0) as usize));
    }

    let out = case.out_dir().join("fig4_mach.vtk");
    let pressure = eul3d_core::postproc::pressure_field(cfg.gamma, mg.state(), mesh.nverts());
    let cp = eul3d_core::postproc::cp_field(cfg.gamma, cfg.mach, mg.state(), mesh.nverts());
    write_vtk_file(
        &out,
        mesh,
        &[("mach", &mach), ("pressure", &pressure), ("cp", &cp)],
    )
    .expect("vtk export");
    println!(
        "\nwrote {} (contour 'mach' to reproduce Figure 4)",
        out.display()
    );
}
