//! Equivalence tests: the distributed solver must reproduce the
//! sequential solver on the same mesh to accumulation-order round-off —
//! the paper's §4.4 observation that "the solution and convergence rates
//! obtained were, of course, identical".

use eul3d_delta::CommClass;
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::MeshSequence;

use crate::config::SolverConfig;
use crate::dist::{run_distributed, DistOptions, DistSetup};
use crate::gas::NVAR;
use crate::multigrid::{MultigridSolver, Strategy};
use crate::solver::SingleGridSolver;

fn small_seq(levels: usize) -> MeshSequence {
    let spec = BumpSpec {
        nx: 10,
        ny: 4,
        nz: 3,
        jitter: 0.1,
        ..BumpSpec::default()
    };
    MeshSequence::bump_sequence(&spec, levels)
}

fn compare_states(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    let mut max = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        max = max.max((x - y).abs());
    }
    assert!(
        max < tol,
        "{what}: max state deviation {max:.3e} exceeds {tol:.1e}"
    );
}

#[test]
fn distributed_single_grid_matches_serial() {
    let seq = small_seq(1);
    let cfg = SolverConfig {
        mach: 0.5,
        ..SolverConfig::default()
    };
    let mut serial = SingleGridSolver::new(seq.meshes[0].clone(), cfg);
    let hs = serial.solve(4);

    let setup = DistSetup::new(seq, 4, 20, 7);
    let result = run_distributed(&setup, cfg, Strategy::SingleGrid, 4, DistOptions::default());
    let hd = result.history();
    for (a, b) in hs.iter().zip(hd) {
        assert!(
            (a - b).abs() < 1e-9 * a.max(1e-30),
            "residual histories diverge: {a} vs {b}"
        );
    }
    let wd = result.global_state(setup.seq.meshes[0].nverts());
    compare_states(serial.state(), &wd, 1e-9, "single grid state");
}

#[test]
fn distributed_multigrid_matches_serial() {
    for strategy in [Strategy::VCycle, Strategy::WCycle] {
        let seq = small_seq(2);
        let cfg = SolverConfig {
            mach: 0.5,
            ..SolverConfig::default()
        };
        let nverts = seq.meshes[0].nverts();
        let mut serial = MultigridSolver::new(small_seq(2), cfg, strategy);
        let hs = serial.solve(3);

        let setup = DistSetup::new(seq, 3, 20, 7);
        let result = run_distributed(&setup, cfg, strategy, 3, DistOptions::default());
        for (a, b) in hs.iter().zip(result.history()) {
            assert!(
                (a - b).abs() < 1e-8 * a.max(1e-30),
                "{}: residual histories diverge: {a} vs {b}",
                strategy.label()
            );
        }
        let wd = result.global_state(nverts);
        compare_states(serial.state(), &wd, 1e-8, strategy.label());
    }
}

#[test]
fn single_rank_distributed_matches_serial_exactly_shaped() {
    let seq = small_seq(1);
    let cfg = SolverConfig::default();
    let mut serial = SingleGridSolver::new(seq.meshes[0].clone(), cfg);
    let hs = serial.solve(2);
    let setup = DistSetup::new(seq, 1, 10, 0);
    let result = run_distributed(&setup, cfg, Strategy::SingleGrid, 2, DistOptions::default());
    for (a, b) in hs.iter().zip(result.history()) {
        assert!((a - b).abs() < 1e-13 * a.max(1e-30));
    }
    // No halo traffic on one rank.
    let cc = result.cycle_counters();
    assert_eq!(cc[0].sent[CommClass::Halo as usize].messages, 0);
}

#[test]
fn refetch_ablation_same_answer_more_traffic() {
    let cfg = SolverConfig {
        mach: 0.5,
        ..SolverConfig::default()
    };
    let run = |refetch: bool| {
        let setup = DistSetup::new(small_seq(1), 4, 20, 7);
        let opts = DistOptions {
            refetch_per_loop: refetch,
            ..DistOptions::default()
        };
        let r = run_distributed(&setup, cfg, Strategy::SingleGrid, 3, opts);
        let halo_bytes: u64 = r
            .cycle_counters()
            .iter()
            .map(|c| c.sent[CommClass::Halo as usize].bytes)
            .sum();
        (
            r.history().to_vec(),
            r.global_state(setup.seq.meshes[0].nverts()),
            halo_bytes,
        )
    };
    let (h0, w0, b0) = run(false);
    let (h1, w1, b1) = run(true);
    for (a, b) in h0.iter().zip(&h1) {
        assert!((a - b).abs() < 1e-10 * a.max(1e-30), "answers must agree");
    }
    compare_states(&w0, &w1, 1e-10, "refetch ablation");
    assert!(
        b1 as f64 > b0 as f64 * 1.15,
        "refetching every loop must move materially more data: {b0} vs {b1}"
    );
}

#[test]
fn transfer_traffic_is_small_fraction() {
    // §4.4: "communication required for inter-grid transfers has been
    // found to constitute a small fraction of the total communication".
    let seq = small_seq(2);
    let cfg = SolverConfig::default();
    let setup = DistSetup::new(seq, 4, 20, 3);
    let r = run_distributed(&setup, cfg, Strategy::VCycle, 5, DistOptions::default());
    let cc = r.cycle_counters();
    let halo: u64 = cc
        .iter()
        .map(|c| c.sent[CommClass::Halo as usize].bytes)
        .sum();
    let transfer: u64 = cc
        .iter()
        .map(|c| c.sent[CommClass::Transfer as usize].bytes)
        .sum();
    assert!(transfer > 0, "multigrid must move transfer data");
    assert!(
        (transfer as f64) < 0.35 * halo as f64,
        "transfers ({transfer}) should be a small fraction of halo traffic ({halo})"
    );
}

#[test]
fn monitoring_off_skips_collectives() {
    let setup = DistSetup::new(small_seq(1), 3, 20, 7);
    let opts = DistOptions {
        monitor_residual: false,
        ..DistOptions::default()
    };
    let r = run_distributed(
        &setup,
        SolverConfig::default(),
        Strategy::SingleGrid,
        2,
        opts,
    );
    let cc = r.cycle_counters();
    for c in &cc {
        assert_eq!(c.sent[CommClass::Collective as usize].messages, 0);
    }
    assert!(r.history().iter().all(|x| x.is_nan()));
}

#[test]
fn roe_scheme_distributed_matches_serial_and_cuts_messages() {
    use crate::config::Scheme;
    let run_scheme = |scheme: Scheme| {
        let seq = small_seq(1);
        let cfg = SolverConfig {
            mach: 0.5,
            scheme,
            ..SolverConfig::default()
        };
        let mut serial = SingleGridSolver::new(seq.meshes[0].clone(), cfg);
        let hs = serial.solve(3);
        let setup = DistSetup::new(seq, 4, 20, 7);
        let r = run_distributed(&setup, cfg, Strategy::SingleGrid, 3, DistOptions::default());
        for (a, b) in hs.iter().zip(r.history()) {
            assert!(
                (a - b).abs() < 1e-9 * a.max(1e-30),
                "{scheme:?}: {a} vs {b}"
            );
        }
        let wd = r.global_state(setup.seq.meshes[0].nverts());
        compare_states(serial.state(), &wd, 1e-9, "roe dist");
        let msgs: u64 = r
            .cycle_counters()
            .iter()
            .map(|c| c.sent[CommClass::Halo as usize].messages)
            .sum();
        msgs
    };
    let jst_msgs = run_scheme(Scheme::CentralJst);
    let roe_msgs = run_scheme(Scheme::RoeUpwind);
    // Roe needs no Laplacian/sensor exchanges: materially fewer messages.
    assert!(
        (roe_msgs as f64) < 0.9 * jst_msgs as f64,
        "Roe {roe_msgs} vs JST {jst_msgs} halo messages"
    );
}

#[test]
fn steady_state_cycles_are_allocation_free() {
    // The tentpole property: after warm-up cycles populate every rank's
    // buffer pool, the entire multigrid cycle — halo gathers/scatters,
    // inter-grid transfers, monitoring collectives — must perform zero
    // fresh communication-buffer allocations.
    use crate::dist::DistSolver;
    use eul3d_delta::run_spmd;

    let seq = small_seq(2);
    let cfg = SolverConfig {
        mach: 0.5,
        ..SolverConfig::default()
    };
    let setup = DistSetup::new(seq, 4, 20, 7);
    let run = run_spmd(setup.nranks, |rank| {
        let mut solver =
            DistSolver::build(rank, &setup, cfg, Strategy::VCycle, DistOptions::default());
        for _ in 0..2 {
            let (sum, n) = solver.cycle(rank);
            let mut parts = [sum, n];
            rank.all_reduce_sum_in_place(&mut parts);
        }
        let warm = rank.counters.comm_allocs;
        let warm_phase = solver.counter.allocs();
        for _ in 0..5 {
            let (sum, n) = solver.cycle(rank);
            let mut parts = [sum, n];
            rank.all_reduce_sum_in_place(&mut parts);
        }
        (
            warm,
            rank.counters.comm_allocs,
            warm_phase,
            solver.counter.allocs(),
        )
    });
    for (id, &(warm, steady, warm_phase, steady_phase)) in run.results.iter().enumerate() {
        assert!(warm > 0, "rank {id}: warm-up must populate the pool");
        assert_eq!(
            steady,
            warm,
            "rank {id}: steady-state cycles allocated {} fresh comm buffers",
            steady - warm
        );
        // The executor layer's per-phase accounting sees the same thing.
        assert_eq!(steady_phase, warm_phase, "rank {id}: phase accounting");
    }
}

#[test]
fn distributed_freestream_preservation() {
    // Uniform flow on an all-far-field box, distributed: residual must
    // be round-off and state unchanged.
    let seq = MeshSequence::box_sequence(5, 2, 0.15, 9);
    let cfg = SolverConfig::default();
    let nverts = seq.meshes[0].nverts();
    let fsw = cfg.freestream().w;
    let setup = DistSetup::new(seq, 4, 20, 1);
    let r = run_distributed(&setup, cfg, Strategy::VCycle, 2, DistOptions::default());
    assert!(r.history().iter().all(|&x| x < 1e-11), "{:?}", r.history());
    let w = r.global_state(nverts);
    for i in 0..nverts {
        for c in 0..NVAR {
            assert!((w[i * NVAR + c] - fsw[c]).abs() < 1e-9);
        }
    }
}
