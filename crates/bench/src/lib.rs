//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every harness accepts environment overrides so the same binaries run
//! CI-scale by default and paper-scale when resources allow:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `EUL3D_NX` | fine-grid channel cells along x | 40 |
//! | `EUL3D_LEVELS` | multigrid levels | 4 |
//! | `EUL3D_CYCLES` | cycles per run | harness-specific |
//! | `EUL3D_RANKS` | comma list of Delta node counts | `256,512` |
//! | `EUL3D_MACH` | freestream Mach number | 0.675 |
//! | `EUL3D_OUT` | output directory for CSV/VTK | `target/experiments` |

use std::path::PathBuf;

use eul3d_core::SolverConfig;
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::MeshSequence;

/// One benchmark case: geometry, multigrid depth, flow conditions.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    pub nx: usize,
    pub levels: usize,
    pub cycles: usize,
    pub mach: f64,
    pub alpha_deg: f64,
    pub ranks: Vec<usize>,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl CaseSpec {
    /// Defaults (CI-scale), with environment overrides.
    pub fn from_env(default_cycles: usize) -> CaseSpec {
        let ranks = std::env::var("EUL3D_RANKS")
            .ok()
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .unwrap_or_else(|| vec![256, 512]);
        CaseSpec {
            nx: env_parse("EUL3D_NX", 40),
            levels: env_parse("EUL3D_LEVELS", 4),
            cycles: env_parse("EUL3D_CYCLES", default_cycles),
            mach: env_parse("EUL3D_MACH", 0.675),
            alpha_deg: 0.0,
            ranks,
        }
    }

    /// The bump-channel spec of the fine grid.
    pub fn bump_spec(&self) -> BumpSpec {
        BumpSpec {
            nx: self.nx,
            ny: (self.nx * 7 / 20).max(4),
            nz: (self.nx * 3 / 10).max(3),
            jitter: 0.12,
            ..BumpSpec::default()
        }
    }

    /// Generate the multigrid sequence (includes the §2.4 preprocessing:
    /// inter-grid search).
    pub fn sequence(&self) -> MeshSequence {
        MeshSequence::bump_sequence(&self.bump_spec(), self.levels)
    }

    /// Solver configuration for this case.
    pub fn config(&self) -> SolverConfig {
        SolverConfig {
            mach: self.mach,
            alpha_deg: self.alpha_deg,
            ..SolverConfig::default()
        }
    }

    /// Output directory (created on demand).
    pub fn out_dir(&self) -> PathBuf {
        let dir = std::env::var("EUL3D_OUT").unwrap_or_else(|_| "target/experiments".into());
        let p = PathBuf::from(dir);
        std::fs::create_dir_all(&p).expect("cannot create output directory");
        p
    }
}

/// Write a simple CSV file: header plus rows.
pub fn write_csv(path: &std::path::Path, header: &[&str], rows: &[Vec<String>]) {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create csv"));
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
}

/// Cycles needed to reduce the residual by `orders` decades relative to
/// the first entry (linear interpolation in log space); `None` if the
/// history never gets there.
pub fn cycles_to_orders(history: &[f64], orders: f64) -> Option<f64> {
    let r0 = history.first()?.log10();
    let target = r0 - orders;
    let mut prev = r0;
    for (i, &r) in history.iter().enumerate().skip(1) {
        let lr = r.log10();
        if lr <= target {
            let frac = (prev - target) / (prev - lr).max(1e-300);
            return Some((i - 1) as f64 + frac);
        }
        prev = lr;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_orders_interpolates() {
        // Residual drops one decade per cycle.
        let h = vec![1.0, 0.1, 0.01, 0.001];
        assert!((cycles_to_orders(&h, 2.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((cycles_to_orders(&h, 1.5).unwrap() - 1.5).abs() < 1e-12);
        assert!(cycles_to_orders(&h, 5.0).is_none());
    }

    #[test]
    fn case_spec_defaults() {
        let c = CaseSpec::from_env(100);
        assert!(c.nx >= 4);
        assert!(c.levels >= 1);
        assert_eq!(c.alpha_deg, 0.0);
        let spec = c.bump_spec();
        assert!(spec.ny >= 4 && spec.nz >= 3);
    }
}
