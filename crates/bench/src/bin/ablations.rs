//! Ablations of the design choices `DESIGN.md` calls out — one compact
//! report covering:
//!
//! 1. §4.3 incremental schedules (fetch-once) vs re-fetching per loop;
//! 2. partitioner quality: RSB vs RSB+KL vs RCB vs random, and its
//!    effect on modeled Delta communication;
//! 3. unrelated coarse meshes (the paper's choice) vs refinement-nested
//!    sequences;
//! 4. FMG (mesh-sequenced) start-up vs the paper's impulsive start;
//! 5. coarse-grid first-order dissipation vs full JST on coarse levels;
//! 6. W-cycle γ weighting (the V/W trade the paper frames as
//!    architecture-dependent);
//! 7. multigrid depth: convergence per cycle vs number of levels;
//! 8. coarse-level construction: unrelated meshes (the paper) vs
//!    refinement-nested vs agglomerated dual volumes.

use eul3d_bench::CaseSpec;
use eul3d_core::dist::{run_distributed, DistOptions, DistSetup};
use eul3d_core::{ConvergenceHistory, MultigridSolver, SolverConfig, Strategy};
use eul3d_delta::{CommClass, CostModel};
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::{MeshSequence, TetMesh};
use eul3d_partition::{
    kl_refine, random_partition, rcb_partition, FlatRsb, MultilevelRsb, PartitionOptions,
    PartitionQuality, Partitioner,
};
use eul3d_perf::TextTable;

fn spec(case: &CaseSpec) -> BumpSpec {
    BumpSpec {
        nx: case.nx / 2,
        ny: case.nx / 5,
        nz: case.nx / 6,
        jitter: 0.12,
        ..Default::default()
    }
}

fn main() {
    let case = CaseSpec::from_env(40);
    let cfg: SolverConfig = case.config();
    let model = CostModel::delta_i860();
    let nranks = 32;
    println!(
        "ablations: bump nx={}, M={}, {} cycles where applicable\n",
        case.nx / 2,
        cfg.mach,
        case.cycles
    );

    // ---- 1. incremental schedules -------------------------------------
    println!(
        "1) §4.3 fetch-once vs re-fetch per loop ({} ranks, single grid):",
        nranks
    );
    let mut rows = TextTable::new(&["variant", "halo MB/cycle", "comm s/cycle", "total s/cycle"]);
    for (name, refetch) in [("fetch-once (paper)", false), ("re-fetch per loop", true)] {
        let setup = DistSetup::new(MeshSequence::bump_sequence(&spec(&case), 1), nranks, 40, 7);
        let opts = DistOptions {
            refetch_per_loop: refetch,
            ..DistOptions::default()
        };
        let r = run_distributed(&setup, cfg, Strategy::SingleGrid, 10, opts);
        let cyc = r.cycle_counters();
        let b = model.evaluate(&cyc);
        let halo_mb: f64 = cyc
            .iter()
            .map(|c| c.sent[CommClass::Halo as usize].bytes as f64)
            .sum::<f64>()
            / 1e6
            / 10.0;
        rows.row(&[
            name.into(),
            format!("{halo_mb:.3}"),
            format!("{:.3}", b.comm_seconds / 10.0),
            format!("{:.3}", b.total_seconds / 10.0),
        ]);
    }
    println!("{}", rows.render());

    // ---- 2. partitioners ----------------------------------------------
    println!(
        "2) partitioner quality ({} parts) and its comm cost:",
        nranks
    );
    let mesh = eul3d_mesh::gen::bump_channel(&spec(&case));
    let mut rows = TextTable::new(&["partitioner", "cut %", "imbalance", "comm s/cycle"]);
    let popts = PartitionOptions::new(nranks).lanczos_iters(40).seed(7);
    let rsb_parts = |p: &dyn Partitioner| {
        p.partition(mesh.nverts(), &mesh.edges, &popts)
            .unwrap()
            .assignment
    };
    let parts_of: Vec<(&str, Vec<u32>)> = vec![
        ("rsb", rsb_parts(&FlatRsb)),
        ("multilevel", rsb_parts(&MultilevelRsb)),
        ("rsb+kl", {
            let mut p = rsb_parts(&FlatRsb);
            kl_refine(mesh.nverts(), &mesh.edges, &mut p, nranks, 1.06, 6);
            p
        }),
        ("rcb", rcb_partition(&mesh.coords, nranks)),
        ("random", random_partition(mesh.nverts(), nranks, 99)),
    ];
    for (name, parts) in parts_of {
        let q = PartitionQuality::compute(&parts, nranks, &mesh.edges);
        let setup = DistSetup::with_partitioner(
            MeshSequence::bump_sequence(&spec(&case), 1),
            nranks,
            |_m: &TetMesh| parts.clone(),
        );
        let r = run_distributed(&setup, cfg, Strategy::SingleGrid, 5, DistOptions::default());
        let b = model.evaluate(&r.cycle_counters());
        rows.row(&[
            name.into(),
            format!("{:.1}", 100.0 * q.cut_fraction),
            format!("{:.3}", q.max_imbalance),
            format!("{:.3}", b.comm_seconds / 5.0),
        ]);
    }
    println!("{}", rows.render());

    // ---- 3. unrelated vs nested sequences ------------------------------
    println!("3) unrelated coarse meshes (paper) vs refinement-nested:");
    let mut rows = TextTable::new(&["sequence", "levels (verts)", "orders/40 W-cycles"]);
    {
        let seq = MeshSequence::bump_sequence(&spec(&case), 3);
        let sizes = format!(
            "{:?}",
            seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>()
        );
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&[
            "unrelated".into(),
            sizes,
            format!("{:.2}", h.orders_reduced()),
        ]);
    }
    {
        let base = BumpSpec {
            nx: case.nx / 8,
            ny: case.nx / 20 + 2,
            nz: case.nx / 24 + 2,
            jitter: 0.12,
            ..Default::default()
        };
        let seq = MeshSequence::nested_bump_sequence(&base, 3);
        let sizes = format!(
            "{:?}",
            seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>()
        );
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&["nested".into(), sizes, format!("{:.2}", h.orders_reduced())]);
    }
    println!("{}", rows.render());

    // ---- 4. FMG start-up ------------------------------------------------
    println!("4) impulsive start (paper) vs FMG mesh sequencing:");
    let mut rows = TextTable::new(&["start", "flops", "residual after 20 W-cycles"]);
    {
        let mut mg = MultigridSolver::new(
            MeshSequence::bump_sequence(&spec(&case), 3),
            cfg,
            Strategy::WCycle,
        );
        let h = mg.solve(20);
        rows.row(&[
            "impulsive".into(),
            format!("{:.2e}", mg.counter.flops()),
            format!("{:.3e}", h.last().unwrap()),
        ]);
    }
    {
        let mut mg = MultigridSolver::new(
            MeshSequence::bump_sequence(&spec(&case), 3),
            cfg,
            Strategy::WCycle,
        );
        mg.fmg_init(8);
        let h = mg.solve(20);
        rows.row(&[
            "FMG(8)".into(),
            format!("{:.2e}", mg.counter.flops()),
            format!("{:.3e}", h.last().unwrap()),
        ]);
    }
    println!("{}", rows.render());

    // ---- 5. coarse-grid dissipation ------------------------------------
    println!("5) coarse-grid dissipation: first-order (robust) vs full JST:");
    let mut rows = TextTable::new(&["coarse dissipation", "orders/40 W-cycles", "flops"]);
    for (name, fo) in [("first-order", true), ("full JST", false)] {
        let cfg2 = SolverConfig {
            coarse_first_order: fo,
            ..cfg
        };
        let mut mg = MultigridSolver::new(
            MeshSequence::bump_sequence(&spec(&case), 3),
            cfg2,
            Strategy::WCycle,
        );
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&[
            name.into(),
            format!("{:.2}", h.orders_reduced()),
            format!("{:.2e}", mg.counter.flops()),
        ]);
    }
    println!("{}", rows.render());

    // ---- 6. cycle strategies --------------------------------------------
    println!("6) strategy trade (sequential work vs convergence):");
    let mut rows = TextTable::new(&["strategy", "orders/40 cycles", "flops", "orders per Gflop"]);
    for strategy in [Strategy::SingleGrid, Strategy::VCycle, Strategy::WCycle] {
        let mut mg =
            MultigridSolver::new(MeshSequence::bump_sequence(&spec(&case), 3), cfg, strategy);
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&[
            strategy.label().into(),
            format!("{:.2}", h.orders_reduced()),
            format!("{:.2e}", mg.counter.flops()),
            format!("{:.2}", h.orders_reduced() / (mg.counter.flops() / 1e9)),
        ]);
    }
    println!("{}", rows.render());

    // ---- 7. multigrid depth ----------------------------------------------
    println!("7) multigrid depth (W-cycle, 30 cycles):");
    let mut rows = TextTable::new(&["levels", "coarsest verts", "orders", "flops"]);
    for levels in 1..=4usize {
        let seq = MeshSequence::bump_sequence(&spec(&case), levels);
        let coarsest = seq.meshes.last().unwrap().nverts();
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let h = ConvergenceHistory::from_residuals(mg.solve(30));
        rows.row(&[
            levels.to_string(),
            coarsest.to_string(),
            format!("{:.2}", h.orders_reduced()),
            format!("{:.2e}", mg.counter.flops()),
        ]);
    }
    println!("{}", rows.render());
    println!("(1 level = pure single grid; each added level cheapens the long-wave error)");

    // ---- 8. coarse-level construction -----------------------------------
    println!("\n8) coarse-level construction (W-cycle, 40 cycles, ~3 levels):");
    let mut rows = TextTable::new(&["construction", "levels (cells)", "orders", "flops"]);
    {
        let seq = MeshSequence::bump_sequence(&spec(&case), 3);
        let sizes = format!(
            "{:?}",
            seq.meshes.iter().map(|m| m.nverts()).collect::<Vec<_>>()
        );
        let mut mg = MultigridSolver::new(seq, cfg, Strategy::WCycle);
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&[
            "unrelated meshes (paper)".into(),
            sizes,
            format!("{:.2}", h.orders_reduced()),
            format!("{:.2e}", mg.counter.flops()),
        ]);
    }
    {
        use eul3d_core::agglo::AggloMultigrid;
        let mesh = eul3d_mesh::gen::bump_channel(&spec(&case));
        let mut mg = AggloMultigrid::new(mesh, cfg, Strategy::WCycle, 3);
        let sizes = format!("{:?}", mg.level_sizes());
        let h = ConvergenceHistory::from_residuals(mg.solve(40));
        rows.row(&[
            "agglomerated dual volumes".into(),
            sizes,
            format!("{:.2}", h.orders_reduced()),
            format!("{:.2e}", mg.counter.flops()),
        ]);
    }
    println!("{}", rows.render());
    println!("(agglomeration needs no coarse meshing or inter-grid search — the");
    println!(" §2.4 preprocessing bottleneck disappears, at some convergence cost)");
}
