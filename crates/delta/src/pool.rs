//! Reusable communication pack buffers.
//!
//! PARTI's schedules are built once and executed thousands of times
//! (§4.1); the per-execution cost must therefore be pure pack/unpack and
//! wire traffic, with **zero steady-state heap allocation**. Every rank
//! owns a [`CommBuffers`] free-list: executors *take* an empty buffer to
//! pack into, hand it to the network, and *recycle* every received
//! payload back into the pool once its contents are unpacked. Buffers are
//! never freed — they circulate through the simulated network, so after a
//! warm-up exchange the pools of a balanced communication pattern are
//! self-sustaining and `take` never allocates again.
//!
//! The pool is deliberately simple: a best-fit scan of a short free-list
//! (smallest pooled capacity that satisfies the request). Best fit
//! matters: schedule streams reclaim their own returned buffer just
//! before re-taking the same size, and an exact-size match must win over
//! a larger stranger so each stream keeps its buffer instead of slowly
//! swapping buffers between streams of different sizes. A request that no
//! pooled buffer can satisfy allocates a fresh one (and reports the fresh
//! bytes, so [`crate::RankCounters`] can expose allocation counts to the
//! per-phase accounting layer); undersized buffers are left in the pool
//! for smaller requests rather than grown.

/// Per-rank free-lists of communication buffers.
#[derive(Debug, Default)]
pub struct CommBuffers {
    free_f64: Vec<Vec<f64>>,
    free_u32: Vec<Vec<u32>>,
}

fn take<T>(free: &mut Vec<Vec<T>>, cap: usize, elem_bytes: u64) -> (Vec<T>, u64) {
    let best = free
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= cap)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(k, _)| k);
    if let Some(k) = best {
        return (free.swap_remove(k), 0);
    }
    (Vec::with_capacity(cap), cap as u64 * elem_bytes)
}

impl CommBuffers {
    pub fn new() -> CommBuffers {
        CommBuffers::default()
    }

    /// Take an empty `f64` buffer with capacity ≥ `cap`. Returns the
    /// buffer and the number of freshly allocated bytes (0 on a pool hit).
    pub fn take_f64(&mut self, cap: usize) -> (Vec<f64>, u64) {
        take(&mut self.free_f64, cap, 8)
    }

    /// Return a consumed `f64` buffer to the pool (cleared, capacity kept).
    pub fn recycle_f64(&mut self, mut v: Vec<f64>) {
        v.clear();
        self.free_f64.push(v);
    }

    /// Take an empty `u32` buffer with capacity ≥ `cap`. Returns the
    /// buffer and the number of freshly allocated bytes (0 on a pool hit).
    pub fn take_u32(&mut self, cap: usize) -> (Vec<u32>, u64) {
        take(&mut self.free_u32, cap, 4)
    }

    /// Return a consumed `u32` buffer to the pool (cleared, capacity kept).
    pub fn recycle_u32(&mut self, mut v: Vec<u32>) {
        v.clear();
        self.free_u32.push(v);
    }

    /// Buffers currently pooled (both types), for tests and reporting.
    pub fn pooled(&self) -> usize {
        self.free_f64.len() + self.free_u32.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_only_on_miss() {
        let mut pool = CommBuffers::new();
        let (buf, fresh) = pool.take_f64(16);
        assert_eq!(fresh, 16 * 8);
        assert!(buf.is_empty() && buf.capacity() >= 16);
        pool.recycle_f64(buf);
        assert_eq!(pool.pooled(), 1);

        // Hit: same-size request reuses the recycled buffer.
        let (buf, fresh) = pool.take_f64(16);
        assert_eq!(fresh, 0);
        assert!(buf.is_empty());
        pool.recycle_f64(buf);

        // Smaller request also hits (best fit: the 16-cap buffer is the
        // smallest — and only — candidate).
        let (buf, fresh) = pool.take_f64(4);
        assert_eq!(fresh, 0);
        pool.recycle_f64(buf);

        // Larger request misses; the small buffer stays pooled.
        let (big, fresh) = pool.take_f64(64);
        assert_eq!(fresh, 64 * 8);
        assert_eq!(pool.pooled(), 1);
        pool.recycle_f64(big);
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn u32_pool_is_independent() {
        let mut pool = CommBuffers::new();
        let (b, fresh) = pool.take_u32(8);
        assert_eq!(fresh, 8 * 4);
        pool.recycle_u32(b);
        let (_f, fresh_f) = pool.take_f64(8);
        assert_eq!(fresh_f, 8 * 8, "f64 requests must not steal u32 buffers");
        let (b2, fresh2) = pool.take_u32(8);
        assert_eq!(fresh2, 0);
        assert!(b2.capacity() >= 8);
    }
}
