//! Umbrella crate for **eul3d-rs**, a Rust reproduction of
//! *"Implementation of a Parallel Unstructured Euler Solver on Shared and
//! Distributed Memory Architectures"* (Mavriplis, Das, Saltz, Vermeland,
//! Supercomputing '92 / ICASE 92-68).
//!
//! This crate re-exports the workspace members under stable names and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use eul3d_core as solver;
pub use eul3d_delta as delta;
pub use eul3d_mesh as mesh;
pub use eul3d_parti as parti;
pub use eul3d_partition as partition;
pub use eul3d_perf as perf;
