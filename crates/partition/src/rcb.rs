//! Recursive coordinate bisection (RCB): a cheap geometric baseline
//! partitioner. Splits the current vertex set at the weighted median of
//! the longest bounding-box axis. Used as the ablation comparator for RSB
//! (good balance, usually more cut edges on irregular geometries).

use eul3d_mesh::Vec3;

/// Partition vertices (given their coordinates) into `nparts` pieces by
/// recursive coordinate bisection.
pub fn rcb_partition(coords: &[Vec3], nparts: usize) -> Vec<u32> {
    assert!(nparts >= 1);
    let mut parts = vec![0u32; coords.len()];
    if nparts == 1 || coords.is_empty() {
        return parts;
    }
    let all: Vec<u32> = (0..coords.len() as u32).collect();
    let mut stack = vec![(all, 0u32, nparts)];
    while let Some((verts, base, np)) = stack.pop() {
        if np == 1 || verts.len() <= 1 {
            for &v in &verts {
                parts[v as usize] = base;
            }
            continue;
        }
        let np_left = np / 2;
        let np_right = np - np_left;

        // Longest axis of the subset's bounding box.
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = -lo;
        for &v in &verts {
            lo = lo.min(coords[v as usize]);
            hi = hi.max(coords[v as usize]);
        }
        let ext = hi - lo;
        let axis = if ext.x >= ext.y && ext.x >= ext.z {
            0
        } else if ext.y >= ext.z {
            1
        } else {
            2
        };

        let mut order = verts;
        order.sort_by(|&a, &b| {
            coords[a as usize]
                .axis(axis)
                .partial_cmp(&coords[b as usize].axis(axis))
                .unwrap()
                .then(a.cmp(&b))
        });
        let cut = order.len() * np_left / np;
        let right = order.split_off(cut);
        stack.push((order, base, np_left));
        stack.push((right, base + np_left as u32, np_right));
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use eul3d_mesh::gen::unit_box;

    #[test]
    fn rcb_is_balanced() {
        let m = unit_box(6, 0.2, 4);
        let p = rcb_partition(&m.coords, 8);
        let q = PartitionQuality::compute(&p, 8, &m.edges);
        assert!(q.max_imbalance < 1.05, "{q:?}");
    }

    #[test]
    fn rcb_two_parts_split_longest_axis() {
        // A slab longer in x must be split by an x plane.
        let coords: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new(i as f64, (i % 3) as f64 * 0.1, 0.0))
            .collect();
        let p = rcb_partition(&coords, 2);
        for (i, &r) in p.iter().enumerate() {
            assert_eq!(r, if i < 50 { 0 } else { 1 });
        }
    }

    #[test]
    fn rcb_nparts_one() {
        let coords = vec![Vec3::ZERO; 10];
        assert!(rcb_partition(&coords, 1).iter().all(|&r| r == 0));
    }

    #[test]
    fn rcb_cut_quality_beats_random() {
        let m = unit_box(6, 0.15, 5);
        let p = rcb_partition(&m.coords, 4);
        let q = PartitionQuality::compute(&p, 4, &m.edges);
        let pr = crate::random_partition(m.nverts(), 4, 2);
        let qr = PartitionQuality::compute(&pr, 4, &m.edges);
        assert!(q.cut_edges < qr.cut_edges);
    }
}
