//! The artificial dissipation operator `D(w)`: "a blend of Laplacian and
//! biharmonic operators on the conserved variables. The biharmonic
//! operator acts everywhere in the flow field except near shock waves,
//! where the Laplacian operator is turned on to prevent oscillations"
//! (§2.2). Assembled as the classic JST switched scheme in "a two-pass
//! loop over the edges".

use eul3d_mesh::Vec3;

use crate::counters::{FlopCounter, FLOPS_DISS_FO_EDGE, FLOPS_DISS_P1_EDGE, FLOPS_DISS_P2_EDGE};
#[allow(deprecated)]
use crate::gas::get5;
use crate::gas::{spectral_radius, NVAR};

/// Pass 1: undivided Laplacian of the conserved variables and the
/// pressure-sensor numerator/denominator, accumulated over edges.
///
/// `lapl` (n×5), `sens` (n×2 = [Σ(p_j−p_i), Σ(p_j+p_i)]) must be zeroed
/// by the caller (the distributed path zeroes ghosts separately).
#[deprecated(note = "use eul3d_kernels::jst_pass1_edges on plane-major state")]
#[allow(deprecated)]
pub fn laplacian_pass(
    edges: &[[u32; 2]],
    w: &[f64],
    p: &[f64],
    lapl: &mut [f64],
    sens: &mut [f64],
    counter: &mut FlopCounter,
) {
    for &[a, b] in edges {
        let (a, b) = (a as usize, b as usize);
        for c in 0..NVAR {
            let d = w[b * NVAR + c] - w[a * NVAR + c];
            lapl[a * NVAR + c] += d;
            lapl[b * NVAR + c] -= d;
        }
        let dp = p[b] - p[a];
        let sp = p[b] + p[a];
        sens[a * 2] += dp;
        sens[a * 2 + 1] += sp;
        sens[b * 2] -= dp;
        sens[b * 2 + 1] += sp;
    }
    counter.add(edges.len(), FLOPS_DISS_P1_EDGE);
}

/// Shock sensor `ν_i = |Σ(p_j − p_i)| / Σ(p_j + p_i)` from the pass-1
/// accumulators, for `n` vertices.
#[deprecated(note = "use eul3d_kernels::sensor_verts on plane-major accumulators")]
pub fn sensor_from_accumulators(sens: &[f64], nu: &mut [f64]) {
    for (i, nu_i) in nu.iter_mut().enumerate() {
        let num = sens[i * 2].abs();
        let den = sens[i * 2 + 1].abs().max(1e-300);
        *nu_i = num / den;
    }
}

/// Pass 2: assemble the switched Laplacian/biharmonic dissipation,
/// accumulating `d_ij = λ_ij [ ε₂ (w_j − w_i) − ε₄ (L_j − L_i) ]` into
/// `diss` (+ at `a`, − at `b`). `diss` must be zeroed by the caller.
#[deprecated(note = "use eul3d_kernels::jst_pass2_edges on plane-major state")]
#[allow(deprecated)]
#[allow(clippy::too_many_arguments)]
pub fn dissipation_pass(
    edges: &[[u32; 2]],
    coef: &[Vec3],
    w: &[f64],
    p: &[f64],
    lapl: &[f64],
    nu: &[f64],
    gamma: f64,
    k2: f64,
    k4: f64,
    diss: &mut [f64],
    counter: &mut FlopCounter,
) {
    for (e, &[a, b]) in edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        let wa = get5(w, a);
        let wb = get5(w, b);
        let lam = 0.5
            * (spectral_radius(gamma, &wa, p[a], coef[e])
                + spectral_radius(gamma, &wb, p[b], coef[e]));
        let eps2 = k2 * nu[a].max(nu[b]);
        let eps4 = (k4 - eps2).max(0.0);
        for c in 0..NVAR {
            let d2 = w[b * NVAR + c] - w[a * NVAR + c];
            let d4 = lapl[b * NVAR + c] - lapl[a * NVAR + c];
            let d = lam * (eps2 * d2 - eps4 * d4);
            diss[a * NVAR + c] += d;
            diss[b * NVAR + c] -= d;
        }
    }
    counter.add(edges.len(), FLOPS_DISS_P2_EDGE);
}

/// Single-pass first-order dissipation for coarse multigrid levels:
/// constant-coefficient scalar Laplacian `d_ij = k λ_ij (w_j − w_i)`.
/// Cheap and very robust — the usual choice on coarse grids, whose only
/// job is to smooth.
#[deprecated(note = "use eul3d_kernels::first_order_diss_edges on plane-major state")]
#[allow(deprecated)]
#[allow(clippy::too_many_arguments)]
pub fn dissipation_first_order(
    edges: &[[u32; 2]],
    coef: &[Vec3],
    w: &[f64],
    p: &[f64],
    gamma: f64,
    k: f64,
    diss: &mut [f64],
    counter: &mut FlopCounter,
) {
    for (e, &[a, b]) in edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        let wa = get5(w, a);
        let wb = get5(w, b);
        let lam = 0.5
            * (spectral_radius(gamma, &wa, p[a], coef[e])
                + spectral_radius(gamma, &wb, p[b], coef[e]));
        let kl = k * lam;
        for c in 0..NVAR {
            let d = kl * (w[b * NVAR + c] - w[a * NVAR + c]);
            diss[a * NVAR + c] += d;
            diss[b * NVAR + c] -= d;
        }
    }
    counter.add(edges.len(), FLOPS_DISS_FO_EDGE);
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::gas::{Freestream, GAMMA};
    use eul3d_mesh::gen::unit_box;

    fn setup(n: usize, seed: u64) -> (eul3d_mesh::TetMesh, Vec<f64>, Vec<f64>) {
        let m = unit_box(n, 0.15, seed);
        let fs = Freestream::new(GAMMA, 0.675, 0.0);
        let nv = m.nverts();
        let mut w = vec![0.0; nv * NVAR];
        for i in 0..nv {
            w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
        }
        let p = vec![fs.p; nv];
        (m, w, p)
    }

    #[test]
    fn uniform_flow_has_zero_dissipation() {
        let (m, w, p) = setup(4, 2);
        let nv = m.nverts();
        let mut lapl = vec![0.0; nv * NVAR];
        let mut sens = vec![0.0; nv * 2];
        let mut counter = FlopCounter::default();
        laplacian_pass(&m.edges, &w, &p, &mut lapl, &mut sens, &mut counter);
        assert!(lapl.iter().all(|&x| x.abs() < 1e-13));
        let mut nu = vec![0.0; nv];
        sensor_from_accumulators(&sens, &mut nu);
        assert!(nu.iter().all(|&x| x < 1e-13));
        let mut diss = vec![0.0; nv * NVAR];
        dissipation_pass(
            &m.edges,
            &m.edge_coef,
            &w,
            &p,
            &lapl,
            &nu,
            GAMMA,
            0.5,
            0.03,
            &mut diss,
            &mut counter,
        );
        assert!(diss.iter().all(|&x| x.abs() < 1e-13));
    }

    #[test]
    fn sensor_spikes_at_a_pressure_jump() {
        let (m, w, mut p) = setup(4, 3);
        let nv = m.nverts();
        // Pressure doubles for x > 0.5: a "shock".
        for (i, pt) in m.coords.iter().enumerate() {
            if pt.x > 0.5 {
                p[i] *= 2.0;
            }
        }
        let mut lapl = vec![0.0; nv * NVAR];
        let mut sens = vec![0.0; nv * 2];
        let mut counter = FlopCounter::default();
        laplacian_pass(&m.edges, &w, &p, &mut lapl, &mut sens, &mut counter);
        let mut nu = vec![0.0; nv];
        sensor_from_accumulators(&sens, &mut nu);
        let max_nu = nu.iter().cloned().fold(0.0f64, f64::max);
        assert!(max_nu > 0.1, "sensor must see the jump, max ν = {max_nu}");
        // Vertices far from the jump stay smooth.
        let far = m
            .coords
            .iter()
            .enumerate()
            .filter(|(_, c)| c.x < 0.2)
            .map(|(i, _)| nu[i])
            .fold(0.0f64, f64::max);
        assert!(far < 1e-12);
    }

    #[test]
    fn dissipation_conserves_totals() {
        // ±accumulation means the dissipation operator is globally
        // conservative whatever the state.
        let (m, mut w, p) = setup(3, 4);
        let nv = m.nverts();
        for (i, x) in w.iter_mut().enumerate() {
            *x *= 1.0 + 0.1 * ((i * 2654435761) % 97) as f64 / 97.0;
        }
        let mut lapl = vec![0.0; nv * NVAR];
        let mut sens = vec![0.0; nv * 2];
        let mut counter = FlopCounter::default();
        laplacian_pass(&m.edges, &w, &p, &mut lapl, &mut sens, &mut counter);
        let mut nu = vec![0.0; nv];
        sensor_from_accumulators(&sens, &mut nu);
        let mut diss = vec![0.0; nv * NVAR];
        dissipation_pass(
            &m.edges,
            &m.edge_coef,
            &w,
            &p,
            &lapl,
            &nu,
            GAMMA,
            0.5,
            0.03,
            &mut diss,
            &mut counter,
        );
        for c in 0..NVAR {
            let total: f64 = (0..nv).map(|i| diss[i * NVAR + c]).sum();
            assert!(total.abs() < 1e-9, "component {c} not conserved: {total}");
        }
    }

    #[test]
    fn switch_suppresses_biharmonic_at_shocks() {
        // With ν ≥ k4/k2 the ε4 term must vanish: eps4 = max(0, k4-eps2).
        let k2 = 0.5;
        let k4: f64 = 1.0 / 32.0;
        let nu_shock = 0.2; // eps2 = 0.1 > k4
        let eps2 = k2 * nu_shock;
        assert!((k4 - eps2).max(0.0) == 0.0);
    }

    #[test]
    fn first_order_dissipation_smooths_and_conserves() {
        let (m, mut w, p) = setup(3, 5);
        let nv = m.nverts();
        for i in 0..nv {
            w[i * NVAR] = 1.0 + 0.2 * (i % 5) as f64;
        }
        let mut diss = vec![0.0; nv * NVAR];
        let mut counter = FlopCounter::default();
        dissipation_first_order(
            &m.edges,
            &m.edge_coef,
            &w,
            &p,
            GAMMA,
            0.05,
            &mut diss,
            &mut counter,
        );
        let total: f64 = (0..nv).map(|i| diss[i * NVAR]).sum();
        assert!(total.abs() < 1e-10);
        assert!(diss.iter().any(|&x| x != 0.0));
    }
}
