//! Fault-tolerant distributed driver: deterministic fault injection,
//! failure detection, and checkpoint/rollback recovery on the simulated
//! Delta.
//!
//! The fault model and protocol (see `DESIGN.md` §6):
//!
//! * Every rank installs the same [`FaultPlan`]; each evaluates only the
//!   events it originates. Faults surface as [`FaultSignal`] unwinds out
//!   of the communication layer — `Killed` on the doomed rank,
//!   `Recover { epoch, .. }` on survivors when they detect loss,
//!   corruption, a death notice, a peer's abort, or a bounded-receive
//!   timeout.
//! * Survivors **roll back** to the newest checkpoint *every* live
//!   instance still holds (agreed by an `all_reduce_max` over negated
//!   checkpoint cycles), **rebuild** all PARTI schedules in a fresh,
//!   epoch-shifted tag space, and **resume** the cycle loop.
//! * A dead rank's partition is **adopted** by a deterministically
//!   chosen buddy (the first live virtual id after it): the buddy clones
//!   the dead rank's mailbox receiver and hosts a replica thread running
//!   this same loop. The computation graph — who owns which vertices,
//!   the order of every collective reduction — is unchanged, so a
//!   recovered run reproduces the fault-free residual history **bit for
//!   bit**; only the cost model sees the load imbalance.
//!
//! Checkpoints are in-memory and replicated: every `checkpoint_every`
//! cycles the owned fine-grid state is gathered to virtual rank 0,
//! reassembled into global layout, and broadcast back, so any survivor
//! can serve a restore. Two generations are kept (double-buffered), the
//! writer always overwriting the older slot, and rollback discards
//! checkpoints from beyond the rollback point — together this guarantees
//! the agreed rollback target is restorable everywhere even when a fault
//! lands in the middle of a checkpoint.
//!
//! The same rollback path doubles as the **numeric** recovery of the
//! solver-health guard (`DESIGN.md` §7): after every cycle each rank
//! scans its owned state, merges in the residual-divergence diagnosis,
//! and the machine agrees on the worst verdict with one pooled
//! `all_reduce_max` over [`HealthVerdict::encode`]. A bad verdict drives
//! the very same recovery state machine — epoch bump, schedule rebuild
//! in a shifted tag space, checkpoint rollback — with one deliberate
//! difference in what happens to the guard state itself: a *fault*
//! recovery restores [`GuardState`] from the checkpoint (so the replay
//! re-derives the identical CFL schedule, keeping bit-for-bit
//! composition with fault injection), while a *numeric* rollback keeps
//! the freshly backed-off state (so repeated failures compound the
//! backoff instead of livelocking on an identical replay).

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::Scope;
use std::time::Duration;

use eul3d_delta::{run_spmd, CommClass, FaultPlan, FaultSignal, Rank, RankCounters};
use eul3d_obs as obs;
use eul3d_partition::PartitionOptions;

use crate::config::SolverConfig;
use crate::counters::{PhaseCounters, FLOPS_GUARD_VERT};
use crate::error::SolverError;
use crate::executor::{count_vertex_loop, Phase};
use crate::gas::NVAR;
use crate::health::{
    check_state, GuardConfig, GuardOutcome, GuardState, HealthMonitor, HealthVerdict, RetryEvent,
};
use crate::multigrid::Strategy;

use super::setup::{partitioner_of, DistSetup};
use super::solver::{
    AdoptedOutput, DistOptions, DistRunResult, DistSolver, RankFate, RankOutput, RepartitionPolicy,
};

/// Fault-injection and recovery options of a distributed run. The
/// default is fault-free: empty plan, no checkpoints, and the
/// communication layer stays on its blocking (timeout-free) fast path.
#[derive(Debug, Clone)]
pub struct FaultOptions {
    /// The machine-wide fault plan (shared; each rank evaluates only the
    /// events it originates).
    pub plan: Arc<FaultPlan>,
    /// Checkpoint cadence in cycles (0 = never). A cadence of `k` also
    /// snapshots the initial state before cycle 1, so there is always a
    /// rollback target once the first commit lands.
    pub checkpoint_every: usize,
    /// Bounded-receive window used to detect silently lost messages.
    /// Simulation wall-clock, not cost-model time; only armed when the
    /// plan is non-empty.
    pub recv_timeout_ms: u64,
    /// Abort the run (loud panic) if any rank enters more than this many
    /// recovery epochs — a backstop against livelock on a hostile plan.
    pub max_recoveries: u32,
}

impl Default for FaultOptions {
    fn default() -> FaultOptions {
        FaultOptions {
            plan: Arc::new(FaultPlan::none()),
            checkpoint_every: 0,
            recv_timeout_ms: 1500,
            max_recoveries: 8,
        }
    }
}

/// Everything the SPMD body needs, bundled so replicas can share it.
struct Ctx<'a> {
    setup: &'a DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &'a FaultOptions,
    /// Solver-health guard configuration (`None` = unguarded run).
    guard: Option<GuardConfig>,
    /// Lazily-built per-era partition plans for mid-run repartitioning,
    /// shared by every instance of the run.
    plans: PlanCache,
}

/// Cache of migration-era [`DistSetup`]s. Era `k`'s plan is cut from the
/// shared mesh sequence with seed `pol.seed + k`, a pure function of the
/// era index, so every instance — and every rerun — computes the
/// identical layout. The first instance to reach an era builds its plan
/// under the lock (pure CPU, no communication, so holding it cannot
/// deadlock the machine); the rest share the `Arc`.
#[derive(Default)]
struct PlanCache {
    slots: Mutex<HashMap<usize, Arc<DistSetup>>>,
}

impl PlanCache {
    /// The setup for migration era `era` (callers never ask for era 0 —
    /// that is the run's own `ctx.setup`).
    fn setup_for(&self, base: &DistSetup, pol: &RepartitionPolicy, era: usize) -> Arc<DistSetup> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots
            .entry(era)
            .or_insert_with(|| {
                let opts = PartitionOptions::new(base.nranks)
                    .lanczos_iters(pol.lanczos_iters)
                    .seed(pol.seed.wrapping_add(era as u64))
                    .coarsen_target(pol.coarsen_target)
                    .refine_passes(pol.refine_passes)
                    .mapping(pol.mapping);
                Arc::new(DistSetup::from_arc(
                    base.seq.clone(),
                    base.nranks,
                    partitioner_of(pol.method),
                    &opts,
                ))
            })
            .clone()
    }
}

/// One in-memory checkpoint generation: the global fine-grid state at
/// the end of `cycle` cycles (`cycle == None` marks the slot invalid,
/// including mid-write), plus — on guarded runs — the wire-encoded
/// [`GuardState`] as of the same cycle, so a fault recovery resumes the
/// guard exactly where the checkpoint left it.
#[derive(Default)]
struct CkSnap {
    cycle: Option<usize>,
    w: Vec<f64>,
    guard: Vec<f64>,
    /// Trace position at the instant this snapshot was taken. Recovery
    /// rewinds the lane's trace here in lockstep with the state restore,
    /// so exports carry only the committed timeline.
    mark: obs::TraceMark,
}

/// Double-buffered checkpoint store. The writer invalidates and
/// overwrites the slot holding the *older* checkpoint, so the newest
/// committed generation survives a fault that lands mid-checkpoint.
#[derive(Default)]
struct CkStore {
    slots: [CkSnap; 2],
}

impl CkStore {
    /// Cycle of the newest committed checkpoint.
    fn latest(&self) -> Option<usize> {
        self.slots.iter().filter_map(|s| s.cycle).max()
    }

    fn get(&self, cycle: usize) -> Option<&[f64]> {
        self.slots
            .iter()
            .find(|s| s.cycle == Some(cycle))
            .map(|s| s.w.as_slice())
    }

    /// Wire-encoded guard state committed with checkpoint `cycle`
    /// (empty on unguarded runs).
    fn get_guard(&self, cycle: usize) -> Option<&[f64]> {
        self.slots
            .iter()
            .find(|s| s.cycle == Some(cycle))
            .map(|s| s.guard.as_slice())
    }

    /// Drop any committed generation at exactly `cycle`. A numeric
    /// rollback replays the rollback cycle, which re-commits a
    /// checkpoint at the same cycle number but with an *updated* guard
    /// transcript; invalidating the stale twin first keeps `get`
    /// unambiguous.
    fn invalidate(&mut self, cycle: usize) {
        for s in &mut self.slots {
            if s.cycle == Some(cycle) {
                s.cycle = None;
            }
        }
    }

    /// Invalidate every checkpoint from beyond the rollback point
    /// (`None` = all of them). Replayed cycles recommit the same
    /// (deterministic) snapshots; discarding keeps the divergence
    /// between any two instances' stores to at most one generation,
    /// which is what makes the agreed rollback target restorable
    /// everywhere.
    fn rollback_to(&mut self, keep_up_to: Option<usize>) {
        for s in &mut self.slots {
            if let Some(c) = s.cycle {
                if keep_up_to.is_none_or(|k| c > k) {
                    s.cycle = None;
                }
            }
        }
    }

    /// Start writing a new generation: pick the invalid or older slot,
    /// mark it invalid (commit happens by setting `cycle` afterwards),
    /// and hand it out. Never touches the newest committed slot.
    fn begin_write(&mut self) -> &mut CkSnap {
        let i = match (self.slots[0].cycle, self.slots[1].cycle) {
            (None, _) => 0,
            (_, None) => 1,
            (Some(a), Some(b)) => usize::from(a > b),
        };
        self.slots[i].cycle = None;
        &mut self.slots[i]
    }

    /// Install a received (shipped) checkpoint as a committed slot.
    fn install(&mut self, cycle: usize, w: Vec<f64>, guard: Vec<f64>) {
        self.invalidate(cycle);
        let s = self.begin_write();
        s.w = w;
        s.guard = guard;
        s.cycle = Some(cycle);
    }

    /// Trace mark of the committed checkpoint at `cycle` (the lane
    /// origin when the slot is unknown — restart-from-initial rewinds to
    /// an empty trace).
    fn mark_of(&self, cycle: usize) -> obs::TraceMark {
        self.slots
            .iter()
            .find(|s| s.cycle == Some(cycle))
            .map(|s| s.mark)
            .unwrap_or_default()
    }

    /// Update the trace mark of the committed checkpoint at `cycle` —
    /// recovery moves it past the epoch markers it just emitted, so a
    /// later rollback to the same slot keeps earlier epochs' markers.
    fn set_mark(&mut self, cycle: usize, mark: obs::TraceMark) {
        for s in &mut self.slots {
            if s.cycle == Some(cycle) {
                s.mark = mark;
            }
        }
    }
}

/// Per-instance guard runtime: the replicated controller + transcript
/// and the (never-snapshotted, always rebuilt) divergence monitor.
struct GuardLoop {
    gs: GuardState,
    monitor: HealthMonitor,
}

impl GuardLoop {
    fn new(target_cfl: f64, cfg: &GuardConfig) -> GuardLoop {
        GuardLoop {
            gs: GuardState::new(target_cfl, cfg),
            monitor: HealthMonitor::new(cfg),
        }
    }
}

/// What one `virtual_loop` iteration decided.
enum StepAction {
    /// Keep cycling.
    Continue,
    /// The guard agreed on a bad verdict at this cycle: enter a
    /// numeric-rollback recovery epoch. The backoff itself is applied
    /// inside the epoch's rollback agreement (see [`rebuild_guard`]), so
    /// the detection cycle and verdict travel with the transition.
    Numeric(usize, HealthVerdict),
    /// Done — the run completed, or the guard exhausted its retries
    /// (recorded in `LoopState::exhausted`; every rank agrees).
    Stop,
}

/// Rebuild the guard's control state after a rollback agreement: decode
/// the checkpoint-time state, replay the `on_clean` progression of the
/// clean cycles between the checkpoint and the detection point, and —
/// when the epoch carries an agreed bad verdict — apply the backoff and
/// record the retry event. Every instance runs this identically no
/// matter how it entered the epoch (its own verdict, a peer's abort
/// arriving first, or a fresh adoption), which is what keeps the CFL
/// schedule machine-wide uniform under any interleaving of numeric and
/// fault recoveries.
fn rebuild_guard(
    gl: &mut GuardLoop,
    gcfg: &GuardConfig,
    target_cfl: f64,
    blob: Option<&[f64]>,
    rollback: Option<usize>,
    verdict: Option<(usize, HealthVerdict)>,
    history: &[f64],
) {
    gl.gs = blob
        .and_then(|b| GuardState::decode(b, gcfg))
        .unwrap_or_else(|| GuardState::new(target_cfl, gcfg));
    if let Some((detect, vd)) = verdict {
        // The checkpoint predates the detection by `detect - rollback`
        // clean cycles; replaying their `on_clean` steps reproduces the
        // exact controller state (re-ramp progress included) the serial
        // guard backs off from.
        for _ in rollback.unwrap_or(0)..detect {
            gl.gs.ctl.on_clean();
        }
        let cfl_before = gl.gs.ctl.current;
        gl.gs.ctl.back_off();
        gl.gs.transcript.push(RetryEvent {
            cycle: detect,
            rollback_to: rollback,
            verdict: vd,
            cfl_before,
            cfl_after: gl.gs.ctl.current,
        });
    }
    gl.monitor.rebuild(history);
}

/// Mutable state of one virtual rank's cycle loop.
struct LoopState {
    solver: Option<DistSolver>,
    /// Cycles completed (== `history.len()`).
    cycle: usize,
    history: Vec<f64>,
    /// Cumulative `comm_allocs` after each cycle, truncated on rollback
    /// in lockstep with `history`.
    cycle_allocs: Vec<u64>,
    cks: CkStore,
    /// Phase counters of solvers retired by recovery rebuilds.
    retired: PhaseCounters,
    setup_counters: Option<RankCounters>,
    /// Dead ranks whose adoption this instance has already resolved.
    handled: Vec<bool>,
    /// Guard runtime (`None` = unguarded run).
    guard: Option<GuardLoop>,
    /// Cycle and verdict of the failure the guard gave up on.
    exhausted: Option<(usize, HealthVerdict)>,
    /// Current migration era: cycles `(k*every, (k+1)*every]` run in era
    /// `k`. Era 0 is the run's own partition.
    era: usize,
    /// The era's setup when `era > 0` (era 0 uses `ctx.setup`).
    era_setup: Option<Arc<DistSetup>>,
}

/// Move this instance into migration era `era`, fetching (or building)
/// its partition plan from the shared cache.
fn enter_era(ctx: &Ctx, st: &mut LoopState, pol: &RepartitionPolicy, era: usize) {
    st.era = era;
    st.era_setup = (era > 0).then(|| ctx.plans.setup_for(ctx.setup, pol, era));
}

/// Arm this instance's thread with a fresh ring tracer when the run is
/// traced. Each virtual rank (primary or replica) records on its own
/// thread, so the thread-local context yields one complete lane per
/// instance.
fn arm_trace(opts: &DistOptions) {
    if let Some(cap) = opts.trace_capacity {
        obs::install(Box::new(obs::RingTracer::new(cap)));
        if opts.real_time_lanes {
            obs::set_clock(obs::ClockSource::RealTime);
        }
    }
}

/// Disarm this instance's tracer and attach what it recorded to the
/// instance's output (no-op on untraced runs).
fn collect_trace(out: &mut RankOutput) {
    if let Some(t) = obs::take() {
        out.trace = t.snapshot();
        out.trace_dropped = t.dropped();
    }
}

fn comm_snap(rank: &Rank) -> (u64, u64, u64) {
    (
        rank.counters.total_messages(),
        rank.counters.total_bytes(),
        rank.counters.comm_allocs,
    )
}

/// The adopting buddy of dead rank `d`: the first live virtual id after
/// it, scanning cyclically. Every instance computes the same answer from
/// the (epoch-consistent) dead set, so no negotiation is needed.
fn buddy(rank: &Rank, d: usize) -> usize {
    let Some(b) = (1..rank.nranks)
        .map(|k| (d + k) % rank.nranks)
        .find(|&v| rank.live(v))
    else {
        unreachable!("every rank is dead; nobody left to adopt")
    };
    b
}

/// Owned prefix of a plane-major field as interleaved rows — the global
/// reassembly layout of [`RankOutput::w_owned`].
fn owned_rows_aos(w: &crate::soa::SoaState, n_owned: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_owned * NVAR);
    for k in 0..n_owned {
        out.extend_from_slice(&w.get5(k));
    }
    out
}

/// Copy this rank's owned fine-grid entries out of a global snapshot.
/// Ghost slots stay stale; every stage re-gathers them before use.
fn restore_from(s: &mut DistSolver, w_global: &[f64]) {
    let fine = &mut s.levels[0];
    let n = fine.n_owned();
    for k in 0..n {
        let g = fine.rm.owned_globals[k] as usize * NVAR;
        fine.st.w.set_row(k, &w_global[g..g + NVAR]);
    }
}

/// Collective checkpoint: gather owned fine-grid state to virtual rank
/// 0, reassemble the global layout there, broadcast it back, and commit
/// it into the double-buffered store on every instance. Charged to
/// [`Phase::Checkpoint`]. Runs over the persistent ping-pong pack-buffer
/// streams (`ck_tag` up to root, `ck_tag + 1` back down) rather than the
/// collective primitives: collectives migrate buffer ownership from
/// sender pool to receiver pool, which slowly churns fresh allocations
/// when the two directions move different sizes; pack streams return
/// every buffer to its owner, so steady-state checkpoints allocate
/// nothing.
fn take_checkpoint(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState, cycle: usize) {
    // The gather must walk the *current era's* ownership map — after a
    // migration, `ctx.setup`'s `owned_globals` no longer describe what
    // each rank holds. The snapshot itself is global-layout either way.
    let era_setup = st.era_setup.clone();
    let setup = era_setup.as_deref().unwrap_or(ctx.setup);
    let LoopState {
        solver, cks, guard, ..
    } = st;
    let Some(s) = solver.as_mut() else {
        unreachable!("checkpoint without a solver")
    };
    let (m0, b0, a0) = comm_snap(rank);
    // Mark the lane *before* the checkpoint span: a rollback to this
    // snapshot rewinds the trace here and the replay re-records the
    // (re-taken) checkpoint.
    let tmark = obs::mark();
    obs::emit(obs::Event::CheckpointBegin {
        cycle: cycle as u64,
    });
    let nglob = setup.seq.meshes[0].nverts() * NVAR;
    cks.invalidate(cycle);
    let slot = cks.begin_write();
    slot.mark = tmark;
    slot.w.resize(nglob, 0.0);
    slot.guard.clear();
    if let Some(gl) = guard {
        gl.gs.encode_into(&mut slot.guard);
    }
    let fine = &s.levels[0];
    if rank.id == 0 {
        for (k, &g) in fine.rm.owned_globals.iter().enumerate() {
            let dst = g as usize * NVAR;
            slot.w[dst..dst + NVAR].copy_from_slice(&fine.st.w.get5(k));
        }
        for src in 1..setup.nranks {
            let part = rank.recv_f64(src, s.ck_tag);
            for (k, &g) in setup.pms[0].ranks[src].owned_globals.iter().enumerate() {
                let dst = g as usize * NVAR;
                slot.w[dst..dst + NVAR].copy_from_slice(&part[k * NVAR..(k + 1) * NVAR]);
            }
            rank.return_packed_f64(src, s.ck_tag, part);
        }
        for dst in 1..setup.nranks {
            let mut buf = rank.take_pack_f64(dst, s.ck_tag + 1, nglob);
            buf.extend_from_slice(&slot.w);
            rank.send_packed_f64(dst, s.ck_tag + 1, buf, CommClass::Recovery);
        }
    } else {
        let n_owned = fine.n_owned();
        let mut buf = rank.take_pack_f64(0, s.ck_tag, n_owned * NVAR);
        for k in 0..n_owned {
            buf.extend_from_slice(&fine.st.w.get5(k));
        }
        rank.send_packed_f64(0, s.ck_tag, buf, CommClass::Recovery);
        let got = rank.recv_f64(0, s.ck_tag + 1);
        slot.w.copy_from_slice(&got);
        rank.return_packed_f64(0, s.ck_tag + 1, got);
    }
    slot.cycle = Some(cycle);
    obs::emit(obs::Event::CheckpointEnd {
        cycle: cycle as u64,
    });
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Checkpoint, m1 - m0, b1 - b0, a1 - a0);
}

/// One solver cycle, preceded by its due checkpoint, followed by the
/// residual-monitoring reduction and — on guarded runs — the health
/// check and its single pooled verdict agreement.
fn do_step(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState) -> StepAction {
    let c = st.cycle;
    // Everything in this iteration — including the leading checkpoint —
    // belongs to (1-based) fault cycle c + 1.
    rank.set_fault_cycle((c + 1) as u64);
    // A due migration runs first and commits its own checkpoint at `c`,
    // making the regular cadence checkpoint at the same boundary
    // redundant. After a fault rollback to exactly `c` the era already
    // equals `era_of(c)`, so the migration does not re-fire on replay —
    // which is fine, because its checkpoint is layout-independent and
    // the restored state is identical either way.
    let mut repartitioned = false;
    if let Some(pol) = ctx.opts.repartition {
        if c > 0 && c.is_multiple_of(pol.every) && st.era < pol.era_of(c) {
            do_repartition(rank, ctx, st, c, &pol);
            repartitioned = true;
        }
    }
    let k = ctx.fopts.checkpoint_every;
    if k > 0 && c.is_multiple_of(k) && !repartitioned {
        take_checkpoint(rank, ctx, st, c);
    }
    let LoopState {
        solver,
        cycle,
        history,
        cycle_allocs,
        guard,
        exhausted,
        ..
    } = st;
    let Some(s) = solver.as_mut() else {
        unreachable!("cycle without a solver")
    };
    if let Some(gl) = guard.as_ref() {
        s.cfg.cfl = gl.gs.ctl.current;
    }
    let (sum, n) = s.cycle(rank);
    let r = if ctx.opts.monitor_residual {
        let (m0, b0, a0) = comm_snap(rank);
        let mut parts = [sum, n];
        rank.all_reduce_sum_in_place(&mut parts);
        let (m1, b1, a1) = comm_snap(rank);
        s.counter
            .add_comm(Phase::Monitor, m1 - m0, b1 - b0, a1 - a0);
        (parts[0] / parts[1]).sqrt()
    } else {
        f64::NAN
    };
    if let (Some(gcfg), Some(gl)) = (&ctx.guard, guard.as_mut()) {
        let fine = &s.levels[0];
        let local =
            check_state(ctx.cfg.gamma, &fine.st.w, fine.n_owned()).worse(gl.monitor.check(r));
        count_vertex_loop(
            &mut s.counter,
            Phase::Guard,
            fine.n_owned(),
            FLOPS_GUARD_VERT,
        );
        // One pooled reduction agrees on the machine-wide worst verdict:
        // an element-wise max over the encodings is the encoding of the
        // worst (severity-major) verdict.
        let (m0, b0, a0) = comm_snap(rank);
        let mut enc = local.encode();
        rank.all_reduce_max_in_place(&mut enc);
        let (m1, b1, a1) = comm_snap(rank);
        s.counter.add_comm(Phase::Guard, m1 - m0, b1 - b0, a1 - a0);
        let agreed = HealthVerdict::decode(enc);
        if agreed.is_bad() {
            obs::emit(obs::Event::GuardVerdict {
                cycle: c as u64,
                severity: agreed.severity(),
            });
            // The failed cycle is discarded: neither its residual nor its
            // alloc snapshot is recorded, and `cycle` does not advance.
            // The backoff is NOT applied here: a peer that entered the
            // epoch through an abort instead of this return value must
            // end up with the identical guard state, so the application
            // is deferred to the epoch's rollback agreement.
            if gl.gs.retries_used() >= gcfg.max_retries {
                *exhausted = Some((c, agreed));
                return StepAction::Stop;
            }
            return StepAction::Numeric(c, agreed);
        }
        gl.monitor.push(r);
        gl.gs.ctl.on_clean();
    }
    history.push(r);
    cycle_allocs.push(rank.counters.comm_allocs);
    *cycle += 1;
    StepAction::Continue
}

/// Planned mid-run repartition at committed-cycle boundary `c`: commit a
/// checkpoint on the old layout, bump every rank into a fresh recovery
/// epoch, rebuild every schedule against the new era's partition plan,
/// and restore the (global-layout) checkpoint onto it.
///
/// Unlike fault recovery this is a *planned*, machine-synchronous event:
/// every rank reaches the boundary at the same point of its committed
/// timeline and takes the silent [`Rank::advance_epoch`] bump — no abort
/// broadcast, no rollback, no recovery count. A faster peer's new-epoch
/// rebuild traffic is held by the delta sieve until this rank's own bump
/// replays it. No trace pause is needed — nothing here is
/// timing-dependent.
fn do_repartition(
    rank: &mut Rank,
    ctx: &Ctx,
    st: &mut LoopState,
    c: usize,
    pol: &RepartitionPolicy,
) {
    // The checkpoint runs on the OLD layout (its streams are the old
    // solver's `ck_tag` in the old epoch's tag space) and charges its
    // own traffic to `Phase::Checkpoint`; the migration bracket below
    // starts after it so nothing is double-counted.
    take_checkpoint(rank, ctx, st, c);
    let (m0, b0, a0) = comm_snap(rank);
    obs::emit(obs::Event::RepartitionBegin { cycle: c as u64 });
    rank.advance_epoch(rank.epoch() + 1);
    if let Some(s) = st.solver.take() {
        st.retired.merge(&s.counter);
    }
    enter_era(ctx, st, pol, pol.era_of(c));
    let era_setup = st.era_setup.clone();
    let setup = era_setup.as_deref().unwrap_or(ctx.setup);
    let mut s = DistSolver::build_epoch(rank, setup, ctx.cfg, ctx.strategy, ctx.opts, rank.epoch());
    let Some(w0) = st.cks.get(c) else {
        unreachable!("repartition checkpoint committed just above")
    };
    restore_from(&mut s, w0);
    obs::emit(obs::Event::RepartitionEnd { cycle: c as u64 });
    // A later fault rollback to this slot replays from after the
    // migration markers, keeping them on the committed timeline.
    st.cks.set_mark(c, obs::mark());
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Recovery, m1 - m0, b1 - b0, a1 - a0);
    st.solver = Some(s);
}

/// Hand dead rank `d`'s partition to a replica thread on this node. The
/// replica enters [`virtual_loop`] in joining mode and its output lands
/// in `collector` when the run completes.
fn spawn_replica<'scope, 'env>(
    rank: &Rank,
    ctx: &'scope Ctx<'scope>,
    d: usize,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
) {
    let mut vrank = rank.adopt(d);
    let host = rank.id;
    let spawned = std::thread::Builder::new()
        .name(format!("delta-virt-{d}"))
        .stack_size(4 << 20)
        .spawn_scoped(scope, move || {
            arm_trace(&ctx.opts);
            let mut out = virtual_loop(&mut vrank, ctx, scope, collector, Some(host));
            collect_trace(&mut out);
            let counters = vrank.counters.clone();
            collector
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(AdoptedOutput {
                    vid: d,
                    out,
                    counters,
                });
        });
    if let Err(e) = spawned {
        unreachable!("spawn adopted-rank thread: {e}")
    }
}

/// Enter recovery epoch `e`: abort peers, adopt newly dead partitions
/// this instance is buddy for, rebuild every schedule in the epoch's tag
/// space, agree on the rollback target, restore, and ship the agreed
/// checkpoint (plus residual history and guard state) to replicas
/// spawned here.
///
/// `verdict` is set when this instance entered the epoch through its
/// own guard agreement (a numeric rollback). It is folded into the
/// rollback-agreement reduction so that instances swept into the same
/// epoch by a peer's abort — which never saw the verdict — apply the
/// identical backoff: the guard state is always rebuilt from the
/// checkpoint blob plus the *agreed* event, never from whichever
/// in-memory state a given entry path happened to hold.
fn do_recover<'scope, 'env>(
    rank: &mut Rank,
    ctx: &'scope Ctx<'scope>,
    st: &mut LoopState,
    e: u32,
    verdict: Option<(usize, HealthVerdict)>,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
) {
    let (m0, b0, a0) = comm_snap(rank);
    // Recording pauses for the whole protocol: this instance's clock and
    // event stream diverged at a thread-timing-dependent point (a peer's
    // abort lands wherever this rank happened to be), so nothing between
    // here and the rollback agreement is reproducible. Once the epoch's
    // outcome is agreed, the lane is rewound to the restored checkpoint's
    // mark and the epoch's markers are re-emitted on the committed
    // timeline.
    obs::pause();
    rank.begin_recovery(e);
    if let Some(s) = st.solver.take() {
        st.retired.merge(&s.counter);
    }
    let mut shipped: Vec<usize> = Vec::new();
    for d in 0..ctx.setup.nranks {
        if !rank.live(d) && !st.handled[d] {
            st.handled[d] = true;
            if buddy(rank, d) == rank.id {
                spawn_replica(rank, ctx, d, scope, collector);
                shipped.push(d);
            }
        }
    }
    // Agree on the newest checkpoint every instance can restore:
    // min over instances of their newest commit, via a max of negated
    // cycles. An instance with nothing to offer forces a restart from
    // initial conditions (+inf -> agreed = -inf); replicas spawned this
    // epoch contribute -inf (unconstraining) and get the result shipped.
    // Elements 1..5 piggyback the numeric verdict (flag, detection
    // cycle, encoded verdict): the max over ranks recovers it on every
    // instance, whichever way each one entered the epoch.
    let mut v = [f64::NEG_INFINITY; 5];
    v[0] = match st.cks.latest() {
        Some(c) => -(c as f64),
        None => f64::INFINITY,
    };
    if let Some((c, vd)) = verdict {
        let enc = vd.encode();
        v[1] = 1.0;
        v[2] = c as f64;
        v[3] = enc[0];
        v[4] = enc[1];
    }
    // With repartitioning armed, the rollback agreement must run BEFORE
    // the rebuild: the agreed cycle selects which migration era's plan
    // every instance rebuilds against. Without it, keep the historical
    // build-then-agree order so fault-only runs are byte-identical to
    // before. The policy is a run-wide constant, so every instance picks
    // the same order and the epoch's collective sequence stays
    // machine-consistent.
    let mut s = if let Some(pol) = ctx.opts.repartition {
        rank.all_reduce_max_in_place(&mut v);
        let target = if v[0].is_finite() {
            pol.era_of(-v[0] as usize)
        } else {
            0
        };
        if target != st.era {
            enter_era(ctx, st, &pol, target);
        }
        let era_setup = st.era_setup.clone();
        let setup = era_setup.as_deref().unwrap_or(ctx.setup);
        DistSolver::build_epoch(rank, setup, ctx.cfg, ctx.strategy, ctx.opts, rank.epoch())
    } else {
        let s = DistSolver::build_epoch(
            rank,
            ctx.setup,
            ctx.cfg,
            ctx.strategy,
            ctx.opts,
            rank.epoch(),
        );
        rank.all_reduce_max_in_place(&mut v);
        s
    };
    let agreed = -v[0];
    let numeric = (v[1] > 0.0).then(|| (v[2] as usize, HealthVerdict::decode([v[3], v[4]])));
    let mut rewind_to = obs::TraceMark::default();
    if agreed.is_finite() {
        let c = agreed as usize;
        rewind_to = st.cks.mark_of(c);
        let Some(w0) = st.cks.get(c) else {
            unreachable!("agreed rollback target missing from this instance's store")
        };
        restore_from(&mut s, w0);
        st.cycle = c;
        st.history.truncate(c);
        st.cycle_allocs.truncate(c);
        st.cks.rollback_to(Some(c));
        if let (Some(gcfg), Some(gl)) = (&ctx.guard, st.guard.as_mut()) {
            rebuild_guard(
                gl,
                gcfg,
                ctx.cfg.cfl,
                st.cks.get_guard(c),
                Some(c),
                numeric,
                &st.history,
            );
        }
        for &d in &shipped {
            let Some(w) = st.cks.get(c) else {
                unreachable!("just restored from it")
            };
            let mut buf = rank.take_f64(w.len());
            buf.extend_from_slice(w);
            rank.send_f64(d, s.ck_tag, buf, CommClass::Recovery);
            let mut h = rank.take_f64(st.history.len());
            h.extend_from_slice(&st.history);
            rank.send_f64(d, s.ck_tag + 1, h, CommClass::Recovery);
            if st.guard.is_some() {
                // Second message on the ck_tag stream (FIFO after `w`):
                // the checkpoint's guard state, so the replica replays
                // the identical CFL schedule.
                let blob = st.cks.get_guard(c).unwrap_or(&[]);
                let mut g = rank.take_f64(blob.len());
                g.extend_from_slice(blob);
                rank.send_f64(d, s.ck_tag, g, CommClass::Recovery);
            }
        }
    } else {
        // Nobody has a usable checkpoint: restart the (deterministic)
        // run from the freshly built initial state.
        st.cycle = 0;
        st.history.clear();
        st.cycle_allocs.clear();
        st.cks.rollback_to(None);
        if let (Some(gcfg), Some(gl)) = (&ctx.guard, st.guard.as_mut()) {
            rebuild_guard(gl, gcfg, ctx.cfg.cfl, None, None, numeric, &[]);
        }
    }
    if let Some(gl) = st.guard.as_ref() {
        s.cfg.cfl = gl.gs.ctl.current;
    }
    obs::rewind(rewind_to);
    obs::resume();
    obs::emit(obs::Event::RecoveryBegin { epoch: e });
    emit_guard_markers(st, numeric);
    obs::emit(obs::Event::RecoveryEnd { epoch: e });
    if agreed.is_finite() {
        st.cks.set_mark(agreed as usize, obs::mark());
    }
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Recovery, m1 - m0, b1 - b0, a1 - a0);
    st.solver = Some(s);
}

/// Re-emit the guard markers a numeric epoch carries — the agreed
/// verdict and the backoff's CFL change. Their original emissions sat in
/// rewound (discarded) work or happened while recording was paused, so
/// the committed timeline re-records them inside the recovery span.
fn emit_guard_markers(st: &LoopState, numeric: Option<(usize, HealthVerdict)>) {
    let Some((c, vd)) = numeric else { return };
    obs::emit(obs::Event::GuardVerdict {
        cycle: c as u64,
        severity: vd.severity(),
    });
    if let Some(ev) = st.guard.as_ref().and_then(|gl| gl.gs.transcript.last()) {
        obs::emit(obs::Event::CflChange {
            from_bits: ev.cfl_before.to_bits(),
            to_bits: ev.cfl_after.to_bits(),
        });
    }
}

/// A freshly adopted replica joins the recovery epoch in progress:
/// rebuild (same collective sequence as the survivors' rebuild), take
/// part in the rollback agreement without constraining it, and receive
/// the agreed checkpoint and history from the hosting buddy.
fn do_join(rank: &mut Rank, ctx: &Ctx, st: &mut LoopState, host: usize) {
    let (m0, b0, a0) = comm_snap(rank);
    // Same pause discipline as `do_recover`: the join protocol runs on a
    // clock base that depends on when this replica was spawned, so the
    // lane starts recording from its origin only once the agreed state
    // is installed.
    obs::pause();
    // Mirror of `do_recover`'s ordering rule: with repartitioning armed
    // the (unconstraining) agreement runs first so this replica rebuilds
    // against the same era plan as the survivors.
    let mut v = [f64::NEG_INFINITY; 5];
    let mut s = if let Some(pol) = ctx.opts.repartition {
        rank.all_reduce_max_in_place(&mut v);
        let target = if v[0].is_finite() {
            pol.era_of(-v[0] as usize)
        } else {
            0
        };
        if target != st.era {
            enter_era(ctx, st, &pol, target);
        }
        let era_setup = st.era_setup.clone();
        let setup = era_setup.as_deref().unwrap_or(ctx.setup);
        DistSolver::build_epoch(rank, setup, ctx.cfg, ctx.strategy, ctx.opts, rank.epoch())
    } else {
        let s = DistSolver::build_epoch(
            rank,
            ctx.setup,
            ctx.cfg,
            ctx.strategy,
            ctx.opts,
            rank.epoch(),
        );
        rank.all_reduce_max_in_place(&mut v);
        s
    };
    let agreed = -v[0];
    let numeric = (v[1] > 0.0).then(|| (v[2] as usize, HealthVerdict::decode([v[3], v[4]])));
    if agreed.is_finite() {
        let c = agreed as usize;
        let w = rank.recv_f64(host, s.ck_tag);
        let h = rank.recv_f64(host, s.ck_tag + 1);
        st.history.clear();
        st.history.extend_from_slice(&h);
        rank.recycle_f64(h);
        let gblob = if st.guard.is_some() {
            rank.recv_f64(host, s.ck_tag)
        } else {
            Vec::new()
        };
        if let (Some(gcfg), Some(gl)) = (&ctx.guard, st.guard.as_mut()) {
            rebuild_guard(
                gl,
                gcfg,
                ctx.cfg.cfl,
                Some(&gblob),
                Some(c),
                numeric,
                &st.history,
            );
        }
        st.cks.install(c, w, gblob);
        let Some(w0) = st.cks.get(c) else {
            unreachable!("just installed")
        };
        restore_from(&mut s, w0);
        st.cycle = c;
    } else {
        st.cycle = 0;
        st.history.clear();
        if let (Some(gcfg), Some(gl)) = (&ctx.guard, st.guard.as_mut()) {
            rebuild_guard(gl, gcfg, ctx.cfg.cfl, None, None, numeric, &[]);
        }
    }
    // The replica has no alloc record of the cycles it skipped past;
    // pad with the current counter so tail deltas stay meaningful.
    st.cycle_allocs.clear();
    st.cycle_allocs.resize(st.cycle, rank.counters.comm_allocs);
    st.setup_counters = Some(rank.counters.clone());
    if let Some(gl) = st.guard.as_ref() {
        s.cfg.cfl = gl.gs.ctl.current;
    }
    obs::rewind(obs::TraceMark::default());
    obs::resume();
    obs::emit(obs::Event::RecoveryBegin {
        epoch: rank.epoch(),
    });
    emit_guard_markers(st, numeric);
    obs::emit(obs::Event::RecoveryEnd {
        epoch: rank.epoch(),
    });
    if agreed.is_finite() {
        st.cks.set_mark(agreed as usize, obs::mark());
    }
    let (m1, b1, a1) = comm_snap(rank);
    s.counter
        .add_comm(Phase::Recovery, m1 - m0, b1 - b0, a1 - a0);
    st.solver = Some(s);
}

/// The cycle loop of one virtual rank, primary or adopted replica: a
/// state machine of `build | join | recover | step` actions, each run
/// under `catch_unwind` so [`FaultSignal`] unwinds from the
/// communication layer become state transitions instead of crashes.
fn virtual_loop<'scope, 'env>(
    rank: &mut Rank,
    ctx: &'scope Ctx<'scope>,
    scope: &'scope Scope<'scope, 'env>,
    collector: &'scope Mutex<Vec<AdoptedOutput>>,
    join_from: Option<usize>,
) -> RankOutput {
    let nranks = ctx.setup.nranks;
    let mut st = LoopState {
        solver: None,
        cycle: 0,
        history: Vec::new(),
        cycle_allocs: Vec::new(),
        cks: CkStore::default(),
        retired: PhaseCounters::default(),
        setup_counters: None,
        handled: vec![false; nranks],
        guard: ctx.guard.as_ref().map(|g| GuardLoop::new(ctx.cfg.cfl, g)),
        exhausted: None,
        era: 0,
        era_setup: None,
    };
    if join_from.is_some() {
        // Ranks already dead when this replica was spawned were adopted
        // by others (or are this replica itself); never re-adopt them.
        for d in 0..nranks {
            st.handled[d] = !rank.live(d);
        }
    }
    // A pending recovery epoch, carrying the agreed verdict when it is
    // a numeric (guard-initiated) rollback rather than a fault recovery.
    let mut pending: Option<(u32, Option<(usize, HealthVerdict)>)> = None;
    let mut join = join_from;
    loop {
        if pending.is_some() && rank.counters.recoveries >= u64::from(ctx.fopts.max_recoveries) {
            panic!(
                "virtual rank {} exceeded max_recoveries ({}): fault plan livelocks",
                rank.id, ctx.fopts.max_recoveries
            );
        }
        let res = catch_unwind(AssertUnwindSafe(|| {
            if let Some((e, verdict)) = pending.take() {
                do_recover(rank, ctx, &mut st, e, verdict, scope, collector);
            } else if let Some(host) = join.take() {
                do_join(rank, ctx, &mut st, host);
            } else if st.solver.is_none() {
                st.solver = Some(DistSolver::build(
                    rank,
                    ctx.setup,
                    ctx.cfg,
                    ctx.strategy,
                    ctx.opts,
                ));
                st.setup_counters = Some(rank.counters.clone());
            } else if st.cycle < ctx.cycles {
                return do_step(rank, ctx, &mut st);
            } else {
                return StepAction::Stop;
            }
            StepAction::Continue
        }));
        match res {
            Ok(StepAction::Stop) => break,
            Ok(StepAction::Continue) => {}
            Ok(StepAction::Numeric(c, vd)) => {
                // Every rank agreed on the bad verdict through the
                // pooled reduction; ranks that process the result before
                // a peer's abort reaches them land here, the rest are
                // swept in by the abort — the rollback agreement then
                // redistributes the verdict so both entry paths apply
                // the identical backoff.
                pending = Some((rank.epoch() + 1, Some((c, vd))));
            }
            Err(payload) => match payload.downcast::<FaultSignal>() {
                Ok(sig) => match *sig {
                    FaultSignal::Killed => {
                        rank.announce_death();
                        let mut phases = st.retired;
                        if let Some(s) = &st.solver {
                            phases.merge(&s.counter);
                        }
                        rank.add_flops(phases.flops());
                        return RankOutput {
                            history: st.history,
                            cycle_allocs: st.cycle_allocs,
                            w_owned: Vec::new(),
                            owned_globals: Vec::new(),
                            setup_counters: st
                                .setup_counters
                                .unwrap_or_else(|| rank.counters.clone()),
                            phases,
                            fate: RankFate::Died { cycle: st.cycle },
                            guard: None,
                            trace: Vec::new(),
                            trace_dropped: 0,
                            adopted: Vec::new(),
                        };
                    }
                    FaultSignal::Recover { epoch, .. } => {
                        pending = Some((epoch.max(rank.epoch() + 1), None));
                    }
                },
                Err(other) => resume_unwind(other),
            },
        }
    }
    let Some(solver) = st.solver.take() else {
        unreachable!("completed without a solver")
    };
    let mut phases = st.retired;
    phases.merge(&solver.counter);
    rank.add_flops(phases.flops());
    let fine = &solver.levels[0];
    let guard = st.guard.take().map(|gl| GuardOutcome {
        final_cfl: gl.gs.ctl.current,
        target_cfl: ctx.cfg.cfl,
        exhausted: st.exhausted,
        transcript: gl.gs.transcript,
    });
    RankOutput {
        history: st.history,
        cycle_allocs: st.cycle_allocs,
        w_owned: owned_rows_aos(&fine.st.w, fine.n_owned()),
        owned_globals: fine.rm.owned_globals.clone(),
        setup_counters: st.setup_counters.unwrap_or_default(),
        phases,
        fate: RankFate::Completed,
        guard,
        trace: Vec::new(),
        trace_dropped: 0,
        adopted: Vec::new(),
    }
}

/// Run a distributed solve under a fault plan. With the default
/// (fault-free) options this reduces to the plain cycle loop of
/// [`super::solver::run_distributed`]; with faults, ranks detect
/// failures, roll back to the last replicated checkpoint, rebuild their
/// schedules, and converge to the bit-identical residual history of the
/// fault-free run.
pub fn run_distributed_with_faults(
    setup: &DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &FaultOptions,
) -> DistRunResult {
    run_with_ctx(setup, cfg, strategy, cycles, opts, fopts, None)
}

/// Run a distributed solve under the solver-health guard (and,
/// optionally, a fault plan): every cycle ends with a state/residual
/// health check and one pooled verdict agreement; a bad verdict backs
/// the CFL off and rolls every rank back through the same epoch-shifted
/// recovery path faults use. Exhausted retries surface as
/// [`SolverError::RetriesExhausted`] carrying the full transcript.
///
/// The guard needs the per-cycle residual, so `opts.monitor_residual`
/// must be on; a `checkpoint_every` of 0 is promoted to the guard's
/// snapshot cadence so there is always a rollback target.
pub fn run_distributed_guarded(
    setup: &DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &FaultOptions,
    guard: &GuardConfig,
) -> Result<DistRunResult, SolverError> {
    guard.validate()?;
    if !opts.monitor_residual {
        return Err(SolverError::GuardRequiresMonitoring);
    }
    let mut fopts = fopts.clone();
    if fopts.checkpoint_every == 0 {
        fopts.checkpoint_every = guard.snapshot_every;
    }
    // Numeric rollbacks consume recovery epochs too; keep the livelock
    // backstop above the guard's own retry budget.
    fopts.max_recoveries = fopts.max_recoveries.max(
        u32::try_from(guard.max_retries)
            .unwrap_or(u32::MAX)
            .saturating_add(8),
    );
    let res = run_with_ctx(setup, cfg, strategy, cycles, opts, &fopts, Some(*guard));
    if let Some((cycle, verdict)) = res.guard_outcome().and_then(|g| g.exhausted) {
        let transcript = res
            .guard_outcome()
            .map(|g| g.transcript.clone())
            .unwrap_or_default();
        return Err(SolverError::RetriesExhausted {
            cycle,
            verdict,
            transcript,
            max_retries: guard.max_retries,
        });
    }
    Ok(res)
}

fn run_with_ctx(
    setup: &DistSetup,
    cfg: SolverConfig,
    strategy: Strategy,
    cycles: usize,
    opts: DistOptions,
    fopts: &FaultOptions,
    guard: Option<GuardConfig>,
) -> DistRunResult {
    let ctx = Ctx {
        setup,
        cfg,
        strategy,
        cycles,
        opts,
        fopts,
        guard,
        plans: PlanCache::default(),
    };
    // The hybrid backend's shared-memory windows carry only fault-free
    // halo streams: fault injection lives in the channel transport, so a
    // non-empty plan — or a repartition policy, whose migrations reuse
    // the same epoch machinery — silently keeps everything on the
    // channels (the recovery machinery then works unchanged).
    let windows = match opts.backend {
        super::solver::DistBackend::Hybrid
            if fopts.plan.is_empty() && opts.repartition.is_none() =>
        {
            let timeout = opts
                .wedge_timeout_ms
                .map(Duration::from_millis)
                .unwrap_or(eul3d_delta::DEFAULT_WEDGE_TIMEOUT);
            Some(eul3d_delta::WindowRegistry::with_timeout(
                setup.nranks,
                timeout,
            ))
        }
        _ => None,
    };
    let t0 = std::time::Instant::now();
    let run = run_spmd(setup.nranks, |rank| {
        rank.install_faults(
            fopts.plan.clone(),
            Some(Duration::from_millis(fopts.recv_timeout_ms)),
        );
        if let Some(reg) = &windows {
            rank.install_windows(Arc::clone(reg));
        }
        arm_trace(&opts);
        let collector = Mutex::new(Vec::new());
        let mut out = std::thread::scope(|scope| virtual_loop(rank, &ctx, scope, &collector, None));
        collect_trace(&mut out);
        for a in collector
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            // The physical node pays for the replicas it hosts.
            rank.counters.merge(&a.counters);
            out.adopted.push(a);
        }
        out
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    DistRunResult { run, wall_seconds }
}
