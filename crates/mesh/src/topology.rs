//! Topology extraction: unique edge lists, vertex–edge adjacency, tet face
//! neighbours, and boundary-face discovery.

use std::collections::HashMap;

use crate::types::Csr;

/// The six edges of a tetrahedron as local vertex pairs `(a, b)`, together
/// with the remaining pair `(c, d)` ordered so that `(a, b, c, d)` is an
/// even permutation of `(0, 1, 2, 3)`. The even ordering is what gives the
/// median-dual face piece for the edge a consistent `a → b` orientation in
/// positively-oriented tets (see [`crate::dual`]).
pub const TET_EDGES: [[usize; 4]; 6] = [
    [0, 1, 2, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [1, 2, 0, 3],
    [1, 3, 2, 0],
    [2, 3, 0, 1],
];

/// The four faces of a tetrahedron, wound so that for a positively-oriented
/// tet the right-hand rule gives the **outward** normal. `TET_FACES[k]` is
/// the face opposite local vertex `k`.
pub const TET_FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]];

/// Extract the unique undirected edge list of a tet mesh. Each edge is
/// stored as `[a, b]` with `a < b`; the list is sorted lexicographically,
/// which clusters the edges incident to low-numbered vertices (the cache
/// ordering of §4.2 falls out of vertex numbering alone).
pub fn extract_edges(tets: &[[u32; 4]]) -> Vec<[u32; 2]> {
    let mut edges: Vec<[u32; 2]> = Vec::with_capacity(tets.len() * 6);
    for t in tets {
        for le in &TET_EDGES {
            let a = t[le[0]];
            let b = t[le[1]];
            edges.push(if a < b { [a, b] } else { [b, a] });
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Locate the index of edge `(a, b)` (any order) in a lexicographically
/// sorted edge list built by [`extract_edges`].
#[inline]
pub fn find_edge(edges: &[[u32; 2]], a: u32, b: u32) -> Option<usize> {
    let key = if a < b { [a, b] } else { [b, a] };
    edges.binary_search(&key).ok()
}

/// Vertex → incident-edge CSR adjacency.
pub fn vertex_edge_adjacency(nverts: usize, edges: &[[u32; 2]]) -> Csr {
    let pairs = edges
        .iter()
        .enumerate()
        .flat_map(|(e, &[a, b])| [(a, e as u32), (b, e as u32)]);
    // `flat_map` of a clonable closure over a slice iterator is Clone.
    Csr::from_pairs(nverts, pairs)
}

/// Key identifying a face independent of winding: the sorted vertex triple.
#[inline]
fn face_key(mut f: [u32; 3]) -> [u32; 3] {
    f.sort_unstable();
    f
}

/// For every tet, the tet sharing each of its four faces (`TET_FACES`
/// order), or `u32::MAX` when the face lies on the boundary.
pub fn tet_neighbors(tets: &[[u32; 4]]) -> Vec<[u32; 4]> {
    let mut map: HashMap<[u32; 3], (u32, u8)> = HashMap::with_capacity(tets.len() * 2);
    let mut nbrs = vec![[u32::MAX; 4]; tets.len()];
    for (ti, t) in tets.iter().enumerate() {
        for (fi, lf) in TET_FACES.iter().enumerate() {
            let key = face_key([t[lf[0]], t[lf[1]], t[lf[2]]]);
            match map.remove(&key) {
                Some((other_t, other_f)) => {
                    nbrs[ti][fi] = other_t;
                    nbrs[other_t as usize][other_f as usize] = ti as u32;
                }
                None => {
                    map.insert(key, (ti as u32, fi as u8));
                }
            }
        }
    }
    nbrs
}

/// Faces that belong to exactly one tet, returned as oriented (outward)
/// vertex triples in `TET_FACES` winding.
pub fn boundary_faces(tets: &[[u32; 4]]) -> Vec<[u32; 3]> {
    let mut map: HashMap<[u32; 3], [u32; 3]> = HashMap::with_capacity(tets.len());
    for t in tets {
        for lf in &TET_FACES {
            let oriented = [t[lf[0]], t[lf[1]], t[lf[2]]];
            let key = face_key(oriented);
            if map.remove(&key).is_none() {
                map.insert(key, oriented);
            }
        }
    }
    let mut out: Vec<[u32; 3]> = map.into_values().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tets sharing face (1,2,3).
    fn two_tets() -> Vec<[u32; 4]> {
        vec![[0, 1, 2, 3], [1, 2, 3, 4]]
    }

    #[test]
    fn edges_of_single_tet() {
        let edges = extract_edges(&[[0, 1, 2, 3]]);
        assert_eq!(edges.len(), 6);
        assert_eq!(edges, vec![[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]);
    }

    #[test]
    fn shared_edges_are_deduplicated() {
        let edges = extract_edges(&two_tets());
        // 6 + 6 edges with 3 shared (1-2, 1-3, 2-3) => 9 unique.
        assert_eq!(edges.len(), 9);
    }

    #[test]
    fn find_edge_both_orders() {
        let edges = extract_edges(&two_tets());
        let e = find_edge(&edges, 2, 1).unwrap();
        assert_eq!(edges[e], [1, 2]);
        assert_eq!(find_edge(&edges, 1, 2), Some(e));
        assert_eq!(find_edge(&edges, 0, 4), None);
    }

    #[test]
    fn vertex_adjacency_degrees() {
        let edges = extract_edges(&two_tets());
        let adj = vertex_edge_adjacency(5, &edges);
        assert_eq!(adj.degree(0), 3); // 0 connects to 1,2,3
        assert_eq!(adj.degree(1), 4); // 1 connects to 0,2,3,4
        assert_eq!(adj.degree(4), 3); // 4 connects to 1,2,3
                                      // every edge appears exactly twice across all rows
        assert_eq!(adj.items.len(), edges.len() * 2);
    }

    #[test]
    fn neighbors_of_two_tets() {
        let nbrs = tet_neighbors(&two_tets());
        // tet 0's face opposite vertex 0 is (1,2,3): shared with tet 1.
        assert_eq!(nbrs[0][0], 1);
        assert_eq!(nbrs[0][1], u32::MAX);
        // tet 1 = [1,2,3,4]; its face opposite local vertex 3 (value 4) is
        // (1,2,3) in some winding: shared with tet 0.
        assert_eq!(nbrs[1][3], 0);
    }

    #[test]
    fn boundary_of_single_tet_is_all_faces() {
        let bf = boundary_faces(&[[0, 1, 2, 3]]);
        assert_eq!(bf.len(), 4);
    }

    #[test]
    fn boundary_of_two_tets_drops_shared_face() {
        let bf = boundary_faces(&two_tets());
        assert_eq!(bf.len(), 6);
        for f in &bf {
            let mut k = *f;
            k.sort_unstable();
            assert_ne!(k, [1, 2, 3], "shared face must not be on the boundary");
        }
    }
}
