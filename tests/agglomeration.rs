//! Cross-crate checks of agglomeration multigrid: same steady state as
//! the mesh-sequence solver, physical through the transient.

use eul3d::mesh::gen::{bump_channel, BumpSpec};
use eul3d::mesh::MeshSequence;
use eul3d::solver::agglo::AggloMultigrid;
use eul3d::solver::postproc::wall_pressure_force;
use eul3d::solver::{MultigridSolver, SolverConfig, Strategy};

fn spec() -> BumpSpec {
    BumpSpec {
        nx: 14,
        ny: 6,
        nz: 4,
        jitter: 0.1,
        ..BumpSpec::default()
    }
}

#[test]
fn agglomeration_mg_reaches_the_same_steady_state() {
    let cfg = SolverConfig {
        mach: 0.5,
        ..SolverConfig::default()
    };

    let mut mesh_mg = MultigridSolver::new(
        MeshSequence::bump_sequence(&spec(), 3),
        cfg,
        Strategy::WCycle,
    );
    mesh_mg.solve(150);

    let mut agglo_mg = AggloMultigrid::new(bump_channel(&spec()), cfg, Strategy::WCycle, 3);
    agglo_mg.solve(200);

    // Same fine mesh (same spec/seed): states directly comparable.
    let mut max = 0.0f64;
    for (a, b) in mesh_mg.state().flat().iter().zip(agglo_mg.state().flat()) {
        max = max.max((a - b).abs());
    }
    assert!(
        max < 2e-2,
        "agglomeration and mesh-sequence multigrid disagree at convergence: {max:.3e}"
    );

    let fa = wall_pressure_force(&mesh_mg.seq.meshes[0], cfg.gamma, mesh_mg.state());
    let fb = wall_pressure_force(&agglo_mg.mesh, cfg.gamma, agglo_mg.state());
    assert!(
        (fa - fb).norm() < 5e-3,
        "wall forces disagree: {fa:?} vs {fb:?}"
    );
}

#[test]
fn agglomeration_mg_transient_stays_physical() {
    let cfg = SolverConfig {
        mach: 0.675,
        ..SolverConfig::default()
    };
    let mut mg = AggloMultigrid::new(bump_channel(&spec()), cfg, Strategy::WCycle, 3);
    for _ in 0..30 {
        let r = mg.cycle();
        assert!(r.is_finite());
        for i in 0..mg.mesh.nverts() {
            assert!(mg.state().get(i, 0) > 0.05, "density positive");
        }
    }
}
