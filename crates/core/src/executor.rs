//! The **executor abstraction**: one set of solver kernels, three
//! execution strategies — the paper's central claim ("the same solver ran
//! on the shared-memory C90 and the distributed-memory Delta, with only
//! the execution layer swapped underneath").
//!
//! The five-stage Runge–Kutta step, residual assembly, dissipation,
//! convection and smoothing in [`crate::level`] are written **once**,
//! generic over an [`Executor`] that provides the four capabilities the
//! kernels actually need:
//!
//! * [`Executor::for_edges_scatter`] — a conflict-managed edge loop with
//!   scatter-add accumulation into per-vertex arrays;
//! * [`Executor::for_vertices`] — a strided per-vertex map;
//! * [`Executor::exchange_halo`] — ghost coherence (a no-op in a single
//!   address space, a PARTI gather/scatter-add on the distributed path);
//! * [`Executor::reduce_sum`] — a global reduction for monitoring.
//!
//! Backends:
//! * [`SerialExecutor`] — plain loops (the sequential reference);
//! * [`crate::shared::SharedExecutor`] — §3 edge-coloured groups
//!   work-shared over a rayon pool (the Cray autotasking analogue);
//! * [`crate::dist::DistExecutor`] — §4 PARTI schedules over the
//!   simulated Delta, one instance per rank.

use std::marker::PhantomData;

use eul3d_obs as obs;

use crate::counters::{FlopCounter, PhaseCounters};

/// Solver phases, the rows of the uniform per-phase comp/comm breakdown
/// every backend reports through [`PhaseCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-stage ghost gather of the flow variables (§4.3: fetched once
    /// per stage and reused by every loop).
    Exchange,
    /// Per-vertex pressure evaluation.
    Pressure,
    /// Spectral radii + local time steps.
    Radii,
    /// Artificial dissipation (JST two-pass, first-order, or Roe).
    Dissipation,
    /// Interior convective fluxes.
    Convection,
    /// Boundary-face fluxes (wall + far field).
    Boundary,
    /// Residual assembly `R = Q − D + P`.
    Assemble,
    /// Implicit residual averaging.
    Smooth,
    /// Runge–Kutta stage update.
    Update,
    /// Inter-grid transfers (restriction/prolongation).
    Transfer,
    /// Convergence monitoring (residual-norm reductions).
    Monitor,
    /// Periodic distributed state snapshots (gather + replicate).
    Checkpoint,
    /// Fault recovery: abort propagation, schedule rebuild, rollback.
    Recovery,
    /// Solver-health guard: finite/positivity scans, divergence checks,
    /// verdict agreement, and numeric rollback/backoff bookkeeping.
    Guard,
}

/// Number of [`Phase`] variants.
pub const NPHASES: usize = 14;

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; NPHASES] = [
        Phase::Exchange,
        Phase::Pressure,
        Phase::Radii,
        Phase::Dissipation,
        Phase::Convection,
        Phase::Boundary,
        Phase::Assemble,
        Phase::Smooth,
        Phase::Update,
        Phase::Transfer,
        Phase::Monitor,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::Guard,
    ];

    /// Dense index for table layouts.
    pub fn index(self) -> usize {
        match self {
            Phase::Exchange => 0,
            Phase::Pressure => 1,
            Phase::Radii => 2,
            Phase::Dissipation => 3,
            Phase::Convection => 4,
            Phase::Boundary => 5,
            Phase::Assemble => 6,
            Phase::Smooth => 7,
            Phase::Update => 8,
            Phase::Transfer => 9,
            Phase::Monitor => 10,
            Phase::Checkpoint => 11,
            Phase::Recovery => 12,
            Phase::Guard => 13,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Exchange => "exchange",
            Phase::Pressure => "pressure",
            Phase::Radii => "radii/dt",
            Phase::Dissipation => "dissipation",
            Phase::Convection => "convection",
            Phase::Boundary => "boundary",
            Phase::Assemble => "assemble",
            Phase::Smooth => "smooth",
            Phase::Update => "update",
            Phase::Transfer => "transfer",
            Phase::Monitor => "monitor",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::Guard => "guard",
        }
    }
}

/// Direction of a ghost exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloOp {
    /// Fetch owner values into ghost slots (PARTI gather).
    Gather,
    /// Flush partial sums accumulated in ghost slots back to their
    /// owners, adding, and zero the ghost accumulators (PARTI
    /// scatter-add).
    ScatterAdd,
}

/// Maximum number of target arrays one edge loop may scatter into
/// (the JST Laplacian pass writes two: `lapl` and `sens`).
pub const MAX_SCATTER_TARGETS: usize = 2;

/// A raw shared view of the scatter-target arrays of one edge loop.
///
/// # Safety contract
/// [`ScatterAccess::add`] performs an unsynchronized read-modify-write.
/// It is sound because every backend arranges that no two concurrently
/// executing edge kernels touch the same vertex: the serial and
/// distributed backends run one edge at a time, and the shared-memory
/// backend only runs edges of one *colour group* concurrently (a
/// validated colouring guarantees disjoint endpoints within a group, and
/// groups are separated by joins). Indices must be in bounds.
pub struct ScatterAccess<'a> {
    ptrs: [(*mut f64, usize); MAX_SCATTER_TARGETS],
    ntargets: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

unsafe impl Sync for ScatterAccess<'_> {}

impl<'a> ScatterAccess<'a> {
    /// Wrap the target arrays of one edge loop.
    pub fn new(targets: &mut [&'a mut [f64]]) -> ScatterAccess<'a> {
        assert!(
            targets.len() <= MAX_SCATTER_TARGETS,
            "too many scatter targets"
        );
        let mut ptrs = [(std::ptr::null_mut(), 0); MAX_SCATTER_TARGETS];
        for (slot, t) in ptrs.iter_mut().zip(targets.iter_mut()) {
            *slot = (t.as_mut_ptr(), t.len());
        }
        ScatterAccess {
            ptrs,
            ntargets: targets.len(),
            _marker: PhantomData,
        }
    }

    /// Add `v` at flat index `i` of target `t`.
    ///
    /// # Safety
    /// Caller must uphold the conflict contract documented on
    /// [`ScatterAccess`]: within one parallel region no other edge kernel
    /// writes index `i` of target `t`.
    #[inline(always)]
    pub unsafe fn add(&self, t: usize, i: usize, v: f64) {
        debug_assert!(t < self.ntargets);
        debug_assert!(i < self.ptrs[t].1);
        unsafe { *self.ptrs[t].0.add(i) += v }
    }
}

/// One execution strategy for the EUL3D kernels. See the module docs.
///
/// Backends that need mutable state (the distributed backend drives a
/// [`eul3d_delta::Rank`]) take `&mut self`; stateless backends simply
/// ignore the mutability.
pub trait Executor {
    /// Vertices with authoritative data, given the level's total slot
    /// count `n_all`. Per-vertex *updates* (assembly, smoothing, stage
    /// update) loop over this prefix; only the distributed backend, whose
    /// arrays carry ghost slots after the owned prefix, returns less
    /// than `n_all`.
    fn owned(&self, n_all: usize) -> usize {
        n_all
    }

    /// Parallel-loop launches one edge loop costs (the Cray model charges
    /// a start-up per launch). 1 except on the coloured shared path,
    /// where each colour group is a separate launch.
    fn edge_launches(&self) -> u64 {
        1
    }

    /// Re-gather the flow variables if this backend is configured to
    /// refetch before every loop (the §4.3 ablation). Default: no-op.
    fn refetch(&mut self, _w: &mut [f64], _counters: &mut PhaseCounters) {}

    /// Conflict-managed edge loop: run `f(e, scatter)` for every edge
    /// `e` in `0..nedges`, where `f` accumulates into the `targets`
    /// through the [`ScatterAccess`] (and may read any captured shared
    /// state). `f` must write only endpoint data of edge `e`.
    fn for_edges_scatter<F>(&mut self, nedges: usize, targets: &mut [&mut [f64]], f: F)
    where
        F: Fn(usize, &ScatterAccess) + Sync;

    /// Strided vertex map: `f(i, row)` for every `stride`-wide row of
    /// `data`. `f` may read captured shared state but writes only `row`.
    fn for_vertices<F>(&mut self, data: &mut [f64], stride: usize, f: F)
    where
        F: Fn(usize, &mut [f64]) + Sync;

    /// Ghost exchange on a strided per-vertex array. No-op in a single
    /// address space; PARTI gather / scatter-add on the distributed
    /// path, with the traffic charged to `phase`.
    fn exchange_halo(
        &mut self,
        phase: Phase,
        op: HaloOp,
        data: &mut [f64],
        stride: usize,
        counters: &mut PhaseCounters,
    );

    /// Sum `vals` element-wise across every participant of this
    /// execution, in place (a no-op for single-address-space backends, an
    /// allocation-free pooled all-reduce on the distributed path).
    fn reduce_sum(&mut self, phase: Phase, vals: &mut [f64], counters: &mut PhaseCounters);
}

/// The sequential reference backend: plain loops, nothing to exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn for_edges_scatter<F>(&mut self, nedges: usize, targets: &mut [&mut [f64]], f: F)
    where
        F: Fn(usize, &ScatterAccess) + Sync,
    {
        let access = ScatterAccess::new(targets);
        for e in 0..nedges {
            f(e, &access);
        }
    }

    fn for_vertices<F>(&mut self, data: &mut [f64], stride: usize, f: F)
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        for (i, row) in data.chunks_mut(stride).enumerate() {
            f(i, row);
        }
    }

    fn exchange_halo(
        &mut self,
        _phase: Phase,
        _op: HaloOp,
        _data: &mut [f64],
        _stride: usize,
        _counters: &mut PhaseCounters,
    ) {
    }

    fn reduce_sum(&mut self, _phase: Phase, _vals: &mut [f64], _counters: &mut PhaseCounters) {}
}

/// Charge an edge loop of `nedges` edges to `phase`: uniform flop count
/// (`nedges × per_edge` — identical across backends for the same global
/// mesh), backend-specific launch count. Also emits one observability
/// phase span whose modeled duration is the charged flops at the Delta
/// node rate, advancing the lane's deterministic clock.
pub fn count_edge_loop<E: Executor + ?Sized>(
    counters: &mut PhaseCounters,
    phase: Phase,
    exec: &E,
    nedges: usize,
    per_edge: f64,
) {
    let flops = nedges as f64 * per_edge;
    let c: &mut FlopCounter = counters.phase(phase);
    c.flops += flops;
    c.launches += exec.edge_launches();
    obs::span_ns(
        phase.index() as u8,
        eul3d_delta::cost::CostModel::delta_i860().comp_ns(flops),
    );
}

/// Charge a vertex loop of `items` vertices to `phase` (with the same
/// observability span as [`count_edge_loop`]).
pub fn count_vertex_loop(counters: &mut PhaseCounters, phase: Phase, items: usize, per_vert: f64) {
    let flops = items as f64 * per_vert;
    let c = counters.phase(phase);
    c.flops += flops;
    c.launches += 1;
    obs::span_ns(
        phase.index() as u8,
        eul3d_delta::cost::CostModel::delta_i860().comp_ns(flops),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_edge_scatter_accumulates() {
        let edges = [[0u32, 1], [1, 2], [0, 2]];
        let mut acc = vec![0.0; 3];
        let mut exec = SerialExecutor;
        exec.for_edges_scatter(edges.len(), &mut [&mut acc], |e, s| {
            let [a, b] = edges[e];
            // SAFETY: single-threaded execution.
            unsafe {
                s.add(0, a as usize, 1.0);
                s.add(0, b as usize, 1.0);
            }
        });
        assert_eq!(acc, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn serial_executor_vertex_map_is_indexed() {
        let mut data = vec![0.0; 6];
        SerialExecutor.for_vertices(&mut data, 2, |i, row| {
            row[0] = i as f64;
            row[1] = 10.0 * i as f64;
        });
        assert_eq!(data, vec![0.0, 0.0, 1.0, 10.0, 2.0, 20.0]);
    }

    #[test]
    fn phases_index_round_trips() {
        for (k, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), k);
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn reduce_sum_is_identity_serially() {
        let mut c = PhaseCounters::default();
        let mut vals = [1.0, 2.0];
        SerialExecutor.reduce_sum(Phase::Monitor, &mut vals, &mut c);
        assert_eq!(vals, [1.0, 2.0]);
    }
}
