//! The service-mode subcommands: `eul3d serve` hosts the job engine on
//! a Unix socket; `eul3d submit` is the client — submitting jobs,
//! cancelling, fetching stats, and shutting the server down over the
//! line-delimited JSON protocol (see DESIGN.md §11).

use std::path::PathBuf;

use eul3d_serve::engine::EngineConfig;
use eul3d_serve::json::JObj;
use eul3d_serve::{client, server, Request};

use crate::args::Args;

fn socket_of(a: &Args) -> Result<PathBuf, String> {
    a.get_str("socket")
        .map(PathBuf::from)
        .ok_or_else(|| "--socket PATH is required".to_string())
}

/// `eul3d serve --socket S [--workers N] [--queue N] [--cache N]
/// [--seed N]` — host the job engine, blocking until a client sends
/// `shutdown` (or the process is signalled).
pub fn serve(a: &Args) -> Result<(), String> {
    let path = socket_of(a)?;
    let defaults = EngineConfig::default();
    let cfg = EngineConfig {
        workers: a.get("workers", defaults.workers)?,
        queue_cap: a.get("queue", defaults.queue_cap)?,
        cache_cap: a.get("cache", defaults.cache_cap)?,
        seed: a.get("seed", defaults.seed)?,
        retry_after_ms_per_queued: a.get("retry-after-ms", defaults.retry_after_ms_per_queued)?,
    };
    a.check_unknown()?;
    if cfg.workers == 0 || cfg.queue_cap == 0 {
        return Err("--workers and --queue must be at least 1".into());
    }
    let handle = server::spawn(&path, cfg.clone()).map_err(|e| format!("bind {path:?}: {e}"))?;
    println!(
        "eul3d serve: listening on {} (workers={} queue={} cache={} seed={})",
        path.display(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap,
        cfg.seed
    );
    handle.join();
    println!("eul3d serve: shut down");
    Ok(())
}

/// `eul3d submit --socket S --config run.toml [--distributed] [--force]
/// [--artifacts] [--ndjson]`, or one of the control forms `--cancel N`
/// / `--stats` / `--shutdown`. `--ndjson` passes the raw wire lines
/// through unmodified (one JSON object per line, jq-friendly); the
/// default renders a human summary. Exits non-zero when the job fails,
/// is rejected for backpressure, or the request errors.
pub fn submit(a: &Args) -> Result<(), String> {
    let path = socket_of(a)?;
    let ndjson = a.has("ndjson");
    // Control forms: one request, one acknowledgement line.
    let control = if let Some(job) = a.get_str("cancel") {
        let job: u64 = job
            .parse()
            .map_err(|_| format!("--cancel: bad job id '{job}'"))?;
        Some(Request::Cancel { job })
    } else if a.has("stats") {
        Some(Request::Stats)
    } else if a.has("shutdown") {
        Some(Request::Shutdown)
    } else {
        None
    };
    if let Some(req) = control {
        a.get_str("config");
        a.check_unknown()?;
        let line =
            client::request_one(&path, &req).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("{line}");
        return Ok(());
    }

    let config_path = a
        .get_str("config")
        .ok_or_else(|| "--config run.toml is required to submit a job".to_string())?;
    let mode = if a.has("distributed") {
        "distributed"
    } else {
        "solve"
    };
    let force = a.has("force");
    let artifacts = a.has("artifacts");
    a.check_unknown()?;
    let config = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("--config {config_path}: {e}"))?;
    let req = Request::Submit {
        config,
        mode: eul3d_core::JobMode::parse(mode).unwrap_or_default(),
        force,
        artifacts,
    };
    let mut stream =
        client::request(&path, &req).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut failed: Option<String> = None;
    while let Some(line) = stream.next_line() {
        if ndjson {
            println!("{line}");
        }
        let Ok(o) = JObj::parse(&line) else {
            if !ndjson {
                eprintln!("unparsable reply line: {line}");
            }
            continue;
        };
        match o.str_of("event") {
            Some("error") => {
                failed = Some(o.str_of("msg").unwrap_or("request error").to_string());
            }
            Some("rejected") => {
                failed = Some(format!(
                    "rejected: queue full, retry after {} ms",
                    o.u64_of("retry_after_ms").unwrap_or(0)
                ));
            }
            Some("failed") => {
                failed = Some(o.str_of("msg").unwrap_or("job failed").to_string());
            }
            Some("cancelled") => {
                failed = Some("job cancelled".to_string());
            }
            _ => {}
        }
        if ndjson {
            continue;
        }
        match o.str_of("event") {
            Some("accepted") => println!(
                "job {} accepted  key {}",
                o.u64_of("job").unwrap_or(0),
                o.str_of("key").unwrap_or("?")
            ),
            Some("started") => println!("job {} started", o.u64_of("job").unwrap_or(0)),
            Some("progress") => println!(
                "  cycle {:>4}  residual {:e}",
                o.u64_of("cycle").unwrap_or(0),
                o.f64_of("residual").unwrap_or(f64::NAN)
            ),
            Some("done") => {
                println!(
                    "done ({})  cycles {}  final residual {:e}  result {}",
                    o.str_of("cache").unwrap_or("?"),
                    o.u64_of("cycles").unwrap_or(0),
                    o.f64_of("final_residual").unwrap_or(f64::NAN),
                    o.str_of("result_hash").unwrap_or("?")
                );
                if let Some(t) = o.str_of("table") {
                    print!("{t}");
                }
            }
            Some(other) => println!("{other}: {line}"),
            // Trace lines carry "ev" instead of "event": summarize them
            // away in human mode (ndjson passes them through above).
            None => {}
        }
    }
    match failed {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(parts: &[&str]) -> Args {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Args::parse(&argv).unwrap_or_default()
    }

    #[test]
    fn socket_flag_is_required() {
        assert!(serve(&parsed(&["serve"])).is_err());
        assert!(submit(&parsed(&["submit", "--stats"])).is_err());
    }

    #[test]
    fn submit_requires_a_config_or_control_form() {
        let err = submit(&parsed(&["submit", "--socket", "/tmp/nowhere.sock"]))
            .expect_err("config is mandatory");
        assert!(err.contains("--config"), "{err}");
    }

    #[test]
    fn bad_cancel_id_is_rejected_before_connecting() {
        let err = submit(&parsed(&[
            "submit",
            "--socket",
            "/tmp/nowhere.sock",
            "--cancel",
            "pi",
        ]))
        .expect_err("non-numeric job id");
        assert!(err.contains("bad job id"), "{err}");
    }
}
