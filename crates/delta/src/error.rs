//! Typed errors for the simulated machine: conditions a caller can
//! provoke with bad input (as opposed to protocol violations inside the
//! simulator, which stay hard panics so they are never papered over).

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A `--faults` specification failed to parse or referenced an
    /// impossible rank/stream.
    BadFaultSpec { spec: String, reason: String },
    /// A machine with zero ranks was requested.
    NoRanks,
    /// More ranks (or hybrid threads) than the machine supports were
    /// requested — rank ids are carried as `u32` in trace events and
    /// messages, and the cap keeps every conversion provably lossless.
    TooManyRanks { requested: usize, max: usize },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BadFaultSpec { spec, reason } => {
                write!(f, "bad fault spec '{spec}': {reason}")
            }
            DeltaError::NoRanks => write!(f, "machine needs at least one rank"),
            DeltaError::TooManyRanks { requested, max } => {
                write!(f, "{requested} ranks requested; the machine caps at {max}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}
