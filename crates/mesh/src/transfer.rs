//! Inter-grid transfer operators for multigrid on *unrelated* meshes.
//!
//! Following §2.3–2.4 of the paper, information moves between any two
//! meshes of the multigrid sequence through **four interpolation addresses
//! and four interpolation weights per vertex**: for each vertex of the
//! destination mesh, the containing tetrahedron in the source mesh is
//! found by the adjacency walk ([`crate::search`]) and its four vertices
//! and barycentric weights are stored. The same static operator serves
//! both directions:
//!
//! * **interpolation** (prolongation) — destination value = Σ wₖ · source
//!   value at address k;
//! * **restriction** — its transpose: source accumulates Σ wₖ · destination
//!   value (conservative scatter of residuals to the coarse grid).

use crate::mesh::TetMesh;
use crate::search::Locator;

/// Interpolation operator from a *source* mesh onto the vertices of a
/// *destination* mesh: `addr[v]` are four source-vertex indices and
/// `w[v]` the matching weights for destination vertex `v`.
#[derive(Debug, Clone)]
pub struct InterpOps {
    pub addr: Vec<[u32; 4]>,
    pub w: Vec<[f64; 4]>,
    /// Number of vertices in the source mesh (for transpose bounds).
    pub nsrc: usize,
}

impl InterpOps {
    /// Build the operator by locating every destination vertex in the
    /// source mesh. Queries are seeded with the previous hit, which makes
    /// the whole pass nearly linear (the paper prices it at one or two
    /// flow-solution cycles).
    pub fn build(src: &TetMesh, dst: &TetMesh) -> InterpOps {
        let loc = Locator::new(src);
        let mut addr = Vec::with_capacity(dst.nverts());
        let mut w = Vec::with_capacity(dst.nverts());
        let mut seed = 0usize;
        for &p in &dst.coords {
            let r = loc.locate(p, seed);
            seed = r.tet;
            addr.push(src.tets[r.tet]);
            w.push(r.bary);
        }
        InterpOps {
            addr,
            w,
            nsrc: src.nverts(),
        }
    }

    /// Number of destination vertices.
    #[inline]
    pub fn ndst(&self) -> usize {
        self.addr.len()
    }

    /// Interpolate a multi-component field (stride `nc`) from source to
    /// destination: `out[v] = Σₖ w[v][k] · src[addr[v][k]]`.
    pub fn interpolate(&self, src: &[f64], out: &mut [f64], nc: usize) {
        assert_eq!(src.len(), self.nsrc * nc);
        assert_eq!(out.len(), self.ndst() * nc);
        for v in 0..self.ndst() {
            let a = self.addr[v];
            let w = self.w[v];
            for c in 0..nc {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += w[k] * src[a[k] as usize * nc + c];
                }
                out[v * nc + c] = acc;
            }
        }
    }

    /// Transpose-interpolate (restrict): scatter each destination value to
    /// its four source addresses with the same weights, *accumulating*
    /// into `out` (callers zero it when appropriate). This is the
    /// conservative residual-collection operator of the FAS scheme.
    pub fn restrict_transpose(&self, dstv: &[f64], out: &mut [f64], nc: usize) {
        assert_eq!(dstv.len(), self.ndst() * nc);
        assert_eq!(out.len(), self.nsrc * nc);
        for v in 0..self.ndst() {
            let a = self.addr[v];
            let w = self.w[v];
            for c in 0..nc {
                let val = dstv[v * nc + c];
                for k in 0..4 {
                    out[a[k] as usize * nc + c] += w[k] * val;
                }
            }
        }
    }

    /// Row sums of the transpose operator per source vertex: the total
    /// weight each source vertex receives. Used to normalize restricted
    /// *states* (as opposed to residuals, which stay conservative).
    pub fn transpose_weight_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.nsrc];
        for v in 0..self.ndst() {
            for k in 0..4 {
                s[self.addr[v][k] as usize] += self.w[v][k];
            }
        }
        s
    }

    /// Restrict a *state* field: transpose-scatter then divide by the
    /// weight sums so constants are reproduced where coverage exists;
    /// uncovered source vertices (weight sum ~ 0) fall back to `fallback`
    /// per component.
    pub fn restrict_state(&self, dstv: &[f64], out: &mut [f64], nc: usize, fallback: &[f64]) {
        assert_eq!(fallback.len(), nc);
        out.iter_mut().for_each(|x| *x = 0.0);
        self.restrict_transpose(dstv, out, nc);
        let sums = self.transpose_weight_sums();
        for (v, &s) in sums.iter().enumerate() {
            if s > 1e-12 {
                for c in 0..nc {
                    out[v * nc + c] /= s;
                }
            } else {
                out[v * nc..v * nc + nc].copy_from_slice(fallback);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::unit_box;

    #[test]
    fn interpolation_reproduces_linear_fields() {
        let coarse = unit_box(3, 0.15, 1);
        let fine = unit_box(6, 0.15, 2);
        let ops = InterpOps::build(&coarse, &fine);
        // f(x,y,z) = 2x - 3y + z + 0.5 is exactly representable by linear
        // interpolation on tets.
        let f = |p: crate::vec3::Vec3| 2.0 * p.x - 3.0 * p.y + p.z + 0.5;
        let src: Vec<f64> = coarse.coords.iter().map(|&p| f(p)).collect();
        let mut out = vec![0.0; fine.nverts()];
        ops.interpolate(&src, &mut out, 1);
        for (v, &p) in fine.coords.iter().enumerate() {
            assert!(
                (out[v] - f(p)).abs() < 1e-9,
                "linear field must interpolate exactly at {p:?}"
            );
        }
    }

    #[test]
    fn transpose_conserves_totals() {
        let coarse = unit_box(3, 0.1, 3);
        let fine = unit_box(5, 0.1, 4);
        let ops = InterpOps::build(&coarse, &fine);
        let dstv: Vec<f64> = (0..fine.nverts()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut out = vec![0.0; coarse.nverts()];
        ops.restrict_transpose(&dstv, &mut out, 1);
        let total_in: f64 = dstv.iter().sum();
        let total_out: f64 = out.iter().sum();
        // Weights sum to 1 per destination vertex, so totals match exactly.
        assert!((total_in - total_out).abs() < 1e-9 * total_in.abs().max(1.0));
    }

    #[test]
    fn restrict_state_reproduces_constants() {
        let coarse = unit_box(3, 0.1, 5);
        let fine = unit_box(6, 0.1, 6);
        let ops = InterpOps::build(&coarse, &fine);
        let dstv = vec![4.25; fine.nverts() * 2];
        let mut out = vec![0.0; coarse.nverts() * 2];
        ops.restrict_state(&dstv, &mut out, 2, &[4.25, 4.25]);
        for &x in &out {
            assert!(
                (x - 4.25).abs() < 1e-9,
                "constant state must restrict to itself"
            );
        }
    }

    #[test]
    fn multicomponent_interpolation_strides() {
        let coarse = unit_box(2, 0.0, 0);
        let fine = unit_box(4, 0.0, 0);
        let ops = InterpOps::build(&coarse, &fine);
        let mut src = vec![0.0; coarse.nverts() * 3];
        for (v, &p) in coarse.coords.iter().enumerate() {
            src[v * 3] = p.x;
            src[v * 3 + 1] = p.y;
            src[v * 3 + 2] = p.z;
        }
        let mut out = vec![0.0; fine.nverts() * 3];
        ops.interpolate(&src, &mut out, 3);
        for (v, &p) in fine.coords.iter().enumerate() {
            assert!((out[v * 3] - p.x).abs() < 1e-10);
            assert!((out[v * 3 + 1] - p.y).abs() < 1e-10);
            assert!((out[v * 3 + 2] - p.z).abs() < 1e-10);
        }
    }
}
