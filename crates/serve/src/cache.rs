//! The content-addressed result cache: completed [`JobArtifacts`]
//! bundles keyed on the canonical identity of the *request* — config,
//! mode, and partitioner seed — so an identical submission costs one
//! hash lookup instead of a solve.
//!
//! Correctness rests on two determinism facts proved by the test
//! harness: the key is invariant under every TOML spelling of the same
//! semantic configuration ([`eul3d_core::RunConfig::canonical_toml`]),
//! and [`eul3d_core::run_job`] is byte-deterministic for a fixed key —
//! which together make a cached result and a fresh recompute provably
//! interchangeable.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use eul3d_core::runconfig::fnv1a_128;
use eul3d_core::{JobArtifacts, JobMode, RunConfig};

/// A 128-bit content address, displayed/parsed as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// The cache key of a request: a domain-separated FNV-1a 128 over
    /// the job mode, the partitioner seed, and the canonical TOML of the
    /// validated configuration. Any semantic change to any of the three
    /// produces a different key; any representational change (key order,
    /// comments, float spelling, whitespace) does not.
    pub fn of(rc: &RunConfig, mode: JobMode, seed: u64) -> CacheKey {
        let canon = rc.canonical_toml();
        let mut bytes = Vec::with_capacity(canon.len() + 32);
        bytes.extend_from_slice(b"eul3d-cache-key-v1\0");
        bytes.extend_from_slice(mode.name().as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        CacheKey(fnv1a_128(&bytes))
    }

    /// Parse the 32-hex-digit wire form.
    pub fn parse(s: &str) -> Option<CacheKey> {
        (s.len() == 32)
            .then(|| u128::from_str_radix(s, 16).ok())
            .flatten()
            .map(CacheKey)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One cached result: the deterministic artifact bundle of a completed
/// job, shared by reference between the cache, the job registry, and
/// any connections still streaming it.
#[derive(Debug)]
pub struct JobBlob {
    /// The artifacts exactly as the solve produced them.
    pub artifacts: JobArtifacts,
}

impl JobBlob {
    /// Approximate resident size of this result in bytes — the payload
    /// buffers plus a small fixed allowance for structure overhead. The
    /// byte-budget eviction policy charges entries by this measure; it
    /// only needs to be stable and roughly proportional, not exact.
    pub fn approx_bytes(&self) -> usize {
        let a = &self.artifacts;
        let guard = a.guard.as_ref().map_or(0, |g| 64 + g.transcript.len() * 64);
        a.history.len() * 8
            + a.table.len()
            + a.trace_json.as_ref().map_or(0, String::len)
            + a.events.len() * std::mem::size_of::<eul3d_obs::Stamped>()
            + a.vtk.len()
            + guard
            + 128
    }
}

/// Bounded FIFO content-addressed cache with hit/miss accounting.
/// Insertion-order eviction (not LRU) keeps the structure allocation-
/// light and — more importantly here — *deterministic*: which entries a
/// test run retains depends only on the completion order, never on
/// lookup timing.
///
/// Capacity is governed by **result bytes** ([`JobBlob::approx_bytes`]),
/// with the entry count as a secondary ceiling: a handful of giant
/// traced results and a thousand tiny ones occupy very different
/// amounts of memory, so the budget that matters operationally is
/// bytes, not entries. The newest entry is always retained even when it
/// alone exceeds the budget — evicting the result that was just
/// computed would make its own duplicate submissions recompute forever.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    budget: Option<usize>,
    map: HashMap<u128, Arc<JobBlob>>,
    order: VecDeque<u128>,
    bytes: usize,
    evicted_bytes: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache retaining at most `cap` results (min 1) with no byte
    /// budget.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache::with_byte_budget(cap, None)
    }

    /// A cache retaining at most `cap` results and (when `budget` is
    /// set) at most roughly `budget` total result bytes.
    pub fn with_byte_budget(cap: usize, budget: Option<usize>) -> ResultCache {
        ResultCache {
            cap: cap.max(1),
            budget,
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            evicted_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look `key` up, counting a hit or miss.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<JobBlob>> {
        match self.map.get(&key.0) {
            Some(b) => {
                self.hits += 1;
                Some(Arc::clone(b))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching the hit/miss counters (used by the
    /// dequeue-time re-check so one submission never counts twice).
    pub fn peek(&self, key: CacheKey) -> Option<Arc<JobBlob>> {
        self.map.get(&key.0).map(Arc::clone)
    }

    /// Record a miss without a lookup: a forced (`force`) submission
    /// bypasses the cache by design but still does solve work, so the
    /// hit rate must reflect it.
    pub fn count_forced_miss(&mut self) {
        self.misses += 1;
    }

    /// Record a hit without a lookup — the caller resolved the key
    /// through [`ResultCache::peek`] or the durable result store and no
    /// solve work happened.
    pub fn count_hit(&mut self) {
        self.hits += 1;
    }

    /// Insert (or overwrite — recomputes produce byte-identical blobs,
    /// so overwriting is a no-op in content) and evict oldest entries
    /// until both the entry cap and the byte budget hold again (the
    /// newest entry itself is never evicted).
    pub fn insert(&mut self, key: CacheKey, blob: Arc<JobBlob>) {
        let size = blob.approx_bytes();
        match self.map.insert(key.0, blob) {
            Some(old) => {
                // Byte-identical in content, but re-measure anyway so the
                // accounting can never drift.
                self.bytes = self.bytes - old.approx_bytes() + size;
            }
            None => {
                self.bytes += size;
                self.order.push_back(key.0);
                while self.order.len() > 1
                    && (self.order.len() > self.cap || self.budget.is_some_and(|b| self.bytes > b))
                {
                    if let Some(old) = self.order.pop_front() {
                        if let Some(gone) = self.map.remove(&old) {
                            let freed = gone.approx_bytes();
                            self.bytes -= freed;
                            self.evicted_bytes += freed as u64;
                        }
                    }
                }
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total approximate bytes evicted over the cache's lifetime.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(tag: &str) -> Arc<JobBlob> {
        Arc::new(JobBlob {
            artifacts: JobArtifacts {
                history: vec![1.0],
                table: tag.to_string(),
                trace_json: None,
                events: Vec::new(),
                vtk: String::new(),
                guard: None,
                result_hash: 1,
            },
        })
    }

    #[test]
    fn fifo_eviction_and_counters() {
        let mut c = ResultCache::new(2);
        let (k1, k2, k3) = (CacheKey(1), CacheKey(2), CacheKey(3));
        assert!(c.get(k1).is_none());
        c.insert(k1, blob("a"));
        c.insert(k2, blob("b"));
        c.insert(k3, blob("c"));
        assert_eq!(c.len(), 2);
        assert!(c.peek(k1).is_none(), "oldest entry evicted first");
        assert!(c.get(k2).is_some());
        assert!(c.get(k3).is_some());
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn byte_budget_evicts_oldest_until_under() {
        // Each test blob measures 137 bytes: 8 (history) + 1 (table) +
        // 128 fixed allowance.
        let each = blob("a").approx_bytes();
        assert_eq!(each, 137);
        let mut c = ResultCache::with_byte_budget(100, Some(2 * each + 10));
        c.insert(CacheKey(1), blob("a"));
        c.insert(CacheKey(2), blob("b"));
        assert_eq!(c.bytes(), 2 * each);
        c.insert(CacheKey(3), blob("c"));
        assert!(c.peek(CacheKey(1)).is_none(), "oldest evicted by bytes");
        assert!(c.peek(CacheKey(2)).is_some());
        assert!(c.peek(CacheKey(3)).is_some());
        assert_eq!(c.bytes(), 2 * each);
        assert_eq!(c.evicted_bytes(), each as u64);
        // Overwriting an existing key never double-counts.
        c.insert(CacheKey(3), blob("c"));
        assert_eq!(c.bytes(), 2 * each);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn newest_entry_survives_even_over_budget() {
        let mut c = ResultCache::with_byte_budget(4, Some(10));
        c.insert(CacheKey(1), blob("a"));
        c.insert(CacheKey(2), blob("b"));
        assert_eq!(c.len(), 1, "budget evicts down to the newest entry");
        assert!(c.peek(CacheKey(2)).is_some());
        assert!(c.evicted_bytes() > 0);
    }

    #[test]
    fn key_depends_on_mode_and_seed_but_not_spelling() {
        let rc = RunConfig::default();
        let a = CacheKey::of(&rc, JobMode::Solve, 7);
        assert_eq!(a, CacheKey::of(&rc, JobMode::Solve, 7));
        assert_ne!(a, CacheKey::of(&rc, JobMode::Distributed, 7));
        assert_ne!(a, CacheKey::of(&rc, JobMode::Solve, 8));
        let mut other = rc.clone();
        other.trace.out = Some("somewhere-else.json".into());
        assert_eq!(
            a,
            CacheKey::of(&other, JobMode::Solve, 7),
            "presentation-only fields are outside the identity"
        );
        other.cycles += 1;
        assert_ne!(a, CacheKey::of(&other, JobMode::Solve, 7));
    }

    #[test]
    fn key_wire_form_round_trips() {
        let k = CacheKey::of(&RunConfig::default(), JobMode::Solve, 7);
        assert_eq!(CacheKey::parse(&k.to_string()), Some(k));
        assert_eq!(CacheKey::parse("xyz"), None);
    }
}
