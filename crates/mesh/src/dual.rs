//! Median-dual metrics: the edge coefficients `η_ij` (dual-face area
//! vectors) and the dual control volumes that turn the Galerkin linear-tet
//! discretization into the edge-based central scheme of EUL3D.
//!
//! For each tetrahedron and each of its six edges `(a, b)`, the piece of
//! the median-dual interface between the control volumes of `a` and `b`
//! inside that tet is the (generally non-planar) quadrilateral
//!
//! ```text
//!   m  = midpoint(a, b)
//!   f1 = centroid of face (a, b, c)
//!   g  = centroid of the tet
//!   f2 = centroid of face (a, b, d)
//! ```
//!
//! wound `m → f1 → g → f2`, where `(c, d)` are the remaining vertices
//! ordered so `(a, b, c, d)` is an even permutation of the tet's
//! (positively-oriented) vertex list. With that convention the area vector
//! points from `a` toward `b`; accumulating the pieces over all tets
//! sharing an edge yields `η_ab`. Because every control volume is closed,
//! the identity
//!
//! ```text
//!   Σ_edges ±η  +  Σ_boundary-faces S/3  =  0       (per vertex)
//! ```
//!
//! holds to round-off — this is what guarantees exact freestream
//! preservation in the solver, and it is what the property tests check.

use crate::error::MeshError;
use crate::topology::{find_edge, TET_EDGES};
use crate::vec3::{tet_volume, tri_area_vec, Vec3};

/// Accumulate the dual-face area vector for every edge.
///
/// `edges` must be the sorted unique list from
/// [`crate::topology::extract_edges`]; all tets must be positively
/// oriented. A tet edge absent from `edges` is reported as
/// [`MeshError::EdgeMissing`] instead of panicking.
pub fn edge_coefficients(
    coords: &[Vec3],
    tets: &[[u32; 4]],
    edges: &[[u32; 2]],
) -> Result<Vec<Vec3>, MeshError> {
    let mut coef = vec![Vec3::ZERO; edges.len()];
    for t in tets {
        let p = [
            coords[t[0] as usize],
            coords[t[1] as usize],
            coords[t[2] as usize],
            coords[t[3] as usize],
        ];
        let g = (p[0] + p[1] + p[2] + p[3]) / 4.0;
        for le in &TET_EDGES {
            let (a, b) = (t[le[0]], t[le[1]]);
            let (pa, pb, pc, pd) = (p[le[0]], p[le[1]], p[le[2]], p[le[3]]);
            let m = (pa + pb) * 0.5;
            let f1 = (pa + pb + pc) / 3.0;
            let f2 = (pa + pb + pd) / 3.0;
            // Quad (m, f1, g, f2) split into triangles (m, f1, g), (m, g, f2).
            let piece = tri_area_vec(m, f1, g) + tri_area_vec(m, g, f2);
            let Some(e) = find_edge(edges, a, b) else {
                return Err(MeshError::EdgeMissing { a, b });
            };
            // `piece` points a → b; flip when the stored edge is (b, a).
            if edges[e][0] == a {
                coef[e] += piece;
            } else {
                coef[e] -= piece;
            }
        }
    }
    Ok(coef)
}

/// Median-dual control volume of every vertex: each tet contributes a
/// quarter of its volume to each of its four vertices (barycentric
/// subdivision of a simplex is equal-volume).
pub fn dual_volumes(coords: &[Vec3], tets: &[[u32; 4]], nverts: usize) -> Vec<f64> {
    let mut vol = vec![0.0; nverts];
    for t in tets {
        let v = tet_volume(
            coords[t[0] as usize],
            coords[t[1] as usize],
            coords[t[2] as usize],
            coords[t[3] as usize],
        );
        let quarter = v / 4.0;
        for &k in t {
            vol[k as usize] += quarter;
        }
    }
    vol
}

/// Per-vertex closure residual `Σ ±η + Σ S/3`; the max norm over vertices
/// should be round-off-small for a valid mesh. Exposed for validation and
/// property tests.
pub fn closure_residual(
    nverts: usize,
    edges: &[[u32; 2]],
    edge_coef: &[Vec3],
    bfaces: &[(Vec3, [u32; 3])],
) -> Vec<Vec3> {
    let mut acc = vec![Vec3::ZERO; nverts];
    for (e, &[a, b]) in edges.iter().enumerate() {
        acc[a as usize] += edge_coef[e];
        acc[b as usize] -= edge_coef[e];
    }
    for (normal, verts) in bfaces {
        let third = *normal / 3.0;
        for &v in verts {
            acc[v as usize] += third;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{boundary_faces, extract_edges};

    fn unit_tet() -> (Vec<Vec3>, Vec<[u32; 4]>) {
        (
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
    }

    #[test]
    fn unit_tet_edge_coefficient_orientation() {
        let (coords, tets) = unit_tet();
        let edges = extract_edges(&tets);
        let coef = edge_coefficients(&coords, &tets, &edges).expect("complete edge list");
        for (e, &[a, b]) in edges.iter().enumerate() {
            let dir = coords[b as usize] - coords[a as usize];
            assert!(
                coef[e].dot(dir) > 0.0,
                "edge ({a},{b}) coefficient should point a->b"
            );
        }
        // Hand-computed value for edge (0,1) of the canonical tet.
        let e01 = find_edge(&edges, 0, 1).unwrap();
        let expect = Vec3::new(1.0 / 12.0, 1.0 / 24.0, 1.0 / 24.0);
        assert!((coef[e01] - expect).norm() < 1e-14);
    }

    #[test]
    fn missing_edge_is_a_typed_error() {
        let (coords, tets) = unit_tet();
        let mut edges = extract_edges(&tets);
        edges.retain(|e| e != &[0, 1]);
        assert_eq!(
            edge_coefficients(&coords, &tets, &edges),
            Err(MeshError::EdgeMissing { a: 0, b: 1 })
        );
    }

    #[test]
    fn unit_tet_dual_volumes() {
        let (coords, tets) = unit_tet();
        let vol = dual_volumes(&coords, &tets, 4);
        for v in vol {
            assert!((v - 1.0 / 24.0).abs() < 1e-15);
        }
    }

    #[test]
    fn unit_tet_closure() {
        let (coords, tets) = unit_tet();
        let edges = extract_edges(&tets);
        let coef = edge_coefficients(&coords, &tets, &edges).expect("complete edge list");
        let bf: Vec<(Vec3, [u32; 3])> = boundary_faces(&tets)
            .into_iter()
            .map(|f| {
                let s = tri_area_vec(
                    coords[f[0] as usize],
                    coords[f[1] as usize],
                    coords[f[2] as usize],
                );
                (s, f)
            })
            .collect();
        let res = closure_residual(4, &edges, &coef, &bf);
        for r in res {
            assert!(r.norm() < 1e-14, "dual surface must close: {r:?}");
        }
    }
}
