//! Micro-benchmarks of the compute-intensive edge loops ("the majority
//! of the computations made in EUL3D are in loops over the edges of the
//! mesh", §3.1): convective flux, the two dissipation passes, spectral
//! radii, and residual-averaging accumulation.

// Benchmarks the deprecated AoS entry points on purpose: they are the
// baseline the SoA kernels are compared against.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use eul3d_core::counters::FlopCounter;
use eul3d_core::dissipation::{dissipation_pass, laplacian_pass, sensor_from_accumulators};
use eul3d_core::flux::{compute_pressures, conv_residual_edges};
use eul3d_core::gas::{GAMMA, NVAR};
use eul3d_core::smooth::smooth_accumulate;
use eul3d_core::timestep::radii_edges;
use eul3d_core::SolverConfig;
use eul3d_mesh::gen::{bump_channel, BumpSpec};
use eul3d_mesh::TetMesh;

fn workload() -> (TetMesh, Vec<f64>, Vec<f64>) {
    let mesh = bump_channel(&BumpSpec {
        nx: 24,
        ny: 10,
        nz: 8,
        jitter: 0.15,
        ..Default::default()
    });
    let cfg = SolverConfig::default();
    let fs = cfg.freestream();
    let n = mesh.nverts();
    let mut w = vec![0.0; n * NVAR];
    for (i, c) in mesh.coords.iter().enumerate() {
        let s = 1.0 + 0.05 * (c.x * 3.0).sin() * (c.y * 5.0).cos();
        for k in 0..NVAR {
            w[i * NVAR + k] = fs.w[k] * s;
        }
    }
    let mut p = vec![0.0; n];
    let mut counter = FlopCounter::default();
    compute_pressures(GAMMA, &w, &mut p, &mut counter);
    (mesh, w, p)
}

fn bench_edges(c: &mut Criterion) {
    let (mesh, w, p) = workload();
    let n = mesh.nverts();
    let ne = mesh.nedges() as u64;
    let mut group = c.benchmark_group("edge_kernels");
    group.throughput(Throughput::Elements(ne));
    group.sample_size(20);

    group.bench_function("convective_flux", |b| {
        let mut q = vec![0.0; n * NVAR];
        let mut counter = FlopCounter::default();
        b.iter(|| {
            q.iter_mut().for_each(|x| *x = 0.0);
            conv_residual_edges(&mesh.edges, &mesh.edge_coef, &w, &p, &mut q, &mut counter);
            black_box(&q);
        });
    });

    group.bench_function("dissipation_pass1_laplacian", |b| {
        let mut lapl = vec![0.0; n * NVAR];
        let mut sens = vec![0.0; n * 2];
        let mut counter = FlopCounter::default();
        b.iter(|| {
            lapl.iter_mut().for_each(|x| *x = 0.0);
            sens.iter_mut().for_each(|x| *x = 0.0);
            laplacian_pass(&mesh.edges, &w, &p, &mut lapl, &mut sens, &mut counter);
            black_box(&lapl);
        });
    });

    group.bench_function("dissipation_pass2_blend", |b| {
        let mut lapl = vec![0.0; n * NVAR];
        let mut sens = vec![0.0; n * 2];
        let mut nu = vec![0.0; n];
        let mut counter = FlopCounter::default();
        laplacian_pass(&mesh.edges, &w, &p, &mut lapl, &mut sens, &mut counter);
        sensor_from_accumulators(&sens, &mut nu);
        let mut diss = vec![0.0; n * NVAR];
        b.iter(|| {
            diss.iter_mut().for_each(|x| *x = 0.0);
            dissipation_pass(
                &mesh.edges,
                &mesh.edge_coef,
                &w,
                &p,
                &lapl,
                &nu,
                GAMMA,
                0.5,
                1.0 / 16.0,
                &mut diss,
                &mut counter,
            );
            black_box(&diss);
        });
    });

    group.bench_function("spectral_radii", |b| {
        let mut lam = vec![0.0; n];
        let mut counter = FlopCounter::default();
        b.iter(|| {
            lam.iter_mut().for_each(|x| *x = 0.0);
            radii_edges(
                &mesh.edges,
                &mesh.edge_coef,
                &w,
                &p,
                GAMMA,
                &mut lam,
                &mut counter,
            );
            black_box(&lam);
        });
    });

    group.bench_function("smooth_accumulate", |b| {
        let res = w.clone();
        let mut acc = vec![0.0; n * NVAR];
        let mut counter = FlopCounter::default();
        b.iter(|| {
            acc.iter_mut().for_each(|x| *x = 0.0);
            smooth_accumulate(&mesh.edges, &res, &mut acc, &mut counter);
            black_box(&acc);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_edges);
criterion_main!(benches);
