//! Thin client helpers over the wire protocol: connect, send one
//! request line, stream the reply lines. The CLI `submit` subcommand,
//! the benchmark loadgen, and the serve test suites all drive the
//! server exclusively through this module, so they exercise the same
//! bytes a foreign client would.
//!
//! [`submit_resilient`] adds the crash-tolerant variant: read timeouts,
//! bounded retries with deterministic seeded-jitter exponential backoff
//! (honouring the server's `retry_after_ms` hint on backpressure), and
//! resubmission when a stream dies without a terminal event — safe
//! because a submission's identity is its content key, so a restarted
//! server serves the retry from its durable store or resumes the same
//! job rather than computing a divergent duplicate.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::json::JObj;
use crate::protocol::Request;

/// An open reply stream: iterate [`EventStream::next_line`] until
/// `None` (server closed the connection).
pub struct EventStream {
    reader: BufReader<UnixStream>,
}

impl EventStream {
    /// The next reply line, trimmed, or `None` at end of stream.
    pub fn next_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line.trim_end().to_string()),
        }
    }
}

/// Connect to the server at `path` and send one raw request line.
pub fn open(path: &Path, line: &str) -> std::io::Result<EventStream> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    Ok(EventStream {
        reader: BufReader::new(stream),
    })
}

/// Send a typed request and stream the reply.
pub fn request(path: &Path, req: &Request) -> std::io::Result<EventStream> {
    open(path, &req.to_line())
}

/// Send a typed request expecting a single-line acknowledgement
/// (`cancel` / `stats` / `shutdown`).
pub fn request_one(path: &Path, req: &Request) -> std::io::Result<String> {
    let mut s = request(path, req)?;
    s.next_line()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no reply"))
}

/// Send a raw line and collect every reply line until the server closes
/// the connection.
pub fn raw_request(path: &Path, line: &str) -> std::io::Result<Vec<String>> {
    let mut s = open(path, line)?;
    let mut out = Vec::new();
    while let Some(l) = s.next_line() {
        out.push(l);
    }
    Ok(out)
}

/// Submit `config` (TOML text) and collect the full event stream of the
/// job, through its terminal event.
pub fn submit_and_collect(
    path: &Path,
    config: &str,
    mode: &str,
    force: bool,
    artifacts: bool,
) -> std::io::Result<Vec<String>> {
    let mode = eul3d_core::JobMode::parse(mode).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("bad mode '{mode}'"),
        )
    })?;
    raw_request(
        path,
        &Request::Submit {
            config: config.to_string(),
            mode,
            force,
            artifacts,
        }
        .to_line(),
    )
}

/// Resilience policy for [`submit_resilient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-read socket timeout. A stalled server (wedged, mid-restart)
    /// turns into a retryable stream error instead of hanging the
    /// client forever. `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// Base of the exponential backoff between attempts; attempt `n`
    /// waits `base * 2^n` plus deterministic jitter, except when the
    /// server's `retry_after_ms` backpressure hint says otherwise.
    pub base_backoff_ms: u64,
    /// Seed of the jitter PRNG — retries are reproducible, matching the
    /// determinism contract everywhere else in the workspace.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(120)),
            retries: 0,
            base_backoff_ms: 50,
            seed: 7,
        }
    }
}

/// How one submission attempt ended.
enum Attempt {
    /// Stream carried a terminal event — these lines are the answer.
    Terminal(Vec<String>),
    /// Backpressure bounce with the server's retry hint.
    Rejected { retry_after_ms: Option<u64> },
    /// Connection failed or the stream died without a terminal event
    /// (server killed mid-job).
    Broken(std::io::Error),
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = state.wrapping_mul(2).wrapping_add(1); // never 0
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Submit with retries: collects the stream like [`submit_and_collect`]
/// but survives backpressure bounces, connection refusals, and streams
/// severed mid-job (a crashed or restarting server). Safe to retry
/// because submissions are idempotent by content key — see the module
/// docs. Returns the first stream that reached a terminal event, or the
/// last error once `cfg.retries` is exhausted.
pub fn submit_resilient(
    path: &Path,
    config: &str,
    mode: &str,
    force: bool,
    artifacts: bool,
    cfg: &ClientConfig,
) -> std::io::Result<Vec<String>> {
    let mode = eul3d_core::JobMode::parse(mode).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("bad mode '{mode}'"),
        )
    })?;
    let line = Request::Submit {
        config: config.to_string(),
        mode,
        force,
        artifacts,
    }
    .to_line();
    let mut rng = cfg.seed;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..=cfg.retries {
        match submit_once(path, &line, cfg.read_timeout) {
            Attempt::Terminal(lines) => return Ok(lines),
            Attempt::Rejected { retry_after_ms } => {
                if attempt == cfg.retries {
                    last_err = Some(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "server queue full, retries exhausted",
                    ));
                    break;
                }
                // The server's hint wins over our own schedule: it
                // knows its queue depth.
                let base = retry_after_ms.unwrap_or_else(|| cfg.base_backoff_ms << attempt.min(10));
                std::thread::sleep(jittered(base, &mut rng));
            }
            Attempt::Broken(e) => {
                if attempt == cfg.retries {
                    last_err = Some(e);
                    break;
                }
                let base = cfg.base_backoff_ms << attempt.min(10);
                std::thread::sleep(jittered(base, &mut rng));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("submit retries exhausted")))
}

/// Backoff duration: `base` plus up to 50% deterministic jitter.
fn jittered(base_ms: u64, rng: &mut u64) -> Duration {
    let jitter = if base_ms == 0 {
        0
    } else {
        xorshift64(rng) % (base_ms / 2 + 1)
    };
    Duration::from_millis(base_ms + jitter)
}

fn submit_once(path: &Path, line: &str, read_timeout: Option<Duration>) -> Attempt {
    let stream = match UnixStream::connect(path) {
        Ok(s) => s,
        Err(e) => return Attempt::Broken(e),
    };
    if stream.set_read_timeout(read_timeout).is_err() {
        return Attempt::Broken(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cannot set read timeout",
        ));
    }
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => return Attempt::Broken(e),
    };
    if let Err(e) = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
    {
        return Attempt::Broken(e);
    }
    let mut reader = BufReader::new(stream);
    let mut out = Vec::new();
    loop {
        let mut l = String::new();
        match reader.read_line(&mut l) {
            Ok(0) => break,
            Ok(_) => {
                let l = l.trim_end().to_string();
                if let Ok(o) = JObj::parse(&l) {
                    if o.str_of("event") == Some("rejected") {
                        return Attempt::Rejected {
                            retry_after_ms: o.u64_of("retry_after_ms"),
                        };
                    }
                }
                out.push(l);
            }
            Err(e) => return Attempt::Broken(e),
        }
    }
    let terminal = out.iter().rev().any(|l| {
        JObj::parse(l).ok().is_some_and(|o| {
            matches!(
                o.str_of("event"),
                Some("done" | "cancelled" | "failed" | "error")
            )
        })
    });
    if terminal {
        Attempt::Terminal(out)
    } else {
        Attempt::Broken(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream ended before a terminal event",
        ))
    }
}
