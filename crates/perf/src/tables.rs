//! Minimal plain-text table rendering for the benchmark harnesses.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for c in 0..ncols {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&" ".repeat(widths[c] - cells[c].len()));
                out.push_str(&cells[c]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["CPUs", "Wall Clock", "MFlops"]);
        t.row(&["1".into(), "1916".into(), "252".into()]);
        t.row(&["16".into(), "156".into(), "3252".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Wall Clock"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].trim_start().starts_with("16"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(1916.4), "1916");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
    }
}
