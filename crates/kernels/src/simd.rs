//! 4-wide AVX2 bodies for the gather-heavy edge kernels.
//!
//! Each `*_span` function mirrors one public kernel in `edges.rs`: it
//! runs the same lane-chunked [`drive`] loop, but inside each chunk it
//! gathers four edges' endpoint planes into `__m256d` registers (one
//! hardware gather per plane per side), evaluates the per-edge
//! expression tree with elementwise vector ops, and scatters scalar,
//! per edge, in ascending edge order. Chunk remainders (fewer than four
//! edges) fall back to the shared scalar bodies in [`one`].
//!
//! # Bit-equivalence
//! The vector ops used — `add`/`sub`/`mul`/`div`/`sqrt` (IEEE correctly
//! rounded per element), sign-mask `abs`, and a `max_pd` + NaN-blend
//! sequence reproducing `f64::max` — give exactly the scalar result in
//! every lane; no FMA contraction, no reassociation. The crate's
//! equivalence tests exercise this path on any AVX2 host.
//!
//! Closures are deliberately absent from the vector bodies: a closure
//! defined outside a `#[target_feature]` function does not inherit the
//! feature set, so its 256-bit ops would be legalized to split 128-bit
//! code with memory-ABI crossings.

#![allow(clippy::too_many_arguments)]

use core::arch::x86_64::*;

use eul3d_mesh::Vec3;

use crate::edges::{drive, one};
use crate::scatter::{EdgeSpan, ScatterAccess};

/// Runtime AVX2 check (result is cached by `std`).
#[inline(always)]
pub(crate) fn avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Gather `base[idx[0..4]]` into ascending lanes. Insert-chain loads
/// beat `vgatherdpd` here: the hardware gather's port occupancy stalls
/// the scatter-heavy kernels on the machines we measured.
///
/// # Safety
/// All four indices must be in bounds of the allocation at `base`.
#[inline(always)]
unsafe fn gather4(base: *const f64, idx: &[usize; 4]) -> __m256d {
    unsafe {
        _mm256_set_pd(
            *base.add(idx[3]),
            *base.add(idx[2]),
            *base.add(idx[1]),
            *base.add(idx[0]),
        )
    }
}

/// Spill a vector to an indexable lane array.
#[inline(always)]
fn lanes_of(v: __m256d) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    unsafe { _mm256_storeu_pd(out.as_mut_ptr(), v) };
    out
}

/// `|x|` as the sign-bit mask-off, identical to scalar `f64::abs`.
#[inline(always)]
fn abs_pd(x: __m256d) -> __m256d {
    unsafe { _mm256_andnot_pd(_mm256_set1_pd(-0.0), x) }
}

/// `f64::max(a, b)` semantics per lane: `max_pd` already returns `b`
/// when `a` is NaN; blend back `a` where `b` is NaN.
#[inline(always)]
fn maxnum_pd(a: __m256d, b: __m256d) -> __m256d {
    unsafe {
        let m = _mm256_max_pd(a, b);
        let b_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(b, b);
        _mm256_blendv_pd(m, a, b_nan)
    }
}

/// Endpoint indices (scalar for the scatter, vector for the gathers)
/// and face-normal lanes of four consecutive span ids.
struct Four {
    ai: [usize; 4],
    bi: [usize; 4],
    ex: __m256d,
    ey: __m256d,
    ez: __m256d,
}

/// # Safety
/// `ids[k..k+4]` must be valid edge ids for `edges`/`coef`.
#[inline(always)]
unsafe fn load4(ids: &[u32], k: usize, edges: &[[u32; 2]], coef: &[Vec3]) -> Four {
    let mut ai = [0usize; 4];
    let mut bi = [0usize; 4];
    let mut ex = [0.0f64; 4];
    let mut ey = [0.0f64; 4];
    let mut ez = [0.0f64; 4];
    for j in 0..4 {
        unsafe {
            let e = *ids.get_unchecked(k + j) as usize;
            let [a, b] = *edges.get_unchecked(e);
            ai[j] = a as usize;
            bi[j] = b as usize;
            let eta = *coef.get_unchecked(e);
            ex[j] = eta.x;
            ey[j] = eta.y;
            ez[j] = eta.z;
        }
    }
    unsafe {
        Four {
            ai,
            bi,
            ex: _mm256_loadu_pd(ex.as_ptr()),
            ey: _mm256_loadu_pd(ey.as_ptr()),
            ez: _mm256_loadu_pd(ez.as_ptr()),
        }
    }
}

/// `|η|` per lane: `sqrt(ex² + ey² + ez²)` in the scalar tree order.
#[inline(always)]
fn norm4(g: &Four) -> __m256d {
    unsafe {
        _mm256_sqrt_pd(_mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(g.ex, g.ex), _mm256_mul_pd(g.ey, g.ey)),
            _mm256_mul_pd(g.ez, g.ez),
        ))
    }
}

/// One endpoint's spectral radius `|q·η|/ρ + √(γp/ρ)·|η|` from
/// already-gathered planes — the vector twin of the per-side half of
/// [`one::edge_lambda`].
#[inline(always)]
fn sigma4(
    r: __m256d,
    w1: __m256d,
    w2: __m256d,
    w3: __m256d,
    p: __m256d,
    g: &Four,
    norm: __m256d,
    gamma: __m256d,
) -> __m256d {
    unsafe {
        let qn = _mm256_div_pd(
            _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(w1, g.ex), _mm256_mul_pd(w2, g.ey)),
                _mm256_mul_pd(w3, g.ez),
            ),
            r,
        );
        _mm256_add_pd(
            abs_pd(qn),
            _mm256_mul_pd(
                _mm256_sqrt_pd(_mm256_div_pd(_mm256_mul_pd(gamma, p), r)),
                norm,
            ),
        )
    }
}

/// AVX2 body of `conv_flux_edges`.
///
/// # Safety
/// Same contract as `conv_flux_edges`; requires AVX2 (checked by the
/// dispatching kernel).
pub(crate) unsafe fn conv_flux_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            conv_flux_chunk(ids, edges, coef, wp, pp, n, s);
        });
    }
}

#[target_feature(enable = "avx2")]
unsafe fn conv_flux_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    coef: &[Vec3],
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let half = _mm256_set1_pd(0.5);
        let mut k = 0;
        while k + 4 <= ids.len() {
            let g = load4(ids, k, edges, coef);
            let wa0 = gather4(wp, &g.ai);
            let wa1 = gather4(wp.add(n), &g.ai);
            let wa2 = gather4(wp.add(2 * n), &g.ai);
            let wa3 = gather4(wp.add(3 * n), &g.ai);
            let wa4 = gather4(wp.add(4 * n), &g.ai);
            let wb0 = gather4(wp, &g.bi);
            let wb1 = gather4(wp.add(n), &g.bi);
            let wb2 = gather4(wp.add(2 * n), &g.bi);
            let wb3 = gather4(wp.add(3 * n), &g.bi);
            let wb4 = gather4(wp.add(4 * n), &g.bi);
            let pa = gather4(pp, &g.ai);
            let pb = gather4(pp, &g.bi);
            let ua = _mm256_div_pd(wa1, wa0);
            let va = _mm256_div_pd(wa2, wa0);
            let za = _mm256_div_pd(wa3, wa0);
            let qna = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(ua, g.ex), _mm256_mul_pd(va, g.ey)),
                _mm256_mul_pd(za, g.ez),
            );
            let fa0 = _mm256_mul_pd(wa0, qna);
            let fa1 = _mm256_add_pd(_mm256_mul_pd(wa1, qna), _mm256_mul_pd(pa, g.ex));
            let fa2 = _mm256_add_pd(_mm256_mul_pd(wa2, qna), _mm256_mul_pd(pa, g.ey));
            let fa3 = _mm256_add_pd(_mm256_mul_pd(wa3, qna), _mm256_mul_pd(pa, g.ez));
            let fa4 = _mm256_mul_pd(_mm256_add_pd(wa4, pa), qna);
            let ub = _mm256_div_pd(wb1, wb0);
            let vb = _mm256_div_pd(wb2, wb0);
            let zb = _mm256_div_pd(wb3, wb0);
            let qnb = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(ub, g.ex), _mm256_mul_pd(vb, g.ey)),
                _mm256_mul_pd(zb, g.ez),
            );
            let fb0 = _mm256_mul_pd(wb0, qnb);
            let fb1 = _mm256_add_pd(_mm256_mul_pd(wb1, qnb), _mm256_mul_pd(pb, g.ex));
            let fb2 = _mm256_add_pd(_mm256_mul_pd(wb2, qnb), _mm256_mul_pd(pb, g.ey));
            let fb3 = _mm256_add_pd(_mm256_mul_pd(wb3, qnb), _mm256_mul_pd(pb, g.ez));
            let fb4 = _mm256_mul_pd(_mm256_add_pd(wb4, pb), qnb);
            let f0 = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(fa0, fb0)));
            let f1 = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(fa1, fb1)));
            let f2 = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(fa2, fb2)));
            let f3 = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(fa3, fb3)));
            let f4 = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(fa4, fb4)));
            for j in 0..4 {
                let (a, b) = (g.ai[j], g.bi[j]);
                s.add(0, a, f0[j]);
                s.add(0, b, -f0[j]);
                s.add(0, n + a, f1[j]);
                s.add(0, n + b, -f1[j]);
                s.add(0, 2 * n + a, f2[j]);
                s.add(0, 2 * n + b, -f2[j]);
                s.add(0, 3 * n + a, f3[j]);
                s.add(0, 3 * n + b, -f3[j]);
                s.add(0, 4 * n + a, f4[j]);
                s.add(0, 4 * n + b, -f4[j]);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::conv_flux(e as usize, edges, coef, wp, pp, n, s);
        }
    }
}

/// AVX2 body of `radii_edges_soa`.
///
/// # Safety
/// Same contract as `radii_edges_soa`; requires AVX2.
pub(crate) unsafe fn radii_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            radii_chunk(ids, edges, coef, gamma, wp, pp, n, s);
        });
    }
}

#[target_feature(enable = "avx2")]
unsafe fn radii_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let gv = _mm256_set1_pd(gamma);
        let half = _mm256_set1_pd(0.5);
        let mut k = 0;
        while k + 4 <= ids.len() {
            let g = load4(ids, k, edges, coef);
            let norm = norm4(&g);
            let sa = sigma4(
                gather4(wp, &g.ai),
                gather4(wp.add(n), &g.ai),
                gather4(wp.add(2 * n), &g.ai),
                gather4(wp.add(3 * n), &g.ai),
                gather4(pp, &g.ai),
                &g,
                norm,
                gv,
            );
            let sb = sigma4(
                gather4(wp, &g.bi),
                gather4(wp.add(n), &g.bi),
                gather4(wp.add(2 * n), &g.bi),
                gather4(wp.add(3 * n), &g.bi),
                gather4(pp, &g.bi),
                &g,
                norm,
                gv,
            );
            let l = lanes_of(_mm256_mul_pd(half, _mm256_add_pd(sa, sb)));
            for (j, &lam) in l.iter().enumerate() {
                s.add(0, g.ai[j], lam);
                s.add(0, g.bi[j], lam);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::radii(e as usize, edges, coef, gamma, wp, pp, n, s);
        }
    }
}

/// AVX2 body of `jst_pass1_edges`.
///
/// # Safety
/// Same contract as `jst_pass1_edges`; requires AVX2.
pub(crate) unsafe fn jst_pass1_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            jst_pass1_chunk(ids, edges, wp, pp, n, s);
        });
    }
}

#[target_feature(enable = "avx2")]
unsafe fn jst_pass1_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let mut k = 0;
        while k + 4 <= ids.len() {
            let mut ai = [0usize; 4];
            let mut bi = [0usize; 4];
            for j in 0..4 {
                let e = *ids.get_unchecked(k + j) as usize;
                let [a, b] = *edges.get_unchecked(e);
                ai[j] = a as usize;
                bi[j] = b as usize;
            }
            let d0 = lanes_of(_mm256_sub_pd(gather4(wp, &bi), gather4(wp, &ai)));
            let d1 = lanes_of(_mm256_sub_pd(
                gather4(wp.add(n), &bi),
                gather4(wp.add(n), &ai),
            ));
            let d2 = lanes_of(_mm256_sub_pd(
                gather4(wp.add(2 * n), &bi),
                gather4(wp.add(2 * n), &ai),
            ));
            let d3 = lanes_of(_mm256_sub_pd(
                gather4(wp.add(3 * n), &bi),
                gather4(wp.add(3 * n), &ai),
            ));
            let d4 = lanes_of(_mm256_sub_pd(
                gather4(wp.add(4 * n), &bi),
                gather4(wp.add(4 * n), &ai),
            ));
            let pa = gather4(pp, &ai);
            let pb = gather4(pp, &bi);
            let dp = lanes_of(_mm256_sub_pd(pb, pa));
            let sp = lanes_of(_mm256_add_pd(pb, pa));
            for j in 0..4 {
                let (a, b) = (ai[j], bi[j]);
                s.add(0, a, d0[j]);
                s.add(0, b, -d0[j]);
                s.add(0, n + a, d1[j]);
                s.add(0, n + b, -d1[j]);
                s.add(0, 2 * n + a, d2[j]);
                s.add(0, 2 * n + b, -d2[j]);
                s.add(0, 3 * n + a, d3[j]);
                s.add(0, 3 * n + b, -d3[j]);
                s.add(0, 4 * n + a, d4[j]);
                s.add(0, 4 * n + b, -d4[j]);
                s.add(1, a, dp[j]);
                s.add(1, n + a, sp[j]);
                s.add(1, b, -dp[j]);
                s.add(1, n + b, sp[j]);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::jst_pass1(e as usize, edges, wp, pp, n, s);
        }
    }
}

/// AVX2 body of `jst_pass2_edges`.
///
/// # Safety
/// Same contract as `jst_pass2_edges`; requires AVX2.
pub(crate) unsafe fn jst_pass2_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    k2: f64,
    k4: f64,
    wp: *const f64,
    pp: *const f64,
    lp: *const f64,
    np: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            jst_pass2_chunk(ids, edges, coef, gamma, k2, k4, wp, pp, lp, np, n, s);
        });
    }
}

#[target_feature(enable = "avx2")]
unsafe fn jst_pass2_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    k2: f64,
    k4: f64,
    wp: *const f64,
    pp: *const f64,
    lp: *const f64,
    np: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let gv = _mm256_set1_pd(gamma);
        let half = _mm256_set1_pd(0.5);
        let k2v = _mm256_set1_pd(k2);
        let k4v = _mm256_set1_pd(k4);
        let zero = _mm256_setzero_pd();
        let mut k = 0;
        while k + 4 <= ids.len() {
            let g = load4(ids, k, edges, coef);
            // Gather every plane once per side; the spectral radius and
            // the switched differences reuse the same registers.
            let wa0 = gather4(wp, &g.ai);
            let wa1 = gather4(wp.add(n), &g.ai);
            let wa2 = gather4(wp.add(2 * n), &g.ai);
            let wa3 = gather4(wp.add(3 * n), &g.ai);
            let wa4 = gather4(wp.add(4 * n), &g.ai);
            let wb0 = gather4(wp, &g.bi);
            let wb1 = gather4(wp.add(n), &g.bi);
            let wb2 = gather4(wp.add(2 * n), &g.bi);
            let wb3 = gather4(wp.add(3 * n), &g.bi);
            let wb4 = gather4(wp.add(4 * n), &g.bi);
            let pa = gather4(pp, &g.ai);
            let pb = gather4(pp, &g.bi);
            let norm = norm4(&g);
            let sa = sigma4(wa0, wa1, wa2, wa3, pa, &g, norm, gv);
            let sb = sigma4(wb0, wb1, wb2, wb3, pb, &g, norm, gv);
            let lam = _mm256_mul_pd(half, _mm256_add_pd(sa, sb));
            let eps2 = _mm256_mul_pd(k2v, maxnum_pd(gather4(np, &g.ai), gather4(np, &g.bi)));
            let eps4 = _mm256_max_pd(_mm256_sub_pd(k4v, eps2), zero);
            let la0 = gather4(lp, &g.ai);
            let la1 = gather4(lp.add(n), &g.ai);
            let la2 = gather4(lp.add(2 * n), &g.ai);
            let la3 = gather4(lp.add(3 * n), &g.ai);
            let la4 = gather4(lp.add(4 * n), &g.ai);
            let lb0 = gather4(lp, &g.bi);
            let lb1 = gather4(lp.add(n), &g.bi);
            let lb2 = gather4(lp.add(2 * n), &g.bi);
            let lb3 = gather4(lp.add(3 * n), &g.bi);
            let lb4 = gather4(lp.add(4 * n), &g.bi);
            let d0 = lanes_of(_mm256_mul_pd(
                lam,
                _mm256_sub_pd(
                    _mm256_mul_pd(eps2, _mm256_sub_pd(wb0, wa0)),
                    _mm256_mul_pd(eps4, _mm256_sub_pd(lb0, la0)),
                ),
            ));
            let d1 = lanes_of(_mm256_mul_pd(
                lam,
                _mm256_sub_pd(
                    _mm256_mul_pd(eps2, _mm256_sub_pd(wb1, wa1)),
                    _mm256_mul_pd(eps4, _mm256_sub_pd(lb1, la1)),
                ),
            ));
            let d2 = lanes_of(_mm256_mul_pd(
                lam,
                _mm256_sub_pd(
                    _mm256_mul_pd(eps2, _mm256_sub_pd(wb2, wa2)),
                    _mm256_mul_pd(eps4, _mm256_sub_pd(lb2, la2)),
                ),
            ));
            let d3 = lanes_of(_mm256_mul_pd(
                lam,
                _mm256_sub_pd(
                    _mm256_mul_pd(eps2, _mm256_sub_pd(wb3, wa3)),
                    _mm256_mul_pd(eps4, _mm256_sub_pd(lb3, la3)),
                ),
            ));
            let d4 = lanes_of(_mm256_mul_pd(
                lam,
                _mm256_sub_pd(
                    _mm256_mul_pd(eps2, _mm256_sub_pd(wb4, wa4)),
                    _mm256_mul_pd(eps4, _mm256_sub_pd(lb4, la4)),
                ),
            ));
            for j in 0..4 {
                let (a, b) = (g.ai[j], g.bi[j]);
                s.add(0, a, d0[j]);
                s.add(0, b, -d0[j]);
                s.add(0, n + a, d1[j]);
                s.add(0, n + b, -d1[j]);
                s.add(0, 2 * n + a, d2[j]);
                s.add(0, 2 * n + b, -d2[j]);
                s.add(0, 3 * n + a, d3[j]);
                s.add(0, 3 * n + b, -d3[j]);
                s.add(0, 4 * n + a, d4[j]);
                s.add(0, 4 * n + b, -d4[j]);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::jst_pass2(e as usize, edges, coef, gamma, k2, k4, wp, pp, lp, np, n, s);
        }
    }
}

/// AVX2 body of `first_order_diss_edges`.
///
/// # Safety
/// Same contract as `first_order_diss_edges`; requires AVX2.
pub(crate) unsafe fn first_order_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    kdiss: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            first_order_chunk(ids, edges, coef, gamma, kdiss, wp, pp, n, s);
        });
    }
}

#[target_feature(enable = "avx2")]
unsafe fn first_order_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    kdiss: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let gv = _mm256_set1_pd(gamma);
        let half = _mm256_set1_pd(0.5);
        let kv = _mm256_set1_pd(kdiss);
        let mut k = 0;
        while k + 4 <= ids.len() {
            let g = load4(ids, k, edges, coef);
            let wa0 = gather4(wp, &g.ai);
            let wa1 = gather4(wp.add(n), &g.ai);
            let wa2 = gather4(wp.add(2 * n), &g.ai);
            let wa3 = gather4(wp.add(3 * n), &g.ai);
            let wa4 = gather4(wp.add(4 * n), &g.ai);
            let wb0 = gather4(wp, &g.bi);
            let wb1 = gather4(wp.add(n), &g.bi);
            let wb2 = gather4(wp.add(2 * n), &g.bi);
            let wb3 = gather4(wp.add(3 * n), &g.bi);
            let wb4 = gather4(wp.add(4 * n), &g.bi);
            let norm = norm4(&g);
            let sa = sigma4(wa0, wa1, wa2, wa3, gather4(pp, &g.ai), &g, norm, gv);
            let sb = sigma4(wb0, wb1, wb2, wb3, gather4(pp, &g.bi), &g, norm, gv);
            let kl = _mm256_mul_pd(kv, _mm256_mul_pd(half, _mm256_add_pd(sa, sb)));
            let d0 = lanes_of(_mm256_mul_pd(kl, _mm256_sub_pd(wb0, wa0)));
            let d1 = lanes_of(_mm256_mul_pd(kl, _mm256_sub_pd(wb1, wa1)));
            let d2 = lanes_of(_mm256_mul_pd(kl, _mm256_sub_pd(wb2, wa2)));
            let d3 = lanes_of(_mm256_mul_pd(kl, _mm256_sub_pd(wb3, wa3)));
            let d4 = lanes_of(_mm256_mul_pd(kl, _mm256_sub_pd(wb4, wa4)));
            for j in 0..4 {
                let (a, b) = (g.ai[j], g.bi[j]);
                s.add(0, a, d0[j]);
                s.add(0, b, -d0[j]);
                s.add(0, n + a, d1[j]);
                s.add(0, n + b, -d1[j]);
                s.add(0, 2 * n + a, d2[j]);
                s.add(0, 2 * n + b, -d2[j]);
                s.add(0, 3 * n + a, d3[j]);
                s.add(0, 3 * n + b, -d3[j]);
                s.add(0, 4 * n + a, d4[j]);
                s.add(0, 4 * n + b, -d4[j]);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::first_order(e as usize, edges, coef, gamma, kdiss, wp, pp, n, s);
        }
    }
}

/// AVX2 body of `roe_diss_edges`.
///
/// # Safety
/// Same contract as `roe_diss_edges`; requires AVX2.
pub(crate) unsafe fn roe_diss_span(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    unsafe {
        drive(span, lanes, |ids| {
            roe_diss_chunk(ids, edges, coef, gamma, wp, pp, n, s);
        });
    }
}

/// Harten entropy fix per lane, mirroring the scalar closure in
/// [`crate::gas::roe_dissipation_flux`]: `|λ| < δ` blends in the
/// parabolic `½(|λ|²/δ + δ)`. Both branch trees are evaluated and
/// selected, which is bit-identical to the scalar `if`.
#[inline(always)]
fn fix4(lam: __m256d, delta: __m256d, half: __m256d) -> __m256d {
    unsafe {
        let al = abs_pd(lam);
        let parab = _mm256_mul_pd(
            half,
            _mm256_add_pd(_mm256_div_pd(_mm256_mul_pd(al, al), delta), delta),
        );
        let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(al, delta);
        _mm256_blendv_pd(al, parab, lt)
    }
}

#[target_feature(enable = "avx2")]
unsafe fn roe_diss_chunk(
    ids: &[u32],
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    wp: *const f64,
    pp: *const f64,
    n: usize,
    s: &ScatterAccess,
) {
    unsafe {
        let half = _mm256_set1_pd(0.5);
        let one_v = _mm256_set1_pd(1.0);
        let two = _mm256_set1_pd(2.0);
        let zero = _mm256_setzero_pd();
        let gm1 = _mm256_set1_pd(gamma - 1.0);
        let c2_floor = _mm256_set1_pd(1e-12);
        let efix = _mm256_set1_pd(crate::gas::ENTROPY_FIX);
        let tiny = _mm256_set1_pd(1e-300);
        let mut k = 0;
        while k + 4 <= ids.len() {
            let g = load4(ids, k, edges, coef);
            let area = norm4(&g);
            // Degenerate faces take the scalar early-return; fall back
            // for the whole group (never hit on a valid mesh).
            if _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(area, tiny)) != 0 {
                for j in 0..4 {
                    one::roe(
                        *ids.get_unchecked(k + j) as usize,
                        edges,
                        coef,
                        gamma,
                        wp,
                        pp,
                        n,
                        s,
                    );
                }
                k += 4;
                continue;
            }
            let nx = _mm256_div_pd(g.ex, area);
            let ny = _mm256_div_pd(g.ey, area);
            let nz = _mm256_div_pd(g.ez, area);

            let ra = gather4(wp, &g.ai);
            let wa1 = gather4(wp.add(n), &g.ai);
            let wa2 = gather4(wp.add(2 * n), &g.ai);
            let wa3 = gather4(wp.add(3 * n), &g.ai);
            let wa4 = gather4(wp.add(4 * n), &g.ai);
            let rb = gather4(wp, &g.bi);
            let wb1 = gather4(wp.add(n), &g.bi);
            let wb2 = gather4(wp.add(2 * n), &g.bi);
            let wb3 = gather4(wp.add(3 * n), &g.bi);
            let wb4 = gather4(wp.add(4 * n), &g.bi);
            let pa = gather4(pp, &g.ai);
            let pb = gather4(pp, &g.bi);

            // Primitive states.
            let uax = _mm256_div_pd(wa1, ra);
            let uay = _mm256_div_pd(wa2, ra);
            let uaz = _mm256_div_pd(wa3, ra);
            let ubx = _mm256_div_pd(wb1, rb);
            let uby = _mm256_div_pd(wb2, rb);
            let ubz = _mm256_div_pd(wb3, rb);
            let ha = _mm256_div_pd(_mm256_add_pd(wa4, pa), ra);
            let hb = _mm256_div_pd(_mm256_add_pd(wb4, pb), rb);

            // Roe averages.
            let sra = _mm256_sqrt_pd(ra);
            let srb = _mm256_sqrt_pd(rb);
            let rho = _mm256_mul_pd(sra, srb);
            let f = _mm256_div_pd(sra, _mm256_add_pd(sra, srb));
            let omf = _mm256_sub_pd(one_v, f);
            let ux = _mm256_add_pd(_mm256_mul_pd(uax, f), _mm256_mul_pd(ubx, omf));
            let uy = _mm256_add_pd(_mm256_mul_pd(uay, f), _mm256_mul_pd(uby, omf));
            let uz = _mm256_add_pd(_mm256_mul_pd(uaz, f), _mm256_mul_pd(ubz, omf));
            let h = _mm256_add_pd(_mm256_mul_pd(ha, f), _mm256_mul_pd(hb, omf));
            let q2 = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(ux, ux), _mm256_mul_pd(uy, uy)),
                _mm256_mul_pd(uz, uz),
            );
            let c2 = _mm256_mul_pd(gm1, _mm256_sub_pd(h, _mm256_mul_pd(half, q2)));
            // `f64::max(c2, 1e-12)`: max_pd returns the (non-NaN)
            // constant when c2 is NaN, matching the scalar.
            let c = _mm256_sqrt_pd(_mm256_max_pd(c2, c2_floor));
            let un = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(ux, nx), _mm256_mul_pd(uy, ny)),
                _mm256_mul_pd(uz, nz),
            );

            // Jumps.
            let d_rho = _mm256_sub_pd(rb, ra);
            let d_p = _mm256_sub_pd(pb, pa);
            let dux = _mm256_sub_pd(ubx, uax);
            let duy = _mm256_sub_pd(uby, uay);
            let duz = _mm256_sub_pd(ubz, uaz);
            let d_un = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dux, nx), _mm256_mul_pd(duy, ny)),
                _mm256_mul_pd(duz, nz),
            );

            // Wave strengths (`rho*c*d_un` is one shared tree, as in
            // the scalar left-to-right evaluation).
            let rcd = _mm256_mul_pd(_mm256_mul_pd(rho, c), d_un);
            let c2x2 = _mm256_mul_pd(two, c2);
            let a1 = _mm256_div_pd(_mm256_sub_pd(d_p, rcd), c2x2);
            let a5 = _mm256_div_pd(_mm256_add_pd(d_p, rcd), c2x2);
            let a2 = _mm256_sub_pd(d_rho, _mm256_div_pd(d_p, c2));
            let dutx = _mm256_sub_pd(dux, _mm256_mul_pd(nx, d_un));
            let duty = _mm256_sub_pd(duy, _mm256_mul_pd(ny, d_un));
            let dutz = _mm256_sub_pd(duz, _mm256_mul_pd(nz, d_un));

            // Entropy-fixed absolute eigenvalues.
            let delta = _mm256_mul_pd(efix, c);
            let l1 = fix4(_mm256_sub_pd(un, c), delta, half);
            let l2 = fix4(un, delta, half);
            let l5 = fix4(_mm256_add_pd(un, c), delta, half);

            // |A|Δw accumulated wave by wave in the scalar order,
            // including the `+ s*1.0` / `+ s*0.0` terms so signed
            // zeros match.
            let s1 = _mm256_mul_pd(l1, a1);
            let s5 = _mm256_mul_pd(l5, a5);
            let s2a = _mm256_mul_pd(l2, a2);
            let s2b = _mm256_mul_pd(l2, rho);
            let ncx = _mm256_mul_pd(nx, c);
            let ncy = _mm256_mul_pd(ny, c);
            let ncz = _mm256_mul_pd(nz, c);
            let cun = _mm256_mul_pd(c, un);
            let udt = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(ux, dutx), _mm256_mul_pd(uy, duty)),
                _mm256_mul_pd(uz, dutz),
            );

            let mut d0 = _mm256_add_pd(zero, _mm256_mul_pd(s1, one_v));
            let mut d1 = _mm256_add_pd(zero, _mm256_mul_pd(s1, _mm256_sub_pd(ux, ncx)));
            let mut d2 = _mm256_add_pd(zero, _mm256_mul_pd(s1, _mm256_sub_pd(uy, ncy)));
            let mut d3 = _mm256_add_pd(zero, _mm256_mul_pd(s1, _mm256_sub_pd(uz, ncz)));
            let mut d4 = _mm256_add_pd(zero, _mm256_mul_pd(s1, _mm256_sub_pd(h, cun)));
            d0 = _mm256_add_pd(d0, _mm256_mul_pd(s5, one_v));
            d1 = _mm256_add_pd(d1, _mm256_mul_pd(s5, _mm256_add_pd(ux, ncx)));
            d2 = _mm256_add_pd(d2, _mm256_mul_pd(s5, _mm256_add_pd(uy, ncy)));
            d3 = _mm256_add_pd(d3, _mm256_mul_pd(s5, _mm256_add_pd(uz, ncz)));
            d4 = _mm256_add_pd(d4, _mm256_mul_pd(s5, _mm256_add_pd(h, cun)));
            d0 = _mm256_add_pd(d0, _mm256_mul_pd(s2a, one_v));
            d1 = _mm256_add_pd(d1, _mm256_mul_pd(s2a, ux));
            d2 = _mm256_add_pd(d2, _mm256_mul_pd(s2a, uy));
            d3 = _mm256_add_pd(d3, _mm256_mul_pd(s2a, uz));
            d4 = _mm256_add_pd(d4, _mm256_mul_pd(s2a, _mm256_mul_pd(half, q2)));
            d0 = _mm256_add_pd(d0, _mm256_mul_pd(s2b, zero));
            d1 = _mm256_add_pd(d1, _mm256_mul_pd(s2b, dutx));
            d2 = _mm256_add_pd(d2, _mm256_mul_pd(s2b, duty));
            d3 = _mm256_add_pd(d3, _mm256_mul_pd(s2b, dutz));
            d4 = _mm256_add_pd(d4, _mm256_mul_pd(s2b, udt));

            let sc = _mm256_mul_pd(half, area);
            let f0 = lanes_of(_mm256_mul_pd(d0, sc));
            let f1 = lanes_of(_mm256_mul_pd(d1, sc));
            let f2 = lanes_of(_mm256_mul_pd(d2, sc));
            let f3 = lanes_of(_mm256_mul_pd(d3, sc));
            let f4 = lanes_of(_mm256_mul_pd(d4, sc));
            for j in 0..4 {
                let (a, b) = (g.ai[j], g.bi[j]);
                s.add(0, a, f0[j]);
                s.add(0, b, -f0[j]);
                s.add(0, n + a, f1[j]);
                s.add(0, n + b, -f1[j]);
                s.add(0, 2 * n + a, f2[j]);
                s.add(0, 2 * n + b, -f2[j]);
                s.add(0, 3 * n + a, f3[j]);
                s.add(0, 3 * n + b, -f3[j]);
                s.add(0, 4 * n + a, f4[j]);
                s.add(0, 4 * n + b, -f4[j]);
            }
            k += 4;
        }
        for &e in ids.get_unchecked(k..) {
            one::roe(e as usize, edges, coef, gamma, wp, pp, n, s);
        }
    }
}
