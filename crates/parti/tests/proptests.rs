//! Property tests of the PARTI primitives over randomized distributions
//! and reference patterns.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use eul3d_delta::{run_spmd, CommClass};
use eul3d_parti::{localize, GhostRegistry, Schedule, Translation};

/// Strategy: a random ownership map of `n` globals over `nranks` ranks
/// (every rank guaranteed at least one global by round-robin seeding).
fn arb_distribution(n: usize, nranks: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..nranks as u32, n).prop_map(move |mut v| {
        for r in 0..nranks {
            v[r % n] = r as u32;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// gather ∘ localize delivers exactly the owner's values into the
    /// requested ghost slots, for arbitrary ownership and request sets.
    #[test]
    fn gather_is_owner_identity(
        parts in arb_distribution(24, 4),
        wanted in proptest::collection::vec(0u32..24, 1..10),
    ) {
        let nranks = 4;
        let run = run_spmd(nranks, |r| {
            let trans = Translation::from_parts(&parts, nranks);
            // Each rank asks for the globals in `wanted` it does not own.
            let mut required = Vec::new();
            for &g in &wanted {
                if trans.owner_of(g) != r.id && !required.contains(&g) {
                    required.push(g);
                }
            }
            let n_owned = parts.iter().filter(|&&p| p as usize == r.id).count();
            let slots: Vec<u32> =
                (0..required.len() as u32).map(|k| n_owned as u32 + k).collect();
            let sched = localize(r, &trans, &required, &slots, 100, CommClass::Halo);

            // Local data: owned entries hold their global id as value.
            let mut data = vec![f64::NAN; n_owned + required.len()];
            for g in 0..parts.len() as u32 {
                if trans.owner_of(g) == r.id {
                    data[trans.local_of(g) as usize] = g as f64;
                }
            }
            sched.gather(r, &mut data, 1);
            // Check every ghost got its global's value.
            required
                .iter()
                .zip(&slots)
                .map(|(&g, &s)| (g, data[s as usize]))
                .collect::<Vec<_>>()
        });
        for per_rank in &run.results {
            for &(g, v) in per_rank {
                prop_assert_eq!(v, g as f64);
            }
        }
    }

    /// scatter_add conserves the global sum: whatever the ghosts held is
    /// added to owners and zeroed locally.
    #[test]
    fn scatter_add_conserves_sums(
        parts in arb_distribution(20, 3),
        ghost_vals in proptest::collection::vec(-5.0f64..5.0, 20),
    ) {
        let nranks = 3;
        let run = run_spmd(nranks, |r| {
            let trans = Translation::from_parts(&parts, nranks);
            // Every rank requests ALL globals it does not own.
            let mut required = Vec::new();
            for g in 0..parts.len() as u32 {
                if trans.owner_of(g) != r.id {
                    required.push(g);
                }
            }
            let n_owned = parts.iter().filter(|&&p| p as usize == r.id).count();
            let slots: Vec<u32> =
                (0..required.len() as u32).map(|k| n_owned as u32 + k).collect();
            let sched = localize(r, &trans, &required, &slots, 100, CommClass::Halo);

            let mut data = vec![0.0; n_owned + required.len()];
            for (k, &g) in required.iter().enumerate() {
                data[n_owned + k] = ghost_vals[g as usize] * (r.id as f64 + 1.0);
            }
            let ghost_total: f64 = data[n_owned..].iter().sum();
            sched.scatter_add(r, &mut data, 1);
            let owned_total: f64 = data[..n_owned].iter().sum();
            let ghost_after: f64 = data[n_owned..].iter().sum();
            (ghost_total, owned_total, ghost_after)
        });
        let sent: f64 = run.results.iter().map(|(g, _, _)| g).sum();
        let received: f64 = run.results.iter().map(|(_, o, _)| o).sum();
        prop_assert!((sent - received).abs() < 1e-9, "sent {sent} vs received {received}");
        for &(_, _, after) in &run.results {
            prop_assert_eq!(after, 0.0, "ghost slots must be zeroed");
        }
    }

    /// The registry + merge pipeline never duplicates a ghost and covers
    /// everything requested.
    #[test]
    fn incremental_merge_covers_exactly(
        first in proptest::collection::vec(0u32..40, 1..15),
        second in proptest::collection::vec(0u32..40, 1..15),
    ) {
        let mut reg = GhostRegistry::new();
        let mut slot = 0u32;
        let mut assigned: std::collections::HashMap<u32, u32> = Default::default();
        let mut slots_for = |gs: &[u32], reg: &GhostRegistry| -> Vec<u32> {
            gs.iter()
                .map(|g| {
                    reg.slot_of(*g).unwrap_or_else(|| {
                        *assigned.entry(*g).or_insert_with(|| {
                            slot += 1;
                            slot - 1 + 1000
                        })
                    })
                })
                .collect()
        };
        let s1 = slots_for(&first, &reg);
        let (g1, sl1) = reg.filter_new(&first, &s1);
        let s2 = slots_for(&second, &reg);
        let (g2, _sl2) = reg.filter_new(&second, &s2);

        // No global appears in both incremental sets.
        for g in &g2 {
            prop_assert!(!g1.contains(g), "{g} fetched twice");
        }
        // Union covers both request lists.
        for g in first.iter().chain(&second) {
            prop_assert!(reg.slot_of(*g).is_some());
        }
        prop_assert_eq!(sl1.len(), g1.len());
    }
}

#[test]
fn merged_schedule_equals_sequential_schedules() {
    // Deterministic (non-proptest) end-to-end check on 3 ranks: executing
    // two schedules separately or merged yields identical ghost data.
    let parts: Vec<u32> = (0..12).map(|g| (g % 3) as u32).collect();
    let run = run_spmd(3, |r| {
        let trans = Translation::from_parts(&parts, 3);
        let n_owned = 4;
        let req1: Vec<u32> = (0..12)
            .filter(|g| trans.owner_of(*g) != r.id && g % 2 == 0)
            .collect();
        let req2: Vec<u32> = (0..12)
            .filter(|g| trans.owner_of(*g) != r.id && g % 2 == 1)
            .collect();
        let slots1: Vec<u32> = (0..req1.len() as u32).map(|k| n_owned + k).collect();
        let base2 = n_owned + req1.len() as u32;
        let slots2: Vec<u32> = (0..req2.len() as u32).map(|k| base2 + k).collect();
        let s1 = localize(r, &trans, &req1, &slots1, 100, CommClass::Halo);
        let s2 = localize(r, &trans, &req2, &slots2, 200, CommClass::Halo);
        let merged = Schedule::merge(&[&s1, &s2], 300, CommClass::Halo);

        let fill = |r: &mut eul3d_delta::Rank, mode: u8| -> Vec<f64> {
            let mut data = vec![0.0; 4 + req1.len() + req2.len()];
            for g in 0..12u32 {
                if trans.owner_of(g) == r.id {
                    data[trans.local_of(g) as usize] = 100.0 + g as f64;
                }
            }
            if mode == 0 {
                s1.gather(r, &mut data, 1);
                s2.gather(r, &mut data, 1);
            } else {
                merged.gather(r, &mut data, 1);
            }
            data
        };
        let a = fill(r, 0);
        let b = fill(r, 1);
        (a, b)
    });
    for (a, b) in &run.results {
        assert_eq!(a, b, "merged execution must equal sequential execution");
    }
}
