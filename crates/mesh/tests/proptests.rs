//! Property tests of the mesh machinery across randomized generator
//! parameters.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use eul3d_mesh::dual::closure_residual;
use eul3d_mesh::gen::{bump_channel, cluster1d, unit_box, BumpSpec};
use eul3d_mesh::refine::refine_uniform;
use eul3d_mesh::search::Locator;
use eul3d_mesh::stats::MeshStats;
use eul3d_mesh::vec3::tet_volume;
use eul3d_mesh::{InterpOps, Vec3};

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Every generated box mesh is geometrically valid: positive tet
    /// volumes, closed dual surfaces, exact total volume.
    #[test]
    fn box_meshes_always_valid(n in 2usize..6, jitter in 0.0f64..0.25, seed in 0u64..10_000) {
        let m = unit_box(n, jitter, seed);
        for t in &m.tets {
            let v = tet_volume(
                m.coords[t[0] as usize],
                m.coords[t[1] as usize],
                m.coords[t[2] as usize],
                m.coords[t[3] as usize],
            );
            prop_assert!(v > 0.0);
        }
        prop_assert!((m.total_volume() - 1.0).abs() < 1e-12);
        let bf: Vec<_> = m.bfaces.iter().map(|f| (f.normal, f.v)).collect();
        let res = closure_residual(m.nverts(), &m.edges, &m.edge_coef, &bf);
        for r in res {
            prop_assert!(r.norm() < 1e-12);
        }
    }

    /// cluster1d is monotone and endpoint-exact for the full parameter
    /// range the generators use.
    #[test]
    fn cluster1d_always_monotone(
        n in 2usize..64,
        a in -10.0f64..0.0,
        width in 0.1f64..20.0,
        uc in 0.0f64..1.0,
        s in 0.0f64..0.95,
    ) {
        let b = a + width;
        let xs = cluster1d(n, a, b, uc, s);
        prop_assert!((xs[0] - a).abs() < 1e-9 * width);
        prop_assert!((xs[n] - b).abs() < 1e-9 * width);
        for w in xs.windows(2) {
            prop_assert!(w[1] > w[0], "non-monotone at s={s}, uc={uc}");
        }
    }

    /// Refinement preserves volume and validity for any base mesh.
    #[test]
    fn refinement_preserves_geometry(n in 2usize..4, jitter in 0.0f64..0.2, seed in 0u64..500) {
        let m = unit_box(n, jitter, seed);
        let r = refine_uniform(&m);
        prop_assert!((r.total_volume() - m.total_volume()).abs() < 1e-12);
        prop_assert!(MeshStats::compute(&r).is_valid());
    }

    /// Transfer operators between random mesh pairs reproduce constants
    /// (partition of unity) everywhere.
    #[test]
    fn interp_weights_are_partition_of_unity(sa in 0u64..100, sb in 100u64..200) {
        let src = unit_box(3, 0.15, sa);
        let dst = unit_box(4, 0.15, sb);
        let ops = InterpOps::build(&src, &dst);
        for w in &ops.w {
            let s: f64 = w.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12);
            prop_assert!(w.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        }
    }

    /// The walk locator and a brute-force barycentric scan agree on
    /// containment.
    #[test]
    fn locator_agrees_with_brute_force(
        seed in 0u64..100,
        x in 0.1f64..0.9, y in 0.1f64..0.9, z in 0.1f64..0.9,
    ) {
        let m = unit_box(3, 0.2, seed);
        let loc = Locator::new(&m);
        let p = Vec3::new(x, y, z);
        let r = loc.locate(p, 0);
        prop_assert!(r.inside);
        // The found tet must actually contain the point.
        let bary = eul3d_mesh::search::barycentric(&m, r.tet, p);
        prop_assert!(bary.iter().all(|&b| b >= -1e-9));
    }

    /// Bump meshes: wall + symmetry + far-field areas tile the whole
    /// boundary for any spec.
    #[test]
    fn bump_boundary_is_fully_tagged(
        nx in 6usize..16,
        bump in 0.0f64..0.12,
        seed in 0u64..1000,
    ) {
        let spec = BumpSpec {
            nx,
            ny: (nx / 3).max(2),
            nz: (nx / 4).max(2),
            bump_height: bump,
            jitter: 0.12,
            seed,
            ..BumpSpec::default()
        };
        let m = bump_channel(&spec);
        // Closed boundary: total outward area vector is zero.
        let total: Vec3 = m.bfaces.iter().fold(Vec3::ZERO, |acc, f| acc + f.normal);
        prop_assert!(total.norm() < 1e-10, "boundary must close, leak {total:?}");
    }
}
