//! Offline stand-in for `criterion` (the subset EUL3D's benches use).
//!
//! This workspace vendors source-compatible subsets of its external
//! dependencies so the build is hermetic (no registry access). Each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a short measurement window; mean time per iteration (and
//! throughput, when declared) is printed to stdout. No statistics,
//! plots, or baseline comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(120);

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes one iteration so very slow routines only
        // run a handful of times.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target = (MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for compatibility; the stand-in sizes iteration counts
    /// from the measurement window, not a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility (see [`Self::sample_size`]).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters_done > 0 {
            b.elapsed.as_secs_f64() / b.iters_done as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.3e} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.3e} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3} us/iter ({} iters){}",
            self.name,
            id,
            per_iter * 1e6,
            b.iters_done,
            rate
        );
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Bundle benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
