//! Operation-count accounting, the measurement methodology of §4.4: "the
//! computational rate (MFlops) obtained by counting the number of
//! operations in each loop". Each kernel has a documented per-item flop
//! constant; drivers report `items × constant`. The paper notes such
//! counts are ~10% more conservative than hardware monitors — fine,
//! since both our Table 1 and Table 2 use the same counts.

/// Flops per edge of the convective loop (flux average + accumulation,
/// with per-vertex pressures precomputed).
pub const FLOPS_CONV_EDGE: f64 = 68.0;
/// Flops per vertex of the pressure precomputation.
pub const FLOPS_PRESSURE_VERT: f64 = 9.0;
/// Flops per edge of dissipation pass 1 (Laplacian + pressure sensor).
pub const FLOPS_DISS_P1_EDGE: f64 = 26.0;
/// Flops per edge of dissipation pass 2 (switched blend + accumulation).
pub const FLOPS_DISS_P2_EDGE: f64 = 58.0;
/// Flops per edge of the first-order coarse-grid dissipation.
pub const FLOPS_DISS_FO_EDGE: f64 = 38.0;
/// Flops per edge of the Roe matrix dissipation (wave decomposition).
pub const FLOPS_DISS_ROE_EDGE: f64 = 150.0;
/// Flops per edge of the spectral-radius accumulation.
pub const FLOPS_RADII_EDGE: f64 = 16.0;
/// Flops per boundary face (characteristic far-field, the dear one).
pub const FLOPS_FARFIELD_FACE: f64 = 130.0;
/// Flops per boundary face (slip wall / symmetry: pressure flux only).
pub const FLOPS_WALL_FACE: f64 = 24.0;
/// Flops per vertex of one residual-averaging Jacobi update.
pub const FLOPS_SMOOTH_VERT: f64 = 12.0;
/// Flops per edge of one residual-averaging neighbour accumulation.
pub const FLOPS_SMOOTH_EDGE: f64 = 10.0;
/// Flops per vertex of one RK stage update (5 components × mul-add +
/// dt/vol scaling).
pub const FLOPS_UPDATE_VERT: f64 = 17.0;
/// Flops per vertex of the local time-step computation.
pub const FLOPS_DT_VERT: f64 = 3.0;
/// Flops per vertex of a 4-point inter-grid interpolation (5 comps).
pub const FLOPS_TRANSFER_VERT: f64 = 40.0;
/// Flops per vertex of assembling `R = Q - D + P` (5 comps).
pub const FLOPS_ASSEMBLE_VERT: f64 = 10.0;
/// Flops per vertex of one solver-health scan (finiteness of 5
/// conserved components + density sign + one pressure recomputation).
pub const FLOPS_GUARD_VERT: f64 = 12.0;

/// Accumulates flops and parallel-loop launches for one executor.
///
/// `launches` counts vectorizable loop invocations (per colour group on
/// the shared-memory path), which the Cray model charges a start-up cost
/// for.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlopCounter {
    pub flops: f64,
    pub launches: u64,
}

impl FlopCounter {
    #[inline]
    pub fn add(&mut self, items: usize, per_item: f64) {
        self.flops += items as f64 * per_item;
        self.launches += 1;
    }

    pub fn merge(&mut self, o: &FlopCounter) {
        self.flops += o.flops;
        self.launches += o.launches;
    }

    pub fn reset(&mut self) {
        *self = FlopCounter::default();
    }
}

/// Uniform per-phase computation/communication breakdown reported by
/// every executor backend — the common currency `table1`, `table2`, and
/// `compare` consume. Computation is a [`FlopCounter`] per
/// [`Phase`](crate::executor::Phase); communication is the message/byte
/// traffic the distributed backend charged to each phase (zero on the
/// serial and shared paths, which exchange nothing).
#[derive(Debug, Clone, Copy)]
pub struct PhaseCounters {
    pub comp: [FlopCounter; crate::executor::NPHASES],
    pub comm_msgs: [u64; crate::executor::NPHASES],
    pub comm_bytes: [u64; crate::executor::NPHASES],
    /// Fresh communication-buffer allocations (pool misses) charged to
    /// each phase. Non-zero only while pools warm up; a steady-state
    /// cycle must report zero.
    pub comm_allocs: [u64; crate::executor::NPHASES],
}

impl Default for PhaseCounters {
    fn default() -> PhaseCounters {
        PhaseCounters {
            comp: [FlopCounter::default(); crate::executor::NPHASES],
            comm_msgs: [0; crate::executor::NPHASES],
            comm_bytes: [0; crate::executor::NPHASES],
            comm_allocs: [0; crate::executor::NPHASES],
        }
    }
}

/// One reporting row of [`PhaseCounters::rows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    pub label: &'static str,
    pub flops: f64,
    pub launches: u64,
    pub msgs: u64,
    pub bytes: u64,
    pub allocs: u64,
}

impl PhaseCounters {
    /// Mutable computation counter of one phase.
    #[inline]
    pub fn phase(&mut self, p: crate::executor::Phase) -> &mut FlopCounter {
        &mut self.comp[p.index()]
    }

    /// Record `msgs` messages totalling `bytes` (and `allocs` fresh
    /// pack-buffer allocations) charged to `p`.
    #[inline]
    pub fn add_comm(&mut self, p: crate::executor::Phase, msgs: u64, bytes: u64, allocs: u64) {
        self.comm_msgs[p.index()] += msgs;
        self.comm_bytes[p.index()] += bytes;
        self.comm_allocs[p.index()] += allocs;
    }

    /// Total flops across all phases.
    pub fn flops(&self) -> f64 {
        self.comp.iter().map(|c| c.flops).sum()
    }

    /// Total parallel-loop launches across all phases.
    pub fn launches(&self) -> u64 {
        self.comp.iter().map(|c| c.launches).sum()
    }

    /// Total messages across all phases.
    pub fn messages(&self) -> u64 {
        self.comm_msgs.iter().sum()
    }

    /// Total bytes across all phases.
    pub fn bytes(&self) -> u64 {
        self.comm_bytes.iter().sum()
    }

    /// Total fresh communication-buffer allocations across all phases.
    pub fn allocs(&self) -> u64 {
        self.comm_allocs.iter().sum()
    }

    /// Collapse into a single [`FlopCounter`] (legacy consumers).
    pub fn total(&self) -> FlopCounter {
        FlopCounter {
            flops: self.flops(),
            launches: self.launches(),
        }
    }

    pub fn merge(&mut self, o: &PhaseCounters) {
        for (a, b) in self.comp.iter_mut().zip(&o.comp) {
            a.merge(b);
        }
        for (a, b) in self.comm_msgs.iter_mut().zip(&o.comm_msgs) {
            *a += b;
        }
        for (a, b) in self.comm_bytes.iter_mut().zip(&o.comm_bytes) {
            *a += b;
        }
        for (a, b) in self.comm_allocs.iter_mut().zip(&o.comm_allocs) {
            *a += b;
        }
    }

    pub fn reset(&mut self) {
        *self = PhaseCounters::default();
    }

    /// Export into a [`eul3d_obs::MetricsRegistry`] — the registry view
    /// of this struct, one metric family per phase. Everything lands as
    /// additive counters (flops are integral — every per-item constant
    /// is a whole number — so the cast is exact), which makes
    /// [`eul3d_obs::MetricsRegistry::merge`] aggregate ranks correctly.
    pub fn to_metrics(&self, reg: &mut eul3d_obs::MetricsRegistry) {
        for row in self.rows() {
            let l = row.label;
            for (suffix, v) in [
                ("flops", row.flops as u64),
                ("launches", row.launches),
                ("msgs", row.msgs),
                ("bytes", row.bytes),
                ("allocs", row.allocs),
            ] {
                if v != 0 {
                    let id = reg.counter(&format!("phase.{l}.{suffix}"));
                    reg.inc(id, v);
                }
            }
        }
    }

    /// One [`PhaseRow`] for every phase that did any work, in reporting
    /// order.
    pub fn rows(&self) -> Vec<PhaseRow> {
        crate::executor::Phase::ALL
            .iter()
            .filter_map(|&p| {
                let i = p.index();
                let c = &self.comp[i];
                let (m, b, a) = (self.comm_msgs[i], self.comm_bytes[i], self.comm_allocs[i]);
                (c.flops != 0.0 || c.launches != 0 || m != 0 || b != 0 || a != 0).then_some(
                    PhaseRow {
                        label: p.label(),
                        flops: c.flops,
                        launches: c.launches,
                        msgs: m,
                        bytes: b,
                        allocs: a,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Phase;

    #[test]
    fn phase_counters_accumulate_and_merge() {
        let mut c = PhaseCounters::default();
        c.phase(Phase::Convection).add(100, FLOPS_CONV_EDGE);
        c.phase(Phase::Pressure).add(10, FLOPS_PRESSURE_VERT);
        c.add_comm(Phase::Exchange, 4, 320, 2);
        assert_eq!(
            c.flops(),
            100.0 * FLOPS_CONV_EDGE + 10.0 * FLOPS_PRESSURE_VERT
        );
        assert_eq!(c.launches(), 2);
        assert_eq!(c.messages(), 4);
        assert_eq!(c.bytes(), 320);
        assert_eq!(c.allocs(), 2);

        let mut d = PhaseCounters::default();
        d.merge(&c);
        assert_eq!(d.flops(), c.flops());
        assert_eq!(d.total().launches, 2);
        assert_eq!(d.allocs(), 2);

        let rows = d.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "exchange");
        assert_eq!(rows[0].bytes, 320);
        assert_eq!(rows[0].allocs, 2);

        d.reset();
        assert_eq!(d.flops(), 0.0);
        assert!(d.rows().is_empty());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = FlopCounter::default();
        c.add(100, FLOPS_CONV_EDGE);
        c.add(10, FLOPS_PRESSURE_VERT);
        assert_eq!(
            c.flops,
            100.0 * FLOPS_CONV_EDGE + 10.0 * FLOPS_PRESSURE_VERT
        );
        assert_eq!(c.launches, 2);
        let mut d = FlopCounter::default();
        d.merge(&c);
        assert_eq!(d.flops, c.flops);
        c.reset();
        assert_eq!(c.flops, 0.0);
    }
}
