//! A tour of the §2.4 preprocessing pipeline — everything EUL3D runs
//! *before* the flow solver: mesh generation, the edge-based data
//! structure, colouring (vector machines), partitioning (distributed
//! machines), node/edge reordering (cache), and the inter-grid
//! interpolation search.
//!
//! ```sh
//! cargo run --release --example preprocessing_tour
//! ```

use eul3d::mesh::gen::{bump_channel, BumpSpec};
use eul3d::mesh::stats::MeshStats;
use eul3d::mesh::InterpOps;
use eul3d::partition::reorder::{apply_vertex_order, mean_edge_span, rcm_order, shuffle_vertices};
use eul3d::partition::{
    color_edges, validate_coloring, FlatRsb, PartitionOptions, PartitionQuality, Partitioner,
};

fn main() {
    // 1. Mesh generation (stand-in for the advancing-front generator).
    let spec = BumpSpec {
        nx: 20,
        ny: 8,
        nz: 6,
        jitter: 0.15,
        ..BumpSpec::default()
    };
    let mesh = bump_channel(&spec);
    let stats = MeshStats::compute(&mesh);
    println!("1. mesh: {}", stats.summary());
    assert!(stats.is_valid());

    // 2. Edge-based data structure: the closure identity that underlies
    //    freestream preservation.
    println!(
        "2. edge structure: {} edges, dual-surface closure max {:.2e}",
        stats.nedges, stats.closure_max
    );

    // 3. Colouring for the vector/shared-memory path.
    let coloring = color_edges(&mesh);
    validate_coloring(&mesh, &coloring).unwrap();
    println!(
        "3. colouring: {} groups, sizes {}..{}",
        coloring.ncolors(),
        coloring.min_group_len(),
        coloring.groups.iter().map(Vec::len).max().unwrap()
    );

    // 4. Partitioning for the distributed path (RSB, reference [10]).
    let nparts = 8;
    let opts = PartitionOptions::new(nparts).lanczos_iters(40).seed(1);
    let plan = FlatRsb
        .partition(mesh.nverts(), &mesh.edges, &opts)
        .unwrap();
    let q = PartitionQuality::compute(&plan.assignment, nparts, &mesh.edges);
    println!(
        "4. RSB into {nparts}: cut {:.1}% of edges, imbalance {:.3}, surface/volume {:.2}",
        100.0 * q.cut_fraction,
        q.max_imbalance,
        q.mean_surface_to_volume
    );

    // 5. Node/edge reordering (§4.2).
    let scrambled = shuffle_vertices(&mesh, 9);
    let ordered = apply_vertex_order(&scrambled, &rcm_order(scrambled.nverts(), &scrambled.edges));
    println!(
        "5. reordering: mean edge span {:.0} (random) -> {:.0} (RCM)",
        mean_edge_span(&scrambled.edges),
        mean_edge_span(&ordered.edges)
    );

    // 6. Inter-grid interpolation search (4 addresses + 4 weights per
    //    vertex, found by walking the tet adjacency).
    let coarse = bump_channel(&spec.coarsened());
    let t0 = std::time::Instant::now();
    let ops = InterpOps::build(&coarse, &mesh);
    println!(
        "6. transfer operators: {} fine vertices located in the {}-vertex coarse mesh in {:.3}s",
        ops.ndst(),
        coarse.nverts(),
        t0.elapsed().as_secs_f64()
    );
    println!("\npreprocessing pipeline complete — ready for the flow solver.");
}
