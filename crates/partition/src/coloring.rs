//! Greedy edge colouring (§3.1): split the edge loop into groups such
//! that within a group no two edges touch the same vertex, so each group
//! vectorizes (no recurrence) and can be work-shared across CPUs without
//! write conflicts.

use eul3d_mesh::TetMesh;

/// Edge colouring result: `groups[c]` lists the edge indices of colour
/// `c`, each internally sorted (the ascending order keeps the cache
/// behaviour of the underlying edge numbering).
#[derive(Debug, Clone)]
pub struct EdgeColoring {
    pub groups: Vec<Vec<u32>>,
}

impl EdgeColoring {
    /// Number of colours.
    pub fn ncolors(&self) -> usize {
        self.groups.len()
    }

    /// Total edges across groups.
    pub fn nedges(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Length of the shortest group — the paper cares about this because
    /// it bounds the vector length per CPU once groups are subdivided.
    pub fn min_group_len(&self) -> usize {
        self.groups.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// Greedy colouring: scan edges in order, give each the smallest colour
/// not already used at either endpoint. Uses per-vertex 128-bit colour
/// masks with a spill path for (pathological) vertices needing more than
/// 128 colours.
pub fn color_edges(mesh: &TetMesh) -> EdgeColoring {
    color_edge_list(mesh.nverts(), &mesh.edges)
}

/// Colour an arbitrary edge list over `nverts` vertices.
pub fn color_edge_list(nverts: usize, edges: &[[u32; 2]]) -> EdgeColoring {
    let mut masks = vec![0u128; nverts];
    // Spill colours (≥ 128) per vertex; empty in practice for tet meshes,
    // whose vertex degrees are a few tens.
    let mut spill: std::collections::HashMap<(u32, u32), ()> = std::collections::HashMap::new();
    let mut colors: Vec<u32> = Vec::with_capacity(edges.len());
    let mut ncolors = 0u32;
    for &[a, b] in edges {
        let used = masks[a as usize] | masks[b as usize];
        let mut c = (!used).trailing_zeros();
        if c >= 128 {
            // Fall back to a linear probe through the spill table.
            c = 128;
            while spill.contains_key(&(a, c)) || spill.contains_key(&(b, c)) {
                c += 1;
            }
            spill.insert((a, c), ());
            spill.insert((b, c), ());
        } else {
            let bit = 1u128 << c;
            masks[a as usize] |= bit;
            masks[b as usize] |= bit;
        }
        ncolors = ncolors.max(c + 1);
        colors.push(c);
    }
    let mut groups = vec![Vec::new(); ncolors as usize];
    for (e, &c) in colors.iter().enumerate() {
        groups[c as usize].push(e as u32);
    }
    EdgeColoring { groups }
}

/// Check that a colouring is a valid recurrence-free grouping of exactly
/// the mesh's edges. Returns `Err` describing the first violation.
pub fn validate_coloring(mesh: &TetMesh, coloring: &EdgeColoring) -> Result<(), String> {
    let mut seen = vec![false; mesh.nedges()];
    for (c, group) in coloring.groups.iter().enumerate() {
        let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &e in group {
            let e = e as usize;
            if e >= mesh.nedges() {
                return Err(format!("group {c} references edge {e} out of range"));
            }
            if seen[e] {
                return Err(format!("edge {e} appears twice"));
            }
            seen[e] = true;
            let [a, b] = mesh.edges[e];
            if !touched.insert(a) {
                return Err(format!("group {c}: vertex {a} touched twice"));
            }
            if !touched.insert(b) {
                return Err(format!("group {c}: vertex {b} touched twice"));
            }
        }
    }
    if let Some(e) = seen.iter().position(|&s| !s) {
        return Err(format!("edge {e} never coloured"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_mesh::gen::{bump_channel, unit_box, BumpSpec};

    #[test]
    fn coloring_is_valid_on_jittered_box() {
        let m = unit_box(6, 0.2, 3);
        let c = color_edges(&m);
        validate_coloring(&m, &c).unwrap();
        assert_eq!(c.nedges(), m.nedges());
    }

    #[test]
    fn color_count_is_paper_scale() {
        // The paper reports "typically 20 to 30" groups; greedy colouring
        // of a tet mesh lands in the same few-tens range.
        let m = unit_box(8, 0.2, 5);
        let c = color_edges(&m);
        assert!(
            c.ncolors() >= m.max_degree(),
            "needs at least max-degree colours"
        );
        assert!(
            c.ncolors() < 64,
            "greedy colour count {} unexpectedly high",
            c.ncolors()
        );
    }

    #[test]
    fn coloring_bump_channel() {
        let m = bump_channel(&BumpSpec::default());
        let c = color_edges(&m);
        validate_coloring(&m, &c).unwrap();
    }

    #[test]
    fn single_tet_needs_three_colors() {
        let m = {
            use eul3d_mesh::{BcKind, Vec3};
            eul3d_mesh::TetMesh::from_tets(
                vec![
                    Vec3::ZERO,
                    Vec3::new(1.0, 0.0, 0.0),
                    Vec3::new(0.0, 1.0, 0.0),
                    Vec3::new(0.0, 0.0, 1.0),
                ],
                vec![[0, 1, 2, 3]],
                |_, _| BcKind::FarField,
            )
            .expect("valid mesh")
        };
        let c = color_edges(&m);
        // K4 edge-chromatic number is 3.
        assert_eq!(c.ncolors(), 3);
        validate_coloring(&m, &c).unwrap();
    }

    #[test]
    fn validator_rejects_conflicts() {
        let m = unit_box(2, 0.0, 0);
        let mut c = color_edges(&m);
        // Merge all groups into one: must conflict.
        let all: Vec<u32> = (0..m.nedges() as u32).collect();
        c.groups = vec![all];
        assert!(validate_coloring(&m, &c).is_err());
    }

    #[test]
    fn validator_rejects_missing_edges() {
        let m = unit_box(2, 0.0, 0);
        let mut c = color_edges(&m);
        c.groups.last_mut().unwrap().pop();
        assert!(validate_coloring(&m, &c).is_err());
    }
}
