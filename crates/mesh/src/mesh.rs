//! The [`TetMesh`] container: geometry, the edge-based data structure, and
//! boundary faces, plus the derived-metric build pipeline.

use crate::dual::{closure_residual, dual_volumes, edge_coefficients};
use crate::error::MeshError;
use crate::topology::{boundary_faces, extract_edges, vertex_edge_adjacency};
use crate::types::{BcKind, BoundaryFace, Csr};
use crate::vec3::{tet_volume, tri_area_vec, Vec3};

/// An unstructured tetrahedral mesh in the edge-based representation used
/// by EUL3D. Constructed via [`TetMesh::from_tets`] (or the generators in
/// [`crate::gen`]); all derived quantities are built eagerly because the
/// solver treats them as static preprocessed data (§2.4 of the paper).
#[derive(Debug, Clone)]
pub struct TetMesh {
    /// Vertex coordinates.
    pub coords: Vec<Vec3>,
    /// Tetrahedra as vertex quadruples, all positively oriented.
    pub tets: Vec<[u32; 4]>,
    /// Unique undirected edges `[a, b]`, `a < b`, lexicographically sorted.
    pub edges: Vec<[u32; 2]>,
    /// Dual-face area vector per edge, oriented `a → b`.
    pub edge_coef: Vec<Vec3>,
    /// Boundary triangles with outward normals and BC tags.
    pub bfaces: Vec<BoundaryFace>,
    /// Median-dual control volume per vertex.
    pub vol: Vec<f64>,
    /// Vertex → incident-edge adjacency.
    pub v2e: Csr,
}

impl TetMesh {
    /// Build a mesh (and all derived metrics) from raw vertices and tets.
    ///
    /// Tets with negative volume are repaired by swapping two vertices;
    /// degenerate (zero-volume) tets, out-of-range vertex references, and
    /// orphan vertices (no incident tet) are rejected as typed
    /// [`MeshError`]s instead of panicking. `classify` assigns a boundary
    /// condition to each boundary face from its centroid and outward unit
    /// normal.
    pub fn from_tets(
        coords: Vec<Vec3>,
        mut tets: Vec<[u32; 4]>,
        classify: impl Fn(Vec3, Vec3) -> BcKind,
    ) -> Result<TetMesh, MeshError> {
        // Validate indices, then orient all tets positively.
        for t in &mut tets {
            for &vtx in t.iter() {
                if vtx as usize >= coords.len() {
                    return Err(MeshError::VertexOutOfRange {
                        vertex: vtx,
                        nverts: coords.len(),
                    });
                }
            }
            let v = tet_volume(
                coords[t[0] as usize],
                coords[t[1] as usize],
                coords[t[2] as usize],
                coords[t[3] as usize],
            );
            if v == 0.0 {
                return Err(MeshError::DegenerateTet { tet: *t });
            }
            if v < 0.0 {
                t.swap(2, 3);
            }
        }

        let edges = extract_edges(&tets);
        let edge_coef = edge_coefficients(&coords, &tets, &edges)?;
        let vol = dual_volumes(&coords, &tets, coords.len());
        let v2e = vertex_edge_adjacency(coords.len(), &edges);
        if !tets.is_empty() {
            if let Some(orphan) = (0..coords.len()).find(|&i| v2e.degree(i) == 0) {
                return Err(MeshError::OrphanVertex { vertex: orphan });
            }
        }

        let bfaces = boundary_faces(&tets)
            .into_iter()
            .map(|f| {
                let a = coords[f[0] as usize];
                let b = coords[f[1] as usize];
                let c = coords[f[2] as usize];
                let normal = tri_area_vec(a, b, c);
                let centroid = (a + b + c) / 3.0;
                let unit = normal.normalized().unwrap_or(Vec3::ZERO);
                BoundaryFace {
                    v: f,
                    normal,
                    kind: classify(centroid, unit),
                }
            })
            .collect();

        Ok(TetMesh {
            coords,
            tets,
            edges,
            edge_coef,
            bfaces,
            vol,
            v2e,
        })
    }

    /// Check that every vertex's median-dual surface closes: the
    /// residual `Σ ±η + Σ S/3` must stay below `tol` in max norm
    /// (round-off-small for any watertight mesh). Returns the worst
    /// offender as a typed error.
    pub fn validate_closure(&self, tol: f64) -> Result<(), MeshError> {
        let bf: Vec<(Vec3, [u32; 3])> = self.bfaces.iter().map(|f| (f.normal, f.v)).collect();
        let res = closure_residual(self.nverts(), &self.edges, &self.edge_coef, &bf);
        let worst = res
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()));
        match worst {
            Some((vertex, r)) if r.norm() >= tol => Err(MeshError::OpenDualSurface {
                vertex,
                residual: r.norm(),
            }),
            _ => Ok(()),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn nverts(&self) -> usize {
        self.coords.len()
    }

    /// Number of unique edges.
    #[inline]
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Number of tetrahedra.
    #[inline]
    pub fn ntets(&self) -> usize {
        self.tets.len()
    }

    /// Total mesh volume (sum of dual volumes == sum of tet volumes).
    pub fn total_volume(&self) -> f64 {
        self.vol.iter().sum()
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = -lo;
        for &p in &self.coords {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// Neighbour vertices of `i` (derived from the incident edge list).
    pub fn vertex_neighbors<'a>(&'a self, i: u32) -> impl Iterator<Item = u32> + 'a {
        self.v2e.row(i as usize).iter().map(move |&e| {
            let [a, b] = self.edges[e as usize];
            if a == i {
                b
            } else {
                a
            }
        })
    }

    /// The maximum vertex degree (number of incident edges).
    pub fn max_degree(&self) -> usize {
        (0..self.nverts())
            .map(|i| self.v2e.degree(i))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far(_: Vec3, _: Vec3) -> BcKind {
        BcKind::FarField
    }

    #[test]
    fn from_tets_repairs_orientation() {
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        // Negatively oriented input.
        let mesh = TetMesh::from_tets(coords, vec![[0, 1, 3, 2]], far).expect("valid mesh");
        let t = mesh.tets[0];
        let v = tet_volume(
            mesh.coords[t[0] as usize],
            mesh.coords[t[1] as usize],
            mesh.coords[t[2] as usize],
            mesh.coords[t[3] as usize],
        );
        assert!(v > 0.0);
        assert_eq!(mesh.nverts(), 4);
        assert_eq!(mesh.nedges(), 6);
        assert_eq!(mesh.bfaces.len(), 4);
        assert!((mesh.total_volume() - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn degenerate_tet_is_a_typed_error_not_a_panic() {
        // Four collinear points: zero volume, no orientation to repair.
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let err = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far);
        assert_eq!(
            err.err(),
            Some(MeshError::DegenerateTet { tet: [0, 1, 2, 3] })
        );
    }

    #[test]
    fn coplanar_tet_is_a_typed_error_not_a_panic() {
        // Four coplanar (z = 0) but non-collinear points — an "inverted
        // flat" tet no vertex swap can repair.
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ];
        let err = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far);
        assert!(matches!(err, Err(MeshError::DegenerateTet { .. })));
    }

    #[test]
    fn out_of_range_vertex_is_a_typed_error() {
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ];
        let err = TetMesh::from_tets(coords, vec![[0, 1, 2, 7]], far);
        assert_eq!(
            err.err(),
            Some(MeshError::VertexOutOfRange {
                vertex: 7,
                nverts: 3
            })
        );
    }

    #[test]
    fn orphan_vertex_is_a_typed_error() {
        // Vertex 4 exists but no tet touches it.
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(9.0, 9.0, 9.0),
        ];
        let err = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far);
        assert_eq!(err.err(), Some(MeshError::OrphanVertex { vertex: 4 }));
    }

    #[test]
    fn closure_validation_passes_and_detects_tampering() {
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let mut mesh = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far).expect("valid mesh");
        assert_eq!(mesh.validate_closure(1e-12), Ok(()));
        // Corrupt one edge coefficient: the dual surface opens.
        mesh.edge_coef[0] += Vec3::new(0.5, 0.0, 0.0);
        assert!(matches!(
            mesh.validate_closure(1e-12),
            Err(MeshError::OpenDualSurface { .. })
        ));
    }

    #[test]
    fn vertex_neighbors_of_tet() {
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let mesh = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far).expect("valid mesh");
        let mut nbrs: Vec<u32> = mesh.vertex_neighbors(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 2, 3]);
        assert_eq!(mesh.max_degree(), 3);
    }

    #[test]
    fn boundary_normals_point_outward() {
        let coords = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let mesh = TetMesh::from_tets(coords, vec![[0, 1, 2, 3]], far).expect("valid mesh");
        let centroid = (mesh.coords[0] + mesh.coords[1] + mesh.coords[2] + mesh.coords[3]) / 4.0;
        for f in &mesh.bfaces {
            let fc = (mesh.coords[f.v[0] as usize]
                + mesh.coords[f.v[1] as usize]
                + mesh.coords[f.v[2] as usize])
                / 3.0;
            assert!(
                f.normal.dot(fc - centroid) > 0.0,
                "normal must point outward"
            );
        }
    }
}
