//! Offline stand-in for `rayon` (the subset EUL3D's shared-memory
//! executor uses).
//!
//! This workspace vendors source-compatible subsets of its external
//! dependencies so the build is hermetic (no registry access). Work is
//! executed with real OS threads (`std::thread::scope`) pulling chunks
//! from a shared queue, so data races in caller code remain observable
//! under tools like Miri/TSan — important because the edge-colouring
//! machinery this backs is exactly a race-avoidance scheme. There is no
//! work stealing and threads are spawned per parallel region rather than
//! pooled; for the solver's coarse-grained colour groups that overhead
//! is acceptable.

use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Threads the innermost `ThreadPool::install` scope asked for.
    static CURRENT_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(1) };
}

/// Degree of parallelism of the innermost active [`ThreadPool::install`]
/// scope (1 outside any pool).
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get())
}

/// Error from [`ThreadPoolBuilder::build`]. The stand-in cannot fail to
/// build, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// 0 means "pick a default" (available parallelism).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { nthreads: n })
    }
}

/// A handle carrying a requested degree of parallelism. Threads are
/// spawned per parallel region (see module docs), so this holds no OS
/// resources.
#[derive(Debug)]
pub struct ThreadPool {
    nthreads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's parallelism active for any parallel
    /// iterators it invokes. Returns when `op` (and every parallel
    /// region inside it) completes — a full barrier, like rayon.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.nthreads);
            let out = op();
            c.set(prev);
            out
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.nthreads
    }
}

/// Run `f` over `items` on up to [`current_num_threads`] scoped threads
/// pulling from a shared queue. Blocks until all items are processed.
fn drive<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let nthreads = current_num_threads().min(items.len()).max(1);
    if nthreads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue: Mutex<VecDeque<I>> = Mutex::new(items.into());
    std::thread::scope(|s| {
        for _ in 0..nthreads {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().pop_front();
                match next {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

pub mod iter {
    /// An eager "parallel iterator": the work list is materialised up
    /// front and drained by scoped threads on `for_each`.
    pub struct ParIter<I> {
        pub(crate) items: Vec<I>,
    }

    impl<I: Send> ParIter<I> {
        pub fn enumerate(self) -> ParEnumerate<I> {
            ParEnumerate { items: self.items }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(I) + Sync,
        {
            crate::drive(self.items, f);
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// Indexed variant produced by [`ParIter::enumerate`].
    pub struct ParEnumerate<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParEnumerate<I> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, I)) + Sync,
        {
            crate::drive(self.items.into_iter().enumerate().collect(), f);
        }
    }
}

pub mod slice {
    use crate::iter::ParIter;

    /// `par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParIter {
                items: self.chunks(chunk_size).collect(),
            }
        }
    }

    /// `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParIter {
                items: self.chunks_mut(chunk_size).collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_visits_every_element() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        pool.install(|| {
            data.par_chunks(7).for_each(|chunk| {
                sum.fetch_add(chunk.iter().sum::<u64>() as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint_blocks() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0usize; 20];
        pool.install(|| {
            data.par_chunks_mut(6).enumerate().for_each(|(blk, chunk)| {
                for x in chunk {
                    *x = blk + 1;
                }
            });
        });
        let expect: Vec<usize> = (0..20).map(|i| i / 6 + 1).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn install_scopes_parallelism() {
        assert_eq!(current_num_threads(), 1);
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 5));
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn install_actually_uses_multiple_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            let data = [0u8; 64];
            data.par_chunks(1).for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Hold the slot briefly so several workers participate.
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected work on more than one thread"
        );
    }
}
