//! Cross-executor equivalence: the sequential reference, the coloured
//! shared-memory executor (§3), and the PARTI/Delta distributed executor
//! (§4) must produce the same flow solution on the same mesh.

use eul3d::mesh::gen::BumpSpec;
use eul3d::mesh::MeshSequence;
use eul3d::solver::dist::{run_distributed, DistOptions, DistSetup};
use eul3d::solver::shared::SharedSingleGridSolver;
use eul3d::solver::{MultigridSolver, SingleGridSolver, SolverConfig, Strategy};

fn spec() -> BumpSpec {
    BumpSpec { nx: 12, ny: 5, nz: 4, jitter: 0.1, ..BumpSpec::default() }
}

fn max_dev(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn three_executors_one_answer_single_grid() {
    let cfg = SolverConfig { mach: 0.55, ..SolverConfig::default() };
    let cycles = 8;

    let seq = MeshSequence::bump_sequence(&spec(), 1);
    let mesh = seq.meshes[0].clone();

    let mut serial = SingleGridSolver::new(mesh.clone(), cfg);
    serial.solve(cycles);

    let mut shared = SharedSingleGridSolver::new(mesh, cfg, 3);
    shared.solve(cycles);

    let setup = DistSetup::new(seq, 6, 25, 11);
    let dist = run_distributed(&setup, cfg, Strategy::SingleGrid, cycles, DistOptions::default());
    let wd = dist.global_state(setup.seq.meshes[0].nverts());

    let d1 = max_dev(serial.state(), &shared.st.w);
    let d2 = max_dev(serial.state(), &wd);
    assert!(d1 < 1e-10, "serial vs shared: {d1:.3e}");
    assert!(d2 < 1e-9, "serial vs distributed: {d2:.3e}");
}

#[test]
fn distributed_w_cycle_matches_serial_multigrid() {
    let cfg = SolverConfig { mach: 0.55, ..SolverConfig::default() };
    let cycles = 4;

    let mut serial = MultigridSolver::new(MeshSequence::bump_sequence(&spec(), 3), cfg, Strategy::WCycle);
    let hs = serial.solve(cycles);

    let setup = DistSetup::new(MeshSequence::bump_sequence(&spec(), 3), 5, 25, 11);
    let dist = run_distributed(&setup, cfg, Strategy::WCycle, cycles, DistOptions::default());

    for (a, b) in hs.iter().zip(dist.history()) {
        assert!(
            (a - b).abs() < 1e-8 * a.max(1e-30),
            "residual history: serial {a} vs dist {b}"
        );
    }
    let wd = dist.global_state(setup.seq.meshes[0].nverts());
    let d = max_dev(serial.state(), &wd);
    assert!(d < 1e-8, "W-cycle states: {d:.3e}");
}

#[test]
fn rank_count_does_not_change_the_answer() {
    let cfg = SolverConfig { mach: 0.55, ..SolverConfig::default() };
    let run = |nranks: usize| {
        let setup = DistSetup::new(MeshSequence::bump_sequence(&spec(), 2), nranks, 25, 3);
        let r = run_distributed(&setup, cfg, Strategy::VCycle, 5, DistOptions::default());
        r.global_state(setup.seq.meshes[0].nverts())
    };
    let w2 = run(2);
    let w7 = run(7);
    let d = max_dev(&w2, &w7);
    assert!(d < 1e-8, "2 vs 7 ranks: {d:.3e}");
}

#[test]
fn partitioner_choice_does_not_change_the_answer() {
    // RSB vs random partitioning: wildly different communication, same
    // numerics.
    let cfg = SolverConfig { mach: 0.55, ..SolverConfig::default() };
    let seq_a = MeshSequence::bump_sequence(&spec(), 1);
    let nverts = seq_a.meshes[0].nverts();
    let setup_rsb = DistSetup::new(seq_a, 4, 25, 3);
    let setup_rand = DistSetup::with_partitioner(
        MeshSequence::bump_sequence(&spec(), 1),
        4,
        |m| eul3d::partition::random_partition(m.nverts(), 4, 99),
    );
    let a = run_distributed(&setup_rsb, cfg, Strategy::SingleGrid, 5, DistOptions::default());
    let b = run_distributed(&setup_rand, cfg, Strategy::SingleGrid, 5, DistOptions::default());
    let d = max_dev(&a.global_state(nverts), &b.global_state(nverts));
    assert!(d < 1e-9, "partitioner must not affect numerics: {d:.3e}");

    // ... but it must affect communication volume.
    let bytes = |r: &eul3d::solver::dist::DistRunResult| -> u64 {
        r.cycle_counters().iter().map(|c| c.total_bytes()).sum()
    };
    assert!(
        bytes(&b) > 2 * bytes(&a),
        "random partition should move far more data: rsb {} vs random {}",
        bytes(&a),
        bytes(&b)
    );
}
