//! Golden-file regression tests for the harness binaries' stdout.
//!
//! Everything these binaries print — counted flops, message and byte
//! totals, modeled seconds, residuals — is deterministic at a fixed case
//! size; only host wall-clock measurements and output paths are not, and
//! [`normalize`] scrubs exactly those. So the committed goldens pin the
//! entire observable behaviour of the reporting pipeline: a counter that
//! drifts, a cost-model constant that moves, or a table column that
//! disappears fails the diff.
//!
//! To re-bless after an intentional change:
//! `EUL3D_BLESS=1 cargo test -p eul3d-bench --test golden`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Run a harness binary at the pinned golden case size and return its
/// normalized stdout. `EUL3D_SEED` is stripped so the CI seed matrix
/// (which legitimately perturbs solver tests) cannot perturb goldens.
fn run_normalized(bin: &str) -> String {
    let out = Command::new(bin)
        .env_remove("EUL3D_SEED")
        .env("EUL3D_NX", "10")
        .env("EUL3D_LEVELS", "2")
        .env("EUL3D_CYCLES", "3")
        .env("EUL3D_RANKS", "3,5")
        .env(
            "EUL3D_OUT",
            std::env::temp_dir().join("eul3d_golden").to_str().unwrap(),
        )
        .output()
        .expect("failed to run harness binary");
    assert!(
        out.status.success(),
        "harness failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    normalize(&String::from_utf8_lossy(&out.stdout))
}

/// Scrub the two nondeterministic ingredients: host wall-clock readings
/// (`host 1.2s` → `host *s`) and absolute output paths (`wrote /tmp/...`
/// → `wrote <basename>`). Hand-rolled on purpose — no regex dependency.
fn normalize(raw: &str) -> String {
    let mut lines: Vec<String> = Vec::new();
    for line in raw.lines() {
        let mut l = line.to_string();
        if let Some(rest) = l.strip_prefix("wrote ") {
            let base = rest.rsplit('/').next().unwrap_or(rest);
            l = format!("wrote {base}");
        }
        while let Some(i) = l.find("host ") {
            let start = i + "host ".len();
            let tail = &l[start..];
            let n = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .count();
            if n > 0 && tail[n..].starts_with('s') {
                l = format!("{}*s{}", &l[..start], &tail[n + 1..]);
            } else {
                break;
            }
        }
        lines.push(l);
    }
    lines.join("\n") + "\n"
}

fn check(name: &str, bin: &str) {
    let got = run_normalized(bin);
    let path = golden_dir().join(name);
    if std::env::var("EUL3D_BLESS").is_ok() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with EUL3D_BLESS=1", name));
    if got != want {
        let mismatch = want
            .lines()
            .zip(got.lines())
            .position(|(w, g)| w != g)
            .unwrap_or_else(|| want.lines().count().min(got.lines().count()));
        panic!(
            "{name}: output diverged from golden at line {}:\n  golden: {:?}\n  actual: {:?}\n\
             (full output below; re-bless with EUL3D_BLESS=1 if intentional)\n{got}",
            mismatch + 1,
            want.lines().nth(mismatch).unwrap_or("<eof>"),
            got.lines().nth(mismatch).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn table1_matches_golden() {
    check("table1.txt", env!("CARGO_BIN_EXE_table1"));
}

#[test]
fn table2_matches_golden() {
    check("table2.txt", env!("CARGO_BIN_EXE_table2"));
}

#[test]
fn compare_matches_golden() {
    check("compare.txt", env!("CARGO_BIN_EXE_compare"));
}
