//! Deterministic tag allocation for schedule construction.
//!
//! Every [`Schedule`](crate::Schedule) consumes two message tags — `tag`
//! for gathers, `tag + 1` for scatters — and [`localize`](crate::localize)
//! hard-reserves that range on the rank. Hand-picking "magic" base tags
//! per level/link invites collisions as the solver grows; a
//! [`TagAllocator`] hands out disjoint ranges instead. It is pure local
//! arithmetic, so as long as every SPMD rank performs the same sequence
//! of `range` calls (the same discipline `localize` already demands), all
//! ranks agree on every tag without communicating.

use eul3d_delta::COLLECTIVE_TAG_BASE;

/// Hands out disjoint, monotonically increasing tag ranges.
#[derive(Debug, Clone)]
pub struct TagAllocator {
    next: u32,
}

impl TagAllocator {
    /// Start allocating at `base` (tags below `base` stay free for
    /// hand-assigned use).
    pub fn new(base: u32) -> TagAllocator {
        assert!(base < COLLECTIVE_TAG_BASE, "base inside collective space");
        TagAllocator { next: base }
    }

    /// Claim the next `width` consecutive tags and return the first.
    /// `width` must be ≥ 2 — a schedule's gather and scatter streams —
    /// and the range must fit below the collective tag space.
    pub fn range(&mut self, width: u32) -> u32 {
        assert!(width >= 2, "a schedule needs at least 2 tags");
        let lo = self.next;
        let hi = lo.checked_add(width).expect("tag allocator overflowed u32");
        assert!(
            hi <= COLLECTIVE_TAG_BASE,
            "tag allocator ran into collective space"
        );
        self.next = hi;
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_disjoint_and_ordered() {
        let mut t = TagAllocator::new(100);
        let a = t.range(2);
        let b = t.range(4);
        let c = t.range(2);
        assert_eq!(a, 100);
        assert_eq!(b, 102);
        assert_eq!(c, 106);
    }

    #[test]
    #[should_panic(expected = "at least 2 tags")]
    fn width_one_is_rejected() {
        TagAllocator::new(0).range(1);
    }

    #[test]
    #[should_panic(expected = "collective space")]
    fn cannot_reach_collective_tags() {
        let mut t = TagAllocator::new(COLLECTIVE_TAG_BASE - 1);
        t.range(2);
    }
}
