//! `guard` — health-guard sweep emitting `BENCH_guard.json`.
//!
//! Three questions, answered on the same hardware-independent cases the
//! other sweeps use:
//!
//! 1. **Steady overhead** — what the per-cycle finite/positivity scans
//!    and divergence checks cost on a healthy run (wall clock and flop
//!    fraction), serial and guarded side by side.
//! 2. **Backoff cost** — on the seeded diverging case (stretched bump,
//!    over-aggressive CFL) swept across target CFLs: how many backoff
//!    epochs the guard spends, how many cycles it replays, and where the
//!    CFL lands.
//! 3. **Distributed parity** — the same diverging case through the
//!    simulated-Delta driver: recovery epochs, modeled cost, and the
//!    pool-allocation tail that must stay flat after a numeric rollback.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `EUL3D_NX` / `EUL3D_LEVELS` / `EUL3D_CYCLES` | healthy-case size | 40 / 4 / 20 |
//! | `EUL3D_BENCH_OUT` | output path | `BENCH_guard.json` |
//!
//! `--smoke` shrinks the healthy case for CI.

use std::time::Instant;

use eul3d_bench::CaseSpec;
use eul3d_core::dist::{run_distributed_guarded, DistOptions, DistSetup, FaultOptions};
use eul3d_core::executor::Phase;
use eul3d_core::health::GuardConfig;
use eul3d_core::{MultigridSolver, SolverConfig, Strategy};
use eul3d_delta::CostModel;
use eul3d_mesh::gen::BumpSpec;
use eul3d_mesh::MeshSequence;

/// The seeded diverging case from the guard tests: a tapered bump whose
/// stretched cells go non-finite within a handful of cycles at CFL 30.
fn stretched_seq() -> MeshSequence {
    let spec = BumpSpec {
        nx: 10,
        ny: 4,
        nz: 3,
        taper: 0.6,
        jitter: 0.1,
        ..BumpSpec::default()
    };
    MeshSequence::bump_sequence(&spec, 2)
}

fn stretched_cfg(cfl: f64) -> SolverConfig {
    SolverConfig {
        mach: 0.5,
        cfl,
        ..SolverConfig::default()
    }
}

fn sweep_guard() -> GuardConfig {
    GuardConfig {
        cfl_backoff: 0.25,
        // Park the CFL at the backoff floor so the sweep reports the
        // reduction itself, not re-ramp progress.
        reramp_after: 100,
        ..GuardConfig::default()
    }
}

struct CflPoint {
    target_cfl: f64,
    recovered: bool,
    backoffs: usize,
    replayed_cycles: usize,
    final_cfl: f64,
    seconds: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut case = CaseSpec::from_env(20);
    if smoke {
        case.nx = case.nx.min(16);
        case.levels = case.levels.min(3);
        case.cycles = case.cycles.min(10);
    }
    let out_path =
        std::env::var("EUL3D_BENCH_OUT").unwrap_or_else(|_| "BENCH_guard.json".to_string());

    // 1. Steady overhead on a healthy run.
    println!(
        "guard overhead: bump channel nx={}, {} levels, {} cycles, V cycle",
        case.nx, case.levels, case.cycles
    );
    let cfg = case.config();
    let mut bare = MultigridSolver::new(case.sequence(), cfg, Strategy::VCycle);
    let t0 = Instant::now();
    let h_bare = bare.solve(case.cycles);
    let bare_s = t0.elapsed().as_secs_f64();

    let mut guarded = MultigridSolver::new(case.sequence(), cfg, Strategy::VCycle);
    let t1 = Instant::now();
    let (h_guard, outcome) = guarded
        .solve_guarded(case.cycles, &GuardConfig::default())
        .expect("the healthy case must not trip the guard");
    let guarded_s = t1.elapsed().as_secs_f64();
    assert!(
        outcome.transcript.is_empty(),
        "healthy case backed off: {:?}",
        outcome.transcript
    );
    assert_eq!(h_bare.len(), h_guard.len());

    let total_flops = guarded.counter.flops();
    let guard_flops = guarded.counter.comp[Phase::Guard.index()].flops;
    let overhead_pct = 100.0 * (guarded_s / bare_s - 1.0);
    let flop_pct = 100.0 * guard_flops / total_flops;
    println!(
        "  unguarded {bare_s:.3}s, guarded {guarded_s:.3}s ({overhead_pct:+.1}% wall, {flop_pct:.2}% of flops)"
    );

    // 2. Backoff cost across target CFLs on the diverging case.
    let sweep_cycles = 12;
    let guard = sweep_guard();
    let mut points = Vec::new();
    for cfl in [2.8, 10.0, 30.0, 60.0] {
        let mut mg = MultigridSolver::new(stretched_seq(), stretched_cfg(cfl), Strategy::VCycle);
        let t = Instant::now();
        let res = mg.solve_guarded(sweep_cycles, &guard);
        let seconds = t.elapsed().as_secs_f64();
        let p = match res {
            Ok((_, o)) => CflPoint {
                target_cfl: cfl,
                recovered: true,
                backoffs: o.transcript.len(),
                replayed_cycles: o
                    .transcript
                    .iter()
                    .map(|e| e.cycle - e.rollback_to.unwrap_or(0))
                    .sum(),
                final_cfl: o.final_cfl,
                seconds,
            },
            Err(e) => {
                println!("  cfl {cfl}: {e}");
                CflPoint {
                    target_cfl: cfl,
                    recovered: false,
                    backoffs: guard.max_retries,
                    replayed_cycles: 0,
                    final_cfl: f64::NAN,
                    seconds,
                }
            }
        };
        println!(
            "  cfl {:>5.1}: {} backoff(s), {} replayed cycle(s), final cfl {:.3}, {:.3}s",
            p.target_cfl, p.backoffs, p.replayed_cycles, p.final_cfl, p.seconds
        );
        points.push(p);
    }

    // 3. Distributed parity on the diverging case.
    let nranks = 4;
    let setup = DistSetup::new(stretched_seq(), nranks, 20, eul3d_core::env_seed(7));
    let fopts = FaultOptions {
        recv_timeout_ms: 60_000,
        ..FaultOptions::default()
    };
    let t2 = Instant::now();
    let r = run_distributed_guarded(
        &setup,
        stretched_cfg(30.0),
        Strategy::VCycle,
        sweep_cycles,
        DistOptions::default(),
        &fopts,
        &guard,
    )
    .expect("the distributed guard must recover the CFL-30 case");
    let dist_s = t2.elapsed().as_secs_f64();
    let o = r.guard_outcome().expect("guarded run records an outcome");
    let epochs = r
        .run
        .counters
        .iter()
        .map(|c| c.recoveries)
        .max()
        .unwrap_or(0);
    let model = CostModel::delta_i860();
    let modeled = model.evaluate(&r.cycle_counters());
    let mut steady_tail_flat = true;
    for (_, out) in r.instances() {
        let a = &out.cycle_allocs;
        for i in a.len().saturating_sub(3)..a.len() {
            steady_tail_flat &= a[i] == a[i - 1];
        }
    }
    assert!(
        steady_tail_flat,
        "cycles after the numeric rollback must stay allocation-free"
    );
    println!(
        "distributed (4 ranks): {} recovery epoch(s), {} backoff(s), modeled {:.2}s, wall {:.2}s, alloc tail flat",
        epochs,
        o.transcript.len(),
        modeled.total_seconds,
        dist_s
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"nx\": {}, \"levels\": {}, \"cycles\": {}, \"sweep_cycles\": {sweep_cycles}, \"cfl_backoff\": {}, \"smoke\": {smoke}}},\n",
        case.nx, case.levels, case.cycles, guard.cfl_backoff
    ));
    json.push_str(&format!(
        "  \"overhead\": {{\"unguarded_seconds\": {bare_s:.6e}, \"guarded_seconds\": {guarded_s:.6e}, \"wall_overhead_pct\": {overhead_pct:.3}, \"guard_flop_pct\": {flop_pct:.4}}},\n"
    ));
    json.push_str("  \"cfl_sweep\": [\n");
    for (k, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"target_cfl\": {}, \"recovered\": {}, \"backoffs\": {}, \"replayed_cycles\": {}, \"final_cfl\": {}, \"seconds\": {:.6e}}}{}\n",
            p.target_cfl,
            p.recovered,
            p.backoffs,
            p.replayed_cycles,
            if p.final_cfl.is_finite() {
                format!("{}", p.final_cfl)
            } else {
                "null".to_string()
            },
            p.seconds,
            if k + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"distributed\": {{\"nranks\": {nranks}, \"recovery_epochs\": {epochs}, \"backoffs\": {}, \"modeled_seconds\": {:.4}, \"wall_seconds\": {dist_s:.4}, \"steady_tail_flat\": {steady_tail_flat}}}\n",
        o.transcript.len(),
        modeled.total_seconds
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_guard.json");
    println!("wrote {out_path}");
}
