//! Uniform ("red") refinement of tetrahedral meshes: every tet splits
//! into 8 children through its edge midpoints (Bey's scheme, with the
//! shortest-diagonal choice for the interior octahedron).
//!
//! The paper's multigrid deliberately uses *unrelated* meshes, but §2.3
//! notes that "new finer meshes can be introduced by adaptive
//! refinement". Uniform refinement provides (a) nested fine levels for
//! the nested-vs-unrelated transfer ablation, and (b) mesh families for
//! grid-convergence studies.

use std::collections::HashMap;

use crate::mesh::TetMesh;
use crate::topology::find_edge;
use crate::types::BcKind;
use crate::vec3::Vec3;

/// Uniformly refine a mesh: one new vertex per edge, 8 child tets per
/// parent tet, boundary tags inherited from parent faces.
pub fn refine_uniform(mesh: &TetMesh) -> TetMesh {
    let nold = mesh.nverts();
    // New vertex numbering: originals first, then one midpoint per edge
    // (midpoint of edge e gets index nold + e — conforming by
    // construction because edges are globally unique).
    let mut coords: Vec<Vec3> = Vec::with_capacity(nold + mesh.nedges());
    coords.extend_from_slice(&mesh.coords);
    for (e, &[a, b]) in mesh.edges.iter().enumerate() {
        debug_assert_eq!(coords.len(), nold + e);
        coords.push((mesh.coords[a as usize] + mesh.coords[b as usize]) * 0.5);
    }
    let mid = |a: u32, b: u32| -> u32 {
        match find_edge(&mesh.edges, a, b) {
            Some(e) => (nold + e) as u32,
            None => unreachable!("edge {a}-{b} missing from the extracted edge list"),
        }
    };

    let mut tets: Vec<[u32; 4]> = Vec::with_capacity(mesh.ntets() * 8);
    for t in &mesh.tets {
        let [v0, v1, v2, v3] = *t;
        let m01 = mid(v0, v1);
        let m02 = mid(v0, v2);
        let m03 = mid(v0, v3);
        let m12 = mid(v1, v2);
        let m13 = mid(v1, v3);
        let m23 = mid(v2, v3);

        // Four corner tets.
        tets.push([v0, m01, m02, m03]);
        tets.push([m01, v1, m12, m13]);
        tets.push([m02, m12, v2, m23]);
        tets.push([m03, m13, m23, v3]);

        // Interior octahedron: pick the shortest of the three diagonals
        // (m01–m23, m02–m13, m03–m12) for the best-shaped children.
        let d = |a: u32, b: u32| coords[a as usize].dist(coords[b as usize]);
        let d1 = d(m01, m23);
        let d2 = d(m02, m13);
        let d3 = d(m03, m12);
        if d1 <= d2 && d1 <= d3 {
            tets.push([m01, m23, m02, m03]);
            tets.push([m01, m23, m03, m13]);
            tets.push([m01, m23, m13, m12]);
            tets.push([m01, m23, m12, m02]);
        } else if d2 <= d3 {
            tets.push([m02, m13, m01, m03]);
            tets.push([m02, m13, m03, m23]);
            tets.push([m02, m13, m23, m12]);
            tets.push([m02, m13, m12, m01]);
        } else {
            tets.push([m03, m12, m01, m02]);
            tets.push([m03, m12, m02, m23]);
            tets.push([m03, m12, m23, m13]);
            tets.push([m03, m12, m13, m01]);
        }
    }

    // Child boundary faces inherit the parent face's BC kind. Each
    // parent face (a, b, c) yields exactly four children.
    let mut kinds: HashMap<[u32; 3], BcKind> = HashMap::with_capacity(mesh.bfaces.len() * 4);
    let key = |x: u32, y: u32, z: u32| -> [u32; 3] {
        let mut k = [x, y, z];
        k.sort_unstable();
        k
    };
    for f in &mesh.bfaces {
        let [a, b, c] = f.v;
        let (mab, mac, mbc) = (mid(a, b), mid(a, c), mid(b, c));
        for child in [
            key(a, mab, mac),
            key(b, mab, mbc),
            key(c, mac, mbc),
            key(mab, mac, mbc),
        ] {
            kinds.insert(child, f.kind);
        }
    }

    let mut refined = match TetMesh::from_tets(coords, tets, |_, _| BcKind::FarField) {
        Ok(m) => m,
        Err(e) => unreachable!("uniform refinement produced an invalid mesh: {e}"),
    };
    for f in &mut refined.bfaces {
        let mut k = f.v;
        k.sort_unstable();
        f.kind = match kinds.get(&k) {
            Some(kind) => *kind,
            None => unreachable!("child boundary face without a parent"),
        };
    }
    refined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{bump_channel, unit_box, BumpSpec};
    use crate::stats::MeshStats;

    #[test]
    fn refinement_multiplies_counts() {
        let m = unit_box(2, 0.1, 3);
        let r = refine_uniform(&m);
        assert_eq!(r.ntets(), 8 * m.ntets());
        assert_eq!(r.nverts(), m.nverts() + m.nedges());
        assert_eq!(r.bfaces.len(), 4 * m.bfaces.len());
    }

    #[test]
    fn refinement_preserves_volume_exactly() {
        let m = unit_box(3, 0.2, 5);
        let r = refine_uniform(&m);
        assert!((r.total_volume() - m.total_volume()).abs() < 1e-12);
    }

    #[test]
    fn refined_mesh_is_valid() {
        let m = bump_channel(&BumpSpec {
            nx: 8,
            ny: 4,
            nz: 3,
            ..BumpSpec::default()
        });
        let r = refine_uniform(&m);
        let s = MeshStats::compute(&r);
        assert!(s.is_valid(), "{}", s.summary());
    }

    #[test]
    fn bc_kinds_are_inherited_by_area() {
        let m = bump_channel(&BumpSpec {
            nx: 6,
            ny: 3,
            nz: 2,
            ..BumpSpec::default()
        });
        let r = refine_uniform(&m);
        let area = |mesh: &TetMesh, kind: BcKind| -> f64 {
            mesh.bfaces
                .iter()
                .filter(|f| f.kind == kind)
                .map(|f| f.normal.norm())
                .sum()
        };
        for kind in [BcKind::Wall, BcKind::FarField, BcKind::Symmetry] {
            let a0 = area(&m, kind);
            let a1 = area(&r, kind);
            assert!(
                (a0 - a1).abs() < 1e-10 * a0.max(1.0),
                "{kind:?} area {a0} vs {a1}"
            );
        }
    }

    #[test]
    fn double_refinement_works() {
        let m = unit_box(2, 0.15, 7);
        let r2 = refine_uniform(&refine_uniform(&m));
        assert_eq!(r2.ntets(), 64 * m.ntets());
        assert!(MeshStats::compute(&r2).is_valid());
    }

    #[test]
    fn refined_vertices_include_originals_unchanged() {
        let m = unit_box(3, 0.1, 1);
        let r = refine_uniform(&m);
        for (i, p) in m.coords.iter().enumerate() {
            assert_eq!(r.coords[i], *p);
        }
    }
}
