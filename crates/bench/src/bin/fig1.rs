//! **Figure 1** — Multigrid V and W cycles: "Euler time steps are
//! depicted by E, interpolations are depicted by I."
//!
//! Prints the exact event schedule executed by the solver for 3-, 4- and
//! 5-level sequences, which can be checked visually against the paper's
//! diagrams.

use eul3d_core::multigrid::CycleEvent;
use eul3d_core::{MultigridSolver, SolverConfig, Strategy};
use eul3d_mesh::MeshSequence;

fn render(events: &[CycleEvent], nlevels: usize) -> String {
    let mut out = String::new();
    for ev in events {
        match ev {
            CycleEvent::Step(l) => {
                out.push_str(&format!("{}E{}\n", "  ".repeat(*l), l));
            }
            CycleEvent::Restrict(l) => {
                out.push_str(&format!(
                    "{} \\ restrict {}->{}\n",
                    "  ".repeat(*l),
                    l,
                    l + 1
                ));
            }
            CycleEvent::Prolong(l) => {
                out.push_str(&format!("{} / I {}->{}\n", "  ".repeat(*l), l + 1, l));
            }
        }
    }
    let steps = events
        .iter()
        .filter(|e| matches!(e, CycleEvent::Step(_)))
        .count();
    out.push_str(&format!("  ({} E steps over {} levels)\n", steps, nlevels));
    out
}

fn main() {
    for levels in [3usize, 4, 5] {
        // The schedule depends only on level count; use a tiny box.
        for strategy in [Strategy::VCycle, Strategy::WCycle] {
            let seq = MeshSequence::box_sequence(2usize.pow(levels as u32), levels, 0.0, 0);
            let mut mg = MultigridSolver::new(seq, SolverConfig::default(), strategy);
            mg.record_events = true;
            mg.cycle();
            println!("=== {} levels, {} ===", levels, strategy.label());
            println!("{}", render(&mg.events, levels));
        }
    }
    println!("Compare with Figure 1 of the paper: the V-cycle performs one E per");
    println!("level; the W-cycle recursively re-enters each coarse level twice.");
}
