//! Durable content-addressed result store: one file per completed job
//! under `<state_dir>/results/<cache-key>.res`, written atomically
//! (temp + rename) and CRC-framed, so a server restart rebuilds its
//! result cache from disk and a resubmitted finished job is a disk read,
//! not a recompute.
//!
//! The payload serializes the *complete* [`JobArtifacts`] bundle —
//! history bits, residual table, optional Chrome trace, the stamped
//! event stream (via the `obs::wire` line codec), VTK, guard outcome,
//! and the result hash — so a blob served from the store is
//! byte-identical to the blob the original run streamed. Any damage
//! (torn rename never shows one, but a corrupted disk can) fails the
//! CRC or decode and reads as "not cached": corruption costs a
//! recompute, never a wrong answer.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use eul3d_core::ckstore::crc32;
use eul3d_core::health::{GuardOutcome, HealthVerdict, RetryEvent};
use eul3d_core::JobArtifacts;
use eul3d_obs as obs;

use crate::cache::{CacheKey, JobBlob};

const MAGIC: &[u8; 8] = b"EUL3DRES";
const VERSION: u32 = 1;

/// The directory holding one `.res` file per completed job, keyed by
/// the 32-hex-digit cache key.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating) the `results/` directory under `state_dir`.
    pub fn open(state_dir: &Path) -> std::io::Result<ResultStore> {
        let dir = state_dir.join("results");
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.res"))
    }

    /// Persist `blob` under `key`, atomically: the file either does not
    /// exist or holds one complete CRC-valid result. Durable
    /// (`sync_data` before rename) when this returns `Ok`.
    pub fn put(&self, key: CacheKey, blob: &JobBlob) -> std::io::Result<()> {
        let payload = encode_artifacts(&blob.artifacts);
        let tmp = self.dir.join(format!("{key}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&crc32(&payload).to_le_bytes())?;
            f.write_all(&payload)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path_of(key))
    }

    /// Load the result stored under `key`, or `None` when it is absent
    /// or fails any integrity check.
    pub fn get(&self, key: CacheKey) -> Option<Arc<JobBlob>> {
        let bytes = fs::read(self.path_of(key)).ok()?;
        let artifacts = decode_file(&bytes)?;
        Some(Arc::new(JobBlob { artifacts }))
    }

    /// Every key with a stored result, in deterministic (sorted) order —
    /// the startup scan that reseeds the in-memory cache index.
    pub fn keys(&self) -> Vec<CacheKey> {
        let mut keys = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return keys;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".res") {
                if let Some(key) = CacheKey::parse(stem) {
                    keys.push(key);
                }
            }
        }
        keys.sort_by_key(|k| k.0);
        keys
    }

    /// Drop the stored result for `key`, if any.
    pub fn remove(&self, key: CacheKey) -> std::io::Result<()> {
        match fs::remove_file(self.path_of(key)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

fn decode_file(bytes: &[u8]) -> Option<JobArtifacts> {
    if bytes.len() < 24 || &bytes[..8] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[8..12].try_into().ok()?) != VERSION {
        return None;
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    let payload = bytes.get(24..24 + len)?;
    if bytes.len() != 24 + len || crc32(payload) != crc {
        return None;
    }
    decode_artifacts(payload)
}

// ---- payload codec -------------------------------------------------------
//
// Flat length-prefixed little-endian layout; every float travels as its
// bit pattern so the decode is the exact inverse of the encode.

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.bytes(s.as_bytes());
            }
            None => self.u8(0),
        }
    }
    fn verdict(&mut self, v: HealthVerdict) {
        self.u8(v.severity());
        match v {
            HealthVerdict::Healthy => self.u64(0),
            HealthVerdict::Diverging { ratio } => self.f64(ratio),
            HealthVerdict::NegativePressure { vertex }
            | HealthVerdict::NegativeDensity { vertex }
            | HealthVerdict::NonFinite { vertex } => self.u64(vertex as u64),
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.at)?;
        self.at += 1;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.b.get(self.at..self.at + 8)?.try_into().ok()?);
        self.at += 8;
        Some(v)
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()? as usize;
        let b = self.b.get(self.at..self.at.checked_add(len)?)?;
        self.at += len;
        Some(b)
    }
    fn string(&mut self) -> Option<String> {
        std::str::from_utf8(self.bytes()?).ok().map(str::to_string)
    }
    fn verdict(&mut self) -> Option<HealthVerdict> {
        let tag = self.u8()?;
        Some(match tag {
            0 => {
                self.u64()?;
                HealthVerdict::Healthy
            }
            1 => HealthVerdict::Diverging { ratio: self.f64()? },
            2 => HealthVerdict::NegativePressure {
                vertex: self.u64()? as usize,
            },
            3 => HealthVerdict::NegativeDensity {
                vertex: self.u64()? as usize,
            },
            4 => HealthVerdict::NonFinite {
                vertex: self.u64()? as usize,
            },
            _ => return None,
        })
    }
}

fn encode_artifacts(a: &JobArtifacts) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(
        64 + a.history.len() * 8 + a.table.len() + a.vtk.len(),
    ));
    e.0.extend_from_slice(&a.result_hash.to_le_bytes());
    e.u64(a.history.len() as u64);
    for &r in &a.history {
        e.f64(r);
    }
    e.bytes(a.table.as_bytes());
    e.opt_str(a.trace_json.as_deref());
    e.u64(a.events.len() as u64);
    for ev in &a.events {
        e.bytes(obs::wire::encode(ev).as_bytes());
    }
    e.bytes(a.vtk.as_bytes());
    match &a.guard {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            e.u64(g.transcript.len() as u64);
            for r in &g.transcript {
                e.u64(r.cycle as u64);
                match r.rollback_to {
                    None => e.u8(0),
                    Some(c) => {
                        e.u8(1);
                        e.u64(c as u64);
                    }
                }
                e.verdict(r.verdict);
                e.f64(r.cfl_before);
                e.f64(r.cfl_after);
            }
            e.f64(g.final_cfl);
            e.f64(g.target_cfl);
            match g.exhausted {
                None => e.u8(0),
                Some((cycle, v)) => {
                    e.u8(1);
                    e.u64(cycle as u64);
                    e.verdict(v);
                }
            }
        }
    }
    e.0
}

fn decode_artifacts(payload: &[u8]) -> Option<JobArtifacts> {
    let mut d = Dec { b: payload, at: 0 };
    let result_hash = u128::from_le_bytes(d.b.get(0..16)?.try_into().ok()?);
    d.at = 16;
    let nhist = d.u64()? as usize;
    if nhist > payload.len() / 8 {
        return None;
    }
    let mut history = Vec::with_capacity(nhist);
    for _ in 0..nhist {
        history.push(d.f64()?);
    }
    let table = d.string()?;
    let trace_json = match d.u8()? {
        0 => None,
        1 => Some(d.string()?),
        _ => return None,
    };
    let nev = d.u64()? as usize;
    if nev > payload.len() {
        return None;
    }
    let mut events = Vec::with_capacity(nev);
    for _ in 0..nev {
        let line = std::str::from_utf8(d.bytes()?).ok()?;
        events.push(obs::wire::decode(line)?);
    }
    let vtk = d.string()?;
    let guard = match d.u8()? {
        0 => None,
        1 => {
            let nretries = d.u64()? as usize;
            if nretries > payload.len() {
                return None;
            }
            let mut transcript = Vec::with_capacity(nretries);
            for _ in 0..nretries {
                let cycle = d.u64()? as usize;
                let rollback_to = match d.u8()? {
                    0 => None,
                    1 => Some(d.u64()? as usize),
                    _ => return None,
                };
                let verdict = d.verdict()?;
                let cfl_before = d.f64()?;
                let cfl_after = d.f64()?;
                transcript.push(RetryEvent {
                    cycle,
                    rollback_to,
                    verdict,
                    cfl_before,
                    cfl_after,
                });
            }
            let final_cfl = d.f64()?;
            let target_cfl = d.f64()?;
            let exhausted = match d.u8()? {
                0 => None,
                1 => {
                    let cycle = d.u64()? as usize;
                    Some((cycle, d.verdict()?))
                }
                _ => return None,
            };
            Some(GuardOutcome {
                transcript,
                final_cfl,
                target_cfl,
                exhausted,
            })
        }
        _ => return None,
    };
    if d.at != payload.len() {
        return None;
    }
    Some(JobArtifacts {
        history,
        table,
        trace_json,
        events,
        vtk,
        guard,
        result_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts() -> JobArtifacts {
        JobArtifacts {
            history: vec![1.5, 0.25, -0.0, f64::MIN_POSITIVE],
            table: "cycle\tresidual\n0\t1.5\n".to_string(),
            trace_json: Some("{\"traceEvents\":[]}".to_string()),
            events: vec![
                obs::Stamped {
                    ts_ns: 12,
                    ev: obs::Event::PhaseBegin { phase: 2 },
                },
                obs::Stamped {
                    ts_ns: 99,
                    ev: obs::Event::MsgSend {
                        peer: 1,
                        tag: 7,
                        bytes: 4096,
                    },
                },
            ],
            vtk: "# vtk DataFile Version 3.0\n".to_string(),
            guard: Some(GuardOutcome {
                transcript: vec![RetryEvent {
                    cycle: 3,
                    rollback_to: Some(2),
                    verdict: HealthVerdict::Diverging { ratio: 55.0 },
                    cfl_before: 2.0,
                    cfl_after: 1.0,
                }],
                final_cfl: 1.0,
                target_cfl: 2.0,
                exhausted: Some((7, HealthVerdict::NonFinite { vertex: 4 })),
            }),
            result_hash: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233,
        }
    }

    fn dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("eul3d-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn assert_artifacts_eq(a: &JobArtifacts, b: &JobArtifacts) {
        assert_eq!(a.history, b.history);
        assert_eq!(a.table, b.table);
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(obs::wire::encode(x), obs::wire::encode(y));
        }
        assert_eq!(a.vtk, b.vtk);
        assert_eq!(a.result_hash, b.result_hash);
        match (&a.guard, &b.guard) {
            (None, None) => {}
            (Some(g), Some(h)) => {
                assert_eq!(g.transcript.len(), h.transcript.len());
                for (x, y) in g.transcript.iter().zip(&h.transcript) {
                    assert_eq!(x.cycle, y.cycle);
                    assert_eq!(x.rollback_to, y.rollback_to);
                    assert_eq!(x.verdict.severity(), y.verdict.severity());
                    assert_eq!(x.cfl_before, y.cfl_before);
                    assert_eq!(x.cfl_after, y.cfl_after);
                }
                assert_eq!(g.final_cfl, h.final_cfl);
                assert_eq!(g.target_cfl, h.target_cfl);
                assert_eq!(
                    g.exhausted.map(|(c, v)| (c, v.severity())),
                    h.exhausted.map(|(c, v)| (c, v.severity()))
                );
            }
            other => panic!("guard mismatch: {other:?}"),
        }
    }

    #[test]
    fn put_get_round_trips_every_field() {
        let d = dir("rt");
        let store = ResultStore::open(&d).unwrap();
        let key = CacheKey(42);
        assert!(store.get(key).is_none());
        store
            .put(
                key,
                &JobBlob {
                    artifacts: artifacts(),
                },
            )
            .unwrap();
        let back = store.get(key).unwrap();
        assert_artifacts_eq(&artifacts(), &back.artifacts);
        assert_eq!(store.keys(), vec![key]);
        store.remove(key).unwrap();
        assert!(store.get(key).is_none());
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn minimal_artifacts_round_trip() {
        let d = dir("min");
        let store = ResultStore::open(&d).unwrap();
        let min = JobArtifacts {
            history: Vec::new(),
            table: String::new(),
            trace_json: None,
            events: Vec::new(),
            vtk: String::new(),
            guard: None,
            result_hash: 0,
        };
        store
            .put(
                CacheKey(1),
                &JobBlob {
                    artifacts: min.clone(),
                },
            )
            .unwrap();
        let back = store.get(CacheKey(1)).unwrap();
        assert_artifacts_eq(&min, &back.artifacts);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn any_single_corrupt_byte_reads_as_absent() {
        let d = dir("corrupt");
        let store = ResultStore::open(&d).unwrap();
        let key = CacheKey(7);
        store
            .put(
                key,
                &JobBlob {
                    artifacts: artifacts(),
                },
            )
            .unwrap();
        let path = d.join("results").join(format!("{key}.res"));
        let clean = fs::read(&path).unwrap();
        // Flip one byte in every region: magic, version, length, crc,
        // and several payload offsets.
        for at in [0usize, 9, 13, 21, 30, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[at] ^= 0x5A;
            fs::write(&path, &bad).unwrap();
            assert!(
                store.get(key).is_none(),
                "corrupt byte at {at} must not decode"
            );
        }
        // Truncation likewise.
        fs::write(&path, &clean[..clean.len() - 4]).unwrap();
        assert!(store.get(key).is_none());
        fs::write(&path, &clean).unwrap();
        assert!(store.get(key).is_some());
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn keys_scan_ignores_foreign_files() {
        let d = dir("scan");
        let store = ResultStore::open(&d).unwrap();
        store
            .put(
                CacheKey(9),
                &JobBlob {
                    artifacts: artifacts(),
                },
            )
            .unwrap();
        fs::write(d.join("results").join("notakey.res"), b"junk").unwrap();
        fs::write(d.join("results").join("README"), b"hi").unwrap();
        assert_eq!(store.keys(), vec![CacheKey(9)]);
        fs::remove_dir_all(&d).ok();
    }
}
