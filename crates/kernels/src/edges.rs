//! Lane-chunked SoA edge kernels.
//!
//! Every kernel iterates its [`EdgeSpan`] in chunks of at most `lanes`
//! edge ids (see [`MAX_LANES`]). On x86-64 hosts with AVX2 the
//! gather-heavy kernels run a 4-wide vector body (`crate::simd`): the
//! endpoint planes are gathered into `__m256d` lanes, the per-edge
//! expression tree is evaluated with elementwise vector ops — every one
//! of which (`add`/`sub`/`mul`/`div`/`sqrt`, sign-mask `abs`) is IEEE
//! correctly rounded and therefore **bit-identical** to the scalar
//! reference — and the results are scattered scalar, per edge, in
//! ascending edge order. Everywhere else the kernels run the fused
//! scalar bodies in [`one`]: gather, compute the exact reference
//! expression tree, and accumulate immediately. Either way the chunk
//! width only sets loop blocking — any `lanes` value and either code
//! path produce bit-identical results, which the solver's
//! lane-invariance test asserts.
//!
//! # Safety
//! All kernels are `unsafe fn`: the caller must guarantee
//!
//! * every edge id covered by `span` indexes into `edges` (and `coef`
//!   where taken);
//! * every edge endpoint is `< n`;
//! * input planes are at least `nc * n` long (`w`, `lapl`: `5n`; `p`,
//!   `nu`, `res` scalar reads per their documented widths);
//! * the scatter targets are sized as documented per kernel;
//! * the [`ScatterAccess`] disjointness contract holds for the span
//!   (serial span, or a colour-group slice with disjoint endpoints).

use eul3d_mesh::Vec3;

use crate::gas::roe_dissipation_flux;
use crate::scatter::{EdgeSpan, ScatterAccess};
use crate::{MAX_LANES, NVAR};

/// Drive `chunk` over `span` in chunks of at most `lanes` edge ids.
///
/// # Safety
/// Forwarded from the calling kernel: ids handed to `chunk` are exactly
/// the span's ids, at most `MAX_LANES` at a time.
#[inline(always)]
pub(crate) unsafe fn drive(span: &EdgeSpan<'_>, lanes: usize, mut chunk: impl FnMut(&[u32])) {
    let lanes = lanes.clamp(1, MAX_LANES);
    match span {
        EdgeSpan::Ids(ids) => {
            let mut k = 0;
            while k < ids.len() {
                let m = lanes.min(ids.len() - k);
                chunk(unsafe { ids.get_unchecked(k..k + m) });
                k += m;
            }
        }
        EdgeSpan::Range(r) => {
            let mut buf = [0u32; MAX_LANES];
            let mut e = r.start;
            while e < r.end {
                let m = lanes.min(r.end - e);
                for (k, slot) in buf.iter_mut().enumerate().take(m) {
                    *slot = (e + k) as u32;
                }
                chunk(unsafe { buf.get_unchecked(..m) });
                e += m;
            }
        }
    }
}

/// Fused per-edge scalar bodies — the reference arithmetic, shared by
/// the scalar loops below and the SIMD remainder tails.
pub(crate) mod one {
    use super::*;

    /// # Safety
    /// Module contract of [`super`]; pointers must cover the documented
    /// plane extents.
    #[inline(always)]
    pub(crate) unsafe fn conv_flux(
        e: usize,
        edges: &[[u32; 2]],
        coef: &[Vec3],
        wp: *const f64,
        pp: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let eta = *coef.get_unchecked(e);
            let (wa0, wa1, wa2, wa3, wa4) = (
                *wp.add(a),
                *wp.add(n + a),
                *wp.add(2 * n + a),
                *wp.add(3 * n + a),
                *wp.add(4 * n + a),
            );
            let (wb0, wb1, wb2, wb3, wb4) = (
                *wp.add(b),
                *wp.add(n + b),
                *wp.add(2 * n + b),
                *wp.add(3 * n + b),
                *wp.add(4 * n + b),
            );
            let (pa, pb) = (*pp.add(a), *pp.add(b));
            // Identical expression tree to `gas::flux_dot` +
            // `conv_edge_flux`.
            let ua = wa1 / wa0;
            let va = wa2 / wa0;
            let za = wa3 / wa0;
            let qna = ua * eta.x + va * eta.y + za * eta.z;
            let fa0 = wa0 * qna;
            let fa1 = wa1 * qna + pa * eta.x;
            let fa2 = wa2 * qna + pa * eta.y;
            let fa3 = wa3 * qna + pa * eta.z;
            let fa4 = (wa4 + pa) * qna;
            let ub = wb1 / wb0;
            let vb = wb2 / wb0;
            let zb = wb3 / wb0;
            let qnb = ub * eta.x + vb * eta.y + zb * eta.z;
            let fb0 = wb0 * qnb;
            let fb1 = wb1 * qnb + pb * eta.x;
            let fb2 = wb2 * qnb + pb * eta.y;
            let fb3 = wb3 * qnb + pb * eta.z;
            let fb4 = (wb4 + pb) * qnb;
            let f0 = 0.5 * (fa0 + fb0);
            let f1 = 0.5 * (fa1 + fb1);
            let f2 = 0.5 * (fa2 + fb2);
            let f3 = 0.5 * (fa3 + fb3);
            let f4 = 0.5 * (fa4 + fb4);
            s.add(0, a, f0);
            s.add(0, b, -f0);
            s.add(0, n + a, f1);
            s.add(0, n + b, -f1);
            s.add(0, 2 * n + a, f2);
            s.add(0, 2 * n + b, -f2);
            s.add(0, 3 * n + a, f3);
            s.add(0, 3 * n + b, -f3);
            s.add(0, 4 * n + a, f4);
            s.add(0, 4 * n + b, -f4);
        }
    }

    /// Endpoint spectral radii averaged over the edge — identical to
    /// `gas::spectral_radius` on both endpoints.
    ///
    /// # Safety
    /// Module contract of [`super`].
    #[inline(always)]
    pub(crate) unsafe fn edge_lambda(
        a: usize,
        b: usize,
        eta: Vec3,
        gamma: f64,
        wp: *const f64,
        pp: *const f64,
        n: usize,
    ) -> f64 {
        unsafe {
            let norm = (eta.x * eta.x + eta.y * eta.y + eta.z * eta.z).sqrt();
            let ra = *wp.add(a);
            let qna =
                (*wp.add(n + a) * eta.x + *wp.add(2 * n + a) * eta.y + *wp.add(3 * n + a) * eta.z)
                    / ra;
            let sa = qna.abs() + (gamma * *pp.add(a) / ra).sqrt() * norm;
            let rb = *wp.add(b);
            let qnb =
                (*wp.add(n + b) * eta.x + *wp.add(2 * n + b) * eta.y + *wp.add(3 * n + b) * eta.z)
                    / rb;
            let sb = qnb.abs() + (gamma * *pp.add(b) / rb).sqrt() * norm;
            0.5 * (sa + sb)
        }
    }

    /// # Safety
    /// Module contract of [`super`].
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) unsafe fn radii(
        e: usize,
        edges: &[[u32; 2]],
        coef: &[Vec3],
        gamma: f64,
        wp: *const f64,
        pp: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let l = edge_lambda(a, b, *coef.get_unchecked(e), gamma, wp, pp, n);
            s.add(0, a, l);
            s.add(0, b, l);
        }
    }

    /// # Safety
    /// Module contract of [`super`].
    #[inline(always)]
    pub(crate) unsafe fn jst_pass1(
        e: usize,
        edges: &[[u32; 2]],
        wp: *const f64,
        pp: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let d0 = *wp.add(b) - *wp.add(a);
            let d1 = *wp.add(n + b) - *wp.add(n + a);
            let d2 = *wp.add(2 * n + b) - *wp.add(2 * n + a);
            let d3 = *wp.add(3 * n + b) - *wp.add(3 * n + a);
            let d4 = *wp.add(4 * n + b) - *wp.add(4 * n + a);
            let dp = *pp.add(b) - *pp.add(a);
            let sp = *pp.add(b) + *pp.add(a);
            s.add(0, a, d0);
            s.add(0, b, -d0);
            s.add(0, n + a, d1);
            s.add(0, n + b, -d1);
            s.add(0, 2 * n + a, d2);
            s.add(0, 2 * n + b, -d2);
            s.add(0, 3 * n + a, d3);
            s.add(0, 3 * n + b, -d3);
            s.add(0, 4 * n + a, d4);
            s.add(0, 4 * n + b, -d4);
            s.add(1, a, dp);
            s.add(1, n + a, sp);
            s.add(1, b, -dp);
            s.add(1, n + b, sp);
        }
    }

    /// # Safety
    /// Module contract of [`super`].
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) unsafe fn jst_pass2(
        e: usize,
        edges: &[[u32; 2]],
        coef: &[Vec3],
        gamma: f64,
        k2: f64,
        k4: f64,
        wp: *const f64,
        pp: *const f64,
        lp: *const f64,
        np: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let lam = edge_lambda(a, b, *coef.get_unchecked(e), gamma, wp, pp, n);
            let eps2 = k2 * (*np.add(a)).max(*np.add(b));
            let eps4 = (k4 - eps2).max(0.0);
            let d0 = lam * (eps2 * (*wp.add(b) - *wp.add(a)) - eps4 * (*lp.add(b) - *lp.add(a)));
            let d1 = lam
                * (eps2 * (*wp.add(n + b) - *wp.add(n + a))
                    - eps4 * (*lp.add(n + b) - *lp.add(n + a)));
            let d2 = lam
                * (eps2 * (*wp.add(2 * n + b) - *wp.add(2 * n + a))
                    - eps4 * (*lp.add(2 * n + b) - *lp.add(2 * n + a)));
            let d3 = lam
                * (eps2 * (*wp.add(3 * n + b) - *wp.add(3 * n + a))
                    - eps4 * (*lp.add(3 * n + b) - *lp.add(3 * n + a)));
            let d4 = lam
                * (eps2 * (*wp.add(4 * n + b) - *wp.add(4 * n + a))
                    - eps4 * (*lp.add(4 * n + b) - *lp.add(4 * n + a)));
            s.add(0, a, d0);
            s.add(0, b, -d0);
            s.add(0, n + a, d1);
            s.add(0, n + b, -d1);
            s.add(0, 2 * n + a, d2);
            s.add(0, 2 * n + b, -d2);
            s.add(0, 3 * n + a, d3);
            s.add(0, 3 * n + b, -d3);
            s.add(0, 4 * n + a, d4);
            s.add(0, 4 * n + b, -d4);
        }
    }

    /// # Safety
    /// Module contract of [`super`].
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) unsafe fn first_order(
        e: usize,
        edges: &[[u32; 2]],
        coef: &[Vec3],
        gamma: f64,
        kdiss: f64,
        wp: *const f64,
        pp: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let kl = kdiss * edge_lambda(a, b, *coef.get_unchecked(e), gamma, wp, pp, n);
            let d0 = kl * (*wp.add(b) - *wp.add(a));
            let d1 = kl * (*wp.add(n + b) - *wp.add(n + a));
            let d2 = kl * (*wp.add(2 * n + b) - *wp.add(2 * n + a));
            let d3 = kl * (*wp.add(3 * n + b) - *wp.add(3 * n + a));
            let d4 = kl * (*wp.add(4 * n + b) - *wp.add(4 * n + a));
            s.add(0, a, d0);
            s.add(0, b, -d0);
            s.add(0, n + a, d1);
            s.add(0, n + b, -d1);
            s.add(0, 2 * n + a, d2);
            s.add(0, 2 * n + b, -d2);
            s.add(0, 3 * n + a, d3);
            s.add(0, 3 * n + b, -d3);
            s.add(0, 4 * n + a, d4);
            s.add(0, 4 * n + b, -d4);
        }
    }

    /// One edge of [`super::roe_diss_edges`]: gather both endpoint
    /// states, evaluate the scalar [`roe_dissipation_flux`], scatter
    /// `±d` component-major.
    ///
    /// # Safety
    /// Module contract of [`super`].
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) unsafe fn roe(
        e: usize,
        edges: &[[u32; 2]],
        coef: &[Vec3],
        gamma: f64,
        wp: *const f64,
        pp: *const f64,
        n: usize,
        s: &ScatterAccess,
    ) {
        unsafe {
            let [a, b] = *edges.get_unchecked(e);
            let (a, b) = (a as usize, b as usize);
            let wa = [
                *wp.add(a),
                *wp.add(n + a),
                *wp.add(2 * n + a),
                *wp.add(3 * n + a),
                *wp.add(4 * n + a),
            ];
            let wb = [
                *wp.add(b),
                *wp.add(n + b),
                *wp.add(2 * n + b),
                *wp.add(3 * n + b),
                *wp.add(4 * n + b),
            ];
            let d = roe_dissipation_flux(
                gamma,
                &wa,
                &wb,
                *pp.add(a),
                *pp.add(b),
                *coef.get_unchecked(e),
            );
            s.add(0, a, d[0]);
            s.add(0, b, -d[0]);
            s.add(0, n + a, d[1]);
            s.add(0, n + b, -d[1]);
            s.add(0, 2 * n + a, d[2]);
            s.add(0, 2 * n + b, -d[2]);
            s.add(0, 3 * n + a, d[3]);
            s.add(0, 3 * n + b, -d[3]);
            s.add(0, 4 * n + a, d[4]);
            s.add(0, 4 * n + b, -d[4]);
        }
    }
}

/// Central convective fluxes `½(F_a + F_b)·η`, accumulated `+` at `a`
/// and `−` at `b` into target 0 (`q`, plane-major `5n`).
///
/// # Safety
/// See the module contract. Target 0 must be `≥ 5n` long.
#[allow(clippy::too_many_arguments)]
pub unsafe fn conv_flux_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    w: &[f64],
    p: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && p.len() >= n && s.len_of(0) >= NVAR * n);
    let (wp, pp) = (w.as_ptr(), p.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe { crate::simd::conv_flux_span(span, edges, coef, wp, pp, n, s, lanes) };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::conv_flux(e as usize, edges, coef, wp, pp, n, s);
            }
        });
    }
}

/// Spectral-radius accumulation `Λ_a += λ_ab`, `Λ_b += λ_ab` into target
/// 0 (`lam`, scalar `n`).
///
/// # Safety
/// See the module contract. Target 0 must be `≥ n` long.
#[allow(clippy::too_many_arguments)]
pub unsafe fn radii_edges_soa(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    w: &[f64],
    p: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && p.len() >= n && s.len_of(0) >= n);
    let (wp, pp) = (w.as_ptr(), p.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe { crate::simd::radii_span(span, edges, coef, gamma, wp, pp, n, s, lanes) };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::radii(e as usize, edges, coef, gamma, wp, pp, n, s);
            }
        });
    }
}

/// JST pass 1: undivided Laplacian of `w` into target 0 (`lapl`,
/// plane-major `5n`) and pressure-sensor accumulators into target 1
/// (`sens`, plane-major `2n`: plane 0 `Σ(p_j−p_i)`, plane 1 `Σ(p_j+p_i)`).
///
/// # Safety
/// See the module contract. Target 0 `≥ 5n`, target 1 `≥ 2n`.
pub unsafe fn jst_pass1_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    w: &[f64],
    p: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && p.len() >= n);
    debug_assert!(s.len_of(0) >= NVAR * n && s.len_of(1) >= 2 * n);
    let (wp, pp) = (w.as_ptr(), p.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe { crate::simd::jst_pass1_span(span, edges, wp, pp, n, s, lanes) };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::jst_pass1(e as usize, edges, wp, pp, n, s);
            }
        });
    }
}

/// JST pass 2: switched Laplacian/biharmonic blend
/// `d = λ [ε₂ (w_b − w_a) − ε₄ (L_b − L_a)]` into target 0 (`diss`,
/// plane-major `5n`).
///
/// # Safety
/// See the module contract. `lapl` `≥ 5n`, `nu` `≥ n`, target 0 `≥ 5n`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn jst_pass2_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    k2: f64,
    k4: f64,
    w: &[f64],
    p: &[f64],
    lapl: &[f64],
    nu: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && lapl.len() >= NVAR * n);
    debug_assert!(p.len() >= n && nu.len() >= n && s.len_of(0) >= NVAR * n);
    let (wp, pp, lp, np) = (w.as_ptr(), p.as_ptr(), lapl.as_ptr(), nu.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe {
            crate::simd::jst_pass2_span(
                span, edges, coef, gamma, k2, k4, wp, pp, lp, np, n, s, lanes,
            )
        };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::jst_pass2(e as usize, edges, coef, gamma, k2, k4, wp, pp, lp, np, n, s);
            }
        });
    }
}

/// First-order coarse-level dissipation `d = k λ (w_b − w_a)` into
/// target 0 (`diss`, plane-major `5n`).
///
/// # Safety
/// See the module contract. Target 0 `≥ 5n`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn first_order_diss_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    kdiss: f64,
    w: &[f64],
    p: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && p.len() >= n && s.len_of(0) >= NVAR * n);
    let (wp, pp) = (w.as_ptr(), p.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe {
            crate::simd::first_order_span(span, edges, coef, gamma, kdiss, wp, pp, n, s, lanes)
        };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::first_order(e as usize, edges, coef, gamma, kdiss, wp, pp, n, s);
            }
        });
    }
}

/// Roe matrix dissipation `½|Â|(w_b − w_a)|η|` into target 0 (`diss`,
/// plane-major `5n`). The wave decomposition's branches (entropy fix,
/// degenerate faces) blend exactly in the vector body, so this kernel
/// dispatches to AVX2 like the others; the scalar path evaluates
/// [`roe_dissipation_flux`] per edge — same expression tree.
///
/// # Safety
/// See the module contract. Target 0 `≥ 5n`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn roe_diss_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    coef: &[Vec3],
    gamma: f64,
    w: &[f64],
    p: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(w.len() >= NVAR * n && p.len() >= n && s.len_of(0) >= NVAR * n);
    let (wp, pp) = (w.as_ptr(), p.as_ptr());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2() {
        return unsafe {
            crate::simd::roe_diss_span(span, edges, coef, gamma, wp, pp, n, s, lanes)
        };
    }
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                one::roe(e as usize, edges, coef, gamma, wp, pp, n, s);
            }
        });
    }
}

/// Residual-averaging neighbour accumulation `acc_a += r̄_b`,
/// `acc_b += r̄_a` into target 0 (`acc`, plane-major `5n`), reading the
/// plane-major residual `res`. Pure data movement — no vector body.
///
/// # Safety
/// See the module contract. `res` `≥ 5n`, target 0 `≥ 5n`.
pub unsafe fn smooth_accumulate_edges(
    span: &EdgeSpan<'_>,
    edges: &[[u32; 2]],
    res: &[f64],
    n: usize,
    s: &ScatterAccess,
    lanes: usize,
) {
    debug_assert!(res.len() >= NVAR * n && s.len_of(0) >= NVAR * n);
    let rp = res.as_ptr();
    unsafe {
        drive(span, lanes, |ids| {
            for &e in ids {
                let e = e as usize;
                let [a, b] = *edges.get_unchecked(e);
                let (a, b) = (a as usize, b as usize);
                s.add(0, a, *rp.add(b));
                s.add(0, b, *rp.add(a));
                s.add(0, n + a, *rp.add(n + b));
                s.add(0, n + b, *rp.add(n + a));
                s.add(0, 2 * n + a, *rp.add(2 * n + b));
                s.add(0, 2 * n + b, *rp.add(2 * n + a));
                s.add(0, 3 * n + a, *rp.add(3 * n + b));
                s.add(0, 3 * n + b, *rp.add(3 * n + a));
                s.add(0, 4 * n + a, *rp.add(4 * n + b));
                s.add(0, 4 * n + b, *rp.add(4 * n + a));
            }
        });
    }
}
