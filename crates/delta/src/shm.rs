//! Shared-memory halo windows for the hybrid (threads-as-ranks) backend.
//!
//! A [`Window`] is one directed, single-producer single-consumer stream
//! `(src, dst, tag)`: the writer packs its SoA send region straight into
//! the window's buffer and *publishes* it by bumping an epoch counter;
//! the reader *consumes* it in place (no intermediate message copy) and
//! bumps its own counter to hand the buffer back. The two monotonic
//! counters are the entire protocol — a capacity-1 seqlock where
//! `published` and `consumed` double as the epoch stamps:
//!
//! ```text
//! writer owns the buffer  iff  consumed == published
//! reader owns the buffer  iff  published == consumed + 1
//! ```
//!
//! The writer's `Release` store of `published` makes the packed data
//! visible to the reader's `Acquire` load; the reader's `Release` store
//! of `consumed` returns the (possibly re-grown) buffer to the writer's
//! next `Acquire` load. No torn reads are possible across epochs because
//! ownership is exclusive in every reachable state.
//!
//! Deadlock freedom: every rank executes the *same* global sequence of
//! exchanges (SPMD), and within each exchange publishes all its sends
//! before consuming any of its receives. A publish can only block on a
//! peer that has not yet finished the *previous* exchange on that
//! stream, and a consume only on a peer that has not yet reached the
//! *current* one — so every wait points at a peer strictly earlier in
//! the program, and the least-progressed rank is always runnable.
//!
//! Windows carry only the per-cycle halo streams of a fault-free run;
//! setup traffic, collectives, checkpoints, and every fault-injected run
//! stay on the modeled message channels (fault injection acts on the
//! modeled wire, which a shared-memory load bypasses by construction).

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default for how long a window wait spins before declaring the run
/// wedged. Far beyond any legitimate kernel; a trip means a protocol
/// bug (mismatched publish/consume sequence), and a typed error beats a
/// silent hang.
pub const DEFAULT_WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

/// A window wait expired: which side stalled and at which epoch. The
/// caller (who knows the stream identity) lifts this into
/// [`crate::DeltaError::WindowWedged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wedge {
    /// `"publisher"` (stalled waiting on the consumer) or `"consumer"`
    /// (stalled waiting on the publisher).
    pub side: &'static str,
    /// The epoch the stalled side was trying to advance past.
    pub epoch: u64,
    /// The timeout that expired, in milliseconds.
    pub timeout_ms: u64,
}

/// One directed SPSC stream `(src, dst, tag)`. See the module docs for
/// the ownership protocol.
pub struct Window {
    /// Epochs published by the writer; bumped with `Release` after the
    /// buffer is filled.
    published: AtomicU64,
    /// Epochs consumed by the reader; bumped with `Release` after the
    /// buffer is read.
    consumed: AtomicU64,
    /// The shared pack buffer. Exclusively owned by exactly one side in
    /// every state (see module docs), so the `UnsafeCell` access is
    /// data-race free under the counter protocol.
    buf: UnsafeCell<Vec<f64>>,
    /// How long a wait may spin before reporting a wedge.
    timeout: Duration,
}

// SAFETY: the counter protocol above guarantees exclusive access to
// `buf` — the writer touches it only when `consumed == published`, the
// reader only when `published > consumed`, and the counters synchronize
// via Release/Acquire pairs.
unsafe impl Sync for Window {}

impl Window {
    fn new(timeout: Duration) -> Window {
        Window {
            published: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            buf: UnsafeCell::new(Vec::new()),
            timeout,
        }
    }

    /// Spin (with escalating yields) until `ready` holds, or report the
    /// wedge after the window's timeout. `side` labels which side
    /// stalled; `epoch` is the epoch it was trying to advance past.
    fn wait(&self, ready: impl Fn() -> bool, side: &'static str, epoch: u64) -> Result<(), Wedge> {
        let mut spins = 0u32;
        let mut deadline: Option<Instant> = None;
        while !ready() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
                let now = Instant::now();
                match deadline {
                    None => deadline = Some(now + self.timeout),
                    Some(d) => {
                        if now >= d {
                            return Err(Wedge {
                                side,
                                epoch,
                                timeout_ms: self.timeout.as_millis() as u64,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Writer side: wait for the previous epoch to be consumed, let
    /// `fill` pack the (cleared) buffer, and publish the new epoch.
    /// Returns the published length, or the wedge if the consumer never
    /// freed the buffer within the window's timeout (`fill` does not
    /// run in that case).
    pub fn publish_with<F: FnOnce(&mut Vec<f64>)>(&self, fill: F) -> Result<usize, Wedge> {
        let p = self.published.load(Ordering::Relaxed);
        self.wait(
            || self.consumed.load(Ordering::Acquire) == p,
            "publisher",
            p,
        )?;
        // SAFETY: consumed == published, so the writer exclusively owns
        // the buffer until the Release store below.
        let buf = unsafe { &mut *self.buf.get() };
        buf.clear();
        fill(buf);
        let len = buf.len();
        self.published.store(p + 1, Ordering::Release);
        Ok(len)
    }

    /// Reader side: wait for an unconsumed epoch, hand the buffer to
    /// `read`, and return it to the writer. Reports the wedge if no
    /// epoch arrives within the window's timeout.
    pub fn consume_with<R, F: FnOnce(&[f64]) -> R>(&self, read: F) -> Result<R, Wedge> {
        let c = self.consumed.load(Ordering::Relaxed);
        self.wait(|| self.published.load(Ordering::Acquire) > c, "consumer", c)?;
        // SAFETY: published > consumed, so the reader exclusively owns
        // the buffer until the Release store below.
        let buf = unsafe { &*self.buf.get() };
        let r = read(buf);
        self.consumed.store(c + 1, Ordering::Release);
        Ok(r)
    }

    /// Epochs published so far (diagnostics only).
    pub fn epochs(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }
}

/// Process-wide registry of windows, shared by every rank thread of one
/// hybrid run. Streams are created on first use under a mutex (setup
/// cost only); the steady state goes through each rank's local
/// `Arc<Window>` cache and never touches the lock.
pub struct WindowRegistry {
    nranks: usize,
    timeout: Duration,
    map: Mutex<HashMap<(usize, usize, u32), Arc<Window>>>,
}

impl WindowRegistry {
    pub fn new(nranks: usize) -> Arc<WindowRegistry> {
        WindowRegistry::with_timeout(nranks, DEFAULT_WEDGE_TIMEOUT)
    }

    /// A registry whose windows declare a wedge after `timeout` instead
    /// of the default 30 s — test harnesses and deadline-bounded service
    /// runs shrink it so a wedged run fails fast.
    pub fn with_timeout(nranks: usize, timeout: Duration) -> Arc<WindowRegistry> {
        Arc::new(WindowRegistry {
            nranks,
            timeout,
            map: Mutex::new(HashMap::new()),
        })
    }

    /// Ranks this registry serves.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The wedge timeout the registry's windows are created with.
    pub fn wedge_timeout(&self) -> Duration {
        self.timeout
    }

    /// Get or create the window for directed stream `(src, dst, tag)`.
    pub fn stream(&self, src: usize, dst: usize, tag: u32) -> Arc<Window> {
        assert!(src < self.nranks && dst < self.nranks && src != dst);
        let mut map = match self.map.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        map.entry((src, dst, tag))
            .or_insert_with(|| Arc::new(Window::new(self.timeout)))
            .clone()
    }

    /// Number of distinct streams created (diagnostics only).
    pub fn streams(&self) -> usize {
        match self.map.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_epoch_round_trip() {
        let w = Window::new(DEFAULT_WEDGE_TIMEOUT);
        let n = w
            .publish_with(|b| b.extend_from_slice(&[1.0, 2.0, 3.0]))
            .expect("free buffer");
        assert_eq!(n, 3);
        let got = w.consume_with(|b| b.to_vec()).expect("published epoch");
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert_eq!(w.epochs(), 1);
    }

    #[test]
    fn wedged_waits_report_instead_of_panicking() {
        let w = Window::new(Duration::from_millis(30));
        // Consume with no publisher: the reader side wedges.
        let wedge = w.consume_with(|b| b.len()).expect_err("nothing published");
        assert_eq!(wedge.side, "consumer");
        assert_eq!(wedge.epoch, 0);
        assert!(wedge.timeout_ms >= 30);
        // Publish twice with no consumer: the second publish wedges
        // (capacity-1 window) and `fill` must not have run.
        w.publish_with(|b| b.push(1.0))
            .expect("first epoch is free");
        let mut filled = false;
        let wedge = w
            .publish_with(|b| {
                filled = true;
                b.push(2.0);
            })
            .expect_err("buffer still owned by the reader");
        assert_eq!(wedge.side, "publisher");
        assert_eq!(wedge.epoch, 1);
        assert!(!filled, "fill must not run on a wedged publish");
        // The window stays usable: consuming frees the buffer again.
        assert_eq!(w.consume_with(|b| b.to_vec()).expect("epoch 0"), vec![1.0]);
        assert_eq!(w.publish_with(|b| b.push(2.0)).expect("freed"), 1);
    }

    #[test]
    fn registry_returns_same_stream() {
        let reg = WindowRegistry::new(4);
        let a = reg.stream(0, 1, 7);
        let b = reg.stream(0, 1, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let c = reg.stream(1, 0, 7);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(reg.streams(), 2);
    }

    /// The torn-read model test (loom is not available in this tree, so
    /// this is a high-pressure schedule-randomizing stress instead): a
    /// writer publishes thousands of epochs whose payloads are
    /// epoch-patterned with varying lengths; the reader asserts every
    /// observed buffer is internally uniform (no mix of two epochs'
    /// values) and that epochs arrive exactly once, in order. Any torn
    /// read or missed Release/Acquire edge shows up as a mixed or
    /// out-of-order payload.
    #[test]
    fn stress_no_torn_reads_across_epochs() {
        const EPOCHS: u64 = 20_000;
        let w = Arc::new(Window::new(DEFAULT_WEDGE_TIMEOUT));
        let r = w.clone();
        let reader = thread::spawn(move || {
            for e in 0..EPOCHS {
                r.consume_with(|buf| {
                    let want = e as f64;
                    let len = (e % 97 + 1) as usize;
                    assert_eq!(buf.len(), len, "epoch {e}: wrong length");
                    for (i, &v) in buf.iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            want.to_bits(),
                            "epoch {e}: torn read at element {i}"
                        );
                    }
                })
                .expect("no wedge under live traffic");
            }
        });
        for e in 0..EPOCHS {
            let len = (e % 97 + 1) as usize;
            w.publish_with(|buf| buf.resize(len, e as f64))
                .expect("no wedge under live traffic");
        }
        reader.join().expect("reader panicked");
    }

    /// Many concurrent streams between many thread pairs: each directed
    /// pair runs its own epoch sequence; cross-stream interference would
    /// corrupt the per-stream pattern.
    #[test]
    fn stress_many_streams_stay_independent() {
        const EPOCHS: u64 = 2_000;
        const N: usize = 4;
        let reg = WindowRegistry::new(N);
        let mut handles = Vec::new();
        for me in 0..N {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                // Publish to every peer, then consume from every peer,
                // per epoch — the hybrid exchange shape.
                let outs: Vec<_> = (0..N)
                    .filter(|&p| p != me)
                    .map(|p| (p, reg.stream(me, p, 0)))
                    .collect();
                let ins: Vec<_> = (0..N)
                    .filter(|&p| p != me)
                    .map(|p| (p, reg.stream(p, me, 0)))
                    .collect();
                for e in 0..EPOCHS {
                    for (peer, w) in &outs {
                        let stamp = (me * 1000 + peer * 10) as f64 + e as f64 * 0.001;
                        w.publish_with(|b| b.resize(5, stamp)).expect("no wedge");
                    }
                    for (peer, w) in &ins {
                        let want = (peer * 1000 + me * 10) as f64 + e as f64 * 0.001;
                        w.consume_with(|b| {
                            assert_eq!(b.len(), 5);
                            for &v in b.iter() {
                                assert_eq!(v.to_bits(), want.to_bits());
                            }
                        })
                        .expect("no wedge");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("stream worker panicked");
        }
    }
}
