//! Node-count scaling sweep — the §5 discussion quantified: "[the
//! communication-to-computation ratio] varies significantly with the
//! size of the problem, the number of processors employed, and the
//! particular solution strategy chosen."
//!
//! Runs the distributed solver at a geometric ladder of rank counts and
//! reports modeled comm/comp/total seconds, MFlops, parallel efficiency
//! and the comm/comp ratio; writes `scaling.csv`.

use eul3d_bench::{write_csv, CaseSpec};
use eul3d_core::dist::{run_distributed, DistOptions, DistSetup};
use eul3d_core::Strategy;
use eul3d_delta::CostModel;
use eul3d_perf::TextTable;

fn main() {
    let case = CaseSpec::from_env(10);
    let cfg = case.config();
    let model = CostModel::delta_i860();
    let ladder: Vec<usize> = std::env::var("EUL3D_RANKS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![4, 8, 16, 32, 64, 128, 256, 512]);
    let strategy = Strategy::VCycle;
    println!(
        "scaling: bump nx={}, {} levels, {} cycles, {} — ranks {:?}\n",
        case.nx,
        case.levels,
        case.cycles,
        strategy.label(),
        ladder
    );

    let mut t = TextTable::new(&[
        "Nodes",
        "comm s",
        "comp s",
        "total s",
        "MFlops",
        "efficiency %",
        "comm/comp",
    ]);
    let mut csv = Vec::new();
    let mut base: Option<(usize, f64)> = None;
    for &nranks in &ladder {
        let seq = case.sequence();
        let setup = DistSetup::new(seq, nranks, 40, 7);
        let r = run_distributed(&setup, cfg, strategy, case.cycles, DistOptions::default());
        let b = model.evaluate(&r.cycle_counters());
        let (n0, t0) = *base.get_or_insert((nranks, b.total_seconds));
        let efficiency = 100.0 * (t0 * n0 as f64) / (b.total_seconds * nranks as f64);
        t.row(&[
            nranks.to_string(),
            format!("{:.2}", b.comm_seconds),
            format!("{:.2}", b.comp_seconds),
            format!("{:.2}", b.total_seconds),
            format!("{:.0}", b.mflops),
            format!("{efficiency:.0}"),
            format!("{:.2}", b.comm_to_comp()),
        ]);
        csv.push(vec![
            nranks.to_string(),
            format!("{:.4}", b.comm_seconds),
            format!("{:.4}", b.comp_seconds),
            format!("{:.4}", b.total_seconds),
            format!("{:.1}", b.mflops),
            format!("{efficiency:.2}"),
            format!("{:.4}", b.comm_to_comp()),
        ]);
    }
    println!("{}", t.render());
    let path = case.out_dir().join("scaling.csv");
    write_csv(
        &path,
        &[
            "nodes",
            "comm_s",
            "comp_s",
            "total_s",
            "mflops",
            "efficiency_pct",
            "comm_to_comp",
        ],
        &csv,
    );
    println!("wrote {}", path.display());
    println!("\nExpect: total MFlops grow with nodes while efficiency falls and");
    println!("comm/comp climbs — the fixed-size (strong-scaling) regime the");
    println!("paper describes; a larger EUL3D_NX pushes the crossover right.");
}
