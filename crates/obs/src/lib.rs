//! **Observability layer** for the EUL3D reproduction: typed events on a
//! deterministic clock, recorded per rank into fixed-capacity ring
//! buffers and exported as Chrome `trace_event` JSON, flat metrics JSON,
//! or a human summary table.
//!
//! The paper's entire evaluation is observability — per-phase times,
//! communication volumes, scalability tables — yet coarse totals cannot
//! show *when* a rank stalled in an exchange or which recovery epoch ate
//! the wall clock. This crate records the run itself:
//!
//! * [`Event`] — a small `Copy` vocabulary of span and instant events:
//!   solver-phase begin/end, message send/receive with byte counts and
//!   tags, pool allocations, checkpoint and recovery epochs, guard
//!   verdicts, and CFL changes;
//! * [`Tracer`] — the recording trait. [`NullTracer`] (the default) is a
//!   no-op; [`RingTracer`] keeps the last *N* events in a pre-allocated
//!   ring (drop-oldest on overflow, with a dropped-events counter), so an
//!   armed steady-state cycle stays **allocation-free**;
//! * a per-thread dispatch context ([`install`] / [`take`] / [`emit`])
//!   holding the tracer and a monotonic nanosecond clock. The clock is
//!   advanced by the *instrumentation sites*, never read from wall time:
//!   compute charges advance it by modeled kernel nanoseconds and sends
//!   advance it by modeled wire nanoseconds, so distributed ranks carry
//!   the simulated Delta clock, serial/shared runs carry a monotonic
//!   cycle clock, and identical runs produce **bit-identical traces**;
//! * [`MetricsRegistry`] — named counters/gauges/fixed-bucket histograms
//!   addressed by integer handles (no string hashing or float formatting
//!   on the hot path);
//! * [`export`] — the three exporters ([`export::chrome_trace`],
//!   [`MetricsRegistry::to_json`], [`export::summary_table`]).
//!
//! The crate is dependency-free and sits below the machine simulation:
//! `eul3d-delta` emits wire events, `eul3d-core` emits phase/guard
//! events, and the CLI/bench layers arm tracers and export.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ctx;
pub mod export;
pub mod metrics;
pub mod tracer;
pub mod wire;

pub use ctx::{
    advance_ns, armed, emit, install, mark, now_ns, pause, resume, rewind, set_clock, span_ns,
    take, ClockSource, TraceMark,
};
pub use export::{chrome_trace, summary_table, Lane};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use tracer::{Event, NullTracer, RingTracer, Stamped, Tracer, DEFAULT_RING_CAPACITY};
