#!/bin/sh
# Near-paper-scale presets for the table/figure harnesses.
#
# The paper's finest mesh has 804,056 nodes; EUL3D_NX=190 generates
# roughly that (190x66x57 lattice ~= 810k nodes, ~5.6M edges). Expect
# minutes-to-hours per harness on one core and several GB of memory for
# the distributed runs; start with EUL3D_NX=96 (~180k nodes) to gauge.
#
# Usage: sh scripts/paper_scale.sh table1   (or fig2, table2, ...)
set -e
BIN="${1:?usage: paper_scale.sh <harness-bin>}"
export EUL3D_NX="${EUL3D_NX:-96}"
export EUL3D_LEVELS="${EUL3D_LEVELS:-4}"
export EUL3D_CYCLES="${EUL3D_CYCLES:-25}"
export EUL3D_RANKS="${EUL3D_RANKS:-256,512}"
exec cargo run --release -p eul3d-bench --bin "$BIN"
