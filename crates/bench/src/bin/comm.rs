//! `comm` — communication-layer microbenchmark emitting `BENCH_comm.json`.
//!
//! Times the PARTI executors (gather / scatter_add over a ring halo) and
//! the four `Rank` collectives on the simulated Delta, and records the
//! pool behaviour the tentpole guarantees: fresh buffer allocations
//! happen during warm-up only, steady-state rounds are allocation-free.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `EUL3D_BENCH_ROUNDS` | timed rounds per section | 200 |
//! | `EUL3D_BENCH_OUT` | output path | `BENCH_comm.json` |
//!
//! `--smoke` caps the rounds at 20 for CI.

use std::time::Instant;

use eul3d_delta::{run_spmd, CommClass};
use eul3d_parti::{localize, Schedule, Translation};

const NRANKS: usize = 8;
const OWNED: usize = 512;
const GHOSTS: usize = 64;
const NC: usize = 5;
const COLLECTIVE_LEN: usize = 256;
/// One full root rotation: the rotating-root collectives only reach pool
/// balance once every rank has been root.
const WARM_ROUNDS: usize = NRANKS;

/// Block ownership: rank r owns globals `[r*OWNED, (r+1)*OWNED)`.
fn block_translation() -> Translation {
    let parts: Vec<u32> = (0..NRANKS * OWNED).map(|g| (g / OWNED) as u32).collect();
    Translation::from_parts(&parts, NRANKS)
}

/// Ring halo: each rank ghosts the last `GHOSTS` entries of its left
/// neighbour into local slots `[OWNED, OWNED+GHOSTS)`.
fn ring_schedule(rank: &mut eul3d_delta::Rank) -> Schedule {
    let trans = block_translation();
    let prev = (rank.id + NRANKS - 1) % NRANKS;
    let globals: Vec<u32> = (0..GHOSTS)
        .map(|k| (prev * OWNED + OWNED - GHOSTS + k) as u32)
        .collect();
    let slots: Vec<u32> = (0..GHOSTS).map(|k| (OWNED + k) as u32).collect();
    localize(rank, &trans, &globals, &slots, 100, CommClass::Halo)
}

struct Section {
    name: &'static str,
    rounds: usize,
    /// Slowest rank's steady-round wall time — the machine's completion time.
    max_rank_seconds: f64,
    msgs_per_round: u64,
    bytes_per_round: u64,
    warm_allocs: u64,
    steady_allocs: u64,
}

/// Run one section: per rank, `setup` builds per-rank state (schedules,
/// data arrays) once, then `WARM_ROUNDS` untimed rounds and `rounds`
/// timed rounds of `op` run against it. Message/byte rates are taken from
/// counter deltas over the timed rounds only.
fn section<S, G, F>(name: &'static str, rounds: usize, setup: G, op: F) -> Section
where
    G: Fn(&mut eul3d_delta::Rank) -> S + Sync,
    F: Fn(&mut eul3d_delta::Rank, &mut S, usize) + Sync,
{
    let run = run_spmd(NRANKS, |rank| {
        let mut st = setup(rank);
        for i in 0..WARM_ROUNDS {
            op(rank, &mut st, i);
        }
        let warm = rank.counters.comm_allocs;
        let before = rank.counters.clone();
        let t0 = Instant::now();
        for i in 0..rounds {
            op(rank, &mut st, WARM_ROUNDS + i);
        }
        let d = rank.counters.delta_since(&before);
        (
            t0.elapsed().as_secs_f64(),
            warm,
            d.total_messages(),
            d.total_bytes(),
            d.comm_allocs,
        )
    });
    let max_rank_seconds = run.results.iter().map(|&(s, ..)| s).fold(0.0f64, f64::max);
    let warm_allocs: u64 = run.results.iter().map(|&(_, w, ..)| w).sum();
    let msgs: u64 = run.results.iter().map(|&(_, _, m, ..)| m).sum();
    let bytes: u64 = run.results.iter().map(|&(_, _, _, b, _)| b).sum();
    let steady_allocs: u64 = run.results.iter().map(|&(.., a)| a).sum();
    Section {
        name,
        rounds,
        max_rank_seconds,
        msgs_per_round: msgs / rounds.max(1) as u64,
        bytes_per_round: bytes / rounds.max(1) as u64,
        warm_allocs,
        steady_allocs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rounds: usize = std::env::var("EUL3D_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    if smoke {
        rounds = rounds.min(20);
    }
    let out_path =
        std::env::var("EUL3D_BENCH_OUT").unwrap_or_else(|_| "BENCH_comm.json".to_string());

    let halo_setup = |rank: &mut eul3d_delta::Rank| {
        let sched = ring_schedule(rank);
        let data = vec![1.0 + rank.id as f64; (OWNED + GHOSTS) * NC];
        (sched, data)
    };
    let coll_setup = |rank: &mut eul3d_delta::Rank| vec![1.0 + rank.id as f64; COLLECTIVE_LEN];

    let sections = [
        section(
            "gather",
            rounds,
            halo_setup,
            |rank, (sched, data): &mut (Schedule, Vec<f64>), _| {
                sched.gather(rank, data, NC);
            },
        ),
        section(
            "scatter_add",
            rounds,
            halo_setup,
            |rank, (sched, data): &mut (Schedule, Vec<f64>), _| {
                sched.scatter_add(rank, data, NC);
            },
        ),
        section("all_reduce_sum", rounds, coll_setup, |rank, vals, _| {
            rank.all_reduce_sum_in_place(vals);
            // Keep magnitudes bounded over hundreds of rounds.
            vals.iter_mut().for_each(|x| *x /= NRANKS as f64);
        }),
        section("all_reduce_max", rounds, coll_setup, |rank, vals, _| {
            rank.all_reduce_max_in_place(vals);
        }),
        section("broadcast", rounds, coll_setup, |rank, vals, i| {
            rank.broadcast_in_place(i % NRANKS, vals);
        }),
        section(
            "gather_to_root",
            rounds,
            |rank: &mut eul3d_delta::Rank| (vec![1.0 + rank.id as f64; COLLECTIVE_LEN], Vec::new()),
            |rank, (vals, out): &mut (Vec<f64>, Vec<f64>), i| {
                rank.gather_to_root_into(i % NRANKS, vals, out);
            },
        ),
    ];

    // Schedule executors and the solver's collectives must be
    // allocation-free after warm-up; gather_to_root allocates its output
    // vector by design, so it is reported but not enforced.
    for s in &sections {
        if s.name != "gather_to_root" {
            assert_eq!(
                s.steady_allocs, 0,
                "{}: steady-state rounds allocated {} fresh comm buffers",
                s.name, s.steady_allocs
            );
        }
        let per_round = if s.rounds > 0 {
            s.max_rank_seconds / s.rounds as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:>6} rounds  {:>10.3e} s/round  {:>6} msgs/round  {:>9} B/round  allocs warm {} steady {}",
            s.name, s.rounds, per_round, s.msgs_per_round, s.bytes_per_round, s.warm_allocs, s.steady_allocs
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"nranks\": {NRANKS}, \"owned\": {OWNED}, \"ghosts\": {GHOSTS}, \"nc\": {NC}, \"collective_len\": {COLLECTIVE_LEN}, \"warm_rounds\": {WARM_ROUNDS}, \"rounds\": {rounds}, \"smoke\": {smoke}}},\n"
    ));
    json.push_str("  \"sections\": [\n");
    for (k, s) in sections.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rounds\": {}, \"max_rank_seconds\": {:.6e}, \"msgs_per_round\": {}, \"bytes_per_round\": {}, \"warm_allocs\": {}, \"steady_allocs\": {}}}{}\n",
            s.name,
            s.rounds,
            s.max_rank_seconds,
            s.msgs_per_round,
            s.bytes_per_round,
            s.warm_allocs,
            s.steady_allocs,
            if k + 1 < sections.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_comm.json");
    println!("wrote {out_path}");
}
