//! The shared-memory workflow of §3: colour the edge loops into
//! recurrence-free groups, work-share each group across threads (the
//! autotasking analogue), and verify the parallel executor agrees with
//! the sequential solver.
//!
//! ```sh
//! cargo run --release --example shared_parallel
//! ```

use eul3d::mesh::gen::{bump_channel, BumpSpec};
use eul3d::partition::color_edges;
use eul3d::solver::shared::SharedSingleGridSolver;
use eul3d::solver::{SingleGridSolver, SolverConfig};

fn main() {
    let spec = BumpSpec {
        nx: 24,
        ny: 9,
        nz: 7,
        jitter: 0.12,
        ..BumpSpec::default()
    };
    let mesh = bump_channel(&spec);
    let cfg = SolverConfig {
        mach: 0.5,
        ..SolverConfig::default()
    };

    // The §3.1 decomposition: colour groups with no data recurrences.
    let coloring = color_edges(&mesh);
    println!(
        "{} edges in {} colour groups (paper: 'typically 20 to 30'); smallest group {} edges",
        mesh.nedges(),
        coloring.ncolors(),
        coloring.min_group_len()
    );
    let ncpus = 4;
    println!(
        "subgroup vector length at {ncpus} threads: ~{} edges per launch",
        mesh.nedges() / coloring.ncolors() / ncpus
    );

    // Sequential reference.
    let mut serial = SingleGridSolver::new(mesh.clone(), cfg);
    let hs = serial.solve(20);

    // Coloured/rayon executor.
    let mut shared =
        SharedSingleGridSolver::new(mesh, cfg, ncpus).expect("edge colouring must validate");
    let t0 = std::time::Instant::now();
    let hp = shared.solve(20);
    println!(
        "20 shared-memory cycles on {ncpus} threads: {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    // "The solution and convergence rates obtained were, of course,
    // identical" — up to accumulation-order round-off.
    let mut worst: f64 = 0.0;
    for (a, b) in hs.iter().zip(&hp) {
        worst = worst.max((a - b).abs() / a.max(1e-30));
    }
    println!(
        "max relative residual-history deviation serial vs shared: {worst:.2e} (round-off only)"
    );
    println!(
        "final residual: serial {:.6e}, shared {:.6e}",
        hs.last().unwrap(),
        hp.last().unwrap()
    );
}
