//! Offline stand-in for `proptest` (the subset EUL3D's property tests
//! use).
//!
//! This workspace vendors source-compatible subsets of its external
//! dependencies so the build is hermetic (no registry access). The
//! [`proptest!`] macro runs each property for `ProptestConfig::cases`
//! deterministic pseudo-random cases (seeded from the property's name,
//! so failures reproduce run-to-run). Unsupported upstream features:
//! shrinking, `Arbitrary`/`any::<T>()`, regex strategies, persistence.
//! A failing case panics immediately with the generated inputs' debug
//! representation.

/// Deterministic generator handed to strategies (xorshift-family;
/// stream is stable across runs and platforms).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the property name and case index so each case is
    /// reproducible.
    pub fn new(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// Next 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use crate::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    // Wide spans (e.g. 0..u64::MAX) still fit in u128.
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Fixed value strategy (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Length specification for [`vec`]: a fixed `usize` or a range.
    pub trait IntoLen {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoLen for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured; the struct keeps
    /// upstream's construction idiom
    /// (`ProptestConfig { cases: 10, ..ProptestConfig::default() }`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each contained property for the configured number of
/// deterministic random cases. See the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let strat = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(stringify!($name), case);
                let sampled = strat.generate(&mut rng);
                let ($($arg,)+) = sampled;
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assert a condition inside a property; panics with the formatted
/// message (no shrinking, so this is a straight assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::new("bounds", 0);
        for _ in 0..200 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&y));
            let v = collection::vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn wide_u64_range_is_supported() {
        let mut rng = crate::TestRng::new("wide", 0);
        for _ in 0..100 {
            let _ = (0u64..u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new("map", 1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = collection::vec(0u64..1000, 5).generate(&mut crate::TestRng::new("d", 3));
        let b = collection::vec(0u64..1000, 5).generate(&mut crate::TestRng::new("d", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
        fn macro_roundtrip(a in 0u32..50, v in collection::vec(-1.0f64..1.0, 1..4)) {
            prop_assert!(a < 50);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
