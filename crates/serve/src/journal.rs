//! The write-ahead job journal: an append-only NDJSON file at
//! `<state_dir>/journal.ndjson` recording every job's lifecycle —
//! `submitted`, `started`, `checkpointed`, `resumed`, `done`,
//! `cancelled`, `failed` — so a server restart can rebuild its queue
//! and resubmit work that was interrupted mid-run.
//!
//! ## Durability policy
//!
//! `submitted` and the terminal records (`done` / `cancelled` /
//! `failed`) are `sync_data`'d before the append returns: losing a
//! submission would silently drop a job, and losing a terminal record
//! would re-run one. Progress records (`started`, `checkpointed`,
//! `resumed`) are written but not individually fsynced — they are
//! observability and kill-point markers, and the checkpoint *data*
//! they refer to lives in the per-job checkpoint log, which carries its
//! own `sync_data`. A lost progress record therefore costs nothing.
//!
//! ## Replay
//!
//! [`Journal::open`] reads the existing file line by line and keeps the
//! **longest valid prefix**: the first unparseable line (a torn write
//! from the crash, or corruption) ends the replay, the file is
//! truncated back to the last good line boundary, and the
//! [`JournalReplay`] reports what was dropped. Jobs with a `submitted`
//! record but no terminal record are the interrupted ones — the engine
//! resubmits them internally, where they either hit the restored result
//! store or resume from their checkpoint log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use eul3d_core::JobMode;

use crate::cache::CacheKey;
use crate::json::{escape, JObj};

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted into the queue. Carries everything needed to
    /// resubmit it: the canonical config TOML, the mode, the force flag,
    /// and the precomputed cache key.
    Submitted {
        job: u64,
        key: CacheKey,
        mode: JobMode,
        force: bool,
        config: String,
    },
    /// A worker dequeued the job and began (or re-began) computing.
    Started { job: u64 },
    /// Cycle `cycle` is durable in the job's checkpoint log.
    Checkpointed { job: u64, cycle: u64 },
    /// A restarted server resumed the job from checkpointed cycle
    /// `cycle` instead of cycle 0.
    Resumed { job: u64, cycle: u64 },
    /// Terminal: completed, result persisted under `result_hash`.
    Done { job: u64, result_hash: u128 },
    /// Terminal: cancelled.
    Cancelled { job: u64 },
    /// Terminal: failed with `error`.
    Failed { job: u64, error: String },
}

impl JournalRecord {
    /// The job this record belongs to.
    pub fn job(&self) -> u64 {
        match *self {
            JournalRecord::Submitted { job, .. }
            | JournalRecord::Started { job }
            | JournalRecord::Checkpointed { job, .. }
            | JournalRecord::Resumed { job, .. }
            | JournalRecord::Done { job, .. }
            | JournalRecord::Cancelled { job }
            | JournalRecord::Failed { job, .. } => job,
        }
    }

    /// Whether this record ends its job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JournalRecord::Done { .. }
                | JournalRecord::Cancelled { .. }
                | JournalRecord::Failed { .. }
        )
    }

    /// Whether this record must be fsynced individually (see the module
    /// docs for the policy).
    fn is_durable(&self) -> bool {
        matches!(self, JournalRecord::Submitted { .. }) || self.is_terminal()
    }

    /// One NDJSON line, without the trailing newline.
    pub fn to_line(&self) -> String {
        match self {
            JournalRecord::Submitted {
                job,
                key,
                mode,
                force,
                config,
            } => format!(
                "{{\"rec\":\"submitted\",\"job\":{job},\"key\":\"{key}\",\"mode\":\"{}\",\"force\":{force},\"config\":\"{}\"}}",
                mode.name(),
                escape(config)
            ),
            // Numeric fields ride the shared flat-JSON codec, whose
            // numbers are f64: exact for job ids and cycle counts below
            // 2^53, which real engines never approach (job ids are
            // sequential, cycles are bounded by the run config).
            JournalRecord::Started { job } => format!("{{\"rec\":\"started\",\"job\":{job}}}"),
            JournalRecord::Checkpointed { job, cycle } => {
                format!("{{\"rec\":\"checkpointed\",\"job\":{job},\"cycle\":{cycle}}}")
            }
            JournalRecord::Resumed { job, cycle } => {
                format!("{{\"rec\":\"resumed\",\"job\":{job},\"cycle\":{cycle}}}")
            }
            JournalRecord::Done { job, result_hash } => {
                format!("{{\"rec\":\"done\",\"job\":{job},\"result_hash\":\"{result_hash:032x}\"}}")
            }
            JournalRecord::Cancelled { job } => format!("{{\"rec\":\"cancelled\",\"job\":{job}}}"),
            JournalRecord::Failed { job, error } => format!(
                "{{\"rec\":\"failed\",\"job\":{job},\"error\":\"{}\"}}",
                escape(error)
            ),
        }
    }

    /// Parse one line; `None` for anything malformed.
    pub fn parse(line: &str) -> Option<JournalRecord> {
        let o = JObj::parse(line).ok()?;
        let job = o.u64_of("job")?;
        match o.str_of("rec")? {
            "submitted" => Some(JournalRecord::Submitted {
                job,
                key: CacheKey::parse(o.str_of("key")?)?,
                mode: JobMode::parse(o.str_of("mode")?)?,
                force: o.bool_of("force")?,
                config: o.str_of("config")?.to_string(),
            }),
            "started" => Some(JournalRecord::Started { job }),
            "checkpointed" => Some(JournalRecord::Checkpointed {
                job,
                cycle: o.u64_of("cycle")?,
            }),
            "resumed" => Some(JournalRecord::Resumed {
                job,
                cycle: o.u64_of("cycle")?,
            }),
            "done" => {
                let h = o.str_of("result_hash")?;
                (h.len() == 32)
                    .then(|| u128::from_str_radix(h, 16).ok())
                    .flatten()
                    .map(|result_hash| JournalRecord::Done { job, result_hash })
            }
            "cancelled" => Some(JournalRecord::Cancelled { job }),
            "failed" => Some(JournalRecord::Failed {
                job,
                error: o.str_of("error")?.to_string(),
            }),
            _ => None,
        }
    }
}

/// A job the journal says was accepted but never finished — the work a
/// restarted server owes its clients.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    pub job: u64,
    pub key: CacheKey,
    pub mode: JobMode,
    pub force: bool,
    /// Canonical config TOML as journaled at submission.
    pub config: String,
    /// Highest cycle the journal saw checkpointed, if any (informational
    /// — the authoritative resume point is the job's checkpoint log).
    pub last_checkpoint: Option<u64>,
}

/// What [`Journal::open`] recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Every record in the valid prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Torn/corrupt lines dropped from the tail.
    pub dropped_lines: usize,
    /// Bytes truncated from the file.
    pub dropped_bytes: u64,
}

impl JournalReplay {
    /// Submitted-but-unterminated jobs, in submission order.
    pub fn pending_jobs(&self) -> Vec<PendingJob> {
        let mut pending: Vec<PendingJob> = Vec::new();
        for rec in &self.records {
            match rec {
                JournalRecord::Submitted {
                    job,
                    key,
                    mode,
                    force,
                    config,
                } => pending.push(PendingJob {
                    job: *job,
                    key: *key,
                    mode: *mode,
                    force: *force,
                    config: config.clone(),
                    last_checkpoint: None,
                }),
                JournalRecord::Checkpointed { job, cycle } => {
                    if let Some(p) = pending.iter_mut().find(|p| p.job == *job) {
                        p.last_checkpoint = Some(*cycle);
                    }
                }
                r if r.is_terminal() => pending.retain(|p| p.job != r.job()),
                _ => {}
            }
        }
        pending
    }

    /// The highest job id the journal mentions (0 when empty) — a
    /// restarted server allocates ids strictly above this so journal
    /// lines never collide across generations.
    pub fn max_job_id(&self) -> u64 {
        self.records
            .iter()
            .map(JournalRecord::job)
            .max()
            .unwrap_or(0)
    }
}

/// The open journal file. Appends are serialized by the engine's state
/// lock (the journal is owned by the engine, not shared).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// The journal's file name under the state directory.
pub const JOURNAL_FILE: &str = "journal.ndjson";

impl Journal {
    /// Open (creating) `<state_dir>/journal.ndjson`, replay the valid
    /// prefix, and truncate any damaged tail so subsequent appends land
    /// on a clean line boundary.
    pub fn open(state_dir: &Path) -> io::Result<(Journal, JournalReplay)> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut text = Vec::new();
        file.read_to_end(&mut text)?;
        let mut replay = JournalReplay::default();
        let mut valid_end = 0usize;
        let mut at = 0usize;
        while at < text.len() {
            let nl = match text[at..].iter().position(|&b| b == b'\n') {
                Some(off) => at + off,
                None => {
                    // No newline: a torn final line.
                    replay.dropped_lines += 1;
                    break;
                }
            };
            let parsed = std::str::from_utf8(&text[at..nl])
                .ok()
                .and_then(JournalRecord::parse);
            match parsed {
                Some(rec) => {
                    replay.records.push(rec);
                    at = nl + 1;
                    valid_end = at;
                }
                None => {
                    // First bad line ends the valid prefix; everything
                    // from here is dropped.
                    replay.dropped_lines +=
                        text[at..].iter().filter(|&&b| b == b'\n').count().max(1);
                    break;
                }
            }
        }
        replay.dropped_bytes = (text.len() - valid_end) as u64;
        if replay.dropped_bytes > 0 {
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { path, file }, replay))
    }

    /// Append one record; fsynced per the durability policy.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let mut line = rec.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        if rec.is_durable() {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// The journal's path (the crash harness polls it for kill points).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("eul3d-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submitted {
                job: 1,
                key: CacheKey(0xABCD),
                mode: JobMode::Solve,
                force: false,
                config: "[run]\ncycles = 3\n".to_string(),
            },
            JournalRecord::Started { job: 1 },
            JournalRecord::Checkpointed { job: 1, cycle: 2 },
            JournalRecord::Resumed { job: 1, cycle: 2 },
            JournalRecord::Done {
                job: 1,
                result_hash: 0x1234_5678_9ABC_DEF0_1122_3344_5566_7788,
            },
            JournalRecord::Submitted {
                job: 2,
                key: CacheKey(0xEF),
                mode: JobMode::Distributed,
                force: true,
                config: "nasty \"config\"\nwith lines\t".to_string(),
            },
            JournalRecord::Cancelled { job: 2 },
            JournalRecord::Failed {
                job: 3,
                error: "solver exploded: \"boom\"".to_string(),
            },
        ]
    }

    #[test]
    fn every_record_round_trips_through_its_line() {
        for rec in sample_records() {
            let line = rec.to_line();
            assert_eq!(JournalRecord::parse(&line), Some(rec.clone()), "{line}");
        }
        assert!(JournalRecord::parse("{\"rec\":\"martian\",\"job\":1}").is_none());
        assert!(JournalRecord::parse("not json at all").is_none());
    }

    #[test]
    fn append_reopen_replays_everything() {
        let d = dir("replay");
        let (mut j, rep) = Journal::open(&d).unwrap();
        assert!(rep.records.is_empty());
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let (_, rep) = Journal::open(&d).unwrap();
        assert_eq!(rep.records, sample_records());
        assert_eq!(rep.dropped_lines, 0);
        assert_eq!(rep.dropped_bytes, 0);
        assert_eq!(rep.max_job_id(), 3);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn pending_jobs_are_submitted_without_terminal() {
        let d = dir("pending");
        let (mut j, _) = Journal::open(&d).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        // Job 4: interrupted mid-run after a checkpoint at cycle 6.
        j.append(&JournalRecord::Submitted {
            job: 4,
            key: CacheKey(44),
            mode: JobMode::Solve,
            force: false,
            config: "[run]\ncycles = 9\n".to_string(),
        })
        .unwrap();
        j.append(&JournalRecord::Started { job: 4 }).unwrap();
        j.append(&JournalRecord::Checkpointed { job: 4, cycle: 6 })
            .unwrap();
        drop(j);
        let (_, rep) = Journal::open(&d).unwrap();
        let pending = rep.pending_jobs();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].job, 4);
        assert_eq!(pending[0].key, CacheKey(44));
        assert_eq!(pending[0].last_checkpoint, Some(6));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_line_is_truncated_and_reported() {
        let d = dir("torn");
        let (mut j, _) = Journal::open(&d).unwrap();
        let recs = sample_records();
        for rec in &recs {
            j.append(rec).unwrap();
        }
        drop(j);
        let path = d.join(JOURNAL_FILE);
        let clean = std::fs::read(&path).unwrap();
        let clean_len = clean.len();
        // Tear the final line at several byte offsets.
        for cut in [clean_len - 1, clean_len - 10, clean_len - 2] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let (_, rep) = Journal::open(path.parent().unwrap()).unwrap();
            assert_eq!(rep.records.len(), recs.len() - 1, "cut at {cut}");
            assert_eq!(rep.records, recs[..recs.len() - 1]);
            assert!(rep.dropped_lines >= 1);
            assert!(rep.dropped_bytes > 0);
            // The truncation leaves a clean boundary: reopen is clean.
            let (_, rep2) = Journal::open(path.parent().unwrap()).unwrap();
            assert_eq!(rep2.dropped_bytes, 0);
            assert_eq!(rep2.records, recs[..recs.len() - 1]);
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_middle_line_ends_the_valid_prefix() {
        let d = dir("midcorrupt");
        let (mut j, _) = Journal::open(&d).unwrap();
        let recs = sample_records();
        for rec in &recs {
            j.append(rec).unwrap();
        }
        drop(j);
        let path = d.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a byte inside the third line.
        let third_start = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .nth(1)
            .unwrap();
        bytes[third_start + 2] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (mut j, rep) = Journal::open(&d).unwrap();
        assert_eq!(rep.records, recs[..2]);
        assert!(rep.dropped_lines >= 1);
        // Appends after recovery extend the valid prefix.
        j.append(&JournalRecord::Started { job: 9 }).unwrap();
        drop(j);
        let (_, rep) = Journal::open(&d).unwrap();
        assert_eq!(rep.records.len(), 3);
        assert_eq!(rep.records[2], JournalRecord::Started { job: 9 });
        std::fs::remove_dir_all(&d).ok();
    }
}
