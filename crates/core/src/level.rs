//! Per-level solver state and the sequential five-stage time step —
//! eq. (1) of the paper, with the dissipative operator evaluated at the
//! first two stages and frozen for the remainder.

use eul3d_mesh::{BoundaryFace, TetMesh, Vec3};

use crate::boundary::boundary_residual;
use crate::config::SolverConfig;
use crate::counters::{FlopCounter, FLOPS_ASSEMBLE_VERT, FLOPS_UPDATE_VERT};
use crate::dissipation::{
    dissipation_first_order, dissipation_pass, laplacian_pass, sensor_from_accumulators,
};
use crate::flux::{compute_pressures, conv_residual_edges};
use crate::gas::NVAR;
use crate::smooth::{degrees_from_edges, smooth_residual_serial};
use crate::timestep::{local_dt, radii_bfaces, radii_edges};

/// Anything a solver level can time-step on: an edge list with dual-face
/// coefficients, tagged boundary faces, and control volumes. Implemented
/// by [`TetMesh`] and by agglomerated coarse levels
/// ([`crate::agglo::AggloLevel`]), which have no tetrahedra at all.
pub trait SolverGrid {
    fn grid_edges(&self) -> &[[u32; 2]];
    fn grid_edge_coef(&self) -> &[Vec3];
    fn grid_bfaces(&self) -> &[BoundaryFace];
    fn grid_vol(&self) -> &[f64];
    fn grid_nverts(&self) -> usize {
        self.grid_vol().len()
    }
}

impl SolverGrid for TetMesh {
    fn grid_edges(&self) -> &[[u32; 2]] {
        &self.edges
    }
    fn grid_edge_coef(&self) -> &[Vec3] {
        &self.edge_coef
    }
    fn grid_bfaces(&self) -> &[BoundaryFace] {
        &self.bfaces
    }
    fn grid_vol(&self) -> &[f64] {
        &self.vol
    }
}

/// All per-vertex working arrays of one solver level, flat with stride
/// [`NVAR`] where stated.
#[derive(Debug, Clone)]
pub struct LevelState {
    /// Vertex count of this level.
    pub n: usize,
    /// Conserved variables (n×5).
    pub w: Vec<f64>,
    /// Stage-reference state `w^(0)` (n×5).
    pub w0: Vec<f64>,
    /// Pressures (n).
    pub p: Vec<f64>,
    /// Undivided Laplacian of `w` (n×5).
    pub lapl: Vec<f64>,
    /// Pressure-sensor accumulators (n×2).
    pub sens: Vec<f64>,
    /// Shock sensor ν (n).
    pub nu: Vec<f64>,
    /// Frozen dissipation `D` (n×5).
    pub diss: Vec<f64>,
    /// Convective residual `Q` (n×5).
    pub q: Vec<f64>,
    /// Total (smoothed) residual `R = Q − D + P` (n×5).
    pub res: Vec<f64>,
    /// Smoothing scratch (n×5).
    pub acc: Vec<f64>,
    /// Spectral-radius sums Λ (n).
    pub lam: Vec<f64>,
    /// Local time steps (n).
    pub dt: Vec<f64>,
    /// Vertex degrees for residual averaging (n).
    pub deg: Vec<f64>,
    /// Multigrid forcing function `P` (n×5); zero on the finest level.
    pub forcing: Vec<f64>,
    /// Restricted state `w'` (n×5), the correction baseline.
    pub w_ref: Vec<f64>,
    /// Transfer scratch (n×5).
    pub corr: Vec<f64>,
}

impl LevelState {
    /// Fresh state at uniform freestream.
    pub fn new<G: SolverGrid + ?Sized>(mesh: &G, cfg: &SolverConfig) -> LevelState {
        let n = mesh.grid_nverts();
        let fs = cfg.freestream();
        let mut w = vec![0.0; n * NVAR];
        for i in 0..n {
            w[i * NVAR..i * NVAR + NVAR].copy_from_slice(&fs.w);
        }
        LevelState {
            n,
            w0: w.clone(),
            w,
            p: vec![0.0; n],
            lapl: vec![0.0; n * NVAR],
            sens: vec![0.0; n * 2],
            nu: vec![0.0; n],
            diss: vec![0.0; n * NVAR],
            q: vec![0.0; n * NVAR],
            res: vec![0.0; n * NVAR],
            acc: vec![0.0; n * NVAR],
            lam: vec![0.0; n],
            dt: vec![0.0; n],
            deg: degrees_from_edges(mesh.grid_edges(), n),
            forcing: vec![0.0; n * NVAR],
            w_ref: vec![0.0; n * NVAR],
            corr: vec![0.0; n * NVAR],
        }
    }

    /// RMS of the density residual normalized by dual volume — the
    /// "average residual throughout the flow field" the paper monitors.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed in lockstep
    pub fn density_residual_norm(&self, vol: &[f64]) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.n {
            let r = self.res[i * NVAR] / vol[i];
            sum += r * r;
        }
        (sum / self.n as f64).sqrt()
    }
}

/// Evaluate the dissipation operator into `st.diss` (fresh).
pub fn eval_dissipation<G: SolverGrid + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    counter: &mut FlopCounter,
) {
    st.diss.iter_mut().for_each(|x| *x = 0.0);
    if cfg.scheme == crate::config::Scheme::RoeUpwind {
        crate::roe::roe_dissipation_edges(
            mesh.grid_edges(),
            mesh.grid_edge_coef(),
            &st.w,
            &st.p,
            cfg.gamma,
            &mut st.diss,
            counter,
        );
        return;
    }
    if is_coarse && cfg.coarse_first_order {
        dissipation_first_order(
            mesh.grid_edges(),
            mesh.grid_edge_coef(),
            &st.w,
            &st.p,
            cfg.gamma,
            cfg.coarse_k2,
            &mut st.diss,
            counter,
        );
    } else {
        st.lapl.iter_mut().for_each(|x| *x = 0.0);
        st.sens.iter_mut().for_each(|x| *x = 0.0);
        laplacian_pass(mesh.grid_edges(), &st.w, &st.p, &mut st.lapl, &mut st.sens, counter);
        sensor_from_accumulators(&st.sens, &mut st.nu);
        dissipation_pass(
            mesh.grid_edges(),
            mesh.grid_edge_coef(),
            &st.w,
            &st.p,
            &st.lapl,
            &st.nu,
            cfg.gamma,
            cfg.k2,
            cfg.k4,
            &mut st.diss,
            counter,
        );
    }
}

/// Evaluate the convective operator into `st.q` (fresh), including
/// boundary fluxes.
pub fn eval_convection<G: SolverGrid + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    counter: &mut FlopCounter,
) {
    st.q.iter_mut().for_each(|x| *x = 0.0);
    conv_residual_edges(mesh.grid_edges(), mesh.grid_edge_coef(), &st.w, &st.p, &mut st.q, counter);
    let fs = cfg.freestream();
    boundary_residual(mesh.grid_bfaces(), &st.w, &st.p, &fs, cfg.gamma, &mut st.q, counter);
}

/// Assemble `res = Q − D + P`.
pub fn assemble_residual(st: &mut LevelState, counter: &mut FlopCounter) {
    for i in 0..st.n * NVAR {
        st.res[i] = st.q[i] - st.diss[i] + st.forcing[i];
    }
    counter.add(st.n, FLOPS_ASSEMBLE_VERT);
}

/// Full fresh residual evaluation (used for multigrid transfers and
/// monitoring): pressures → dissipation → convection → assembly.
pub fn eval_total_residual<G: SolverGrid + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    counter: &mut FlopCounter,
) {
    compute_pressures(cfg.gamma, &st.w, &mut st.p, counter);
    eval_dissipation(mesh, st, cfg, is_coarse, counter);
    eval_convection(mesh, st, cfg, counter);
    assemble_residual(st, counter);
}

/// One five-stage Runge–Kutta time step on a level (eq. (1)):
/// `w^(q) = w^(0) − α_q Δt/V [Q(w^(q−1)) − D(w^(≤1)) + P]`, with local
/// time steps and implicit residual averaging. Leaves the last stage's
/// smoothed residual in `st.res` for monitoring.
pub fn time_step<G: SolverGrid + ?Sized>(
    mesh: &G,
    st: &mut LevelState,
    cfg: &SolverConfig,
    is_coarse: bool,
    counter: &mut FlopCounter,
) {
    st.w0.copy_from_slice(&st.w);
    let nstages = cfg.nstages();
    for (stage, &alpha) in cfg.rk_alpha.iter().enumerate().take(nstages) {
        compute_pressures(cfg.gamma, &st.w, &mut st.p, counter);

        if stage == 0 {
            // Local time steps from the stage-0 state, held for the step.
            st.lam.iter_mut().for_each(|x| *x = 0.0);
            radii_edges(mesh.grid_edges(), mesh.grid_edge_coef(), &st.w, &st.p, cfg.gamma, &mut st.lam, counter);
            radii_bfaces(mesh.grid_bfaces(), &st.w, &st.p, cfg.gamma, &mut st.lam, counter);
            local_dt(cfg.cfl, mesh.grid_vol(), &st.lam, &mut st.dt, counter);
        }
        if stage <= 1 {
            eval_dissipation(mesh, st, cfg, is_coarse, counter);
        }
        eval_convection(mesh, st, cfg, counter);
        assemble_residual(st, counter);
        smooth_residual_serial(
            mesh.grid_edges(),
            st.n,
            &st.deg,
            cfg.smooth_eps,
            cfg.smooth_passes,
            &mut st.res,
            &mut st.acc,
            counter,
        );

        for i in 0..st.n {
            let scale = alpha * st.dt[i] / mesh.grid_vol()[i];
            for c in 0..NVAR {
                st.w[i * NVAR + c] = st.w0[i * NVAR + c] - scale * st.res[i * NVAR + c];
            }
        }
        counter.add(st.n, FLOPS_UPDATE_VERT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eul3d_mesh::gen::unit_box;

    #[test]
    fn freestream_is_a_fixed_point_of_the_time_step() {
        let mesh = unit_box(4, 0.2, 3);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        let before = st.w.clone();
        let mut counter = FlopCounter::default();
        time_step(&mesh, &mut st, &cfg, false, &mut counter);
        for (a, b) in st.w.iter().zip(&before) {
            assert!((a - b).abs() < 1e-11, "freestream must not drift: {a} vs {b}");
        }
        assert!(st.density_residual_norm(mesh.grid_vol()) < 1e-12);
        assert!(counter.flops > 0.0);
    }

    #[test]
    fn perturbation_decays_under_time_stepping() {
        let mesh = unit_box(5, 0.15, 4);
        let cfg = SolverConfig { mach: 0.5, ..SolverConfig::default() };
        let mut st = LevelState::new(&mesh, &cfg);
        // Small density/energy bump in the middle of the box.
        for (i, c) in mesh.coords.iter().enumerate() {
            let r2 = (*c - eul3d_mesh::Vec3::new(0.5, 0.5, 0.5)).norm_sq();
            let bump = 0.05 * (-20.0 * r2).exp();
            st.w[i * NVAR] += bump;
            st.w[i * NVAR + 4] += bump * 2.0;
        }
        let mut counter = FlopCounter::default();
        eval_total_residual(&mesh, &mut st, &cfg, false, &mut counter);
        let r0 = st.density_residual_norm(mesh.grid_vol());
        assert!(r0 > 1e-6, "perturbed state must have a residual");
        for _ in 0..30 {
            time_step(&mesh, &mut st, &cfg, false, &mut counter);
        }
        let r1 = st.density_residual_norm(mesh.grid_vol());
        assert!(
            r1 < 0.2 * r0,
            "multistage scheme must damp the perturbation: {r0} -> {r1}"
        );
        // State must remain physical.
        for i in 0..st.n {
            assert!(st.w[i * NVAR] > 0.0, "positive density");
            assert!(st.p[i] > 0.0, "positive pressure");
        }
    }

    #[test]
    fn forcing_shifts_the_fixed_point() {
        // With a nonzero forcing P, freestream is no longer stationary —
        // the multigrid driving mechanism.
        let mesh = unit_box(3, 0.1, 5);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        for i in 0..st.n {
            st.forcing[i * NVAR] = 1e-4 * mesh.grid_vol()[i];
        }
        let before = st.w.clone();
        let mut counter = FlopCounter::default();
        time_step(&mesh, &mut st, &cfg, false, &mut counter);
        let moved = st
            .w
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(moved > 1e-9, "forcing must drive the state");
    }

    #[test]
    fn coarse_first_order_dissipation_path_runs() {
        let mesh = unit_box(3, 0.1, 6);
        let cfg = SolverConfig::default();
        let mut st = LevelState::new(&mesh, &cfg);
        let mut counter = FlopCounter::default();
        time_step(&mesh, &mut st, &cfg, true, &mut counter);
        // Freestream preserved on the coarse path too.
        assert!(st.density_residual_norm(mesh.grid_vol()) < 1e-12);
    }
}
