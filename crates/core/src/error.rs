//! The workspace error taxonomy. Every crash path that used to be an
//! `assert!`/`panic!` on user-reachable input (bad meshes, bad guard
//! configuration, diverging runs, malformed fault specs) now surfaces as
//! a typed error that converts into the umbrella [`Eul3dError`], so the
//! CLI and library callers handle failures without unwinding.
//!
//! Invariant violations that indicate a *bug* (not bad input) remain
//! `unreachable!`/`debug_assert!` — the taxonomy is for recoverable
//! conditions.

use std::fmt;

use crate::checkpoint::CheckpointError;
use crate::health::{HealthVerdict, RetryEvent};
use eul3d_delta::DeltaError;
use eul3d_mesh::MeshError;
use eul3d_parti::PartiError;

/// Errors raised by solver setup and the health-guarded drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Edge-colouring validation failed on the shared-memory path.
    Coloring(String),
    /// A mesh sequence with no levels was supplied.
    EmptyMeshSequence,
    /// `--cfl-backoff` outside `(0, 1)`.
    GuardBackoffOutOfRange { value: f64 },
    /// `--max-retries 0` with the guard enabled.
    GuardZeroRetries,
    /// Zero-length health window, snapshot cadence, or re-ramp count.
    GuardZeroWindow,
    /// Divergence ratio must exceed 1.
    GuardBadRatio { value: f64 },
    /// The guarded distributed driver needs residual monitoring on.
    GuardRequiresMonitoring,
    /// A [`crate::runconfig::RunConfig`] field failed range validation.
    ConfigOutOfRange {
        /// Dotted field path (e.g. `"solver.mach"`).
        field: &'static str,
        /// The rejected value (integer fields are cast).
        value: f64,
        /// Human description of the accepted range.
        expected: &'static str,
    },
    /// A `run.toml` config file failed to parse.
    ConfigParse {
        /// 1-based line of the offending entry (0 = whole file).
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The guard backed off `max_retries` times and the run still went
    /// bad: the full retry transcript plus the final verdict.
    RetriesExhausted {
        /// Cycle (0-based) whose verdict exhausted the budget.
        cycle: usize,
        /// The verdict that could not be retried.
        verdict: HealthVerdict,
        /// Every backoff epoch that was attempted, in order.
        transcript: Vec<RetryEvent>,
        /// The configured retry budget.
        max_retries: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Coloring(msg) => write!(f, "edge colouring invalid: {msg}"),
            SolverError::EmptyMeshSequence => write!(f, "mesh sequence has no levels"),
            SolverError::GuardBackoffOutOfRange { value } => write!(
                f,
                "--cfl-backoff must be in (0, 1), got {value} (a factor >= 1 never reduces the CFL)"
            ),
            SolverError::GuardZeroRetries => {
                write!(f, "--max-retries must be >= 1 when the guard is enabled")
            }
            SolverError::GuardZeroWindow => write!(
                f,
                "guard window, snapshot cadence, and re-ramp count must be >= 1"
            ),
            SolverError::GuardBadRatio { value } => {
                write!(f, "divergence ratio must exceed 1, got {value}")
            }
            SolverError::GuardRequiresMonitoring => write!(
                f,
                "the guarded distributed driver requires residual monitoring (monitor_residual)"
            ),
            SolverError::ConfigOutOfRange {
                field,
                value,
                expected,
            } => write!(f, "config: {field} = {value} out of range ({expected})"),
            SolverError::ConfigParse { line, msg } => {
                if *line > 0 {
                    write!(f, "config: parse error at line {line}: {msg}")
                } else {
                    write!(f, "config: parse error: {msg}")
                }
            }
            SolverError::RetriesExhausted {
                cycle,
                verdict,
                transcript,
                max_retries,
            } => {
                write!(
                    f,
                    "guard exhausted {max_retries} retries: {verdict} at cycle {}",
                    cycle + 1
                )?;
                for e in transcript {
                    write!(f, "\n  retry: {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// The workspace-wide umbrella: anything a driver or the CLI can fail
/// with, from mesh construction through solver setup to a guarded run
/// that exhausted its retries.
#[derive(Debug, Clone, PartialEq)]
pub enum Eul3dError {
    Mesh(MeshError),
    Parti(PartiError),
    Delta(DeltaError),
    Solver(SolverError),
    Checkpoint(CheckpointError),
}

impl fmt::Display for Eul3dError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Eul3dError::Mesh(e) => write!(f, "mesh: {e}"),
            Eul3dError::Parti(e) => write!(f, "parti: {e}"),
            Eul3dError::Delta(e) => write!(f, "delta: {e}"),
            Eul3dError::Solver(e) => write!(f, "solver: {e}"),
            Eul3dError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for Eul3dError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Eul3dError::Mesh(e) => Some(e),
            Eul3dError::Parti(e) => Some(e),
            Eul3dError::Delta(e) => Some(e),
            Eul3dError::Solver(e) => Some(e),
            Eul3dError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<MeshError> for Eul3dError {
    fn from(e: MeshError) -> Eul3dError {
        Eul3dError::Mesh(e)
    }
}

impl From<PartiError> for Eul3dError {
    fn from(e: PartiError) -> Eul3dError {
        Eul3dError::Parti(e)
    }
}

impl From<DeltaError> for Eul3dError {
    fn from(e: DeltaError) -> Eul3dError {
        Eul3dError::Delta(e)
    }
}

impl From<SolverError> for Eul3dError {
    fn from(e: SolverError) -> Eul3dError {
        Eul3dError::Solver(e)
    }
}

impl From<CheckpointError> for Eul3dError {
    fn from(e: CheckpointError) -> Eul3dError {
        Eul3dError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umbrella_wraps_and_displays_every_source() {
        let m: Eul3dError = MeshError::DegenerateTet { tet: [0, 1, 2, 3] }.into();
        assert!(m.to_string().contains("mesh:"));
        let s: Eul3dError = SolverError::GuardZeroRetries.into();
        assert!(s.to_string().contains("--max-retries"));
        let c: Eul3dError = CheckpointError::BadMagic.into();
        assert!(c.to_string().contains("checkpoint:"));
        assert!(std::error::Error::source(&s).is_some());
    }

    #[test]
    fn retries_exhausted_carries_the_transcript() {
        use crate::health::HealthVerdict;
        let e = SolverError::RetriesExhausted {
            cycle: 9,
            verdict: HealthVerdict::Diverging { ratio: 60.0 },
            transcript: vec![RetryEvent {
                cycle: 4,
                rollback_to: Some(0),
                verdict: HealthVerdict::NonFinite { vertex: 2 },
                cfl_before: 30.0,
                cfl_after: 15.0,
            }],
            max_retries: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("exhausted 1 retries"));
        assert!(msg.contains("retry: cycle 5"));
        assert!(msg.contains("non-finite state at vertex 2"));
    }
}
