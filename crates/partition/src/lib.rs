//! Preprocessing for parallel EUL3D (§2.4, §3.1, §4.1–4.2 of the paper):
//!
//! * **edge colouring** — divides the edge loop into groups free of data
//!   recurrences, the vectorization/autotasking decomposition used on the
//!   Cray Y-MP C90;
//! * **mesh partitioning** — recursive *spectral* bisection
//!   (Pothen–Simon–Liou), the method the paper uses for the Touchstone
//!   Delta, plus recursive coordinate bisection and random assignment as
//!   ablation baselines;
//! * **node and edge reordering** — the cache optimizations of §4.2 that
//!   doubled the single-node i860 rate;
//! * **partitioned-mesh construction** — per-rank local meshes with ghost
//!   vertices, the input to the PARTI inspector.

//! ```
//! use eul3d_mesh::gen::unit_box;
//! use eul3d_partition::{
//!     color_edges, validate_coloring, MultilevelRsb, PartitionOptions, Partitioner,
//! };
//!
//! let mesh = unit_box(4, 0.15, 7);
//! // §3.1: recurrence-free edge groups for the vector/parallel path.
//! let coloring = color_edges(&mesh);
//! assert!(validate_coloring(&mesh, &coloring).is_ok());
//! // §4.1 modernized: multilevel spectral bisection for the
//! // distributed path, via the Partitioner trait.
//! let opts = PartitionOptions::new(4).seed(1);
//! let plan = MultilevelRsb.partition(mesh.nverts(), &mesh.edges, &opts).unwrap();
//! assert!(plan.balance < 1.2);
//! assert!(plan.edge_cut > 0);
//! ```

pub mod api;
pub mod coloring;
pub mod kl;
pub mod mapping;
pub mod multilevel;
pub mod parallel;
pub mod partitioned;
pub mod quality;
pub mod rcb;
pub mod reorder;
pub mod rsb;
pub mod spectral;

pub use api::{
    FlatRsb, MultilevelRsb, PartitionError, PartitionOptions, PartitionPlan, Partitioner,
    RankMapping,
};
pub use coloring::{color_edges, validate_coloring, EdgeColoring};
pub use kl::kl_refine;
pub use mapping::{comm_matrix, hop_volume, topology_mapping};
pub use multilevel::{
    coarsen, heavy_edge_matching, multilevel_bisect, rebalance_bisection, MultilevelParams,
    WeightedGraph,
};
pub use parallel::parallel_rcb;
pub use partitioned::{PartitionedMesh, RankMesh};
pub use quality::PartitionQuality;
pub use rcb::rcb_partition;
#[allow(deprecated)]
pub use rsb::rsb_partition;
pub use spectral::{fiedler_vector, fiedler_vector_tol, FiedlerSolve};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform-random partition baseline: decent balance, terrible locality.
pub fn random_partition(nverts: usize, nparts: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..nverts)
        .map(|_| rng.random_range(0..nparts as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_partition_uses_all_parts() {
        let p = random_partition(1000, 8, 1);
        for r in 0..8u32 {
            assert!(p.contains(&r));
        }
        assert!(p.iter().all(|&r| r < 8));
    }

    #[test]
    fn random_partition_deterministic() {
        assert_eq!(random_partition(100, 4, 9), random_partition(100, 4, 9));
    }
}
