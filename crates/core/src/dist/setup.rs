//! Sequential preprocessing for a distributed run: partition every mesh
//! level (recursive spectral bisection by default, §4.1) and build the
//! per-rank mesh pieces. Like the paper's, this phase is sequential and
//! its cost is amortized over many flow solutions.

use std::sync::Arc;

use eul3d_mesh::MeshSequence;
use eul3d_partition::{rsb_partition, PartitionedMesh};

/// Everything the SPMD ranks need, shared read-only.
pub struct DistSetup {
    pub seq: Arc<MeshSequence>,
    /// One partitioned mesh per level.
    pub pms: Vec<Arc<PartitionedMesh>>,
    pub nranks: usize,
}

impl DistSetup {
    /// Partition all levels of `seq` over `nranks` ranks with RSB.
    pub fn new(seq: MeshSequence, nranks: usize, lanczos_iters: usize, seed: u64) -> DistSetup {
        let pms = seq
            .meshes
            .iter()
            .map(|m| {
                let parts = rsb_partition(m.nverts(), &m.edges, nranks, lanczos_iters, seed);
                Arc::new(PartitionedMesh::build(m, &parts, nranks))
            })
            .collect();
        DistSetup {
            seq: Arc::new(seq),
            pms,
            nranks,
        }
    }

    /// Partition with a caller-supplied partitioner (e.g. RCB or random,
    /// for the partitioning ablation).
    pub fn with_partitioner(
        seq: MeshSequence,
        nranks: usize,
        partitioner: impl Fn(&eul3d_mesh::TetMesh) -> Vec<u32>,
    ) -> DistSetup {
        let pms = seq
            .meshes
            .iter()
            .map(|m| Arc::new(PartitionedMesh::build(m, &partitioner(m), nranks)))
            .collect();
        DistSetup {
            seq: Arc::new(seq),
            pms,
            nranks,
        }
    }

    pub fn levels(&self) -> usize {
        self.seq.levels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_partitions_every_level() {
        let seq = MeshSequence::box_sequence(6, 3, 0.1, 3);
        let setup = DistSetup::new(seq, 4, 20, 1);
        assert_eq!(setup.pms.len(), 3);
        for (pm, mesh) in setup.pms.iter().zip(&setup.seq.meshes) {
            assert_eq!(pm.nparts, 4);
            let owned: usize = pm.ranks.iter().map(|r| r.n_owned()).sum();
            assert_eq!(owned, mesh.nverts());
        }
    }

    #[test]
    fn custom_partitioner_is_used() {
        let seq = MeshSequence::box_sequence(4, 2, 0.0, 0);
        let setup = DistSetup::with_partitioner(seq, 2, |m| {
            (0..m.nverts() as u32).map(|v| v % 2).collect()
        });
        assert_eq!(setup.pms[0].nparts, 2);
    }
}
