//! The per-rank SPMD context: typed sends/receives, barriers, and
//! deterministic collectives.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Barrier};

use crossbeam::channel::{Receiver, Sender};

use crate::msg::{CommClass, Message, Payload, RankCounters};
use crate::pool::CommBuffers;

/// Reserved tag space for collectives; user tags must stay below this.
pub const COLLECTIVE_TAG_BASE: u32 = 0xF000_0000;

/// Tag of the poison message a panicking rank broadcasts so peers blocked
/// in a receive abort instead of deadlocking. Collective tags are masked
/// to never reach it.
pub(crate) const POISON_TAG: u32 = u32::MAX;

/// One rank's handle onto the simulated machine. Passed by the SPMD
/// driver to the rank body; all communication goes through it.
pub struct Rank {
    pub id: usize,
    pub nranks: usize,
    rx: Receiver<Message>,
    txs: Vec<Sender<Message>>,
    /// Out-of-order receive buffer: messages that arrived before anyone
    /// asked for them, keyed by `(src, tag)`.
    stash: HashMap<(usize, u32), VecDeque<Payload>>,
    barrier: Arc<Barrier>,
    /// Accounting; read back by the driver after the run.
    pub counters: RankCounters,
    /// Monotonic counter for internal collective tags.
    collective_seq: u32,
    /// Columns of the (nearly square) 2-D mesh the ranks are mapped
    /// onto, row-major — used only for hop accounting.
    mesh_cols: usize,
    /// Reusable communication pack buffers (see [`crate::pool`]).
    pool: CommBuffers,
    /// Tag ranges claimed by schedules on this rank, for collision
    /// detection at build time.
    reserved_tags: Vec<(u32, u32)>,
    /// Streams `(dst, tag)` with a lent pack buffer awaiting return
    /// (see [`Rank::take_pack_f64`]).
    outstanding: HashSet<(usize, u32)>,
}

impl Rank {
    pub(crate) fn new(
        id: usize,
        nranks: usize,
        rx: Receiver<Message>,
        txs: Vec<Sender<Message>>,
        barrier: Arc<Barrier>,
    ) -> Rank {
        // Nearly-square 2-D mesh factorization (the Delta itself was a
        // 16x32 mesh of i860s).
        let mut cols = (nranks as f64).sqrt().ceil() as usize;
        cols = cols.max(1);
        Rank {
            id,
            nranks,
            rx,
            txs,
            stash: HashMap::new(),
            barrier,
            counters: RankCounters::default(),
            collective_seq: 0,
            mesh_cols: cols,
            pool: CommBuffers::new(),
            reserved_tags: Vec::new(),
            outstanding: HashSet::new(),
        }
    }

    /// Take a pack buffer for a *repeating* point-to-point stream
    /// `(dst, tag)` — the schedule-executor protocol. If a buffer lent on
    /// this stream is still outstanding, block until the receiver returns
    /// it (it does so right after unpacking, so per-pair FIFO order makes
    /// data and returned buffers alternate strictly on the stream) and
    /// recycle it; then take from the pool. After the first execution the
    /// same buffer ping-pongs forever: zero steady-state allocation even
    /// for one-directional streams. Models PARTI's persistent send
    /// buffers; pair with [`Rank::send_packed_f64`] /
    /// [`Rank::return_packed_f64`].
    pub fn take_pack_f64(&mut self, dst: usize, tag: u32, cap: usize) -> Vec<f64> {
        if self.outstanding.remove(&(dst, tag)) {
            let returned = self.recv_payload(dst, tag).into_f64();
            self.pool.recycle_f64(returned);
        }
        self.take_f64(cap)
    }

    /// Send a buffer obtained from [`Rank::take_pack_f64`] on its stream,
    /// marking it lent until the receiver returns it.
    pub fn send_packed_f64(&mut self, dst: usize, tag: u32, data: Vec<f64>, class: CommClass) {
        self.outstanding.insert((dst, tag));
        self.send_f64(dst, tag, data, class);
    }

    /// Return a consumed packed buffer to the rank that sent it, on the
    /// same stream. Pure pool bookkeeping (the real machine reuses a
    /// persistent send buffer): not charged as traffic.
    pub fn return_packed_f64(&mut self, src: usize, tag: u32, mut buf: Vec<f64>) {
        buf.clear();
        let _ = self.txs[src].send(Message {
            src: self.id,
            tag,
            payload: Payload::F64(buf),
        });
    }

    /// Take an empty pooled `f64` pack buffer with capacity ≥ `cap`. A
    /// pool miss allocates fresh storage and is charged to the rank's
    /// allocation counters; a warmed-up exchange pattern never misses.
    pub fn take_f64(&mut self, cap: usize) -> Vec<f64> {
        let (buf, fresh) = self.pool.take_f64(cap);
        self.note_alloc(fresh);
        buf
    }

    /// Recycle a consumed `f64` buffer (typically a received payload)
    /// back into this rank's pool.
    pub fn recycle_f64(&mut self, v: Vec<f64>) {
        self.pool.recycle_f64(v);
    }

    /// Take an empty pooled `u32` pack buffer with capacity ≥ `cap`.
    pub fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        let (buf, fresh) = self.pool.take_u32(cap);
        self.note_alloc(fresh);
        buf
    }

    /// Recycle a consumed `u32` buffer back into this rank's pool.
    pub fn recycle_u32(&mut self, v: Vec<u32>) {
        self.pool.recycle_u32(v);
    }

    fn note_alloc(&mut self, fresh_bytes: u64) {
        if fresh_bytes > 0 {
            self.counters.comm_allocs += 1;
            self.counters.comm_alloc_bytes += fresh_bytes;
        }
    }

    /// Claim the half-open tag range `[lo, hi)` for a schedule. Panics if
    /// it overlaps a range already reserved on this rank — gather and
    /// scatter streams of one schedule use `tag` and `tag + 1`, so two
    /// schedules whose tags are less than 2 apart would silently corrupt
    /// each other's traffic.
    pub fn reserve_tags(&mut self, lo: u32, hi: u32) {
        assert!(lo < hi, "empty tag range [{lo}, {hi})");
        assert!(
            hi <= COLLECTIVE_TAG_BASE,
            "tag range [{lo}, {hi}) collides with collective space"
        );
        for &(l, h) in &self.reserved_tags {
            assert!(
                hi <= l || h <= lo,
                "tag range [{lo}, {hi}) collides with reserved [{l}, {h}): \
                 schedules sharing a rank need tags at least 2 apart"
            );
        }
        self.reserved_tags.push((lo, hi));
    }

    /// Manhattan hop distance to `dst` on the 2-D rank mesh.
    pub fn hops_to(&self, dst: usize) -> u64 {
        let (r1, c1) = (self.id / self.mesh_cols, self.id % self.mesh_cols);
        let (r2, c2) = (dst / self.mesh_cols, dst % self.mesh_cols);
        (r1.abs_diff(r2) + c1.abs_diff(c2)) as u64
    }

    /// Report flops performed by a local numerical kernel.
    #[inline]
    pub fn add_flops(&mut self, n: f64) {
        self.counters.add_flops(n);
    }

    fn send_payload(&mut self, dst: usize, tag: u32, payload: Payload, class: CommClass) {
        assert!(dst < self.nranks, "send to rank {dst} out of range");
        assert_ne!(
            dst, self.id,
            "self-sends are a bug in schedule construction"
        );
        self.counters.record_send(class, payload.nbytes());
        self.counters.record_hops(self.hops_to(dst));
        self.txs[dst]
            .send(Message {
                src: self.id,
                tag,
                payload,
            })
            .expect("receiver hung up");
    }

    /// Send a float buffer to `dst` under `tag`.
    pub fn send_f64(&mut self, dst: usize, tag: u32, data: Vec<f64>, class: CommClass) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag collides with collective space"
        );
        self.send_payload(dst, tag, Payload::F64(data), class);
    }

    /// Send an index buffer to `dst` under `tag`.
    pub fn send_u32(&mut self, dst: usize, tag: u32, data: Vec<u32>, class: CommClass) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag collides with collective space"
        );
        self.send_payload(dst, tag, Payload::U32(data), class);
    }

    fn recv_payload(&mut self, src: usize, tag: u32) -> Payload {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(p) = q.pop_front() {
                return p;
            }
        }
        loop {
            let m = self.rx.recv().expect("all senders hung up while receiving");
            if m.tag == POISON_TAG {
                panic!(
                    "rank {} panicked; rank {} aborting blocked receive",
                    m.src, self.id
                );
            }
            if m.src == src && m.tag == tag {
                return m.payload;
            }
            self.stash
                .entry((m.src, m.tag))
                .or_default()
                .push_back(m.payload);
        }
    }

    /// Notify every peer that this rank is going down (called by the SPMD
    /// driver while unwinding a panic). Best-effort: peers that already
    /// exited are skipped.
    pub(crate) fn poison_peers(&mut self) {
        for dst in 0..self.nranks {
            if dst != self.id {
                let _ = self.txs[dst].send(Message {
                    src: self.id,
                    tag: POISON_TAG,
                    payload: Payload::Poison,
                });
            }
        }
    }

    /// Blocking receive of a float buffer from `src` under `tag`.
    pub fn recv_f64(&mut self, src: usize, tag: u32) -> Vec<f64> {
        self.recv_payload(src, tag).into_f64()
    }

    /// Blocking receive of an index buffer from `src` under `tag`.
    pub fn recv_u32(&mut self, src: usize, tag: u32) -> Vec<u32> {
        self.recv_payload(src, tag).into_u32()
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        self.counters.syncs += 1;
        self.barrier.wait();
    }

    fn next_collective_tag(&mut self) -> u32 {
        // Wraps within the reserved space (modulo keeps the tag strictly
        // below POISON_TAG); fine because tags are consumed in program
        // order on every rank (deterministic network).
        let t = COLLECTIVE_TAG_BASE + (self.collective_seq % 0x0FFF_FFFF);
        self.collective_seq = self.collective_seq.wrapping_add(1);
        t
    }

    /// Pack `vals` into a pooled buffer and send it as collective traffic.
    fn send_collective(&mut self, dst: usize, tag: u32, vals: &[f64]) {
        let mut buf = self.take_f64(vals.len());
        buf.extend_from_slice(vals);
        self.send_payload(dst, tag, Payload::F64(buf), CommClass::Collective);
    }

    /// Deterministic element-wise sum across ranks, in place: gather to
    /// rank 0 in rank order, reduce there, broadcast back. Mirrors the
    /// paper's residual-monitoring global sums. Allocation-free once the
    /// rank's buffer pool is warm.
    pub fn all_reduce_sum_in_place(&mut self, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == 0 {
            for src in 1..self.nranks {
                let part = self.recv_payload(src, tag).into_f64();
                assert_eq!(part.len(), vals.len(), "all_reduce length mismatch");
                for (a, p) in vals.iter_mut().zip(&part) {
                    *a += p;
                }
                self.recycle_f64(part);
            }
            for dst in 1..self.nranks {
                self.send_collective(dst, tag, vals);
            }
        } else {
            self.send_collective(0, tag, vals);
            let acc = self.recv_payload(0, tag).into_f64();
            vals.copy_from_slice(&acc);
            self.recycle_f64(acc);
        }
    }

    /// Allocating convenience wrapper over [`Rank::all_reduce_sum_in_place`].
    pub fn all_reduce_sum(&mut self, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.all_reduce_sum_in_place(&mut out);
        out
    }

    /// Broadcast from `root` into `vals` on every rank, in place.
    /// Allocation-free once the rank's buffer pool is warm.
    pub fn broadcast_in_place(&mut self, root: usize, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == root {
            for dst in 0..self.nranks {
                if dst != root {
                    self.send_collective(dst, tag, vals);
                }
            }
        } else {
            let got = self.recv_payload(root, tag).into_f64();
            assert_eq!(got.len(), vals.len(), "broadcast length mismatch");
            vals.copy_from_slice(&got);
            self.recycle_f64(got);
        }
    }

    /// Allocating convenience wrapper over [`Rank::broadcast_in_place`].
    pub fn broadcast(&mut self, root: usize, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.broadcast_in_place(root, &mut out);
        out
    }

    /// Gather every rank's buffer to `root`, concatenated in rank order
    /// into `out` (cleared first; non-root ranks get it back empty).
    /// Allocation-free once pools and `out`'s capacity are warm.
    pub fn gather_to_root_into(&mut self, root: usize, vals: &[f64], out: &mut Vec<f64>) {
        let tag = self.next_collective_tag();
        out.clear();
        if self.id == root {
            for src in 0..self.nranks {
                if src == root {
                    out.extend_from_slice(vals);
                } else {
                    let part = self.recv_payload(src, tag).into_f64();
                    out.extend_from_slice(&part);
                    self.recycle_f64(part);
                }
            }
        } else {
            self.send_collective(root, tag, vals);
        }
    }

    /// Allocating convenience wrapper over [`Rank::gather_to_root_into`].
    pub fn gather_to_root(&mut self, root: usize, vals: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.gather_to_root_into(root, vals, &mut out);
        out
    }

    /// Deterministic element-wise max across ranks, in place (same
    /// pattern as [`Rank::all_reduce_sum_in_place`]).
    pub fn all_reduce_max_in_place(&mut self, vals: &mut [f64]) {
        let tag = self.next_collective_tag();
        if self.id == 0 {
            for src in 1..self.nranks {
                let part = self.recv_payload(src, tag).into_f64();
                assert_eq!(part.len(), vals.len(), "all_reduce_max length mismatch");
                for (a, p) in vals.iter_mut().zip(&part) {
                    *a = a.max(*p);
                }
                self.recycle_f64(part);
            }
            for dst in 1..self.nranks {
                self.send_collective(dst, tag, vals);
            }
        } else {
            self.send_collective(0, tag, vals);
            let acc = self.recv_payload(0, tag).into_f64();
            vals.copy_from_slice(&acc);
            self.recycle_f64(acc);
        }
    }

    /// Allocating convenience wrapper over [`Rank::all_reduce_max_in_place`].
    pub fn all_reduce_max(&mut self, vals: &[f64]) -> Vec<f64> {
        let mut out = vals.to_vec();
        self.all_reduce_max_in_place(&mut out);
        out
    }
}
