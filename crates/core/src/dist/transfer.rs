//! Distributed inter-grid transfer operators: the per-rank pieces of the
//! 4-address/4-weight interpolation of §2.4, with PARTI schedules moving
//! the off-rank source values (charged to [`CommClass::Transfer`] — the
//! traffic the paper found to be "a small fraction of the total
//! communication costs").

use std::collections::BTreeMap;

use eul3d_delta::{CommClass, Rank};
use eul3d_mesh::InterpOps;
use eul3d_parti::{localize, Schedule, Translation};
use eul3d_partition::PartitionedMesh;

use crate::counters::{FlopCounter, FLOPS_TRANSFER_VERT};

/// One interpolation term: destination local index, four indices into a
/// staging buffer, four weights.
type Term = (u32, [u32; 4], [f64; 4]);

/// The rank-local piece of a fine↔coarse transfer pair.
pub struct TransferLink {
    /// State restriction: one term per *owned coarse* vertex, reading
    /// fine values staged in a buffer of `fine_buf_len` entries.
    state_terms: Vec<Term>,
    fine_buf_len: usize,
    /// Buffer entries whose fine source is owned locally: `(buf, local)`.
    fine_local: Vec<(u32, u32)>,
    /// Fetches the off-rank fine entries into the buffer.
    fine_sched: Schedule,

    /// Residual restriction / correction prolongation: one term per
    /// *owned fine* vertex, addressing coarse values staged in a buffer
    /// of `coarse_buf_len` entries.
    resid_terms: Vec<Term>,
    coarse_buf_len: usize,
    coarse_local: Vec<(u32, u32)>,
    coarse_sched: Schedule,
}

/// Output of [`build_terms`]: interpolation terms, staging-buffer size,
/// locally-satisfiable `(buf, local)` pairs, and the off-rank globals
/// with their buffer slots (the inspector's input).
type TermsBuild = (Vec<Term>, usize, Vec<(u32, u32)>, Vec<u32>, Vec<u32>);

fn build_terms(
    my_owned: &[u32],
    ops: &InterpOps,
    src_trans: &Translation,
    me: usize,
) -> TermsBuild {
    // Map every referenced source global to a staging-buffer index
    // (BTreeMap for a deterministic layout).
    let mut buf_of: BTreeMap<u32, u32> = BTreeMap::new();
    for &g in my_owned {
        for &src in &ops.addr[g as usize] {
            let next = buf_of.len() as u32;
            buf_of.entry(src).or_insert(next);
        }
    }
    let terms: Vec<Term> = my_owned
        .iter()
        .enumerate()
        .map(|(local, &g)| {
            let idxs = ops.addr[g as usize].map(|src| buf_of[&src]);
            (local as u32, idxs, ops.w[g as usize])
        })
        .collect();
    let mut local_pairs = Vec::new();
    let mut required = Vec::new();
    let mut slots = Vec::new();
    for (&src, &buf) in &buf_of {
        if src_trans.owner_of(src) == me {
            local_pairs.push((buf, src_trans.local_of(src)));
        } else {
            required.push(src);
            slots.push(buf);
        }
    }
    (terms, buf_of.len(), local_pairs, required, slots)
}

impl TransferLink {
    /// Build the link between level `l` (fine) and `l+1` (coarse). Must
    /// be called SPMD; uses tag space `[tag, tag+4)`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        rank: &mut Rank,
        to_coarse: &InterpOps,
        to_fine: &InterpOps,
        fine_pm: &PartitionedMesh,
        coarse_pm: &PartitionedMesh,
        tag: u32,
    ) -> TransferLink {
        let me = rank.id;
        let fine_trans = Translation::new(fine_pm.owner.clone(), fine_pm.owner_local.clone());
        let coarse_trans = Translation::new(coarse_pm.owner.clone(), coarse_pm.owner_local.clone());

        // State restriction: owned coarse vertices read fine sources.
        let (state_terms, fine_buf_len, fine_local, req_f, slots_f) = build_terms(
            &coarse_pm.ranks[me].owned_globals,
            to_coarse,
            &fine_trans,
            me,
        );
        let fine_sched = localize(
            rank,
            &fine_trans,
            &req_f,
            &slots_f,
            tag,
            CommClass::Transfer,
        );

        // Residual restriction + prolongation: owned fine vertices
        // address coarse entries.
        let (resid_terms, coarse_buf_len, coarse_local, req_c, slots_c) =
            build_terms(&fine_pm.ranks[me].owned_globals, to_fine, &coarse_trans, me);
        let coarse_sched = localize(
            rank,
            &coarse_trans,
            &req_c,
            &slots_c,
            tag + 2,
            CommClass::Transfer,
        );

        TransferLink {
            state_terms,
            fine_buf_len,
            fine_local,
            fine_sched,
            resid_terms,
            coarse_buf_len,
            coarse_local,
            coarse_sched,
        }
    }

    /// Interpolate a fine array onto owned coarse vertices (state moves
    /// down): `coarse_out[cv] = Σ w_k fine[addr_k]`.
    pub fn restrict_state(
        &self,
        rank: &mut Rank,
        fine: &[f64],
        coarse_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        let mut buf = rank.take_f64(self.fine_buf_len * nc);
        buf.resize(self.fine_buf_len * nc, 0.0);
        for &(b, l) in &self.fine_local {
            let (b, l) = (b as usize * nc, l as usize * nc);
            buf[b..b + nc].copy_from_slice(&fine[l..l + nc]);
        }
        self.fine_sched.gather_into(rank, fine, &mut buf, nc);
        for &(cv, idxs, w) in &self.state_terms {
            let base = cv as usize * nc;
            for c in 0..nc {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += w[k] * buf[idxs[k] as usize * nc + c];
                }
                coarse_out[base + c] = acc;
            }
        }
        rank.recycle_f64(buf);
        counter.add(self.state_terms.len(), FLOPS_TRANSFER_VERT);
    }

    /// Conservatively scatter owned fine values to coarse owners
    /// (residuals move down): `coarse_out[addr_k] += w_k fine[fv]`,
    /// accumulating into `coarse_out` (not zeroed here).
    pub fn restrict_residual(
        &self,
        rank: &mut Rank,
        fine: &[f64],
        coarse_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        let mut buf = rank.take_f64(self.coarse_buf_len * nc);
        buf.resize(self.coarse_buf_len * nc, 0.0);
        for &(fv, idxs, w) in &self.resid_terms {
            let base = fv as usize * nc;
            for k in 0..4 {
                let bb = idxs[k] as usize * nc;
                for c in 0..nc {
                    buf[bb + c] += w[k] * fine[base + c];
                }
            }
        }
        for &(b, l) in &self.coarse_local {
            let (b, l) = (b as usize * nc, l as usize * nc);
            for c in 0..nc {
                coarse_out[l + c] += buf[b + c];
            }
        }
        self.coarse_sched
            .scatter_add_into(rank, &mut buf, coarse_out, nc);
        rank.recycle_f64(buf);
        counter.add(self.resid_terms.len(), FLOPS_TRANSFER_VERT);
    }

    /// Interpolate a coarse array onto owned fine vertices (corrections
    /// move up): `fine_out[fv] = Σ w_k coarse[addr_k]`.
    pub fn prolong(
        &self,
        rank: &mut Rank,
        coarse: &[f64],
        fine_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        let mut buf = rank.take_f64(self.coarse_buf_len * nc);
        buf.resize(self.coarse_buf_len * nc, 0.0);
        for &(b, l) in &self.coarse_local {
            let (b, l) = (b as usize * nc, l as usize * nc);
            buf[b..b + nc].copy_from_slice(&coarse[l..l + nc]);
        }
        self.coarse_sched.gather_into(rank, coarse, &mut buf, nc);
        for &(fv, idxs, w) in &self.resid_terms {
            let base = fv as usize * nc;
            for c in 0..nc {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += w[k] * buf[idxs[k] as usize * nc + c];
                }
                fine_out[base + c] = acc;
            }
        }
        rank.recycle_f64(buf);
        counter.add(self.resid_terms.len(), FLOPS_TRANSFER_VERT);
    }

    /// Plane-major twin of [`TransferLink::restrict_state`]: `fine` and
    /// `coarse_out` hold `nc` contiguous planes. The staging buffer and
    /// every message keep the historical vertex-major layout, so bytes on
    /// the wire are unchanged.
    pub fn restrict_state_planes(
        &self,
        rank: &mut Rank,
        fine: &[f64],
        coarse_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        debug_assert!(fine.len().is_multiple_of(nc) && coarse_out.len().is_multiple_of(nc));
        let fplane = fine.len() / nc;
        let cplane = coarse_out.len() / nc;
        let mut buf = rank.take_f64(self.fine_buf_len * nc);
        buf.resize(self.fine_buf_len * nc, 0.0);
        for &(b, l) in &self.fine_local {
            let (b, l) = (b as usize * nc, l as usize);
            for c in 0..nc {
                buf[b + c] = fine[c * fplane + l];
            }
        }
        self.fine_sched.gather_planes_into(rank, fine, &mut buf, nc);
        for &(cv, idxs, w) in &self.state_terms {
            for c in 0..nc {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += w[k] * buf[idxs[k] as usize * nc + c];
                }
                coarse_out[c * cplane + cv as usize] = acc;
            }
        }
        rank.recycle_f64(buf);
        counter.add(self.state_terms.len(), FLOPS_TRANSFER_VERT);
    }

    /// Plane-major twin of [`TransferLink::restrict_residual`]; per-slot
    /// accumulation order (terms, then local pairs, then remote flush)
    /// is unchanged.
    pub fn restrict_residual_planes(
        &self,
        rank: &mut Rank,
        fine: &[f64],
        coarse_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        debug_assert!(fine.len().is_multiple_of(nc) && coarse_out.len().is_multiple_of(nc));
        let fplane = fine.len() / nc;
        let cplane = coarse_out.len() / nc;
        let mut buf = rank.take_f64(self.coarse_buf_len * nc);
        buf.resize(self.coarse_buf_len * nc, 0.0);
        for &(fv, idxs, w) in &self.resid_terms {
            let fv = fv as usize;
            for k in 0..4 {
                let bb = idxs[k] as usize * nc;
                for c in 0..nc {
                    buf[bb + c] += w[k] * fine[c * fplane + fv];
                }
            }
        }
        for &(b, l) in &self.coarse_local {
            let (b, l) = (b as usize * nc, l as usize);
            for c in 0..nc {
                coarse_out[c * cplane + l] += buf[b + c];
            }
        }
        self.coarse_sched
            .scatter_add_planes_into(rank, &mut buf, coarse_out, nc);
        rank.recycle_f64(buf);
        counter.add(self.resid_terms.len(), FLOPS_TRANSFER_VERT);
    }

    /// Plane-major twin of [`TransferLink::prolong`].
    pub fn prolong_planes(
        &self,
        rank: &mut Rank,
        coarse: &[f64],
        fine_out: &mut [f64],
        nc: usize,
        counter: &mut FlopCounter,
    ) {
        debug_assert!(coarse.len().is_multiple_of(nc) && fine_out.len().is_multiple_of(nc));
        let cplane = coarse.len() / nc;
        let fplane = fine_out.len() / nc;
        let mut buf = rank.take_f64(self.coarse_buf_len * nc);
        buf.resize(self.coarse_buf_len * nc, 0.0);
        for &(b, l) in &self.coarse_local {
            let (b, l) = (b as usize * nc, l as usize);
            for c in 0..nc {
                buf[b + c] = coarse[c * cplane + l];
            }
        }
        self.coarse_sched
            .gather_planes_into(rank, coarse, &mut buf, nc);
        for &(fv, idxs, w) in &self.resid_terms {
            let fv = fv as usize;
            for c in 0..nc {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += w[k] * buf[idxs[k] as usize * nc + c];
                }
                fine_out[c * fplane + fv] = acc;
            }
        }
        rank.recycle_f64(buf);
        counter.add(self.resid_terms.len(), FLOPS_TRANSFER_VERT);
    }
}
