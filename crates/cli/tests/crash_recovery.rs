//! Crash-injection harness: `kill -9` the real `eul3d serve` process at
//! seeded points mid-solve, restart it on the same `--state-dir`, and
//! assert the resumed job's artifact bundle is **byte-identical** to an
//! uninterrupted run — down to the encoded bytes of the durable result
//! file. This is the end-to-end proof of DESIGN.md §12's crash
//! consistency argument; the deterministic (no-subprocess) half lives
//! in `crates/serve/tests/durability.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use eul3d_core::{JobMode, RunConfig};
use eul3d_serve::client::{self, ClientConfig};
use eul3d_serve::json::JObj;
use eul3d_serve::{CacheKey, Request};

const SEED: u64 = 7;
/// Long enough (~1 s of cycles) that the kill always lands mid-run,
/// checkpointing densely so every kill point has progress to resume.
const CFG: &str = "[run]\nlevels = 2\ncycles = 120\ncheckpoint_every = 2\n\
                   [mesh]\nnx = 12\nny = 6\nnz = 5\n";

struct Server {
    child: Child,
    sock: PathBuf,
}

impl Server {
    fn spawn(sock: &Path, state: &Path) -> Server {
        Server::spawn_with(sock, state, &[])
    }

    fn spawn_with(sock: &Path, state: &Path, extra: &[&str]) -> Server {
        let child = Command::new(env!("CARGO_BIN_EXE_eul3d"))
            .args([
                "serve",
                "--socket",
                &sock.display().to_string(),
                "--state-dir",
                &state.display().to_string(),
                "--workers",
                "1",
                "--seed",
                &SEED.to_string(),
            ])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn eul3d serve");
        let mut srv = Server {
            child,
            sock: sock.to_path_buf(),
        };
        srv.wait_ready();
        srv
    }

    fn wait_ready(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if client::request_one(&self.sock, &Request::Stats).is_ok() {
                return;
            }
            assert!(
                self.child.try_wait().expect("try_wait").is_none(),
                "server exited before becoming ready"
            );
            assert!(Instant::now() < deadline, "server never became ready");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// SIGKILL — no drain, no cleanup, exactly the crash being modeled.
    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let _ = client::request_one(&self.sock, &Request::Shutdown);
        let _ = self.child.wait();
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("eul3d-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

fn journal_text(state: &Path) -> String {
    std::fs::read_to_string(state.join("journal.ndjson")).unwrap_or_default()
}

/// Block until the journal holds at least `n` checkpointed records for
/// an unfinished job — the seeded kill point.
fn wait_for_checkpoints(state: &Path, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let j = journal_text(state);
        assert!(
            !j.contains("\"done\""),
            "job finished before kill point {n}; enlarge CFG"
        );
        if j.matches("checkpointed").count() >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for checkpoint {n}; journal:\n{j}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn wait_for_started(state: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !journal_text(state).contains("started") {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn result_file(state: &Path) -> PathBuf {
    let rc = RunConfig::from_toml(CFG).unwrap();
    let key = CacheKey::of(&rc, JobMode::Solve, SEED);
    state.join("results").join(format!("{key}.res"))
}

fn wait_for_result_file(state: &Path) -> Vec<u8> {
    let path = result_file(state);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // The terminal record lands *after* the store write, so its
        // presence guarantees the .res bytes are complete.
        if journal_text(state).contains("\"done\"") {
            return std::fs::read(&path).expect("result file after done record");
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for the resumed job to finish"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn done_line_of(lines: &[String]) -> JObj {
    lines
        .iter()
        .rev()
        .find_map(|l| {
            let o = JObj::parse(l).ok()?;
            (o.str_of("event") == Some("done")).then_some(o)
        })
        .expect("stream carries a done event")
}

#[test]
fn sigkill_at_seeded_points_resumes_to_byte_identical_results() {
    // Uninterrupted baseline: submit, collect, read the durable result
    // file's raw bytes.
    let base_state = tmp("base-state");
    let base_sock = tmp("base-sock");
    let srv = Server::spawn(&base_sock, &base_state);
    let base_lines =
        client::submit_and_collect(&base_sock, CFG, "solve", false, true).expect("baseline");
    let base_done = done_line_of(&base_lines);
    srv.shutdown();
    let base_bytes = std::fs::read(result_file(&base_state)).expect("baseline result file");

    // Seeded kill points: before any checkpoint, and after the 1st and
    // 3rd checkpointed records.
    for (tag, kill_after_ck) in [("k0", 0usize), ("k1", 1), ("k3", 3)] {
        let state = tmp(&format!("{tag}-state"));
        let sock = tmp(&format!("{tag}-sock"));
        let srv = Server::spawn(&sock, &state);

        // A resilient client rides through the crash: its stream dies
        // with the server, and it resubmits (same content key) until the
        // restarted server serves the finished result.
        let submit_thread = {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let ccfg = ClientConfig {
                    read_timeout: Some(Duration::from_secs(120)),
                    retries: 60,
                    base_backoff_ms: 100,
                    seed: SEED,
                };
                client::submit_resilient(&sock, CFG, "solve", false, true, &ccfg)
            })
        };

        if kill_after_ck == 0 {
            wait_for_started(&state);
        } else {
            wait_for_checkpoints(&state, kill_after_ck);
        }
        srv.kill9();

        // Restart on the same state dir: the journal replays the
        // submission and the worker resumes from the checkpoint log.
        let srv = Server::spawn(&sock, &state);
        let bytes = wait_for_result_file(&state);
        assert_eq!(
            bytes, base_bytes,
            "{tag}: durable result bytes differ from the uninterrupted run"
        );

        let j = journal_text(&state);
        if kill_after_ck > 0 {
            assert!(
                j.contains("resumed"),
                "{tag}: restart recomputed instead of resuming:\n{j}"
            );
        }

        // The riding client lands on the same artifacts (hit or miss —
        // identical bytes either way, per the determinism contract).
        let lines = submit_thread
            .join()
            .expect("client thread")
            .expect("resilient submit after crash+restart");
        let done = done_line_of(&lines);
        assert_eq!(
            done.str_of("result_hash"),
            base_done.str_of("result_hash"),
            "{tag}: client-visible result hash"
        );
        assert_eq!(
            done.str_of("table"),
            base_done.str_of("table"),
            "{tag}: client-visible result table"
        );

        // No double-compute: the store holds exactly one result file.
        let n = std::fs::read_dir(state.join("results"))
            .expect("results dir")
            .count();
        assert_eq!(n, 1, "{tag}: exactly one durable result");
        srv.shutdown();
    }
}

#[test]
fn sigterm_drains_and_interrupted_work_resumes_on_restart() {
    let state = tmp("drain-state");
    let sock = tmp("drain-sock");
    // A drain window far too short for ~120 cycles: the drain must time
    // out, cancel the running job at a cycle boundary, and leave it
    // pending in the journal with its checkpoints intact.
    let mut srv = Server::spawn_with(&sock, &state, &["--drain-timeout-ms", "50"]);
    let submit_thread = {
        let sock = sock.clone();
        std::thread::spawn(move || client::submit_and_collect(&sock, CFG, "solve", false, false))
    };
    wait_for_checkpoints(&state, 1);

    let pid = srv.child.id();
    let term = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if srv.child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = submit_thread.join();
    assert!(
        !journal_text(&state).contains("\"done\""),
        "drain should not have finished a 120-cycle job instantly"
    );

    // Restart: the interrupted job resumes and finishes.
    let srv = Server::spawn(&sock, &state);
    let bytes = wait_for_result_file(&state);
    assert!(!bytes.is_empty());
    assert!(journal_text(&state).contains("resumed"));
    srv.shutdown();
}
