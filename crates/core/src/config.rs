//! Solver configuration.

use crate::gas::{Freestream, GAMMA};

/// Spatial discretization of the dissipative terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's formulation: central fluxes + switched JST
    /// Laplacian/biharmonic artificial dissipation (two edge passes).
    CentralJst,
    /// Central fluxes + Roe matrix dissipation (one edge pass, no
    /// sensor): a first-order upwind scheme, very robust at shocks.
    RoeUpwind,
}

/// All tunables of the EUL3D scheme, with defaults matching the usual
/// JST/multistage practice of the paper's era.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Freestream Mach number.
    pub mach: f64,
    /// Angle of attack in degrees (x–y plane).
    pub alpha_deg: f64,
    /// CFL number; local time stepping plus residual averaging admits
    /// multistage CFLs well above the unsmoothed limit.
    pub cfl: f64,
    /// Second-difference (shock) dissipation constant `k₂`.
    pub k2: f64,
    /// Fourth-difference (background) dissipation constant `k₄`.
    pub k4: f64,
    /// Implicit residual-averaging coefficient ε.
    pub smooth_eps: f64,
    /// Jacobi sweeps per residual-averaging application (0 disables).
    pub smooth_passes: usize,
    /// Use cheap first-order (constant-Laplacian) dissipation on coarse
    /// multigrid levels instead of the full JST switch.
    pub coarse_first_order: bool,
    /// Dissipation constant for coarse levels when `coarse_first_order`.
    pub coarse_k2: f64,
    /// Dissipation scheme (the paper's JST by default).
    pub scheme: Scheme,
    /// Runge–Kutta stage coefficients (Jameson's 5-stage scheme; the
    /// dissipation is evaluated at the first two stages and frozen, per
    /// eq. (1) of the paper).
    pub rk_alpha: [f64; 5],
    /// Lane width of the chunked SoA edge kernels (clamped to
    /// `1..=eul3d_kernels::MAX_LANES` at use sites). Any value produces
    /// bit-identical results; this only tunes vectorization.
    pub lanes: usize,
    /// Sort edge ids inside every colour group by ascending endpoints
    /// (gather locality) on the shared-memory path. Off by default; the
    /// pass is bit-identical because within a colour group the edge
    /// endpoints are disjoint.
    pub edge_reorder: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            gamma: GAMMA,
            mach: 0.675,
            alpha_deg: 0.0,
            cfl: 2.8,
            k2: 0.5,
            k4: 1.0 / 16.0,
            smooth_eps: 0.3,
            smooth_passes: 2,
            coarse_first_order: true,
            coarse_k2: 0.06,
            scheme: Scheme::CentralJst,
            rk_alpha: [0.25, 1.0 / 6.0, 0.375, 0.5, 1.0],
            lanes: eul3d_kernels::DEFAULT_LANES,
            edge_reorder: false,
        }
    }
}

impl SolverConfig {
    /// The paper's transonic case: M∞ = 0.768, α = 1.116°.
    pub fn paper_case() -> SolverConfig {
        SolverConfig {
            mach: 0.768,
            alpha_deg: 1.116,
            ..SolverConfig::default()
        }
    }

    /// Freestream implied by this configuration.
    pub fn freestream(&self) -> Freestream {
        Freestream::new(self.gamma, self.mach, self.alpha_deg)
    }

    /// Number of RK stages.
    pub fn nstages(&self) -> usize {
        self.rk_alpha.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SolverConfig::default();
        assert!(c.cfl > 0.0);
        assert_eq!(c.rk_alpha[4], 1.0, "final stage must complete the step");
        assert!(c.k2 > c.k4);
        assert_eq!(c.nstages(), 5);
    }

    #[test]
    fn paper_case_freestream() {
        let c = SolverConfig::paper_case();
        let fs = c.freestream();
        assert!((fs.mach - 0.768).abs() < 1e-15);
        assert!((fs.alpha_deg - 1.116).abs() < 1e-15);
    }
}
